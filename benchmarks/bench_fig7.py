"""Benchmarks regenerating the Fig. 7 energy study."""

import numpy as np
import pytest

from repro.experiments import run_experiment


def test_fig7a_energy_vs_spacing(benchmark, print_result):
    """Fig. 7(a): energy/bit vs WLspacing for n = 2/4/6 + optima.

    Heavy sweep (60 designed points + 3 golden-section searches): one
    timed round.
    """
    result = benchmark.pedantic(
        lambda: run_experiment("fig7a"), rounds=1, iterations=1
    )
    print_result(result)
    assert "order-independent" in result.notes


def test_fig7b_order_scaling(benchmark, print_result):
    """Fig. 7(b): energy vs order at 1 nm vs optimal spacing (~76.6 % saving)."""
    result = benchmark.pedantic(
        lambda: run_experiment("fig7b"), rounds=1, iterations=1
    )
    print_result(result)
    savings = [r["saving_%"] for r in result.rows]
    assert np.mean(savings) == pytest.approx(76.6, abs=3.0)

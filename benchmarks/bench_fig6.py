"""Benchmarks regenerating the Fig. 6 probe-power explorations."""

import numpy as np
import pytest

from repro.experiments import run_experiment


def test_fig6a_il_er_grid(benchmark, print_result):
    """Fig. 6(a): min probe power across the (IL, ER) plane @0.6 W pump.

    The full 12x10 MZI-first grid; one timed round (each point sizes a
    complete design).
    """
    result = benchmark.pedantic(
        lambda: run_experiment("fig6a"), rounds=1, iterations=1
    )
    print_result(result)
    finite = [r["probe_mw"] for r in result.rows if np.isfinite(r["probe_mw"])]
    assert len(finite) > 100


def test_fig6b_ber_sensitivity(benchmark, print_result):
    """Fig. 6(b): probe power vs target BER (paper: 1e-2 needs ~50 %)."""
    result = benchmark(lambda: run_experiment("fig6b"))
    print_result(result)
    rel = {r["target_ber"]: r["relative_to_1e-6"] for r in result.rows}
    assert rel[1e-2] == pytest.approx(0.49, abs=0.03)


def test_fig6c_device_comparison(benchmark, print_result):
    """Fig. 6(c): probe power per literature MZI device."""
    result = benchmark(lambda: run_experiment("fig6c"))
    print_result(result)
    assert len(result.rows) == 4

#!/usr/bin/env python3
"""Scalar-vs-batched-vs-runtime throughput benchmark for the engine.

Part 1 times three implementations of the same 256-input sweep (order 2,
1024-bit streams):

* **legacy loop** — a faithful reconstruction of the pre-engine hot
  path: one evaluation at a time, per-bit Python LFSR stepping, link
  budget rebuilt per call;
* **engine loop** — ``simulate_evaluation`` per input (the engine with
  batch size 1);
* **batched** — one ``simulate_batch`` pass.

Part 2 benchmarks the scaling runtime on top of the engine:

* **sharded vs serial** — the same seed schedule evaluated in one
  process and across a worker pool; the reassembled result must be
  bit-for-bit identical (exit gate), and on >= 4 cores the recorded
  speedup is expected to reach the 2x target;
* **chunked vs one-shot** — a long stream (default ``2**21`` bits)
  evaluated in bounded-memory ``(B, chunk)`` tiles; the accumulated
  ones/bit-error counts must equal the one-shot statistics (exit gate).

Part 3 (``--kernels``) benchmarks the pluggable compute kernels
(:mod:`repro.simulation.kernels`) and writes a separate
``BENCH_kernels.json`` artifact:

* **numpy vs packed (vs numba where installed)** — the same noiseless
  LFSR batch (default ``B=256``, ``L=2**20``) through each kernel; the
  packed uint64 bit-plane engine targets >= 4x with ~8x smaller bit
  tensors (1 bit per clock instead of 1 byte);
* **parity matrix** — every available kernel must return bit-for-bit
  identical values, output bits and error counts for all four SNG
  kinds, noisy and noiseless, and compose with chunking and sharding
  without changing a bit (the exit gate).

Part 5 (``--transports``) benchmarks the shard transports
(:mod:`repro.simulation.transport`) and writes a unified
``BENCH_runtime.json`` artifact (sharded + chunked + transports + peak
RSS):

* **pickle vs shm** — the same packed-kernel shard run (default
  ``B=256``, ``L=2**20``) through the pool-pipe serialization
  transport and the zero-copy shared-memory arena transport; the shm
  path targets >= 2x lower bytes moved through the pool pipes (hot
  arrays travel by segment name, not by value), with the parent-side
  reassembly times of both paths measured for trend tracking;
* **parity matrix** — transport x kernel x worker-count must be
  bit-for-bit identical to the serial engine pass (the exit gate,
  together with the deterministic transfer-byte ratio).

Part 4 (``--serving``) benchmarks the async service facade
(:class:`repro.serving.BatchServer` over a row-independent
:class:`repro.session.Evaluator`):

* **per-request serial** — each client awaits its answer before the
  next submits, forcing micro-batches of one;
* **coalesced** — all clients submit concurrently and the micro-batcher
  folds them into a handful of engine calls.

The exit gate is per-request bit-exactness: serial, coalesced and a
direct ``Evaluator.evaluate`` of the same inputs must agree exactly —
coalescing must never change an answer.

All bit-exactness checks are the pass/fail gates.  Wall-clock speedups
are recorded in the ``BENCH_*.json`` artifact for CI trend tracking but,
being machine-dependent, never fail the run.

Part 6 (``--faults``) benchmarks the schedule-seeded fault engine
(:mod:`repro.simulation.faultmodel`) and writes ``BENCH_faults.json``:

* **numpy vs packed fault sweep** — the same composite fault scenario
  (bit flips + desynchronization + drift ramp) applied through each
  kernel; the packed path XORs word-level uint64 Bernoulli masks and
  targets the same >= 4x speedup as the clean packed hot path;
* **fault parity matrix** — scenario x kernel x (one-shot, chunked at a
  word-misaligned tile length, sharded) must be bit-for-bit identical
  (the exit gate): the fault realization is a pure function of the seed
  schedule and the absolute clock index.

Part 7 (``--serving-saturation``) stress-tests the hardened serving
tier under open-loop ramped Poisson arrivals (seeded interarrival
gaps at 0.5x / 1x / 2x of the measured saturation rate, the overload
phase opening with a burst) and writes ``BENCH_serving.json``:

* **unbounded baseline** — the legacy configuration (``max_queue=0``)
  absorbs the whole overload into the queue: its depth and traced
  memory peak grow with the arrival count;
* **shed** — a bounded queue plus deadlines: queue depth stays within
  the bound, shed/expired requests fail with typed errors, and the
  p99 latency of *served* requests stays within the configured
  deadline at 2x the saturating arrival rate (exit gate);
* **degrade** — the progressive-precision ladder steps the session to
  shorter streams under pressure, serving >= 95% of all requests at
  2x saturation (exit gate) with each rung's measured RMSE recorded.

Run:  PYTHONPATH=src python benchmarks/bench_batched.py \
          [--out FILE] [--workers N] [--long-length BITS] [--serving] \
          [--serving-saturation] [--saturation-requests N] \
          [--saturation-length BITS] [--serving-out FILE] \
          [--kernels] [--kernel-length BITS] [--kernels-out FILE] \
          [--faults] [--fault-length BITS] [--faults-out FILE] \
          [--transport pickle|shm] [--transports] \
          [--transport-length BITS] [--runtime-out FILE]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.link_budget import received_power_table
from repro.core.params import paper_section5a_parameters
from repro.simulation.engine import derive_seed_schedule, simulate_batch
from repro.simulation.functional import simulate_evaluation
from repro.simulation.receiver import OpticalReceiver
from repro.simulation.runtime import simulate_batch_sharded, simulate_chunked
from repro.stochastic.bernstein import BernsteinPolynomial
from repro.stochastic.bitstream import Bitstream
from repro.stochastic.elements import adder_select
from repro.stochastic.sng import make_independent_sngs

BATCH = 256
LENGTH = 1024
ORDER = 2
SEED = 0xBEEF
TARGET_SPEEDUP = 10.0

SHARD_BATCH = 256
SHARD_LENGTH = 16384
SHARD_TARGET_SPEEDUP = 2.0
SHARD_TARGET_MIN_CORES = 4

CHUNK_BATCH = 4
LONG_LENGTH = 1 << 21
CHUNK_LENGTH = 1 << 17

SERVING_REQUESTS = 128
SERVING_LENGTH = 1024
SERVING_TARGET_SPEEDUP = 4.0

SATURATION_REQUESTS = 600
# Long enough that batch service time (~10 ms) dominates event-loop
# scheduling overhead, so Poisson arrival pacing is physically real.
SATURATION_LENGTH = 4096
SATURATION_BATCH = 32
# max_queue = factor x max_batch_size; sized so the queue can absorb
# the overload burst for the ~2 batch turnarounds the degradation
# controller needs before its first step-down takes effect.
SATURATION_QUEUE_FACTOR = 8
SATURATION_DEADLINE_FACTOR = 15.0  # deadline = factor x batch service time
SATURATION_SERVED_TARGET = 0.95  # degrade policy must serve this fraction
SATURATION_ARRIVAL_SEED = 0x0A27  # seeds the Poisson interarrival gaps

KERNEL_BATCH = 256
KERNEL_LENGTH = 1 << 20
KERNEL_TARGET_SPEEDUP = 4.0
KERNEL_TARGET_MEMORY_RATIO = 8.0
KERNEL_PARITY_BATCH = 8
KERNEL_PARITY_LENGTH = 1000

TRANSPORT_BATCH = 256
TRANSPORT_LENGTH = 1 << 20
TRANSPORT_TARGET_TRANSFER_RATIO = 2.0

FAULT_BATCH = 256
FAULT_LENGTH = 1 << 20
FAULT_TARGET_SPEEDUP = 4.0
FAULT_PARITY_BATCH = 8
FAULT_PARITY_LENGTH = 1000


def _stepped_uniform(lfsr, count: int) -> np.ndarray:
    """Per-bit Python stepping — the pre-engine LFSR hot loop."""
    out = np.empty(count)
    for i in range(count):
        out[i] = lfsr.step()
    return out / float(1 << lfsr.width)


def legacy_evaluation(circuit, x: float, length: int, rng) -> np.ndarray:
    """The pre-engine per-evaluation pipeline, bit-for-bit.

    One input at a time: per-bit LFSR stepping for every stream, a fresh
    link-budget table per call, scalar receiver slicing.  Uses the same
    per-row seed/noise rng protocol as the engine so outputs can be
    asserted identical.
    """
    params = circuit.params
    order = params.order
    coefficients = circuit.polynomial.coefficients

    data_seed = int(rng.integers(1, 1 << 31))
    coeff_seed = int(rng.integers(1, 1 << 31))
    data_sngs = make_independent_sngs(order, base_seed=data_seed)
    coeff_sngs = make_independent_sngs(order + 1, base_seed=coeff_seed)

    data_streams = [
        Bitstream((_stepped_uniform(sng._lfsr, length) < x).astype(np.uint8))
        for sng in data_sngs
    ]
    coeff_streams = [
        Bitstream(
            (_stepped_uniform(sng._lfsr, length) < float(b)).astype(np.uint8)
        )
        for sng, b in zip(coeff_sngs, coefficients)
    ]

    levels = adder_select(data_streams)
    coeff_matrix = np.stack([s.bits for s in coeff_streams])
    pattern_index = np.zeros(length, dtype=np.int64)
    for channel in range(order + 1):
        pattern_index |= coeff_matrix[channel].astype(np.int64) << channel
    budget = received_power_table(params)  # rebuilt per call, as before
    table = budget.power_mw
    powers = table[pattern_index, levels]
    receiver = OpticalReceiver.from_power_bands(
        params.detector,
        zero_level_mw=budget.zero_band_mw[1],
        one_level_mw=budget.one_band_mw[0],
    )
    decision = receiver.decide(powers, rng=rng)
    return decision.bits.bits


def best_of(repetitions: int, run) -> tuple:
    """Best-of-N wall-clock timing: single-shot timings on a shared CI
    runner are allocation/load-noise dominated.  Returns the best time
    and the last output (callables are deterministic per repetition)."""
    best, output = float("inf"), None
    for _ in range(repetitions):
        t0 = time.perf_counter()
        output = run()
        best = min(best, time.perf_counter() - t0)
    return best, output


def bench_sharded(circuit, workers: int, transport: str = "pickle") -> dict:
    """Serial vs process-sharded evaluation of one shared seed schedule."""
    xs = np.linspace(0.0, 1.0, SHARD_BATCH)
    schedule = derive_seed_schedule(xs.size, np.random.default_rng(SEED))

    serial_s, serial = best_of(
        2,
        lambda: simulate_batch(
            circuit, xs, length=SHARD_LENGTH, schedule=schedule
        ),
    )
    sharded_s, sharded = best_of(
        2,
        lambda: simulate_batch_sharded(
            circuit,
            xs,
            length=SHARD_LENGTH,
            schedule=schedule,
            workers=workers,
            transport=transport,
        ),
    )
    bit_exact = bool(
        np.array_equal(serial.output_bits, sharded.output_bits)
        and np.array_equal(serial.received_power_mw, sharded.received_power_mw)
        and np.array_equal(serial.select_levels, sharded.select_levels)
        and np.array_equal(serial.values, sharded.values)
    )
    speedup = serial_s / sharded_s
    cores = os.cpu_count() or 1
    return {
        "batch": SHARD_BATCH,
        "length": SHARD_LENGTH,
        "workers": int(workers),
        "transport": transport,
        "cpu_cores": cores,
        "serial_seconds": round(serial_s, 6),
        "sharded_seconds": round(sharded_s, 6),
        "sharded_speedup": round(speedup, 2),
        "target_speedup": SHARD_TARGET_SPEEDUP,
        "target_min_cores": SHARD_TARGET_MIN_CORES,
        # The 2x target only makes sense with real parallel hardware;
        # on fewer cores it is recorded as not-applicable (null).
        "meets_target_speedup": (
            bool(speedup >= SHARD_TARGET_SPEEDUP)
            if cores >= SHARD_TARGET_MIN_CORES and workers >= 2
            else None
        ),
        "bit_exact": bit_exact,
    }


def bench_chunked(circuit, long_length: int, chunk_length: int) -> dict:
    """One-shot vs tile-streamed evaluation of one long-stream schedule."""
    xs = np.linspace(0.1, 0.9, CHUNK_BATCH)
    schedule = derive_seed_schedule(xs.size, np.random.default_rng(SEED))

    t0 = time.perf_counter()
    one_shot = simulate_batch(
        circuit, xs, length=long_length, schedule=schedule
    )
    one_shot_s = time.perf_counter() - t0
    ones = one_shot.output_bits.sum(axis=1)
    errors = one_shot.transmission_bit_errors
    del one_shot  # the whole point: the (B, L) tensors are the memory hog

    t0 = time.perf_counter()
    chunked = simulate_chunked(
        circuit,
        xs,
        length=long_length,
        chunk_length=chunk_length,
        schedule=schedule,
        workers=0,  # measure pure chunking, immune to the env default
    )
    chunked_s = time.perf_counter() - t0

    statistics_exact = bool(
        np.array_equal(chunked.ones_count, ones)
        and np.array_equal(chunked.transmission_bit_errors, errors)
    )
    return {
        "batch": CHUNK_BATCH,
        "length": int(long_length),
        "chunk_length": int(chunk_length),
        "chunks": chunked.chunk_count,
        "one_shot_seconds": round(one_shot_s, 6),
        "chunked_seconds": round(chunked_s, 6),
        "chunked_overhead": round(chunked_s / one_shot_s, 2),
        # Peak per-clock float64 tensor footprint of a tile vs the
        # one-shot pass: data uniforms (B, ORDER, L) + coefficient
        # uniforms (B, ORDER+1, L) + powers (B, L) + noise (B, L) are
        # alive simultaneously (uint8 bit tensors add a few % more).
        "tile_bytes": int(CHUNK_BATCH * (2 * ORDER + 3) * chunk_length * 8),
        "one_shot_bytes": int(CHUNK_BATCH * (2 * ORDER + 3) * long_length * 8),
        "statistics_exact": statistics_exact,
    }


def _pickled_bytes(obj) -> int:
    """Serialized size of *obj* without materializing the blob.

    A counting sink under ``pickle.Pickler`` measures exactly what a
    process pool would push through its pipe for *obj*, byte for byte,
    without a multi-gigabyte ``dumps`` allocation.
    """
    import io
    import pickle

    class _Counter(io.RawIOBase):
        count = 0

        def write(self, data):
            self.count += len(data)
            return len(data)

    counter = _Counter()
    pickle.Pickler(counter, protocol=pickle.DEFAULT_PROTOCOL).dump(obj)
    return counter.count


def _transport_parity_matrix(circuit) -> dict:
    """Bit-exactness gate: transport x kernel x worker count.

    Every sharded composition must reproduce the serial engine pass
    exactly — the transport, like the kernel, is a pure wall-clock knob.
    """
    xs = np.linspace(0.0, 1.0, KERNEL_PARITY_BATCH)
    schedule = derive_seed_schedule(xs.size, np.random.default_rng(SEED))
    reference = simulate_batch(
        circuit, xs, length=KERNEL_PARITY_LENGTH, schedule=schedule
    )
    checks = {}
    exact = True
    for transport in ("pickle", "shm"):
        for kernel in ("numpy", "packed"):
            for workers in (2, 3):
                sharded = simulate_batch_sharded(
                    circuit,
                    xs,
                    length=KERNEL_PARITY_LENGTH,
                    schedule=schedule,
                    workers=workers,
                    kernel=kernel,
                    transport=transport,
                )
                ok = bool(
                    np.array_equal(reference.values, sharded.values)
                    and np.array_equal(
                        reference.output_bits, sharded.output_bits
                    )
                    and np.array_equal(
                        reference.ideal_bits, sharded.ideal_bits
                    )
                    and np.array_equal(
                        reference.received_power_mw,
                        sharded.received_power_mw,
                    )
                    and np.array_equal(
                        reference.select_levels, sharded.select_levels
                    )
                )
                checks[f"{transport}/{kernel}/workers{workers}"] = ok
                exact = exact and ok
    return {"bit_exact": exact, "cases": checks}


def bench_transports(circuit, workers: int, batch: int, length: int) -> dict:
    """pickle vs shm shard transport on the packed noiseless hot path.

    Three measurements, one gate:

    * **end-to-end** wall clock of the same sharded run through each
      transport (machine-dependent, recorded only — on a starved box
      the pool itself dominates either transport);
    * **transfer bytes** — what each transport pushes through the pool
      pipes, measured by pickling the exact worker payloads and shard
      results the pickle path ships vs the segment-name metadata the
      shm path ships.  Deterministic layout arithmetic, so the >= 2x
      target is part of the gate;
    * **parent-side reassembly** — deserialize + concatenate (pickle)
      vs attach-view + word-unpack (shm) of identical shard data.

    The gate is the transfer-byte ratio plus bit-exactness of every
    transport x kernel x worker-count composition.
    """
    import dataclasses
    import pickle
    import resource

    from repro.simulation.engine import BatchEvaluation
    from repro.simulation.kernels import pack_bits, unpack_bits
    from repro.simulation.runtime import _concatenate_batches, _shard_bounds
    from repro.simulation.transport import SharedArena

    workers = max(2, int(workers))
    kernel = "packed"
    xs = np.linspace(0.0, 1.0, batch)
    schedule = derive_seed_schedule(batch, np.random.default_rng(SEED))
    reference = simulate_batch(
        circuit,
        xs,
        length=length,
        noisy=False,
        schedule=schedule,
        kernel=kernel,
    )

    runs = {}
    exact_all = True
    for transport in ("pickle", "shm"):
        t0 = time.perf_counter()
        result = simulate_batch_sharded(
            circuit,
            xs,
            length=length,
            noisy=False,
            schedule=schedule,
            workers=workers,
            kernel=kernel,
            transport=transport,
        )
        seconds = time.perf_counter() - t0
        exact = bool(
            np.array_equal(reference.values, result.values)
            and np.array_equal(reference.output_bits, result.output_bits)
            and np.array_equal(reference.ideal_bits, result.ideal_bits)
            and np.array_equal(
                reference.received_power_mw, result.received_power_mw
            )
            and np.array_equal(reference.select_levels, result.select_levels)
        )
        exact_all = exact_all and exact
        runs[transport] = {
            "seconds": round(seconds, 6),
            "bit_exact": exact,
        }
        del result

    bounds = _shard_bounds(batch, workers)

    # Pickle transport: the pool pipes carry each worker's full payload
    # (circuit + input slice + seed slice) out and its entire shard
    # BatchEvaluation — every hot (rows, L) tensor — back.
    pickle_bytes = 0
    blobs = []
    for lo, hi in bounds:
        payload = (
            circuit,
            xs[lo:hi],
            length,
            False,
            "lfsr",
            16,
            schedule.shard(lo, hi),
            kernel,
        )
        pickle_bytes += _pickled_bytes(payload)
        shard = dataclasses.replace(
            reference,
            xs=reference.xs[lo:hi],
            values=reference.values[lo:hi],
            expected=reference.expected[lo:hi],
            received_power_mw=reference.received_power_mw[lo:hi],
            output_bits=reference.output_bits[lo:hi],
            ideal_bits=reference.ideal_bits[lo:hi],
            select_levels=reference.select_levels[lo:hi],
        )
        blobs.append(
            pickle.dumps(shard, protocol=pickle.DEFAULT_PROTOCOL)
        )
    pickle_bytes += sum(len(blob) for blob in blobs)

    t0 = time.perf_counter()
    _concatenate_batches([pickle.loads(blob) for blob in blobs], length)
    pickle_reassembly_s = time.perf_counter() - t0
    del blobs

    # Shm transport: the pipes carry only the arena spec (segment name
    # + field layout) out and the written row range back; the hot
    # tensors cross by shared mapping.  Mirror the runtime's packed
    # field layout, fill it as the workers would, and time the
    # parent-side view export + word unpack.
    words = (length + 63) // 64
    arena = SharedArena(
        {
            "xs": ((batch,), np.float64),
            "data_seeds": ((batch,), np.int64),
            "coeff_seeds": ((batch,), np.int64),
            "noise_seeds": ((batch,), np.int64),
            "values": ((batch,), np.float64),
            "expected": ((batch,), np.float64),
            "received_power_mw": ((batch, length), np.float64),
            "select_levels": ((batch, length), np.int64),
            "output_words": ((batch, words), np.uint64),
            "ideal_words": ((batch, words), np.uint64),
        }
    )
    shm_bytes = 0
    for lo, hi in bounds:
        payload = (
            arena.spec,
            circuit,
            lo,
            hi,
            length,
            False,
            "lfsr",
            16,
            kernel,
            True,
        )
        shm_bytes += _pickled_bytes(payload) + _pickled_bytes((lo, hi))
    arena.write("xs", xs)
    arena.write("data_seeds", schedule.data_seeds)
    arena.write("coeff_seeds", schedule.coeff_seeds)
    arena.write("noise_seeds", schedule.noise_seeds)
    arena.write("values", reference.values)
    arena.write("expected", reference.expected)
    arena.write("received_power_mw", reference.received_power_mw)
    arena.write("select_levels", reference.select_levels)
    arena.write("output_words", pack_bits(reference.output_bits))
    arena.write("ideal_words", pack_bits(reference.ideal_bits))

    t0 = time.perf_counter()
    views = arena.export_views()
    BatchEvaluation(
        xs=views["xs"],
        values=views["values"],
        expected=views["expected"],
        stream_length=int(length),
        received_power_mw=views["received_power_mw"],
        output_bits=unpack_bits(views["output_words"], length),
        ideal_bits=unpack_bits(views["ideal_words"], length),
        select_levels=views["select_levels"],
    )
    shm_reassembly_s = time.perf_counter() - t0
    del views

    parity = _transport_parity_matrix(circuit)
    transfer_ratio = pickle_bytes / shm_bytes

    # ru_maxrss is a lifetime high-water mark (KiB on Linux): parent
    # plus the largest terminated pool worker — the whole bench tree.
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    rss_children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss

    bit_exact = bool(exact_all and parity["bit_exact"])
    meets_transfer = bool(
        transfer_ratio >= TRANSPORT_TARGET_TRANSFER_RATIO
    )
    return {
        "batch": int(batch),
        "length": int(length),
        "workers": int(workers),
        "shards": len(bounds),
        "kernel": kernel,
        "noisy": False,
        "runs": runs,
        "pickle_transfer_bytes": int(pickle_bytes),
        "shm_transfer_bytes": int(shm_bytes),
        "transfer_ratio": round(transfer_ratio, 1),
        "target_transfer_ratio": TRANSPORT_TARGET_TRANSFER_RATIO,
        "meets_target_transfer_ratio": meets_transfer,
        "pickle_reassembly_seconds": round(pickle_reassembly_s, 6),
        "shm_reassembly_seconds": round(shm_reassembly_s, 6),
        "reassembly_speedup": round(
            pickle_reassembly_s / shm_reassembly_s, 2
        ),
        "peak_rss_bytes": int(rss) * 1024,
        "peak_worker_rss_bytes": int(rss_children) * 1024,
        "parity": parity,
        "bit_exact": bit_exact,
        # The byte ratio is deterministic layout arithmetic, so unlike
        # the wall-clock speedups it joins bit-exactness in the gate.
        "passed": bool(bit_exact and meets_transfer),
    }


def _kernel_parity_matrix(circuit) -> dict:
    """Exhaustive bit-exactness gate: kernel x sng_kind x noisy.

    Every available kernel must reproduce the numpy kernel's values,
    output bits, error counts, per-clock powers and levels exactly —
    one-shot, and (for the packed kernels) composed with chunked
    streaming and thread-pool sharding.
    """
    from repro.simulation.kernels import available_kernels
    from repro.simulation.runtime import simulate_chunked

    xs = np.linspace(0.0, 1.0, KERNEL_PARITY_BATCH)
    checks = {}
    exact = True
    for kernel in available_kernels():
        if kernel == "numpy":
            continue
        for sng_kind in ("lfsr", "counter", "sobol", "chaotic"):
            for noisy in (False, True):
                schedule = derive_seed_schedule(
                    xs.size,
                    np.random.default_rng(SEED),
                    sng_kind=sng_kind,
                )
                reference = simulate_batch(
                    circuit,
                    xs,
                    length=KERNEL_PARITY_LENGTH,
                    noisy=noisy,
                    sng_kind=sng_kind,
                    schedule=schedule,
                )
                other = simulate_batch(
                    circuit,
                    xs,
                    length=KERNEL_PARITY_LENGTH,
                    noisy=noisy,
                    sng_kind=sng_kind,
                    schedule=schedule,
                    kernel=kernel,
                )
                chunked = simulate_chunked(
                    circuit,
                    xs,
                    length=KERNEL_PARITY_LENGTH,
                    chunk_length=96,
                    noisy=noisy,
                    sng_kind=sng_kind,
                    schedule=schedule,
                    workers=0,
                    kernel=kernel,
                )
                sharded = simulate_batch_sharded(
                    circuit,
                    xs,
                    length=KERNEL_PARITY_LENGTH,
                    noisy=noisy,
                    sng_kind=sng_kind,
                    schedule=schedule,
                    workers=2,
                    backend="thread",
                    kernel=kernel,
                )
                ok = bool(
                    np.array_equal(reference.values, other.values)
                    and np.array_equal(
                        reference.output_bits, other.output_bits
                    )
                    and np.array_equal(
                        reference.received_power_mw,
                        other.received_power_mw,
                    )
                    and np.array_equal(
                        reference.select_levels, other.select_levels
                    )
                    and np.array_equal(
                        reference.transmission_bit_errors,
                        other.transmission_bit_errors,
                    )
                    and np.array_equal(
                        chunked.ones_count,
                        reference.output_bits.sum(axis=1),
                    )
                    and np.array_equal(
                        chunked.transmission_bit_errors,
                        reference.transmission_bit_errors,
                    )
                    and np.array_equal(
                        sharded.output_bits, reference.output_bits
                    )
                )
                checks[f"{kernel}/{sng_kind}/{'noisy' if noisy else 'noiseless'}"] = ok
                exact = exact and ok
    return {"bit_exact": exact, "cases": checks}


def _measured_streaming_peaks(circuit, kernels) -> dict:
    """tracemalloc peak per kernel for one noiseless streamed tile.

    The layout arithmetic (1 bit vs 1 byte per clock) says the packed
    bit tensors are 8x smaller *by construction*; this measures the
    claim so a regression (e.g. a packed path silently falling back to
    per-clock byte tensors) shows up in the artifact.  The chunked
    statistics path is measured because it returns only ``O(batch)``
    accumulators — the one-shot path's returned ``(B, L)`` float64
    tensors are identical across kernels and would mask the bit-tensor
    difference.  numpy allocates through tracemalloc-visible hooks, so
    the traced peak covers the tile tensors.
    """
    import tracemalloc

    from repro.simulation.runtime import simulate_chunked

    xs = np.linspace(0.0, 1.0, 32)
    schedule = derive_seed_schedule(xs.size, np.random.default_rng(SEED))
    peaks = {}
    for kernel in kernels:
        run = lambda kernel=kernel: simulate_chunked(
            circuit,
            xs,
            length=1 << 17,
            chunk_length=1 << 17,
            noisy=False,
            schedule=schedule,
            workers=0,
            kernel=kernel,
        )
        run()  # warm caches (cycle tables, pass context) outside the trace
        tracemalloc.start()
        run()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks[kernel] = int(peak)
    return peaks


def bench_kernels(circuit, batch: int, length: int) -> dict:
    """numpy vs packed (vs numba) on the noiseless LFSR hot path.

    The timing config (default ``B=256``, ``L=2**20``) is the paper's
    long-stream regime; the recorded speedup targets >= 4x for the
    packed kernel, with ~8x smaller bit tensors (1 bit per clock
    instead of the numpy kernel's 1 byte — a layout fact, cross-checked
    by a measured tracemalloc peak on the streaming path).  The exit
    gate is the parity matrix — machine-dependent speedups and peaks
    never fail the run.
    """
    from repro.simulation.kernels import available_kernels

    xs = np.linspace(0.0, 1.0, batch)
    schedule = derive_seed_schedule(batch, np.random.default_rng(SEED))
    # One byte per clock per data/coefficient stream vs one bit packed.
    numpy_bit_bytes = batch * (2 * ORDER + 1) * length
    results = {}
    reference_values = reference_errors = None
    reference_seconds = None
    values_exact = True
    for kernel in available_kernels():
        seconds, outcome = best_of(
            2,
            lambda kernel=kernel: simulate_batch(
                circuit,
                xs,
                length=length,
                noisy=False,
                schedule=schedule,
                kernel=kernel,
            ),
        )
        values = np.asarray(outcome.values)
        errors = np.asarray(outcome.transmission_bit_errors)
        del outcome  # drop the (B, L) tensors before the next kernel runs
        if kernel == "numpy":
            reference_values, reference_errors = values, errors
            reference_seconds = seconds
        else:
            values_exact = values_exact and bool(
                np.array_equal(values, reference_values)
                and np.array_equal(errors, reference_errors)
            )
        bit_bytes = (
            numpy_bit_bytes if kernel == "numpy" else numpy_bit_bytes // 8
        )
        results[kernel] = {
            "seconds": round(seconds, 6),
            "speedup_vs_numpy": (
                1.0
                if kernel == "numpy"
                else round(reference_seconds / seconds, 2)
            ),
            "bit_tensor_bytes": int(bit_bytes),
        }
    parity = _kernel_parity_matrix(circuit)
    packed = results["packed"]
    streaming_peaks = _measured_streaming_peaks(circuit, list(results))
    for name, peak in streaming_peaks.items():
        results[name]["measured_streaming_peak_bytes"] = peak
    return {
        "benchmark": "bench_kernels",
        "batch": int(batch),
        "length": int(length),
        "order": ORDER,
        "sng_kind": "lfsr",
        "noisy": False,
        "kernels": results,
        # Layout arithmetic (1 bit vs 1 byte per clock per stream)...
        "bit_tensor_memory_ratio": round(
            numpy_bit_bytes / packed["bit_tensor_bytes"], 2
        ),
        # ...cross-checked by a measured allocation peak on the
        # streaming statistics path (32 rows x one 2**17-bit tile).
        "measured_streaming_peak_ratio": round(
            streaming_peaks["numpy"] / streaming_peaks["packed"], 2
        ),
        "target_speedup": KERNEL_TARGET_SPEEDUP,
        "target_memory_ratio": KERNEL_TARGET_MEMORY_RATIO,
        "meets_target_speedup": bool(
            packed["speedup_vs_numpy"] >= KERNEL_TARGET_SPEEDUP
        ),
        "hot_path_values_exact": values_exact,
        "parity": parity,
        # Parity is the gate; the machine-dependent speedup is recorded
        # for trend tracking but never fails the run.
        "passed": bool(parity["bit_exact"] and values_exact),
    }


def _fault_parity_matrix(circuit) -> dict:
    """Bit-exactness gate for injected faults: kernel x scenario x shape.

    For every fault scenario, every available kernel must reproduce the
    numpy kernel's faulty values and output bits exactly — one-shot,
    chunked (including a tile length that is not a multiple of 64, so
    masks cross word boundaries mid-tile), and sharded across workers.
    The fault realization is schedule-seeded, so any divergence is an
    engine bug, never sampling noise.
    """
    from repro.simulation.faultmodel import FaultSpec
    from repro.simulation.kernels import available_kernels
    from repro.simulation.runtime import RuntimeConfig, run_batch

    scenarios = {
        "flip": FaultSpec(flip_probability=0.02),
        "shift": FaultSpec(shift_clocks=7),
        "stuck": FaultSpec(stuck_channel=0, stuck_value=1),
        "drift": FaultSpec(drift_ramp_per_mclock=64.0),
        "decay": FaultSpec(decay_tau_clocks=4096),
        "composite": FaultSpec(
            flip_probability=0.01,
            shift_clocks=3,
            stuck_channel=1,
            stuck_value=0,
            drift_ramp_per_mclock=32.0,
            decay_tau_clocks=8192,
        ),
    }
    xs = np.linspace(0.0, 1.0, FAULT_PARITY_BATCH)
    checks = {}
    exact = True
    for name, fault in scenarios.items():
        for sng_kind in ("lfsr", "chaotic"):
            reference = run_batch(
                circuit,
                xs,
                length=FAULT_PARITY_LENGTH,
                sng_kind=sng_kind,
                base_seed=SEED,
                fault=fault,
            )
            for kernel in available_kernels():
                if kernel == "numpy":
                    continue
                other = run_batch(
                    circuit,
                    xs,
                    length=FAULT_PARITY_LENGTH,
                    sng_kind=sng_kind,
                    base_seed=SEED,
                    config=RuntimeConfig(kernel=kernel),
                    fault=fault,
                )
                chunked = run_batch(
                    circuit,
                    xs,
                    length=FAULT_PARITY_LENGTH,
                    sng_kind=sng_kind,
                    base_seed=SEED,
                    config=RuntimeConfig(
                        kernel=kernel, chunk_length=100, workers=0
                    ),
                    fault=fault,
                )
                sharded = run_batch(
                    circuit,
                    xs,
                    length=FAULT_PARITY_LENGTH,
                    sng_kind=sng_kind,
                    base_seed=SEED,
                    config=RuntimeConfig(
                        kernel=kernel, workers=2, backend="thread"
                    ),
                    fault=fault,
                )
                ok = bool(
                    np.array_equal(reference.values, other.values)
                    and np.array_equal(
                        reference.output_bits, other.output_bits
                    )
                    and np.array_equal(
                        reference.transmission_bit_errors,
                        other.transmission_bit_errors,
                    )
                    and np.array_equal(
                        chunked.ones_count,
                        reference.output_bits.sum(axis=1),
                    )
                    and np.array_equal(
                        chunked.transmission_bit_errors,
                        reference.transmission_bit_errors,
                    )
                    and np.array_equal(
                        sharded.output_bits, reference.output_bits
                    )
                )
                checks[f"{name}/{sng_kind}/{kernel}"] = ok
                exact = exact and ok
    return {"bit_exact": exact, "cases": checks}


def bench_faults(circuit, batch: int, length: int) -> dict:
    """numpy vs packed fault injection on the long-stream sweep.

    The same composite fault scenario (flips + desync + drift) applied
    through each kernel: the packed engine builds its Bernoulli masks
    as uint64 word planes and XORs them in place, so the faulty sweep
    targets the same >= 4x speedup as the clean packed hot path — the
    fault axis must not forfeit the packed-kernel win.  The exit gate
    is the fault parity matrix; the machine-dependent speedup is
    recorded for trend tracking.
    """
    from repro.simulation.faultmodel import FaultSpec
    from repro.simulation.runtime import RuntimeConfig, run_batch

    fault = FaultSpec(
        flip_probability=0.01,
        shift_clocks=5,
        drift_ramp_per_mclock=0.25,
    )
    xs = np.linspace(0.0, 1.0, batch)
    results = {}
    reference_values = None
    reference_seconds = None
    values_exact = True
    for kernel in ("numpy", "packed"):
        seconds, outcome = best_of(
            2,
            lambda kernel=kernel: run_batch(
                circuit,
                xs,
                length=length,
                noisy=False,
                base_seed=SEED,
                config=RuntimeConfig(kernel=kernel),
                fault=fault,
            ),
        )
        values = np.asarray(outcome.values)
        errors = np.asarray(outcome.transmission_bit_errors)
        del outcome
        if kernel == "numpy":
            reference_values, reference_errors = values, errors
            reference_seconds = seconds
        else:
            values_exact = values_exact and bool(
                np.array_equal(values, reference_values)
                and np.array_equal(errors, reference_errors)
            )
        results[kernel] = {
            "seconds": round(seconds, 6),
            "speedup_vs_numpy": (
                1.0
                if kernel == "numpy"
                else round(reference_seconds / seconds, 2)
            ),
        }
    parity = _fault_parity_matrix(circuit)
    packed = results["packed"]
    return {
        "benchmark": "bench_faults",
        "batch": int(batch),
        "length": int(length),
        "order": ORDER,
        "noisy": False,
        "fault": {
            "flip_probability": fault.flip_probability,
            "shift_clocks": fault.shift_clocks,
            "drift_ramp_per_mclock": fault.drift_ramp_per_mclock,
        },
        "kernels": results,
        "target_speedup": FAULT_TARGET_SPEEDUP,
        "meets_target_speedup": bool(
            packed["speedup_vs_numpy"] >= FAULT_TARGET_SPEEDUP
        ),
        "hot_path_values_exact": values_exact,
        "parity": parity,
        # Parity is the gate; the machine-dependent speedup is recorded
        # for trend tracking but never fails the run.
        "passed": bool(parity["bit_exact"] and values_exact),
    }


def bench_serving(circuit) -> dict:
    """Per-request serial vs coalesced micro-batched serving.

    A row-independent session (pinned seed space, noiseless receiver)
    guarantees each request's answer is a pure function of its input,
    so serial and coalesced serving must return identical floats —
    that identity (plus agreement with a direct ``Evaluator.evaluate``)
    is the exit gate.
    """
    import asyncio

    from repro.serving import BatchServer
    from repro.session import EvalSpec, Evaluator

    evaluator = Evaluator(
        circuit,
        EvalSpec(length=SERVING_LENGTH, noisy=False, base_seed=SEED),
    )
    xs = np.linspace(0.0, 1.0, SERVING_REQUESTS)
    direct = np.asarray(evaluator.evaluate(xs).values, dtype=float)

    async def serial_clients() -> tuple:
        async with BatchServer(
            evaluator, max_batch_delay_s=0.0
        ) as server:
            values = [await server.submit(float(x)) for x in xs]
            return values, server.stats

    async def coalesced_clients() -> tuple:
        async with BatchServer(
            evaluator,
            max_batch_size=SERVING_REQUESTS,
            max_batch_delay_s=0.005,
        ) as server:
            values = await server.submit_many(xs)
            return values, server.stats

    t0 = time.perf_counter()
    serial_values, serial_stats = asyncio.run(serial_clients())
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    coalesced_values, coalesced_stats = asyncio.run(coalesced_clients())
    coalesced_s = time.perf_counter() - t0

    serial_values = np.asarray(serial_values, dtype=float)
    coalesced_values = np.asarray(coalesced_values, dtype=float)
    bit_exact = bool(
        np.array_equal(serial_values, direct)
        and np.array_equal(coalesced_values, direct)
    )
    speedup = serial_s / coalesced_s
    return {
        "requests": SERVING_REQUESTS,
        "length": SERVING_LENGTH,
        "serial_seconds": round(serial_s, 6),
        "coalesced_seconds": round(coalesced_s, 6),
        "serial_engine_calls": serial_stats.batches,
        "coalesced_engine_calls": coalesced_stats.batches,
        "largest_micro_batch": coalesced_stats.largest_batch,
        "serial_requests_per_second": round(SERVING_REQUESTS / serial_s, 1),
        "coalesced_requests_per_second": round(
            SERVING_REQUESTS / coalesced_s, 1
        ),
        "coalescing_speedup": round(speedup, 2),
        "target_speedup": SERVING_TARGET_SPEEDUP,
        "meets_target_speedup": bool(speedup >= SERVING_TARGET_SPEEDUP),
        "bit_exact": bit_exact,
    }


def _nearest_rank(sorted_samples, fraction):
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    rank = max(
        0,
        min(
            len(sorted_samples) - 1,
            round(fraction * (len(sorted_samples) - 1)),
        ),
    )
    return sorted_samples[rank]


def _arrival_schedule(requests, saturation_rate, batch, rng):
    """Open-loop ramped Poisson arrivals: (x, gap_s) per request.

    Three phases against the measured saturation rate — 15% of traffic
    at 0.5x (calm), 15% at 1x (critical), 70% at 2x (overload) — with
    the overload phase opening as a burst of two full batches so the
    pressure step is sharp regardless of event-loop pacing jitter.
    """
    calm = requests * 15 // 100
    critical = requests * 15 // 100
    overload = requests - calm - critical
    burst = min(2 * batch, overload)
    schedule = []
    for count, multiplier in ((calm, 0.5), (critical, 1.0)):
        for _ in range(count):
            gap = float(rng.exponential(1.0 / (multiplier * saturation_rate)))
            schedule.append((float(rng.random()), gap))
    for index in range(overload):
        gap = (
            0.0
            if index < burst
            else float(rng.exponential(1.0 / (2.0 * saturation_rate)))
        )
        schedule.append((float(rng.random()), gap))
    return schedule


def _run_saturation_scenario(
    evaluator, batch, schedule, **server_kwargs
):
    """Drive one server configuration through the arrival schedule.

    Returns outcome counters, client-observed latencies of served
    requests, served (index, value) pairs, the metrics snapshot, the
    wall-clock span, and the tracemalloc peak across the run.
    """
    import asyncio
    import tracemalloc

    from repro.errors import (
        DeadlineExceededError,
        OverloadedError,
        ReproError,
    )
    from repro.serving import BatchServer

    async def scenario():
        server = BatchServer(
            evaluator,
            max_batch_size=batch,
            max_batch_delay_s=0.001,
            **server_kwargs,
        )
        await server.start()
        outcomes = {"served": 0, "shed": 0, "expired": 0, "failed": 0}
        latencies = []
        served_values = {}

        async def client(index, x):
            t0 = time.perf_counter()
            try:
                value = await server.submit(x)
            except DeadlineExceededError:
                outcomes["expired"] += 1
            except OverloadedError:
                outcomes["shed"] += 1
            except ReproError:
                outcomes["failed"] += 1
            else:
                outcomes["served"] += 1
                latencies.append(time.perf_counter() - t0)
                served_values[index] = value

        t0 = time.perf_counter()
        tasks = []
        pending_gap = 0.0
        for index, (x, gap) in enumerate(schedule):
            tasks.append(asyncio.create_task(client(index, x)))
            pending_gap += gap
            # Aggregate sub-5ms gaps into one sleep: the schedule's
            # *average* rate survives the event loop's timer overhead.
            if pending_gap >= 0.005:
                await asyncio.sleep(pending_gap)
                pending_gap = 0.0
        await asyncio.gather(*tasks)
        elapsed = time.perf_counter() - t0
        snapshot = server.metrics()
        await server.stop()
        return outcomes, latencies, served_values, snapshot, elapsed

    tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        outcomes, latencies, served_values, snapshot, elapsed = asyncio.run(
            scenario()
        )
        peak_bytes = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return outcomes, latencies, served_values, snapshot, elapsed, peak_bytes


def _scenario_report(outcomes, latencies, snapshot, elapsed, peak_bytes):
    sorted_latencies = sorted(latencies)
    return {
        "outcomes": dict(outcomes),
        "elapsed_seconds": round(elapsed, 4),
        "achieved_arrival_rate_per_s": round(
            sum(outcomes.values()) / elapsed, 1
        ),
        "latency_p50_ms": round(
            _nearest_rank(sorted_latencies, 0.50) * 1e3, 3
        )
        if sorted_latencies
        else None,
        "latency_p99_ms": round(
            _nearest_rank(sorted_latencies, 0.99) * 1e3, 3
        )
        if sorted_latencies
        else None,
        "peak_queue_depth_bound": snapshot.queue_depth.max_observed_bound,
        "queue_depth_buckets": {
            "bounds": list(snapshot.queue_depth.bounds),
            "counts": list(snapshot.queue_depth.counts),
        },
        "largest_batch": snapshot.largest_batch,
        "batches": snapshot.batches,
        "tracemalloc_peak_kb": round(peak_bytes / 1024.0, 1),
        "rungs": [
            {
                "rung": rung.rung,
                "length": rung.length,
                "served": rung.served,
                "latency_p99_ms": round(rung.latency_p99_s * 1e3, 3),
                "rmse": rung.rmse,
            }
            for rung in snapshot.rungs
        ],
    }


def bench_serving_saturation(circuit, requests, batch, length) -> dict:
    """Open-loop saturation study of the admission-controlled server.

    Measures the session's batch service time, derives the saturating
    arrival rate, and drives three server configurations through the
    same seeded ramped-Poisson schedule (0.5x / 1x / 2x):

    * ``unbounded`` — the legacy ``max_queue=0`` baseline, arrival
      burst absorbed entirely into the queue (memory-growth baseline);
    * ``shed`` — bounded queue + deadline: typed refusals, p99 of
      served requests within the deadline (exit gate);
    * ``degrade`` — bounded queue + precision ladder: serves >= 95% of
      requests by stepping down stream length, per-rung RMSE recorded
      (exit gate).
    """
    from repro.serving import (
        DegradationController,
        DegradationLadder,
    )
    from repro.session import EvalSpec, Evaluator

    evaluator = Evaluator(
        circuit,
        EvalSpec(length=length, noisy=False, base_seed=SEED),
    )
    max_queue = SATURATION_QUEUE_FACTOR * batch

    # The saturating arrival rate is a measured property of this
    # machine: requests/second one full micro-batch sustains.
    probe = np.linspace(0.0, 1.0, batch)
    service_s, _ = best_of(3, lambda: evaluator.evaluate(probe))
    saturation_rate = batch / service_s
    deadline_s = SATURATION_DEADLINE_FACTOR * service_s

    rng = np.random.default_rng(SATURATION_ARRIVAL_SEED)
    schedule = _arrival_schedule(requests, saturation_rate, batch, rng)
    burst_schedule = [(x, 0.0) for x, _ in schedule]
    direct = np.asarray(
        evaluator.evaluate([x for x, _ in schedule]).values, dtype=float
    )

    # -- unbounded baseline: the whole burst lands in the queue --------
    (
        unbounded_outcomes,
        unbounded_latencies,
        _,
        unbounded_snapshot,
        unbounded_elapsed,
        unbounded_peak,
    ) = _run_saturation_scenario(
        evaluator, batch, burst_schedule, policy="block", max_queue=0
    )

    # -- shed: bounded queue + deadline --------------------------------
    (
        shed_outcomes,
        shed_latencies,
        shed_values,
        shed_snapshot,
        shed_elapsed,
        shed_peak,
    ) = _run_saturation_scenario(
        evaluator,
        batch,
        schedule,
        policy="shed",
        max_queue=max_queue,
        default_deadline_s=deadline_s,
    )

    # -- degrade: bounded queue + progressive-precision ladder ---------
    ladder = DegradationLadder(
        (length, max(1, length // 4), max(1, length // 16))
    )
    controller = DegradationController(
        ladder,
        queue_capacity=max_queue,
        high_watermark=0.25,
        low_watermark=0.05,
        patience=1,
        recovery_patience=8,
    )
    (
        degrade_outcomes,
        degrade_latencies,
        _,
        degrade_snapshot,
        degrade_elapsed,
        degrade_peak,
    ) = _run_saturation_scenario(
        evaluator,
        batch,
        schedule,
        policy="degrade",
        max_queue=max_queue,
        degradation=controller,
        measure_rmse=True,
    )

    # -- exit gates ----------------------------------------------------
    unbounded_bound = unbounded_snapshot.queue_depth.max_observed_bound
    shed_bound = shed_snapshot.queue_depth.max_observed_bound
    degrade_bound = degrade_snapshot.queue_depth.max_observed_bound
    queue_bounded = bool(
        (shed_bound is None or shed_bound <= max_queue)
        and (degrade_bound is None or degrade_bound <= max_queue)
        and shed_bound is not None
        and degrade_bound is not None
    )
    unbounded_grows = bool(
        unbounded_bound is None or unbounded_bound > max_queue
    )
    memory_flat = bool(shed_peak <= unbounded_peak)
    shed_sorted = sorted(shed_latencies)
    shed_p99_within_deadline = bool(
        shed_sorted and _nearest_rank(shed_sorted, 0.99) <= deadline_s
    )
    shed_bit_exact = bool(
        shed_values
        and all(
            value == direct[index] for index, value in shed_values.items()
        )
    )
    degrade_served_fraction = degrade_outcomes["served"] / requests
    degrade_serves_target = bool(
        degrade_served_fraction >= SATURATION_SERVED_TARGET
    )
    degraded_rungs = [r for r in degrade_snapshot.rungs if r.rung > 0]
    degrade_stepped_down = bool(
        degraded_rungs and all(r.served > 0 for r in degraded_rungs)
    )
    rmse_recorded = bool(
        degrade_snapshot.rungs
        and all(r.rmse is not None for r in degrade_snapshot.rungs)
    )
    passed = bool(
        queue_bounded
        and unbounded_grows
        and memory_flat
        and shed_p99_within_deadline
        and shed_bit_exact
        and degrade_serves_target
        and degrade_stepped_down
        and rmse_recorded
    )
    return {
        "benchmark": "bench_serving_saturation",
        "requests": requests,
        "length": length,
        "max_batch_size": batch,
        "max_queue": max_queue,
        "batch_service_seconds": round(service_s, 6),
        "saturation_rate_per_s": round(saturation_rate, 1),
        "deadline_s": round(deadline_s, 6),
        "deadline_factor": SATURATION_DEADLINE_FACTOR,
        "unbounded": _scenario_report(
            unbounded_outcomes,
            unbounded_latencies,
            unbounded_snapshot,
            unbounded_elapsed,
            unbounded_peak,
        ),
        "shed": _scenario_report(
            shed_outcomes,
            shed_latencies,
            shed_snapshot,
            shed_elapsed,
            shed_peak,
        ),
        "degrade": _scenario_report(
            degrade_outcomes,
            degrade_latencies,
            degrade_snapshot,
            degrade_elapsed,
            degrade_peak,
        ),
        "degrade_served_fraction": round(degrade_served_fraction, 4),
        "served_fraction_target": SATURATION_SERVED_TARGET,
        "gates": {
            "queue_bounded": queue_bounded,
            "unbounded_baseline_grows": unbounded_grows,
            "memory_flat_vs_unbounded": memory_flat,
            "shed_p99_within_deadline": shed_p99_within_deadline,
            "shed_bit_exact": shed_bit_exact,
            "degrade_serves_target": degrade_serves_target,
            "degrade_stepped_down": degrade_stepped_down,
            "rung_rmse_recorded": rmse_recorded,
        },
        "passed": passed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="BENCH_batched.json",
        help="JSON artifact path (default: %(default)s)",
    )
    parser.add_argument(
        "--batch", type=int, default=BATCH, help="sweep size (default 256)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sharded worker count (default: one per CPU core)",
    )
    parser.add_argument(
        "--long-length",
        type=int,
        default=LONG_LENGTH,
        help="chunked-benchmark stream length (default 2**21)",
    )
    parser.add_argument(
        "--chunk-length",
        type=int,
        default=CHUNK_LENGTH,
        help="chunked-benchmark tile length (default 2**17)",
    )
    parser.add_argument(
        "--serving",
        action="store_true",
        help="also benchmark BatchServer coalescing vs per-request calls",
    )
    parser.add_argument(
        "--serving-saturation",
        action="store_true",
        help=(
            "also run the open-loop saturation study (unbounded baseline "
            "vs shed vs degrade) with structural exit gates"
        ),
    )
    parser.add_argument(
        "--saturation-requests",
        type=int,
        default=SATURATION_REQUESTS,
        help="saturation-study request count (default %(default)s)",
    )
    parser.add_argument(
        "--saturation-batch",
        type=int,
        default=SATURATION_BATCH,
        help="saturation-study max batch size (default %(default)s)",
    )
    parser.add_argument(
        "--saturation-length",
        type=int,
        default=SATURATION_LENGTH,
        help="saturation-study stream length (default %(default)s)",
    )
    parser.add_argument(
        "--serving-out",
        default="BENCH_serving.json",
        help=(
            "saturation-study JSON artifact path, written with "
            "--serving-saturation (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help=(
            "also benchmark the compute kernels (numpy vs packed vs numba "
            "where available) with a bit-exactness exit gate"
        ),
    )
    parser.add_argument(
        "--kernel-batch",
        type=int,
        default=KERNEL_BATCH,
        help="kernel-benchmark sweep size (default 256)",
    )
    parser.add_argument(
        "--kernel-length",
        type=int,
        default=KERNEL_LENGTH,
        help="kernel-benchmark stream length (default 2**20)",
    )
    parser.add_argument(
        "--kernels-out",
        default="BENCH_kernels.json",
        help="kernel-benchmark JSON artifact path (default: %(default)s)",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help=(
            "also benchmark schedule-seeded fault injection (numpy vs "
            "packed word-mask application) with a parity exit gate"
        ),
    )
    parser.add_argument(
        "--fault-batch",
        type=int,
        default=FAULT_BATCH,
        help="fault-benchmark sweep size (default 256)",
    )
    parser.add_argument(
        "--fault-length",
        type=int,
        default=FAULT_LENGTH,
        help="fault-benchmark stream length (default 2**20)",
    )
    parser.add_argument(
        "--faults-out",
        default="BENCH_faults.json",
        help="fault-benchmark JSON artifact path (default: %(default)s)",
    )
    parser.add_argument(
        "--transport",
        choices=("pickle", "shm"),
        default="pickle",
        help="shard transport for the part-2 sharded leg (default pickle)",
    )
    parser.add_argument(
        "--transports",
        action="store_true",
        help=(
            "also benchmark pickle vs shm shard transports (transfer "
            "bytes + reassembly + parity gate) and write the unified "
            "runtime artifact"
        ),
    )
    parser.add_argument(
        "--transport-batch",
        type=int,
        default=TRANSPORT_BATCH,
        help="transport-benchmark sweep size (default 256)",
    )
    parser.add_argument(
        "--transport-length",
        type=int,
        default=TRANSPORT_LENGTH,
        help="transport-benchmark stream length (default 2**20)",
    )
    parser.add_argument(
        "--runtime-out",
        default="BENCH_runtime.json",
        help=(
            "unified runtime JSON artifact path, written with "
            "--transports (default: %(default)s)"
        ),
    )
    args = parser.parse_args(argv)
    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)

    circuit = OpticalStochasticCircuit(
        paper_section5a_parameters(),
        BernsteinPolynomial([0.25, 0.625, 0.375]),
    )
    xs = np.linspace(0.0, 1.0, args.batch)

    # Warm every cache so the timings compare steady-state throughput.
    simulate_batch(circuit, xs, length=LENGTH, rng=np.random.default_rng(0))

    # Every repetition reseeds the same rng protocol, so the outputs
    # used for the bit-exactness check are identical across repetitions.
    def run_legacy():
        rng = np.random.default_rng(SEED)
        return np.stack(
            [legacy_evaluation(circuit, float(x), LENGTH, rng) for x in xs]
        )

    def run_engine_loop():
        rng = np.random.default_rng(SEED)
        return np.asarray(
            [
                simulate_evaluation(
                    circuit, float(x), length=LENGTH, rng=rng
                ).value
                for x in xs
            ]
        )

    legacy_s, legacy_bits = best_of(2, run_legacy)
    engine_loop_s, engine_loop_values = best_of(3, run_engine_loop)
    batched_s, batch = best_of(
        5,
        lambda: simulate_batch(
            circuit, xs, length=LENGTH, rng=np.random.default_rng(SEED)
        ),
    )

    bit_exact = bool(
        np.array_equal(legacy_bits, batch.output_bits)
        and np.array_equal(engine_loop_values, batch.values)
    )
    speedup_legacy = legacy_s / batched_s
    speedup_engine = engine_loop_s / batched_s

    sharded = bench_sharded(circuit, workers, transport=args.transport)
    chunked = bench_chunked(circuit, args.long_length, args.chunk_length)
    serving = bench_serving(circuit) if args.serving else None
    saturation_section = None
    if args.serving_saturation:
        saturation_section = bench_serving_saturation(
            circuit,
            args.saturation_requests,
            args.saturation_batch,
            args.saturation_length,
        )
        with open(args.serving_out, "w") as handle:
            json.dump(saturation_section, handle, indent=2)
            handle.write("\n")
    kernel_section = None
    if args.kernels:
        kernel_section = bench_kernels(
            circuit, args.kernel_batch, args.kernel_length
        )
        with open(args.kernels_out, "w") as handle:
            json.dump(kernel_section, handle, indent=2)
            handle.write("\n")
    faults_section = None
    if args.faults:
        faults_section = bench_faults(
            circuit, args.fault_batch, args.fault_length
        )
        with open(args.faults_out, "w") as handle:
            json.dump(faults_section, handle, indent=2)
            handle.write("\n")
    transports_section = None
    if args.transports:
        transports_section = bench_transports(
            circuit, workers, args.transport_batch, args.transport_length
        )
        runtime_artifact = {
            "benchmark": "bench_runtime",
            "sharded": sharded,
            "chunked": chunked,
            "transports": transports_section,
            "passed": bool(
                sharded["bit_exact"]
                and chunked["statistics_exact"]
                and transports_section["passed"]
            ),
        }
        with open(args.runtime_out, "w") as handle:
            json.dump(runtime_artifact, handle, indent=2)
            handle.write("\n")

    passed = bool(
        bit_exact
        and sharded["bit_exact"]
        and chunked["statistics_exact"]
        and (serving is None or serving["bit_exact"])
        and (saturation_section is None or saturation_section["passed"])
        and (kernel_section is None or kernel_section["passed"])
        and (faults_section is None or faults_section["passed"])
        and (transports_section is None or transports_section["passed"])
    )
    result = {
        "benchmark": "bench_batched",
        "batch": int(args.batch),
        "length": LENGTH,
        "order": ORDER,
        "legacy_loop_seconds": round(legacy_s, 6),
        "engine_loop_seconds": round(engine_loop_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup_vs_legacy_loop": round(speedup_legacy, 2),
        "speedup_vs_engine_loop": round(speedup_engine, 2),
        "evaluations_per_second_batched": round(args.batch / batched_s, 1),
        "bit_exact": bit_exact,
        "target_speedup": TARGET_SPEEDUP,
        "meets_target_speedup": speedup_legacy >= TARGET_SPEEDUP,
        "sharded": sharded,
        "chunked": chunked,
        "serving": serving,
        "serving_artifact": (
            args.serving_out if args.serving_saturation else None
        ),
        "kernels_artifact": args.kernels_out if args.kernels else None,
        "faults_artifact": args.faults_out if args.faults else None,
        "runtime_artifact": args.runtime_out if args.transports else None,
        # Correctness is the gate; wall-clock speedups are recorded for
        # trend tracking but machine-dependent, so they never fail CI.
        "passed": passed,
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    print(f"sweep of {args.batch} inputs, order {ORDER}, {LENGTH}-bit streams")
    print(f"  legacy per-evaluation loop : {legacy_s * 1e3:9.1f} ms")
    print(f"  engine per-evaluation loop : {engine_loop_s * 1e3:9.1f} ms")
    print(f"  batched engine (one pass)  : {batched_s * 1e3:9.1f} ms")
    print(
        f"  speedup: {speedup_legacy:.1f}x vs legacy, "
        f"{speedup_engine:.1f}x vs engine loop "
        f"(target >= {TARGET_SPEEDUP:.0f}x vs legacy)"
    )
    print(f"  bit-exact vs legacy path   : {bit_exact}")
    print(
        f"sharded runtime: {SHARD_BATCH} rows x {SHARD_LENGTH} bits, "
        f"{sharded['workers']} workers on {sharded['cpu_cores']} cores"
    )
    print(f"  serial engine pass         : {sharded['serial_seconds'] * 1e3:9.1f} ms")
    print(f"  sharded (process pool)     : {sharded['sharded_seconds'] * 1e3:9.1f} ms")
    print(
        f"  speedup: {sharded['sharded_speedup']:.2f}x "
        f"(target >= {SHARD_TARGET_SPEEDUP:.0f}x on >= "
        f"{SHARD_TARGET_MIN_CORES} cores), bit-exact: {sharded['bit_exact']}"
    )
    print(
        f"chunked runtime: {CHUNK_BATCH} rows x {chunked['length']} bits in "
        f"{chunked['chunks']} tiles of {chunked['chunk_length']}"
    )
    print(f"  one-shot engine pass       : {chunked['one_shot_seconds'] * 1e3:9.1f} ms")
    print(f"  chunked streaming          : {chunked['chunked_seconds'] * 1e3:9.1f} ms")
    print(
        f"  tile footprint: {chunked['tile_bytes'] / 1e6:.0f} MB vs "
        f"{chunked['one_shot_bytes'] / 1e6:.0f} MB one-shot; "
        f"statistics exact: {chunked['statistics_exact']}"
    )
    if kernel_section is not None:
        print(
            f"compute kernels: {kernel_section['batch']} rows x "
            f"{kernel_section['length']} bits, noiseless lfsr"
        )
        for name, row in kernel_section["kernels"].items():
            print(
                f"  {name:<10s}: {row['seconds'] * 1e3:9.1f} ms "
                f"({row['speedup_vs_numpy']:.2f}x, bit tensors "
                f"{row['bit_tensor_bytes'] / 1e6:.0f} MB)"
            )
        print(
            f"  packed speedup target >= {KERNEL_TARGET_SPEEDUP:.0f}x, "
            f"bit-tensor memory ratio "
            f"{kernel_section['bit_tensor_memory_ratio']:.0f}x (layout), "
            f"{kernel_section['measured_streaming_peak_ratio']:.1f}x "
            f"measured streaming peak; "
            f"parity gate: {kernel_section['parity']['bit_exact']}"
        )
        print(f"  kernel artifact written to {args.kernels_out}")
    if faults_section is not None:
        print(
            f"fault injection: {faults_section['batch']} rows x "
            f"{faults_section['length']} bits, composite scenario"
        )
        for name, row in faults_section["kernels"].items():
            print(
                f"  {name:<10s}: {row['seconds'] * 1e3:9.1f} ms "
                f"({row['speedup_vs_numpy']:.2f}x)"
            )
        print(
            f"  packed fault speedup target >= "
            f"{FAULT_TARGET_SPEEDUP:.0f}x; "
            f"parity gate: {faults_section['parity']['bit_exact']}"
        )
        print(f"  fault artifact written to {args.faults_out}")
    if transports_section is not None:
        t = transports_section
        print(
            f"shard transports: {t['batch']} rows x {t['length']} bits, "
            f"{t['kernel']} kernel, {t['workers']} workers"
        )
        for name, row in t["runs"].items():
            print(
                f"  {name:<7s} end-to-end        : "
                f"{row['seconds'] * 1e3:9.1f} ms "
                f"(bit-exact: {row['bit_exact']})"
            )
        print(
            f"  pool-pipe bytes: {t['pickle_transfer_bytes'] / 1e6:.1f} MB "
            f"pickle vs {t['shm_transfer_bytes'] / 1e3:.1f} KB shm "
            f"({t['transfer_ratio']:.0f}x, target >= "
            f"{t['target_transfer_ratio']:.0f}x)"
        )
        print(
            f"  reassembly: {t['pickle_reassembly_seconds'] * 1e3:.1f} ms "
            f"pickle vs {t['shm_reassembly_seconds'] * 1e3:.1f} ms shm "
            f"({t['reassembly_speedup']:.1f}x)"
        )
        print(
            f"  peak RSS: {t['peak_rss_bytes'] / 1e6:.0f} MB parent, "
            f"{t['peak_worker_rss_bytes'] / 1e6:.0f} MB largest worker; "
            f"parity gate: {t['parity']['bit_exact']}"
        )
        print(f"  runtime artifact written to {args.runtime_out}")
    if serving is not None:
        print(
            f"serving facade: {serving['requests']} requests x "
            f"{serving['length']}-bit streams"
        )
        print(
            f"  per-request serial         : {serving['serial_seconds'] * 1e3:9.1f} ms "
            f"({serving['serial_engine_calls']} engine calls)"
        )
        print(
            f"  coalesced micro-batching   : {serving['coalesced_seconds'] * 1e3:9.1f} ms "
            f"({serving['coalesced_engine_calls']} engine calls, largest "
            f"batch {serving['largest_micro_batch']})"
        )
        print(
            f"  speedup: {serving['coalescing_speedup']:.2f}x "
            f"(target >= {SERVING_TARGET_SPEEDUP:.0f}x), "
            f"bit-exact: {serving['bit_exact']}"
        )
    if saturation_section is not None:
        s = saturation_section
        print(
            f"serving saturation: {s['requests']} requests x "
            f"{s['length']}-bit streams, queue cap {s['max_queue']}, "
            f"deadline {s['deadline_s'] * 1e3:.1f} ms "
            f"({s['saturation_rate_per_s']:.0f} req/s saturates)"
        )
        for name in ("unbounded", "shed", "degrade"):
            row = s[name]
            outcomes = row["outcomes"]
            p99 = row["latency_p99_ms"]
            print(
                f"  {name:<9s}: served {outcomes['served']:4d} "
                f"shed {outcomes['shed']:4d} expired "
                f"{outcomes['expired']:4d}, "
                f"p99 {p99 if p99 is not None else '-':>8} ms, "
                f"queue depth <= {row['peak_queue_depth_bound']}, "
                f"peak alloc {row['tracemalloc_peak_kb']:.0f} KB"
            )
        for rung in s["degrade"]["rungs"]:
            print(
                f"    rung {rung['rung']} ({rung['length']:5d} bits): "
                f"served {rung['served']:4d}, rmse {rung['rmse']:.5f}"
            )
        print(
            f"  degrade served fraction: {s['degrade_served_fraction']:.3f} "
            f"(target >= {s['served_fraction_target']:.2f}); gates: "
            + ", ".join(
                f"{key}={value}" for key, value in s["gates"].items()
            )
        )
        print(f"  serving artifact written to {args.serving_out}")
    print(f"  artifact written to {args.out}")
    if not bit_exact:
        print("FAILED: batched output diverges from the legacy path", file=sys.stderr)
        return 1
    if not sharded["bit_exact"]:
        print("FAILED: sharded output diverges from the serial path", file=sys.stderr)
        return 1
    if not chunked["statistics_exact"]:
        print(
            "FAILED: chunked statistics diverge from the one-shot pass",
            file=sys.stderr,
        )
        return 1
    if serving is not None and not serving["bit_exact"]:
        print(
            "FAILED: served values diverge from the direct session call",
            file=sys.stderr,
        )
        return 1
    if saturation_section is not None and not saturation_section["passed"]:
        failed_gates = [
            key
            for key, value in saturation_section["gates"].items()
            if not value
        ]
        print(
            "FAILED: serving saturation gates: " + ", ".join(failed_gates),
            file=sys.stderr,
        )
        return 1
    if kernel_section is not None and not kernel_section["passed"]:
        print(
            "FAILED: a compute kernel diverges from the numpy reference",
            file=sys.stderr,
        )
        return 1
    if faults_section is not None and not faults_section["passed"]:
        print(
            "FAILED: a fault-injected kernel diverges from the numpy "
            "reference",
            file=sys.stderr,
        )
        return 1
    if transports_section is not None and not transports_section["passed"]:
        print(
            "FAILED: shard transport diverges from the serial path or "
            "misses the transfer-byte target",
            file=sys.stderr,
        )
        return 1
    if not result["meets_target_speedup"]:
        print(
            f"note: measured speedup below the {TARGET_SPEEDUP:.0f}x target "
            "on this machine (recorded in the artifact, not a failure)",
            file=sys.stderr,
        )
    if sharded["meets_target_speedup"] is False:
        print(
            f"note: sharded speedup below the {SHARD_TARGET_SPEEDUP:.0f}x "
            "target on this machine (recorded in the artifact, not a failure)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

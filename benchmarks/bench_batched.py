#!/usr/bin/env python3
"""Scalar-vs-batched throughput benchmark for the evaluation engine.

Times three implementations of the same 256-input sweep (order 2,
1024-bit streams):

* **legacy loop** — a faithful reconstruction of the pre-engine hot
  path: one evaluation at a time, per-bit Python LFSR stepping, link
  budget rebuilt per call;
* **engine loop** — ``simulate_evaluation`` per input (the engine with
  batch size 1);
* **batched** — one ``simulate_batch`` pass.

The legacy and batched paths share the per-row seed/noise protocol, so
the run asserts they are **bit-for-bit identical** — that is the exit
gate.  Wall-clock speedups (best-of-N per path) are recorded against the
10x target in a ``BENCH_*.json`` artifact for CI trend tracking, but
being machine-dependent they never fail the run.

Run:  PYTHONPATH=src python benchmarks/bench_batched.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.link_budget import received_power_table
from repro.core.params import paper_section5a_parameters
from repro.simulation.engine import simulate_batch
from repro.simulation.functional import simulate_evaluation
from repro.simulation.receiver import OpticalReceiver
from repro.stochastic.bernstein import BernsteinPolynomial
from repro.stochastic.bitstream import Bitstream
from repro.stochastic.elements import adder_select
from repro.stochastic.sng import make_independent_sngs

BATCH = 256
LENGTH = 1024
ORDER = 2
SEED = 0xBEEF
TARGET_SPEEDUP = 10.0


def _stepped_uniform(lfsr, count: int) -> np.ndarray:
    """Per-bit Python stepping — the pre-engine LFSR hot loop."""
    out = np.empty(count)
    for i in range(count):
        out[i] = lfsr.step()
    return out / float(1 << lfsr.width)


def legacy_evaluation(circuit, x: float, length: int, rng) -> np.ndarray:
    """The pre-engine per-evaluation pipeline, bit-for-bit.

    One input at a time: per-bit LFSR stepping for every stream, a fresh
    link-budget table per call, scalar receiver slicing.  Uses the same
    per-row seed/noise rng protocol as the engine so outputs can be
    asserted identical.
    """
    params = circuit.params
    order = params.order
    coefficients = circuit.polynomial.coefficients

    data_seed = int(rng.integers(1, 1 << 31))
    coeff_seed = int(rng.integers(1, 1 << 31))
    data_sngs = make_independent_sngs(order, base_seed=data_seed)
    coeff_sngs = make_independent_sngs(order + 1, base_seed=coeff_seed)

    data_streams = [
        Bitstream((_stepped_uniform(sng._lfsr, length) < x).astype(np.uint8))
        for sng in data_sngs
    ]
    coeff_streams = [
        Bitstream(
            (_stepped_uniform(sng._lfsr, length) < float(b)).astype(np.uint8)
        )
        for sng, b in zip(coeff_sngs, coefficients)
    ]

    levels = adder_select(data_streams)
    coeff_matrix = np.stack([s.bits for s in coeff_streams])
    pattern_index = np.zeros(length, dtype=np.int64)
    for channel in range(order + 1):
        pattern_index |= coeff_matrix[channel].astype(np.int64) << channel
    budget = received_power_table(params)  # rebuilt per call, as before
    table = budget.power_mw
    powers = table[pattern_index, levels]
    receiver = OpticalReceiver.from_power_bands(
        params.detector,
        zero_level_mw=budget.zero_band_mw[1],
        one_level_mw=budget.one_band_mw[0],
    )
    decision = receiver.decide(powers, rng=rng)
    return decision.bits.bits


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="BENCH_batched.json",
        help="JSON artifact path (default: %(default)s)",
    )
    parser.add_argument(
        "--batch", type=int, default=BATCH, help="sweep size (default 256)"
    )
    args = parser.parse_args(argv)

    circuit = OpticalStochasticCircuit(
        paper_section5a_parameters(),
        BernsteinPolynomial([0.25, 0.625, 0.375]),
    )
    xs = np.linspace(0.0, 1.0, args.batch)

    # Warm every cache so the timings compare steady-state throughput.
    simulate_batch(circuit, xs, length=LENGTH, rng=np.random.default_rng(0))

    # Best-of-N wall-clock per path: single-shot timings on a shared CI
    # runner are allocation/load-noise dominated.  Every repetition
    # reseeds the same rng protocol, so the outputs used for the
    # bit-exactness check are identical across repetitions.
    def best_of(repetitions, run):
        best, output = float("inf"), None
        for _ in range(repetitions):
            t0 = time.perf_counter()
            output = run(np.random.default_rng(SEED))
            best = min(best, time.perf_counter() - t0)
        return best, output

    legacy_s, legacy_bits = best_of(
        2,
        lambda rng: np.stack(
            [legacy_evaluation(circuit, float(x), LENGTH, rng) for x in xs]
        ),
    )
    engine_loop_s, engine_loop_values = best_of(
        3,
        lambda rng: np.asarray(
            [
                simulate_evaluation(
                    circuit, float(x), length=LENGTH, rng=rng
                ).value
                for x in xs
            ]
        ),
    )
    batched_s, batch = best_of(
        5, lambda rng: simulate_batch(circuit, xs, length=LENGTH, rng=rng)
    )

    bit_exact = bool(
        np.array_equal(legacy_bits, batch.output_bits)
        and np.array_equal(engine_loop_values, batch.values)
    )
    speedup_legacy = legacy_s / batched_s
    speedup_engine = engine_loop_s / batched_s

    result = {
        "benchmark": "bench_batched",
        "batch": int(args.batch),
        "length": LENGTH,
        "order": ORDER,
        "legacy_loop_seconds": round(legacy_s, 6),
        "engine_loop_seconds": round(engine_loop_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup_vs_legacy_loop": round(speedup_legacy, 2),
        "speedup_vs_engine_loop": round(speedup_engine, 2),
        "evaluations_per_second_batched": round(args.batch / batched_s, 1),
        "bit_exact": bit_exact,
        "target_speedup": TARGET_SPEEDUP,
        "meets_target_speedup": speedup_legacy >= TARGET_SPEEDUP,
        # Correctness is the gate; wall-clock speedup is recorded for
        # trend tracking but machine-dependent, so it never fails CI.
        "passed": bit_exact,
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    print(f"sweep of {args.batch} inputs, order {ORDER}, {LENGTH}-bit streams")
    print(f"  legacy per-evaluation loop : {legacy_s * 1e3:9.1f} ms")
    print(f"  engine per-evaluation loop : {engine_loop_s * 1e3:9.1f} ms")
    print(f"  batched engine (one pass)  : {batched_s * 1e3:9.1f} ms")
    print(
        f"  speedup: {speedup_legacy:.1f}x vs legacy, "
        f"{speedup_engine:.1f}x vs engine loop "
        f"(target >= {TARGET_SPEEDUP:.0f}x vs legacy)"
    )
    print(f"  bit-exact vs legacy path   : {bit_exact}")
    print(f"  artifact written to {args.out}")
    if not bit_exact:
        print("FAILED: batched output diverges from the legacy path", file=sys.stderr)
        return 1
    if not result["meets_target_speedup"]:
        print(
            f"note: measured speedup below the {TARGET_SPEEDUP:.0f}x target "
            "on this machine (recorded in the artifact, not a failure)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

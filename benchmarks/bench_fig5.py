"""Benchmarks regenerating Fig. 5 and the Section V-A sizing numbers."""

import pytest

from repro.core.params import paper_section5a_parameters
from repro.core.transmission import TransmissionModel
from repro.experiments import run_experiment


class BenchFig5:
    pass


def test_fig5a_transmissions(benchmark, print_result):
    """Fig. 5(a): z=(0,1,0), x1=x2=1 transmissions (paper: 0.091/0.004/0.0002)."""
    result = benchmark(lambda: run_experiment("fig5a"))
    print_result(result)
    values = {r["signal"]: r["total_transmission"] for r in result.rows}
    assert values["lambda_2"] == pytest.approx(0.091, rel=0.05)


def test_fig5b_transmissions(benchmark, print_result):
    """Fig. 5(b): z=(1,1,0), x1=x2=0 transmissions (paper: 0.476 / 0.482 mW)."""
    result = benchmark(lambda: run_experiment("fig5b"))
    print_result(result)
    values = {r["signal"]: r["total_transmission"] for r in result.rows}
    assert values["lambda_0"] == pytest.approx(0.476, rel=0.05)


def test_fig5c_received_power_table(benchmark, print_result):
    """Fig. 5(c): all (z, x) received powers (paper bands 0.092-0.099 / 0.477-0.482)."""
    result = benchmark(lambda: run_experiment("fig5c"))
    print_result(result)
    assert any("band" in str(r["z2z1z0"]) for r in result.rows)


def test_pump_sizing(benchmark, print_result):
    """Section V-A: pump power and ER derivation (paper: 591.8 mW / 13.22 dB)."""
    result = benchmark(lambda: run_experiment("pump"))
    print_result(result)
    values = {r["quantity"]: r["model"] for r in result.rows}
    assert values["pump power (mW)"] == pytest.approx(591.8, abs=0.5)


def test_kernel_pattern_table(benchmark):
    """Micro-benchmark: the exhaustive Eq. 6 pattern table (n=2)."""
    model = TransmissionModel(paper_section5a_parameters())
    table = benchmark(model.received_power_table_mw)
    assert table.shape == (8, 3)

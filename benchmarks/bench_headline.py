"""Benchmarks for the headline result and the gamma-correction study."""

import pytest

from repro.experiments import run_experiment


def test_headline_20p1_pj(benchmark, print_result):
    """Sections I/VI: 20.1 pJ laser energy per computed bit (n=2, 1 GHz)."""
    result = benchmark.pedantic(
        lambda: run_experiment("headline"), rounds=1, iterations=1
    )
    print_result(result)
    total = [
        r for r in result.rows if r["quantity"] == "total energy (pJ/bit)"
    ][0]
    assert total["model"] == pytest.approx(20.1, abs=0.5)


def test_gamma_case_study(benchmark, print_result):
    """Section V-C: 6th-order gamma correction, 10x speedup vs 100 MHz."""
    result = benchmark.pedantic(
        lambda: run_experiment("gamma"), rounds=1, iterations=1
    )
    print_result(result)
    speedup = [
        r for r in result.rows if r["quantity"] == "speedup vs 100 MHz ReSC"
    ][0]
    assert speedup["model"] == pytest.approx(10.0)


def test_parameter_table(benchmark, print_result):
    """Fig. 4(b): the system/device parameter table."""
    result = benchmark(lambda: run_experiment("params"))
    print_result(result)
    assert len(result.rows) >= 10

#!/usr/bin/env python3
"""Scalar-vs-vectorized throughput benchmark for the optics analysis.

Part 1 times the Monte Carlo yield study two ways on the same
pre-drawn fabrication corners (default 2000 samples, single worker):

* **scalar corner loop** — one ``TransmissionModel`` rebuild and one
  ``worst_case_eye`` per corner (the pre-PR hot path);
* **vectorized** — all corners as one stacked
  ``repro.core.vectorized`` pass.

Part 2 times the Fig. 7(a) design sizing sweep (orders 2/4/6 across a
spacing grid) two ways:

* **scalar designer loop** — one MRR-first design per spacing;
* **vectorized** — each order's grid sized as one
  ``mrr_first_sizing_batch`` pass.

The exit gates are parity, not speed: the vectorized Monte Carlo must
report the **identical yield fraction** with ``np.allclose`` eyes, and
the vectorized sweep must match the scalar energies point for point —
including equal ``inf`` (closed-eye) and ``nan`` (FSR-overflow) masks.
Wall-clock speedups are recorded in the ``BENCH_optics.json`` artifact
against their targets (10x Monte Carlo, 5x sweep) for CI trend
tracking but, being machine-dependent, never fail the run.

Run:  PYTHONPATH=src python benchmarks/bench_optics.py \
          [--out FILE] [--samples N] [--workers N]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.design import mrr_first_design
from repro.core.energy import energy_vs_spacing
from repro.simulation.montecarlo import VariationModel, run_monte_carlo

MC_SAMPLES = 2000
MC_SIGMA_NM = 0.04
MC_TARGET_SPEEDUP = 10.0

SWEEP_ORDERS = (2, 4, 6)
SWEEP_SPACINGS = np.round(np.linspace(0.08, 0.32, 40), 4)
SWEEP_TARGET_SPEEDUP = 5.0

SEED = 0x0D7C


def best_of(repetitions: int, run) -> tuple:
    """Best-of-N wall-clock timing: single-shot timings on a shared CI
    runner are allocation/load-noise dominated.  Returns the best time
    and the last output (callables are deterministic per repetition)."""
    best, output = float("inf"), None
    for _ in range(repetitions):
        t0 = time.perf_counter()
        output = run()
        best = min(best, time.perf_counter() - t0)
    return best, output


def bench_monte_carlo(samples: int, workers: int) -> dict:
    """Scalar corner loop vs one stacked pass over identical corners.

    Uses the Fig. 7 optimal dense-grid design (0.165 nm spacing), where
    a 0.04 nm sigma produces a genuinely fractional yield — so the
    identical-yield gate checks mixed open/closed eye decisions, not a
    trivially all-open batch.
    """
    params = mrr_first_design(2, 0.165).params
    variation = VariationModel(
        ring_sigma_nm=MC_SIGMA_NM, filter_sigma_nm=MC_SIGMA_NM
    )

    def run(vectorized: bool):
        return run_monte_carlo(
            params,
            variation,
            samples=samples,
            rng=np.random.default_rng(SEED),
            workers=workers,
            vectorized=vectorized,
        )

    scalar_s, scalar = best_of(2, lambda: run(False))
    vector_s, vector = best_of(3, lambda: run(True))

    yields_identical = scalar.yield_fraction == vector.yield_fraction
    eyes_close = bool(
        np.allclose(
            scalar.eye_openings_mw,
            vector.eye_openings_mw,
            rtol=1e-10,
            atol=1e-14,
        )
    )
    speedup = scalar_s / vector_s
    return {
        "samples": int(samples),
        "sigma_nm": MC_SIGMA_NM,
        "workers": int(workers),
        "scalar_seconds": round(scalar_s, 6),
        "vectorized_seconds": round(vector_s, 6),
        "speedup": round(speedup, 2),
        "target_speedup": MC_TARGET_SPEEDUP,
        "meets_target_speedup": speedup >= MC_TARGET_SPEEDUP,
        "corners_per_second_vectorized": round(samples / vector_s, 1),
        "yield_fraction": scalar.yield_fraction,
        "yields_identical": yields_identical,
        "eyes_allclose": eyes_close,
        "parity": bool(yields_identical and eyes_close),
    }


def bench_fig7_sweep() -> dict:
    """Per-spacing scalar designer vs one stacked sizing pass per order."""

    def run(vectorized: bool):
        return [
            energy_vs_spacing(order, SWEEP_SPACINGS, vectorized=vectorized)
            for order in SWEEP_ORDERS
        ]

    scalar_s, scalar = best_of(2, lambda: run(False))
    vector_s, vector = best_of(3, lambda: run(True))

    energies_close = True
    masks_equal = True
    for scalar_sweep, vector_sweep in zip(scalar, vector):
        for key in ("pump_pj", "probe_pj", "total_pj"):
            s, v = scalar_sweep[key], vector_sweep[key]
            masks_equal &= bool(
                np.array_equal(np.isnan(s), np.isnan(v))
                and np.array_equal(np.isinf(s), np.isinf(v))
            )
            finite = np.isfinite(s)
            energies_close &= bool(
                np.allclose(s[finite], v[finite], rtol=1e-10, atol=1e-14)
            )
    speedup = scalar_s / vector_s
    points = len(SWEEP_ORDERS) * SWEEP_SPACINGS.size
    return {
        "orders": list(SWEEP_ORDERS),
        "spacing_points": int(SWEEP_SPACINGS.size),
        "scalar_seconds": round(scalar_s, 6),
        "vectorized_seconds": round(vector_s, 6),
        "speedup": round(speedup, 2),
        "target_speedup": SWEEP_TARGET_SPEEDUP,
        "meets_target_speedup": speedup >= SWEEP_TARGET_SPEEDUP,
        "designs_per_second_vectorized": round(points / vector_s, 1),
        "energies_allclose": bool(energies_close),
        "inf_nan_masks_equal": bool(masks_equal),
        "parity": bool(energies_close and masks_equal),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_optics.json")
    parser.add_argument(
        "--samples",
        type=int,
        default=MC_SAMPLES,
        help="Monte Carlo corner count (default 2000)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker pool size for BOTH paths (default 0 = single worker, "
        "the headline comparison)",
    )
    args = parser.parse_args()

    monte_carlo = bench_monte_carlo(args.samples, args.workers)
    sweep = bench_fig7_sweep()

    passed = bool(monte_carlo["parity"] and sweep["parity"])
    result = {
        "benchmark": "bench_optics",
        "monte_carlo": monte_carlo,
        "fig7_sweep": sweep,
        # Parity is the gate; wall-clock speedups are recorded for
        # trend tracking but machine-dependent, so they never fail CI.
        "passed": passed,
    }
    with open(args.out, "w") as handle:
        json.dump(result, handle, indent=2)
        handle.write("\n")

    print(
        f"Monte Carlo yield study: {monte_carlo['samples']} corners, "
        f"sigma {MC_SIGMA_NM} nm, workers={monte_carlo['workers']}"
    )
    print(
        f"  scalar corner loop         : "
        f"{monte_carlo['scalar_seconds'] * 1e3:9.1f} ms"
    )
    print(
        f"  vectorized (stacked pass)  : "
        f"{monte_carlo['vectorized_seconds'] * 1e3:9.1f} ms"
    )
    print(
        f"  speedup: {monte_carlo['speedup']:.1f}x "
        f"(target >= {MC_TARGET_SPEEDUP:.0f}x), yield identical: "
        f"{monte_carlo['yields_identical']}, eyes allclose: "
        f"{monte_carlo['eyes_allclose']}"
    )
    print(
        f"Fig. 7 sizing sweep: orders {list(SWEEP_ORDERS)} x "
        f"{SWEEP_SPACINGS.size} spacings"
    )
    print(
        f"  scalar designer loop       : {sweep['scalar_seconds'] * 1e3:9.1f} ms"
    )
    print(
        f"  vectorized (one-pass)      : "
        f"{sweep['vectorized_seconds'] * 1e3:9.1f} ms"
    )
    print(
        f"  speedup: {sweep['speedup']:.1f}x "
        f"(target >= {SWEEP_TARGET_SPEEDUP:.0f}x), energies allclose: "
        f"{sweep['energies_allclose']}, inf/nan masks equal: "
        f"{sweep['inf_nan_masks_equal']}"
    )
    print(f"parity exit gate passed: {passed}")
    if not passed:
        print("FAIL: vectorized optics results diverge from scalar paths")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

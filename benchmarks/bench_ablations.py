"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each test times one configuration axis and prints the comparison the
ablation is about:

* pulse-based vs CW pump (the Section V-C energy argument);
* exhaustive worst-case eye vs the literal Eq. 8 sum;
* coarse vs dense ring profile on the same grid;
* order-16 scalability of the exhaustive pattern table.
"""

import numpy as np
import pytest

from repro.core.design import mrr_first_design
from repro.core.energy import energy_breakdown
from repro.core.params import paper_section5a_parameters
from repro.core.snr import circuit_snr
from repro.photonics.devices import COARSE_RING_PROFILE, DENSE_RING_PROFILE
from repro.simulation.montecarlo import VariationModel, run_monte_carlo


def test_ablation_pulsed_vs_cw_pump(benchmark):
    """Pulse-based pump buys ~38x on pump energy (26 ps of a 1 ns slot)."""
    design = mrr_first_design(order=2, wl_spacing_nm=0.165)

    def both():
        pulsed = energy_breakdown(design.params).pump_energy_pj
        # CW pump: on for the full bit period instead of one pulse.
        cw = (
            design.params.pump_power_mw
            * 1e-3
            / design.params.bit_rate_hz
            / design.params.laser_efficiency
            * 1e12
        )
        return pulsed, cw

    pulsed, cw = benchmark(both)
    print(f"\npump energy: pulsed {pulsed:.1f} pJ vs CW {cw:.1f} pJ "
          f"({cw / pulsed:.1f}x saving from 26 ps pulses)")
    assert cw / pulsed == pytest.approx(1e-9 / 26e-12, rel=1e-6)


def test_ablation_snr_methods(benchmark):
    """Exhaustive worst-case eye vs the literal Eq. 8 crosstalk sum."""
    params = paper_section5a_parameters()

    def both():
        return (
            circuit_snr(params, method="worstcase"),
            circuit_snr(params, method="eq8"),
        )

    worst, eq8 = benchmark(both)
    print(f"\nSNR: worst-case {worst:.1f} vs Eq. 8 {eq8:.1f} "
          f"(Eq. 8 optimistic by {eq8 / worst - 1:.0%})")
    assert eq8 >= worst


def test_ablation_ring_profiles(benchmark):
    """Coarse vs dense rings on the paper's 1 nm grid."""

    def both():
        coarse = mrr_first_design(
            order=2, wl_spacing_nm=1.0, ring_profile=COARSE_RING_PROFILE
        )
        dense = mrr_first_design(
            order=2, wl_spacing_nm=1.0, ring_profile=DENSE_RING_PROFILE
        )
        return coarse.probe_power_mw, dense.probe_power_mw

    coarse_probe, dense_probe = benchmark(both)
    print(f"\nprobe @1 nm grid: coarse rings {coarse_probe:.3f} mW vs "
          f"dense rings {dense_probe:.3f} mW")
    # High-Q rings pass the ON-state better: cheaper probes.
    assert dense_probe < coarse_probe


def test_ablation_process_variation(benchmark):
    """Monte Carlo yield at the paper's design point (100 corners)."""
    params = paper_section5a_parameters()
    rng = np.random.default_rng(3)
    result = benchmark.pedantic(
        lambda: run_monte_carlo(
            params,
            VariationModel(ring_sigma_nm=0.02, filter_sigma_nm=0.02),
            samples=100,
            rng=rng,
        ),
        rounds=1,
        iterations=1,
    )
    print(f"\nyield at 20 pm sigma: {result.yield_fraction:.0%}, "
          f"mean eye {result.mean_eye_mw:.3f} mW")
    assert 0.0 <= result.yield_fraction <= 1.0

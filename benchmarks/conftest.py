"""Shared configuration for the benchmark harness.

Each ``bench_*`` module regenerates one paper artifact (table/figure)
under pytest-benchmark timing.  Heavy experiments use ``pedantic`` mode
(one round) so the harness stays laptop-friendly; the regenerated rows
are printed so the run doubles as a reproduction report.
"""

import pytest


def pytest_configure(config):
    # Benchmarks live outside the default testpaths; ensure a sane
    # default when invoked as `pytest benchmarks/ --benchmark-only`.
    config.option.benchmark_disable_gc = True


@pytest.fixture
def print_result():
    """Print an ExperimentResult table after the timed run."""

    def _print(result):
        print()
        print(result.to_text())
        return result

    return _print

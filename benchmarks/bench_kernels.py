"""Micro-benchmarks of the library's computational kernels.

Not tied to one paper figure; these track the cost of the primitives
every experiment is built from (ring transfer functions, the exhaustive
pattern table at scale, SNR sizing, bit-level simulation).
"""

import numpy as np
import pytest

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.design import mrr_first_design
from repro.core.params import paper_section5a_parameters
from repro.core.snr import minimum_probe_power_mw
from repro.core.transmission import TransmissionModel
from repro.photonics.ring import RingParameters
from repro.simulation.functional import simulate_evaluation
from repro.stochastic import BernsteinPolynomial, ComparatorSNG, ReSCUnit
from repro.stochastic.functions import paper_example_bernstein


def test_ring_transfer_function(benchmark):
    """Eq. 2/3 evaluation over a 10k-point spectrum."""
    ring = RingParameters(r1=0.98, r2=0.98, a=0.999, fsr_nm=20.0)
    wavelengths = np.linspace(1540.0, 1560.0, 10_000)
    values = benchmark(lambda: ring.drop(wavelengths, 1550.0))
    assert values.shape == wavelengths.shape


def test_pattern_table_order_16(benchmark):
    """Exhaustive Eq. 6 table at the paper's largest order (2^17 patterns)."""
    design = mrr_first_design(
        order=16, wl_spacing_nm=0.165, probe_power_mw=1.0
    )
    model = TransmissionModel(design.params)
    table = benchmark.pedantic(
        model.received_power_table_mw, rounds=1, iterations=1
    )
    assert table.shape == (1 << 17, 17)


def test_probe_power_sizing(benchmark):
    """Eq. 8/9 probe sizing for the Section V-A design."""
    params = paper_section5a_parameters()
    probe = benchmark(lambda: minimum_probe_power_mw(params, 1e-6))
    assert probe > 0


def test_electronic_resc_evaluation(benchmark):
    """Electronic ReSC baseline: 4096-bit evaluation."""
    unit = ReSCUnit(paper_example_bernstein())
    result = benchmark(lambda: unit.evaluate(0.5, length=4096))
    assert 0.0 <= result.value <= 1.0


def test_optical_functional_simulation(benchmark):
    """Bit-level optical simulation: 4096 bit slots, noisy receiver."""
    circuit = OpticalStochasticCircuit(
        paper_section5a_parameters(), BernsteinPolynomial([0.25, 0.625, 0.375])
    )
    rng = np.random.default_rng(1)
    result = benchmark(
        lambda: simulate_evaluation(circuit, 0.5, length=4096, rng=rng)
    )
    assert result.stream_length == 4096


def test_sng_generation(benchmark):
    """LFSR comparator SNG: 64k-bit stream."""
    sng = ComparatorSNG(width=16, seed=1)
    stream = benchmark(lambda: sng.generate(0.37, 65536))
    assert len(stream) == 65536

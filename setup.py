"""Legacy setup shim.

The project metadata lives in ``pyproject.toml``; this file exists only so
that ``pip install -e .`` works in offline environments whose pip cannot
build PEP 660 editable wheels (no ``wheel`` package available).
"""

from setuptools import setup

setup()

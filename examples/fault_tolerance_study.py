#!/usr/bin/env python3
"""Fault tolerance: SC's error resilience plus closed-loop recalibration.

The paper's premise is that stochastic computing tolerates transmission
errors gracefully (Section II-A), and its future work calls for a
monitoring/calibration control loop (Section VI item i).  This example
exercises both:

1. inject link bit errors at increasing BER and measure the output
   error — it stays on the order of the BER, independent of the stream
   length (graceful degradation);
2. drift the all-optical filter thermally and watch the link budget
   collapse;
3. run the dither-based calibration controller and verify the circuit
   recovers.

Run:  python examples/fault_tolerance_study.py
"""

import numpy as np

import repro
from repro.simulation.faults import FaultInjector, with_filter_drift
from repro.simulation.noise import apply_ber_flips
from repro.stochastic import Bitstream


def main() -> None:
    rng = np.random.default_rng(2019)
    params = repro.paper_section5a_parameters()
    program = repro.BernsteinPolynomial([0.25, 0.625, 0.375])
    circuit = repro.OpticalStochasticCircuit(params, program)

    # --- 1. BER injection on the output stream -------------------------------
    print("=== graceful degradation under link bit errors ===")
    clean = circuit.evaluate(0.5, length=16384, rng=rng, noisy=False)
    print(f"{'BER':>8} | {'decoded':>8} | {'output error':>12}")
    for ber in (0.0, 1e-3, 1e-2, 5e-2):
        corrupted = apply_ber_flips(clean.output_bits, ber, rng)
        error = abs(corrupted.probability - clean.expected)
        print(f"{ber:8.0e} | {corrupted.probability:8.4f} | {error:12.4f}")
    print("-> a 1 % BER moves the result by ~1 %: SC absorbs transmission")
    print("   errors that would corrupt a binary-coded datapath entirely.")
    print()

    # --- 2. thermal drift of the filter --------------------------------------
    print("=== filter drift vs link budget ===")
    print(f"{'drift (nm)':>10} | {'eye (mW)':>9} | {'status':>10}")
    for drift in (0.0, 0.02, 0.05, 0.08, 0.12):
        drifted = with_filter_drift(params, drift)
        eye = repro.worst_case_eye(drifted)
        status = "open" if eye.is_open else "CLOSED"
        print(f"{drift:10.3f} | {eye.opening:9.4f} | {status:>10}")
    print()

    injector = FaultInjector(circuit)
    study = injector.filter_drift_study(
        [0.0, 0.04, 0.08], x=0.5, length=4096, rng=rng
    )
    print("output error under drift:",
          np.array2string(study["absolute_error"], precision=4))
    print()

    # --- 3. closed-loop recalibration ----------------------------------------
    print("=== calibration controller (paper future work i) ===")
    controller = repro.CalibrationController(circuit)
    initial_drift = 0.06
    trace = controller.calibrate(initial_drift_nm=initial_drift, iterations=40)
    print(f"initial drift   : {initial_drift:.3f} nm")
    print(f"final residual  : {trace.residual_drift_nm[-1]:+.5f} nm")
    print(f"settled after   : {trace.settling_iterations} iterations")
    print(f"pilot power     : {trace.pilot_power_mw[0]:.4f} -> "
          f"{trace.pilot_power_mw[-1]:.4f} mW")
    print(f"converged       : {trace.converged}")

    recovered = with_filter_drift(params, float(trace.residual_drift_nm[-1]))
    eye = repro.worst_case_eye(recovered)
    print(f"post-calibration eye: {eye.opening:.4f} mW (healthy: "
          f"{repro.worst_case_eye(params).opening:.4f} mW)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fault frontier: megabit-stream degradation curves in seconds.

The paper motivates stochastic computing by graceful degradation under
soft errors (Section II-A).  This example measures the claim with the
schedule-seeded fault engine (:mod:`repro.simulation.faultmodel`) on
``L = 2**20`` streams, running on the packed kernel so word-level fault
masks never unpack the megabit streams:

1. sweep the per-clock bit-flip rate and watch the output error track
   the flip rate (never an MSB-style blowup);
2. pin one data MZI stuck-at-1 and read the biased frontier;
3. ramp a thermal drift across the stream — the trajectory fault whose
   realization is a function of the absolute clock index, bit-exact
   whatever chunk size streams it.

Run:  python examples/fault_frontier.py
"""

import time

import numpy as np

import repro
from repro.simulation import FaultSpec, fault_frontier

STREAM_LENGTH = 1 << 20
BASE_SEED = 0xFA11


def main() -> None:
    params = repro.paper_section5a_parameters()
    program = repro.BernsteinPolynomial([0.25, 0.625, 0.375])
    circuit = repro.OpticalStochasticCircuit(params, program)
    spec = repro.EvalSpec(length=STREAM_LENGTH, base_seed=BASE_SEED)
    runtime = repro.RuntimeConfig(kernel="packed")
    xs = np.linspace(0.0, 1.0, 5)

    # --- 1. flip-rate frontier ----------------------------------------------
    print(f"=== bit-flip frontier at L=2^20 ({STREAM_LENGTH} clocks) ===")
    start = time.perf_counter()
    sweep = fault_frontier(
        circuit,
        [0.0, 1e-4, 1e-3, 1e-2, 1e-1],
        xs=xs,
        spec=spec,
        runtime=runtime,
    )
    elapsed = time.perf_counter() - start
    print(f"{'flip rate':>10} | {'mean |err|':>10} | {'link BER':>9}")
    for index in range(sweep["flip_probability"].size):
        print(
            f"{sweep['flip_probability'][index]:10.0e} | "
            f"{sweep['mean_abs_error'][index]:10.5f} | "
            f"{sweep['mean_link_ber'][index]:9.5f}"
        )
    print(f"-> 5 frontier points x 5 inputs in {elapsed:.2f} s; the output")
    print("   error tracks the flip rate instead of exploding.")
    print()

    # --- 2. stuck-MZI and drift scenarios -----------------------------------
    print("=== structural scenarios (same seeds, same streams) ===")
    session = repro.Evaluator(circuit, spec, runtime)
    scenarios = {
        "clean": None,
        "stuck MZI@1": FaultSpec(stuck_channel=0, stuck_value=1),
        "stuck MZI@0": FaultSpec(stuck_channel=0, stuck_value=0),
        "drift ramp 0.5/Mck": FaultSpec(drift_ramp_per_mclock=0.5),
        "decay tau=256k": FaultSpec(decay_tau_clocks=1 << 18),
    }
    print(f"{'scenario':>20} | {'mean |err|':>10} | {'max |err|':>10}")
    for name, fault in scenarios.items():
        result = session.with_fault(fault).evaluate(xs)
        errors = np.asarray(result.absolute_errors)
        print(f"{name:>20} | {errors.mean():10.5f} | {errors.max():10.5f}")
    print("-> the stuck select MZI biases the multiplexer toward one")
    print("   coefficient; drift and decay accumulate along the stream.")
    print()

    # --- 3. trajectory faults are chunk-invariant ---------------------------
    print("=== chunked replay of the drift trajectory ===")
    drift = FaultSpec(drift_ramp_per_mclock=0.5)
    chunked = session.with_fault(drift).stream(xs, chunk_length=1 << 16)
    oneshot = session.with_fault(drift).evaluate(xs)
    match = np.array_equal(
        np.asarray(chunked.values), np.asarray(oneshot.values)
    )
    print(f"chunked (64 KiC tiles) == one-shot: {match}")
    print("   drift at clock k depends on k alone, never on the tiling.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Stochastic signal processing: denoising with a scaled-addition FIR.

The paper motivates SC with signal processing (Section II-A).  This
example denoises a corrupted waveform with an 8-tap stochastic moving
average — a filter built entirely from the multiplexer primitive the
optical architecture implements — and shows the tradeoff the paper's
throughput-accuracy discussion is about: stream length buys filter
fidelity, and optical transmission speed buys stream length.

Run:  python examples/signal_denoising.py
"""

import numpy as np

from repro.stochastic.signal import (
    StochasticFIRFilter,
    denormalize_signal,
    normalize_signal,
)


def main() -> None:
    rng = np.random.default_rng(99)

    # A noisy sensor trace: slow sine + impulsive noise.
    t = np.linspace(0.0, 2.0, 120)
    clean = 2.0 + np.sin(2 * np.pi * t)
    noise = rng.normal(0.0, 0.25, t.size)
    noisy = clean + noise

    # Normalize into the unipolar SC domain.
    normalized, offset, scale = normalize_signal(noisy)

    # Triangular 5-tap kernel (more weight on the current sample).
    fir = StochasticFIRFilter([1.0, 2.0, 3.0, 2.0, 1.0])
    reference = np.convolve(
        np.concatenate([np.zeros(4), normalized]),
        fir.weights[::-1] / fir.weight_sum,
        mode="valid",
    )

    print("=== stochastic FIR denoising (5-tap triangular) ===")
    print(f"{'stream bits':>12} | {'RMS vs exact FIR':>17} | {'eval time @1GHz':>15}")
    for length in (128, 512, 2048, 8192):
        filtered = fir.filter_signal(normalized, stream_length=length, rng=rng)
        rms = float(np.sqrt(np.mean((filtered - reference) ** 2)))
        eval_time_us = length * t.size / 1e9 * 1e6
        print(f"{length:12d} | {rms:17.4f} | {eval_time_us:12.1f} us")

    filtered = fir.filter_signal(normalized, stream_length=8192, rng=rng)
    recovered = denormalize_signal(filtered, offset, scale)
    residual_noisy = float(np.std(noisy - clean))
    residual_filtered = float(np.std(recovered[8:] - clean[8:]))
    print()
    print(f"noise std before filtering: {residual_noisy:.3f}")
    print(f"noise std after filtering : {residual_filtered:.3f}")
    print("-> quadrupling the stream length halves the stochastic error;")
    print("   at 1 Gb/s the whole trace still filters in under a")
    print("   millisecond, which is the paper's throughput argument.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Design-space exploration with the MZI-first method (paper Fig. 6/7).

Shows the exploration workflow a designer would run on this library:

1. sweep MZI insertion loss and extinction ratio (Fig. 6(a)) and locate
   the cheapest probe operating point;
2. trade BER against probe power (Fig. 6(b)) and against stream length
   (the throughput-accuracy tradeoff of Section V-D);
3. sweep the wavelength spacing to find the energy optimum (Fig. 7(a))
   and extract the pump/probe Pareto frontier.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

import repro
from repro.photonics.devices import DENSE_RING_PROFILE
from repro.photonics.mzi import MZIModulator


def probe_power_mw(il_db: float, er_db: float) -> float:
    """Fig. 6(a) metric: min probe power at 0.6 W pump, BER 1e-6."""
    design = repro.mzi_first_design(
        order=2,
        mzi=MZIModulator(insertion_loss_db=il_db, extinction_ratio_db=er_db),
        pump_power_mw=600.0,
        ring_profile=DENSE_RING_PROFILE,
    )
    return design.probe_power_mw


def main() -> None:
    # --- 1. IL/ER grid (Fig. 6(a)) -----------------------------------------
    sweep = repro.grid_sweep(
        probe_power_mw,
        il_db=np.linspace(3.0, 7.4, 8),
        er_db=np.linspace(4.0, 7.6, 7),
    )
    best = sweep.argmin()
    worst = sweep.argmax()
    print("=== Fig. 6(a): probe power vs MZI IL/ER (0.6 W pump) ===")
    print(f"finite points : {sweep.finite_fraction * 100:.0f} %")
    print(f"cheapest point: IL={best['il_db']:.1f} dB, "
          f"ER={best['er_db']:.1f} dB -> {best['value']:.3f} mW")
    print(f"costliest     : IL={worst['il_db']:.1f} dB, "
          f"ER={worst['er_db']:.1f} dB -> {worst['value']:.3f} mW")
    print()

    # --- 2. BER relaxation (Fig. 6(b)) + accuracy buy-back -------------------
    print("=== Fig. 6(b): BER target vs probe power and stream length ===")
    frontier = repro.throughput_accuracy_frontier(
        [1e-6, 1e-4, 1e-2], target_rms_error=0.02, probability=0.25
    )
    reference = probe_power_mw(6.5, 7.5)
    for ber, length, time_s in zip(
        frontier["ber"], frontier["stream_length"], frontier["evaluation_time_s"]
    ):
        design = repro.mzi_first_design(
            order=2,
            mzi=MZIModulator(insertion_loss_db=6.5, extinction_ratio_db=7.5),
            pump_power_mw=600.0,
            ring_profile=DENSE_RING_PROFILE,
            target_ber=float(ber),
        )
        print(
            f"BER {ber:7.0e}: probe {design.probe_power_mw:6.3f} mW "
            f"({design.probe_power_mw / reference * 100:3.0f} % of 1e-6), "
            f"stream {int(length):6d} bits, eval {time_s * 1e6:6.2f} us"
        )
    print("-> relaxing the link BER halves the probe power; longer")
    print("   streams restore the accuracy (paper Sections V-B/V-D).")
    print()

    # --- 3. Energy optimum + Pareto frontier (Fig. 7(a)) ---------------------
    print("=== Fig. 7(a): energy vs wavelength spacing (order 2) ===")
    spacings = np.linspace(0.12, 0.28, 17)
    energies = repro.energy_vs_spacing(2, spacings)
    optimum = repro.optimal_wl_spacing_nm(2)
    for s, pump, probe, total in zip(
        energies["spacing_nm"],
        energies["pump_pj"],
        energies["probe_pj"],
        energies["total_pj"],
    ):
        marker = "  <- optimum region" if abs(s - optimum) < 0.006 else ""
        print(f"  {s:.3f} nm: pump {pump:6.2f} + probe {probe:6.2f} = "
              f"{total:6.2f} pJ/bit{marker}")
    print(f"optimal spacing: {optimum:.4f} nm (paper: 0.165 nm)")

    points = np.column_stack([energies["pump_pj"], energies["probe_pj"]])
    finite = np.all(np.isfinite(points), axis=1)
    front = repro.pareto_front(points[finite])
    print(f"pump/probe Pareto frontier: {len(front)} of "
          f"{int(finite.sum())} designs are non-dominated")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Reconfigurable multi-order circuit (paper Sections V-C and VI).

The paper's key energy observation — the optimal wavelength spacing is
independent of the polynomial degree — enables one piece of hardware to
serve every order up to its provisioned maximum.  This example:

1. verifies the order-independence claim numerically;
2. builds a reconfigurable circuit at the shared optimal spacing;
3. runs three different applications (different Bernstein degrees) on
   the same hardware and reports per-configuration energy;
4. shows the transient pump-pulse picture for one configuration.

Run:  python examples/reconfigurable_multiorder.py
"""

import numpy as np

import repro
from repro.simulation.transient import TransientSimulator
from repro.stochastic.functions import bernstein_program


def main() -> None:
    rng = np.random.default_rng(11)

    # --- 1. order independence ------------------------------------------------
    hardware = repro.ReconfigurableCircuit(max_order=6, wl_spacing_nm=0.165)
    independence = hardware.verify_order_independence([2, 4, 6])
    print("=== optimal spacing per order (paper: identical) ===")
    for order in (2, 4, 6):
        print(f"  order {order}: {independence[order]:.4f} nm")
    print(f"  spread: {independence['spread_nm'] * 1e3:.1f} pm "
          f"(within tolerance: {independence['within_tolerance']})")
    print()

    # --- 2-3. one hardware, three applications --------------------------------
    applications = {
        "paper_f1 (degree 3)": bernstein_program("paper_f1"),
        "smoothstep (degree 3)": bernstein_program("smoothstep"),
        "gamma 0.45 (degree 6)": bernstein_program("gamma"),
    }
    print("=== running three programs on the shared grid ===")
    for name, program in applications.items():
        circuit = hardware.circuit_for(program)
        design = hardware.design_for(program.degree)
        result = circuit.evaluate(0.5, length=8192, rng=rng)
        energy = hardware.energy_per_bit_pj(program.degree)
        print(
            f"  {name:<22}: out {result.value:.4f} "
            f"(exact {result.expected:.4f}), "
            f"pump {design.pump_power_mw:6.1f} mW, "
            f"{energy:5.1f} pJ/bit"
        )
    print()

    table = hardware.energy_table_pj([1, 2, 3, 4, 5, 6])
    print("=== energy vs configured order (shared 0.165 nm grid) ===")
    for order, total in zip(table["order"], table["total_pj"]):
        bar = "#" * int(round(total / 2))
        print(f"  n={order}: {total:5.1f} pJ/bit {bar}")
    print()

    # --- 4. transient view ------------------------------------------------------
    print("=== transient pump-pulse operation (26 ps pulses, 1 Gb/s) ===")
    circuit = hardware.circuit_for(bernstein_program("paper_f1"))
    sim = TransientSimulator(circuit, samples_per_bit=64)
    result = sim.run(0.5, length=1024, rng=rng)
    duty = result.pump_envelope.mean()
    print(f"pump duty cycle : {duty * 100:.1f} % "
          f"(26 ps in a 1 ns slot)")
    print(f"decoded output  : {result.decided_bits.probability:.4f} "
          f"(exact {circuit.expected_value(0.5):.4f})")
    study = sim.synchronization_study([0.0, 0.1, 0.3], x=0.5, length=512)
    print("sync-offset error:",
          np.array2string(study["absolute_error"], precision=4),
          "(offsets 0 / 0.1 / 0.3 of a bit period)")
    print("-> the detector must sample inside the pump pulse; the")
    print("   controller of examples/fault_tolerance_study.py provides")
    print("   the matching wavelength calibration loop.")


if __name__ == "__main__":
    main()

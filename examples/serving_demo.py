#!/usr/bin/env python3
"""Serve gamma-correction traffic through the async micro-batcher.

The ROADMAP's north star is production-scale serving: many concurrent
clients, each asking the optical circuit for one evaluation.  This demo
drives :class:`repro.serving.BatchServer` with concurrent asyncio
clients over the paper's Section V-C workload — 6th-order Bernstein
gamma correction — and shows the two properties that make the facade
production-shaped:

1. **Coalescing**: dozens of concurrent ``submit(x)`` calls collapse
   into a handful of batched engine passes (compare the engine-call
   counts below);
2. **Determinism**: the session is row-independent (pinned seed space,
   noiseless receiver), so the served values are bit-for-bit identical
   to a direct ``Evaluator.evaluate`` — coalescing never changes an
   answer.

Run:  PYTHONPATH=src python examples/serving_demo.py
"""

import asyncio
import time

import numpy as np

import repro
from repro.serving import BatchServer
from repro.stochastic.functions import gamma_bernstein, gamma_correction

STREAM_LENGTH = 512
CLIENTS = 8
PIXELS_PER_CLIENT = 16
GRAY_LEVELS = 32


def build_gamma_evaluator() -> repro.Evaluator:
    """The Section V-C design point as one declarative session."""
    program = gamma_bernstein()  # degree-6 fit of x ** 0.45
    spacing = repro.optimal_wl_spacing_nm(6)
    design = repro.mrr_first_design(order=6, wl_spacing_nm=spacing)
    circuit = repro.OpticalStochasticCircuit.from_design(design, program)
    spec = repro.EvalSpec(
        length=STREAM_LENGTH,
        noisy=False,  # row-independent: required for per-request determinism
        base_seed=0x5EED,
    )
    return repro.Evaluator(circuit, spec)


async def client(server: BatchServer, pixels: np.ndarray) -> list:
    """One tenant submitting its pixels; awaits each corrected value."""
    return [await server.submit(float(value)) for value in pixels]


async def serve_frame(evaluator: repro.Evaluator, frames: list) -> tuple:
    """All clients at once: the micro-batcher coalesces across tenants."""
    async with BatchServer(
        evaluator, max_batch_size=256, max_batch_delay_s=0.002
    ) as server:
        t0 = time.perf_counter()
        corrected = await asyncio.gather(
            *(client(server, frame) for frame in frames)
        )
        elapsed = time.perf_counter() - t0
        return corrected, server.stats, elapsed


def main() -> None:
    evaluator = build_gamma_evaluator()
    print(
        f"order-6 gamma circuit, {STREAM_LENGTH}-bit streams, "
        f"{CLIENTS} concurrent clients x {PIXELS_PER_CLIENT} pixels"
    )

    # Each client holds a strip of a quantized gradient frame.
    rng = np.random.default_rng(42)
    frames = [
        np.round(rng.random(PIXELS_PER_CLIENT) * (GRAY_LEVELS - 1))
        / (GRAY_LEVELS - 1)
        for _ in range(CLIENTS)
    ]

    corrected, stats, elapsed = asyncio.run(serve_frame(evaluator, frames))

    total = stats.requests
    print()
    print(f"served {total} requests in {elapsed * 1e3:.1f} ms")
    print(
        f"micro-batcher: {stats.batches} engine calls "
        f"(mean batch {stats.mean_batch_size:.1f}, "
        f"largest {stats.largest_batch}) — "
        f"{total} calls would have run without coalescing"
    )

    # Determinism: served values == a direct session call, bit for bit.
    flat_inputs = np.concatenate(frames)
    flat_served = np.concatenate([np.asarray(c) for c in corrected])
    direct = np.asarray(evaluator.evaluate(flat_inputs).values)
    print(f"bit-identical to direct Evaluator.evaluate: "
          f"{np.array_equal(flat_served, direct)}")

    # Quality: the optical SC service tracks the exact gamma curve.
    exact = gamma_correction(flat_inputs)
    mae = float(np.mean(np.abs(flat_served - exact)))
    print(f"mean |served - exact gamma| = {mae:.4f} "
          f"(stochastic tolerance of a {STREAM_LENGTH}-bit stream)")


if __name__ == "__main__":
    main()

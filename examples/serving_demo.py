#!/usr/bin/env python3
"""Serve gamma-correction traffic through the async micro-batcher.

The ROADMAP's north star is production-scale serving: many concurrent
clients, each asking the optical circuit for one evaluation.  This demo
drives :class:`repro.serving.BatchServer` with concurrent asyncio
clients over the paper's Section V-C workload — 6th-order Bernstein
gamma correction — and shows the two properties that make the facade
production-shaped:

1. **Coalescing**: dozens of concurrent ``submit(x)`` calls collapse
   into a handful of batched engine passes (compare the engine-call
   counts below);
2. **Determinism**: the session is row-independent (pinned seed space,
   noiseless receiver), so the served values are bit-for-bit identical
   to a direct ``Evaluator.evaluate`` — coalescing never changes an
   answer;
3. **Graceful degradation**: when traffic outruns the engine, a
   ``policy="degrade"`` server steps down a precision ladder of
   shorter stream lengths instead of refusing requests — stochastic
   computing's progressive-precision property as an admission-control
   lever — while per-request deadlines turn hopeless waits into typed
   ``DeadlineExceededError`` refusals at the door.

Run:  PYTHONPATH=src python examples/serving_demo.py
"""

import asyncio
import time

import numpy as np

import repro
from repro.serving import BatchServer, DegradationController, DegradationLadder
from repro.stochastic.functions import gamma_bernstein, gamma_correction

STREAM_LENGTH = 512
CLIENTS = 8
PIXELS_PER_CLIENT = 16
GRAY_LEVELS = 32
OVERLOAD_QUEUE = 32
OVERLOAD_BATCH = 8


def build_gamma_evaluator() -> repro.Evaluator:
    """The Section V-C design point as one declarative session."""
    program = gamma_bernstein()  # degree-6 fit of x ** 0.45
    spacing = repro.optimal_wl_spacing_nm(6)
    design = repro.mrr_first_design(order=6, wl_spacing_nm=spacing)
    circuit = repro.OpticalStochasticCircuit.from_design(design, program)
    spec = repro.EvalSpec(
        length=STREAM_LENGTH,
        noisy=False,  # row-independent: required for per-request determinism
        base_seed=0x5EED,
    )
    return repro.Evaluator(circuit, spec)


async def client(server: BatchServer, pixels: np.ndarray) -> list:
    """One tenant submitting its pixels; awaits each corrected value."""
    return [await server.submit(float(value)) for value in pixels]


async def serve_frame(evaluator: repro.Evaluator, frames: list) -> tuple:
    """All clients at once: the micro-batcher coalesces across tenants."""
    async with BatchServer(
        evaluator, max_batch_size=256, max_batch_delay_s=0.002
    ) as server:
        t0 = time.perf_counter()
        corrected = await asyncio.gather(
            *(client(server, frame) for frame in frames)
        )
        elapsed = time.perf_counter() - t0
        return corrected, server.stats, elapsed


async def serve_overloaded(evaluator: repro.Evaluator, frames: list) -> tuple:
    """The same traffic, but through a degrade-policy server.

    A deliberately tiny batch size and queue make the gradient frame
    look like overload; the controller steps the precision ladder down
    so every pixel is still served — at 128 or 32 bits instead of 512
    when the queue runs hot.  A generous default deadline rides along
    to show the refusal path exists (nothing should trip it here).
    """
    ladder = DegradationLadder((STREAM_LENGTH, STREAM_LENGTH // 4, STREAM_LENGTH // 16))
    controller = DegradationController(
        ladder,
        queue_capacity=OVERLOAD_QUEUE,
        high_watermark=0.25,
        low_watermark=0.05,
        patience=1,
    )
    async with BatchServer(
        evaluator,
        max_batch_size=OVERLOAD_BATCH,
        max_batch_delay_s=0.001,
        policy="degrade",
        max_queue=OVERLOAD_QUEUE,
        degradation=controller,
        default_deadline_s=5.0,
    ) as server:
        # Twice the tenants of act one: each frame split into strips so
        # more submitters are in flight than one batch can drain.
        strips = [
            frame[start : start + OVERLOAD_BATCH]
            for frame in frames
            for start in range(0, len(frame), OVERLOAD_BATCH)
        ]
        corrected = await asyncio.gather(
            *(client(server, strip) for strip in strips)
        )
        return corrected, server.metrics()


def main() -> None:
    evaluator = build_gamma_evaluator()
    print(
        f"order-6 gamma circuit, {STREAM_LENGTH}-bit streams, "
        f"{CLIENTS} concurrent clients x {PIXELS_PER_CLIENT} pixels"
    )

    # Each client holds a strip of a quantized gradient frame.
    rng = np.random.default_rng(42)
    frames = [
        np.round(rng.random(PIXELS_PER_CLIENT) * (GRAY_LEVELS - 1))
        / (GRAY_LEVELS - 1)
        for _ in range(CLIENTS)
    ]

    corrected, stats, elapsed = asyncio.run(serve_frame(evaluator, frames))

    total = stats.requests
    print()
    print(f"served {total} requests in {elapsed * 1e3:.1f} ms")
    print(
        f"micro-batcher: {stats.batches} engine calls "
        f"(mean batch {stats.mean_batch_size:.1f}, "
        f"largest {stats.largest_batch}) — "
        f"{total} calls would have run without coalescing"
    )

    # Determinism: served values == a direct session call, bit for bit.
    flat_inputs = np.concatenate(frames)
    flat_served = np.concatenate([np.asarray(c) for c in corrected])
    direct = np.asarray(evaluator.evaluate(flat_inputs).values)
    print(f"bit-identical to direct Evaluator.evaluate: "
          f"{np.array_equal(flat_served, direct)}")

    # Quality: the optical SC service tracks the exact gamma curve.
    exact = gamma_correction(flat_inputs)
    mae = float(np.mean(np.abs(flat_served - exact)))
    print(f"mean |served - exact gamma| = {mae:.4f} "
          f"(stochastic tolerance of a {STREAM_LENGTH}-bit stream)")

    # Act two: the same frame through a degrade-policy server that is
    # deliberately starved (batch 8, queue 32) so the precision ladder
    # has to do the absorbing.
    degraded, snapshot = asyncio.run(serve_overloaded(evaluator, frames))
    degraded_flat = np.concatenate([np.asarray(c) for c in degraded])
    degraded_mae = float(np.mean(np.abs(degraded_flat - exact)))
    print()
    print(
        f"degrade policy under pressure: served {snapshot.served}, "
        f"shed {snapshot.shed}, expired {snapshot.expired} "
        f"(queue cap {OVERLOAD_QUEUE}, batch {OVERLOAD_BATCH})"
    )
    for rung in snapshot.rungs:
        rmse = "-" if rung.rmse is None else f"{rung.rmse:.4f}"
        print(
            f"  rung {rung.rung} ({rung.length:3d} bits): "
            f"served {rung.served:3d}, calibrated rmse {rmse}"
        )
    print(
        f"mean |served - exact gamma| under degradation = {degraded_mae:.4f}"
        f" — shorter streams, bounded error, nobody refused"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: design, inspect and run the paper's 2nd-order circuit.

Walks the core workflow end to end:

1. size the Section V-A design with the MRR-first method (reproducing
   the paper's 591.8 mW pump and 13.22 dB extinction ratio);
2. program it with the paper's Fig. 1(b) Bernstein polynomial;
3. inspect the analytical views (link budget, SNR, energy);
4. run the bit-level functional simulation and compare the
   de-randomized output against the exact Bernstein value.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. Size the circuit exactly as Section V-A does: 1 nm spacing,
    #    lambda_2 = 1550 nm, IL = 4.5 dB; pump power and MZI extinction
    #    ratio fall out of the MRR-first method.
    design = repro.mrr_first_design(order=2, wl_spacing_nm=1.0, probe_power_mw=1.0)
    print("=== design (paper Section V-A) ===")
    print(design.describe())
    print(f"pump power : {design.pump_power_mw:.1f} mW   (paper: 591.8 mW)")
    print(f"required ER: {design.required_er_db:.2f} dB  (paper: 13.22 dB)")
    print()

    # 2. Program it.  The ReSC architecture evaluates Bernstein-form
    #    polynomials; we use a degree-2 elevation-friendly program.
    program = repro.BernsteinPolynomial([0.25, 0.625, 0.375])
    circuit = repro.OpticalStochasticCircuit.from_design(design, program)
    print("=== circuit ===")
    print(circuit.describe())
    print()

    # 3. Analytical views.
    budget = circuit.link_budget()
    print("=== link budget (Fig. 5(c)) ===")
    print(budget.describe())
    print(f"SNR  : {circuit.snr():.1f}")
    print(f"BER  : {circuit.ber():.2e}")
    energy = circuit.energy()
    print(
        f"laser energy: {energy.total_energy_pj:.1f} pJ/bit "
        f"(pump {energy.pump_energy_pj:.1f} + probes "
        f"{energy.probe_energy_pj:.1f})"
    )
    print(f"speedup vs 100 MHz electronic ReSC: "
          f"{circuit.speedup_vs_electronic():.0f}x")
    print()

    # 4. Run it through a session: bind the evaluation spec (stream
    #    length, randomizer, seed policy) once, then evaluate any
    #    workload.  The runtime knobs (workers, chunking, cache) are a
    #    separate RuntimeConfig and never change a single output bit.
    evaluator = repro.Evaluator(circuit, repro.EvalSpec(length=8192))
    xs = np.asarray([0.0, 0.25, 0.5, 0.75, 1.0])
    batch = evaluator.evaluate(xs, rng=np.random.default_rng(42))
    print("=== functional simulation (one batched session pass) ===")
    print(f"{'x':>5} | {'optical':>8} | {'exact B(x)':>10} | {'error':>7}")
    for x, value, expected, error in zip(
        xs, batch.values, batch.expected, batch.absolute_errors
    ):
        print(f"{x:5.2f} | {value:8.4f} | {expected:10.4f} | {error:7.4f}")
    print()
    print("The optical circuit reproduces the Bernstein values within the")
    print("stochastic-computing tolerance of a 8192-bit stream.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Gamma correction of an image with the optical SC circuit (Section V-C).

The paper motivates the architecture with error-tolerant image
processing, and its scalability discussion uses 6th-order gamma
correction as the workload.  This example:

1. builds the degree-6 Bernstein program for ``x ** 0.45``;
2. sizes the order-6 optical circuit at its energy-optimal spacing;
3. runs a synthetic grayscale image through three implementations —
   exact math, the electronic ReSC baseline of [9], and the optical
   circuit — and compares quality (PSNR) and throughput.

Run:  python examples/gamma_correction.py
"""

import numpy as np

import repro
from repro.stochastic.functions import gamma_bernstein, gamma_correction


def synthetic_image(size: int = 24) -> np.ndarray:
    """A radial-gradient test chart in [0, 1] (peak in the center)."""
    axis = np.linspace(-1.0, 1.0, size)
    xx, yy = np.meshgrid(axis, axis)
    radius = np.sqrt(xx**2 + yy**2) / np.sqrt(2.0)
    return np.clip(1.0 - radius, 0.0, 1.0)


def psnr(reference: np.ndarray, processed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB for unit-range images."""
    mse = float(np.mean((reference - processed) ** 2))
    if mse == 0.0:
        return float("inf")
    return -10.0 * np.log10(mse)


def main() -> None:
    stream_length = 1024
    image = synthetic_image()
    exact = gamma_correction(image)

    # The Bernstein program (bounded least-squares fit, degree 6 as in [9]).
    program = gamma_bernstein()
    print("Bernstein coefficients:",
          np.array2string(program.coefficients, precision=3))

    # Optical circuit at the energy-optimal wavelength spacing.
    spacing = repro.optimal_wl_spacing_nm(6)
    design = repro.mrr_first_design(order=6, wl_spacing_nm=spacing)
    circuit = repro.OpticalStochasticCircuit.from_design(design, program)
    print(f"order-6 design: spacing {spacing:.3f} nm, "
          f"pump {design.pump_power_mw:.0f} mW, "
          f"probe {design.probe_power_mw:.3f} mW/channel")

    # Electronic baseline (Qian et al. [9], 100 MHz).
    electronic_unit = repro.ReSCUnit(program)

    rng = np.random.default_rng(7)
    # Quantize to a small set of gray levels so each unique level is
    # evaluated once (dramatically faster, same accuracy behavior); the
    # session evaluates every unique level as ONE batched engine pass.
    levels = np.round(image * 32) / 32
    unique = np.unique(levels)

    evaluator = repro.Evaluator(
        circuit, repro.EvalSpec(length=stream_length)
    )
    optical_lut = dict(
        zip(unique, evaluator.evaluate(unique, rng=rng).values)
    )
    electronic_lut = {
        value: electronic_unit.evaluate(float(value), length=stream_length).value
        for value in unique
    }
    optical = np.vectorize(optical_lut.get)(levels)
    electronic = np.vectorize(electronic_lut.get)(levels)

    print()
    print(f"{'implementation':<22} {'PSNR vs exact':>13}")
    print(f"{'electronic ReSC [9]':<22} {psnr(exact, electronic):>10.1f} dB")
    print(f"{'optical SC (this work)':<22} {psnr(exact, optical):>10.1f} dB")

    # Throughput: per-pixel latency at each technology's clock.
    optical_time = stream_length / circuit.params.bit_rate_hz
    electronic_time = stream_length / electronic_unit.clock_hz
    energy = circuit.energy()
    print()
    print(f"per-pixel latency: optical {optical_time * 1e6:.2f} us vs "
          f"electronic {electronic_time * 1e6:.2f} us "
          f"({electronic_time / optical_time:.0f}x speedup, paper: 10x)")
    print(f"laser energy: {energy.total_energy_pj:.1f} pJ/bit -> "
          f"{energy.total_energy_pj * stream_length / 1e3:.1f} nJ/pixel")


if __name__ == "__main__":
    main()

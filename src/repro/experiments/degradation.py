"""Fault-frontier experiment: graceful degradation under channel faults.

The paper's core robustness claim (Section II-A) is that stochastic
computing "degrades gracefully" under soft errors — a flipped bit in a
unary stream perturbs the decoded value by 1/N instead of flipping a
binary MSB.  This experiment quantifies that claim on the optical link:
it sweeps a fault axis (bit-flip rate, then the structural scenarios —
a stuck data MZI and a thermal drift ramp) through the schedule-seeded
fault engine of :mod:`repro.simulation.faultmodel` and reports the
accuracy frontier per scenario.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.circuit import OpticalStochasticCircuit
from ..core.params import paper_section5a_parameters
from ..session import EvalSpec, Evaluator
from ..simulation.faultmodel import FaultSpec
from ..simulation.montecarlo import fault_frontier
from ..simulation.runtime import RuntimeConfig
from ..stochastic.bernstein import BernsteinPolynomial
from .registry import ExperimentResult, register

__all__ = ["fault_frontier_study"]

_STREAM_LENGTH = 4096
_FRONTIER_SEED = 0xFA11
_FLIP_RATES = (0.0, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1)


@register("fault_frontier")
def fault_frontier_study(
    spec: Optional[EvalSpec] = None,
    runtime: Optional[RuntimeConfig] = None,
) -> ExperimentResult:
    """Accuracy vs fault severity: flip sweep plus named scenarios.

    One :class:`repro.session.Evaluator` session per fault point (all
    derived from a single seed-pinned template via
    :meth:`~repro.session.Evaluator.with_fault`), so the frontier
    isolates the fault axis: every point replays identical randomizer
    streams and differs only in the injected fault realization.  The
    flip sweep's clean point doubles as the baseline row the scenario
    rows are read against.
    """
    circuit = OpticalStochasticCircuit(
        paper_section5a_parameters(), BernsteinPolynomial([0.25, 0.625, 0.375])
    )
    template = (
        EvalSpec(length=_STREAM_LENGTH) if spec is None else spec
    )
    if template.base_seed is None:
        # The frontier isolates the fault axis only when every point
        # replays one schedule — pin the study seed unless the caller
        # chose their own.
        template = template.replace(base_seed=_FRONTIER_SEED)
    xs = np.linspace(0.0, 1.0, 9)
    sweep = fault_frontier(
        circuit, _FLIP_RATES, xs=xs, spec=template, runtime=runtime
    )
    rows = []
    for index, rate in enumerate(_FLIP_RATES):
        rows.append(
            {
                "scenario": f"flip p={rate:g}",
                "mean_abs_error": float(sweep["mean_abs_error"][index]),
                "max_abs_error": float(sweep["max_abs_error"][index]),
                "mean_link_ber": float(sweep["mean_link_ber"][index]),
            }
        )
    scenarios = {
        "stuck MZI@1": FaultSpec(stuck_channel=0, stuck_value=1),
        "drift ramp": FaultSpec(drift_ramp_per_mclock=0.5),
        "desync 16ck": FaultSpec(shift_clocks=16),
        "decay tau=64k": FaultSpec(decay_tau_clocks=1 << 16),
    }
    session = Evaluator(circuit, spec=template, runtime=runtime)
    for name, fault in scenarios.items():
        result = session.with_fault(fault).evaluate(xs)
        errors = np.asarray(result.absolute_errors, dtype=float)
        rows.append(
            {
                "scenario": name,
                "mean_abs_error": float(errors.mean()),
                "max_abs_error": float(errors.max()),
                "mean_link_ber": float(
                    np.mean(np.asarray(result.transmission_ber))
                ),
            }
        )
    return ExperimentResult(
        experiment_id="fault_frontier",
        title="Extension: accuracy frontier under injected channel faults",
        rows=rows,
        paper_reference={
            "context": (
                "Section II-A motivates SC by graceful degradation under "
                "soft errors and process variations"
            ),
            "expected_scaling": (
                "a flip rate p adds ~p(1-2E[y]) bias and O(p) BER; value "
                "error stays bounded by p, never an MSB-style blowup"
            ),
        },
        notes=(
            "Faults are schedule-seeded receiver-side channel scenarios "
            "(FaultSpec): per-clock flips, stream desynchronization, a "
            "stuck select MZI and thermal-drift/laser-decay trajectories. "
            "Realizations are bit-exact across kernels, workers, chunk "
            "sizes and transports, so the frontier is a reproducible "
            "artifact, not a sampling anecdote."
        ),
    )

"""Accuracy-sweep experiment: the engine-backed error study (Section V-B).

The paper's accuracy discussion rests on sweeping the circuit across its
input range and comparing the de-randomized outputs against the exact
Bernstein values.  This experiment regenerates that study with one
batched session pass per randomizer family, reporting the stochastic
error (mean/max absolute) and the observed link BER side by side — the
quantitative backdrop for the throughput-accuracy tradeoff of
Sections V-B/V-D.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.circuit import OpticalStochasticCircuit
from ..core.params import paper_section5a_parameters
from ..errors import ConfigurationError
from ..session import EvalSpec, Evaluator
from ..simulation.runtime import RuntimeConfig
from ..stochastic.bernstein import BernsteinPolynomial
from ..stochastic.sng import SNG_KINDS
from .registry import ExperimentResult, register

__all__ = ["accuracy_sweep"]

_SWEEP_POINTS = 128
_STREAM_LENGTH = 1024
_NOISE_RNG_SEED = 0xBA7C
"""Seed of the shared noise generator each per-kind sweep restarts from."""


@register("accuracy")
def accuracy_sweep(
    spec: Optional[EvalSpec] = None,
    runtime: Optional[RuntimeConfig] = None,
    sng_kinds=None,
) -> ExperimentResult:
    """Batched input sweep per SNG kind: stochastic error vs link BER.

    Each randomizer family is one :class:`repro.session.Evaluator`
    session, so setting ``REPRO_RUNTIME_WORKERS`` (or passing a
    *runtime* with ``workers``) shards each family's sweep across
    worker processes without changing a single output bit.  A *spec* is
    the study's template (``length``/``noisy``/``sng_width``/seed
    policy; its own ``sng_kind`` is replaced per family) — so
    ``--length 4096`` alone still compares all four families, the
    study's whole point.  *sng_kinds* explicitly restricts the families
    (the ``python -m repro.experiments accuracy --sng-kind sobol``
    hook — and the only way to focus, so ``--sng-kind lfsr`` focuses
    too, default family or not).
    """
    circuit = OpticalStochasticCircuit(
        paper_section5a_parameters(), BernsteinPolynomial([0.25, 0.625, 0.375])
    )
    xs = np.linspace(0.0, 1.0, _SWEEP_POINTS)
    template = EvalSpec(length=_STREAM_LENGTH) if spec is None else spec
    if sng_kinds is None:
        kinds = SNG_KINDS
    else:
        kinds = tuple(sng_kinds)
        unknown = [kind for kind in kinds if kind not in SNG_KINDS]
        if not kinds or unknown:
            raise ConfigurationError(
                f"sng_kinds must be a non-empty subset of {SNG_KINDS}, "
                f"got {sng_kinds!r}"
            )
    rows = []
    for kind in kinds:
        evaluator = Evaluator(
            circuit, template.replace(sng_kind=kind), runtime
        )
        rng = np.random.default_rng(_NOISE_RNG_SEED)
        batch = evaluator.evaluate(xs, rng=rng)
        rows.append(
            {
                "sng_kind": kind,
                "sweep_points": _SWEEP_POINTS,
                "stream_length": template.length,
                "mean_abs_error": batch.mean_absolute_error,
                "max_abs_error": float(np.max(batch.absolute_errors)),
                "mean_link_ber": float(np.mean(batch.transmission_ber)),
            }
        )
    return ExperimentResult(
        experiment_id="accuracy",
        title="Extension: batched accuracy sweep per randomizer family",
        rows=rows,
        paper_reference={
            "context": (
                "Section V-B ties output accuracy to stream length; "
                "Section V-D proposes the chaotic-laser randomizer"
            ),
            "expected_scaling": "stochastic error ~ sqrt(p(1-p)/N) for LFSR",
        },
        notes=(
            "One Evaluator session per SNG kind (identical rng seed). "
            "Decorrelated LFSR comparators and the chaotic-laser model "
            "track the Bernstein value at the sqrt(p(1-p)/N) rate; the "
            "deterministic counter/sobol comparators expose the "
            "stream-correlation error the ReSC multiplexer incurs when "
            "its inputs are not independent (Section II-A)."
        ),
    )

"""Accuracy-sweep experiment: the engine-backed error study (Section V-B).

The paper's accuracy discussion rests on sweeping the circuit across its
input range and comparing the de-randomized outputs against the exact
Bernstein values.  This experiment regenerates that study with one
batched engine pass per randomizer family, reporting the stochastic
error (mean/max absolute) and the observed link BER side by side — the
quantitative backdrop for the throughput-accuracy tradeoff of
Sections V-B/V-D.
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import OpticalStochasticCircuit
from ..core.params import paper_section5a_parameters
from ..simulation.runtime import RuntimeConfig, run_batch
from ..stochastic.bernstein import BernsteinPolynomial
from ..stochastic.sng import SNG_KINDS
from .registry import ExperimentResult, register

__all__ = ["accuracy_sweep"]

_SWEEP_POINTS = 128
_STREAM_LENGTH = 1024


@register("accuracy")
def accuracy_sweep() -> ExperimentResult:
    """Batched input sweep per SNG kind: stochastic error vs link BER.

    Evaluation goes through the scaling runtime
    (:func:`repro.simulation.runtime.run_batch`), so setting
    ``REPRO_RUNTIME_WORKERS`` shards each randomizer family's sweep
    across worker processes without changing a single output bit.
    """
    circuit = OpticalStochasticCircuit(
        paper_section5a_parameters(), BernsteinPolynomial([0.25, 0.625, 0.375])
    )
    xs = np.linspace(0.0, 1.0, _SWEEP_POINTS)
    config = RuntimeConfig()  # workers from REPRO_RUNTIME_WORKERS
    rows = []
    for kind in SNG_KINDS:
        rng = np.random.default_rng(0xBA7C)
        batch = run_batch(
            circuit, xs, length=_STREAM_LENGTH, rng=rng, sng_kind=kind,
            config=config,
        )
        rows.append(
            {
                "sng_kind": kind,
                "sweep_points": _SWEEP_POINTS,
                "stream_length": _STREAM_LENGTH,
                "mean_abs_error": batch.mean_absolute_error,
                "max_abs_error": float(batch.absolute_errors.max()),
                "mean_link_ber": float(batch.transmission_ber.mean()),
            }
        )
    return ExperimentResult(
        experiment_id="accuracy",
        title="Extension: batched accuracy sweep per randomizer family",
        rows=rows,
        paper_reference={
            "context": (
                "Section V-B ties output accuracy to stream length; "
                "Section V-D proposes the chaotic-laser randomizer"
            ),
            "expected_scaling": "stochastic error ~ sqrt(p(1-p)/N) for LFSR",
        },
        notes=(
            "One simulate_batch pass per SNG kind (identical rng seed). "
            "Decorrelated LFSR comparators and the chaotic-laser model "
            "track the Bernstein value at the sqrt(p(1-p)/N) rate; the "
            "deterministic counter/sobol comparators expose the "
            "stream-correlation error the ReSC multiplexer incurs when "
            "its inputs are not independent (Section II-A)."
        ),
    )

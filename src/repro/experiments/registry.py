"""Experiment registry and the shared result container."""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence

from ..errors import ConfigurationError
from ..reporting.tables import format_table

__all__ = [
    "ExperimentResult",
    "experiment_config_parameters",
    "register",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]

_CONFIG_PARAMETERS = ("spec", "runtime", "sng_kinds")


@dataclass(frozen=True)
class ExperimentResult:
    """Output of one regenerated paper artifact.

    Attributes
    ----------
    experiment_id:
        Registry key (``"fig5a"``, ``"fig7b"``, ...).
    title:
        Human-readable description referencing the paper artifact.
    rows:
        The regenerated table/series, one dict per row.
    paper_reference:
        The values the paper reports for the same artifact, for
        side-by-side comparison (EXPERIMENTS.md is generated from this).
    notes:
        Free-text commentary: substitutions, tolerances, deviations.
    """

    experiment_id: str
    title: str
    rows: List[dict]
    paper_reference: Mapping[str, object] = field(default_factory=dict)
    notes: str = ""

    def to_text(self, columns: Optional[Sequence[str]] = None) -> str:
        """Render the result as a printable report block."""
        parts = [format_table(self.rows, columns=columns, title=self.title)]
        if self.paper_reference:
            parts.append("paper reference:")
            for key, value in self.paper_reference.items():
                parts.append(f"  {key}: {value}")
        if self.notes:
            parts.append(f"notes: {self.notes}")
        return "\n".join(parts)


_REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {}


def register(experiment_id: str):
    """Decorator adding an experiment callable to the registry."""

    def decorator(func: Callable[[], ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ConfigurationError(
                f"experiment {experiment_id!r} registered twice"
            )
        _REGISTRY[experiment_id] = func
        return func

    return decorator


def _ensure_loaded() -> None:
    # Import the experiment modules for their registration side effects.
    from . import (  # noqa: F401
        accuracy,
        degradation,
        extras,
        fig5,
        fig6,
        fig7,
        headline,
        spectra,
    )


def list_experiments() -> List[str]:
    """All registered experiment ids, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[[], ExperimentResult]:
    """The callable for one experiment id."""
    _ensure_loaded()
    if experiment_id not in _REGISTRY:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{sorted(_REGISTRY)}"
        )
    return _REGISTRY[experiment_id]


def experiment_config_parameters(experiment_id: str) -> FrozenSet[str]:
    """Which configuration parameters an experiment takes.

    Drawn from the recognized set (``spec``/``runtime``/``sng_kinds``).
    Analytical experiments (Fig. 5 transmissions, energy tables, ...)
    have no evaluation loop to configure and accept none; simulation
    experiments like ``accuracy`` accept all three.
    """
    parameters = inspect.signature(get_experiment(experiment_id)).parameters
    return frozenset(
        name for name in _CONFIG_PARAMETERS if name in parameters
    )


def run_experiment(
    experiment_id: str,
    spec=None,
    runtime=None,
    **config,
) -> ExperimentResult:
    """Run one experiment, threading session configuration through.

    *spec* (an :class:`repro.session.EvalSpec`), *runtime* (a
    :class:`repro.simulation.runtime.RuntimeConfig`) and any further
    recognized configuration keyword (e.g. the ``accuracy``
    experiment's ``sng_kinds``) are forwarded to experiments that
    declare the matching parameter; passing one to an experiment that
    does not take it raises a
    :class:`~repro.errors.ConfigurationError` instead of silently
    ignoring the configuration (the pre-session ``run_experiment``
    accepted no parameters at all).
    """
    function = get_experiment(experiment_id)
    supported = experiment_config_parameters(experiment_id)
    kwargs = {}
    for name, value in (("spec", spec), ("runtime", runtime), *config.items()):
        if value is None:
            continue
        if name not in supported:
            raise ConfigurationError(
                f"experiment {experiment_id!r} does not accept {name}=; "
                f"configurable experiments: "
                f"{[e for e in list_experiments() if experiment_config_parameters(e)]}"
            )
        kwargs[name] = value
    return function(**kwargs)

"""Fig. 6 experiments: probe-laser power exploration (MZI-first method).

Regenerates the (IL, ER) grid of Fig. 6(a), the BER sensitivity of
Fig. 6(b) and the literature-device comparison of Fig. 6(c), all at the
paper's operating point (0.6 W pump, 2nd order).
"""

from __future__ import annotations

import numpy as np

from ..core.design import mzi_first_design
from ..exploration.sweep import grid_sweep
from ..photonics.devices import DENSE_RING_PROFILE, FIG6C_DEVICES, XIAO_2013
from ..photonics.mzi import MZIModulator
from .registry import ExperimentResult, register

__all__ = ["fig6a", "fig6b", "fig6c"]

_PUMP_MW = 600.0


def _probe_power(il_db: float, er_db: float, target_ber: float = 1e-6) -> float:
    mzi = MZIModulator(insertion_loss_db=il_db, extinction_ratio_db=er_db)
    design = mzi_first_design(
        order=2,
        mzi=mzi,
        pump_power_mw=_PUMP_MW,
        ring_profile=DENSE_RING_PROFILE,
        target_ber=target_ber,
    )
    return design.probe_power_mw


@register("fig6a")
def fig6a() -> ExperimentResult:
    """Fig. 6(a): minimum probe power across the (IL, ER) plane.

    Paper: 0.6 W pump, BER 1e-6; the probe power rises with IL and with
    falling ER; the Xiao et al. point (6.5 dB, 7.5 dB) needs ~0.26 mW.
    """
    sweep = grid_sweep(
        _probe_power,
        il_db=np.linspace(3.0, 7.4, 12),
        er_db=np.linspace(4.0, 7.6, 10),
    )
    rows = []
    for i, il in enumerate(sweep.axis("il_db")):
        for j, er in enumerate(sweep.axis("er_db")):
            rows.append(
                {
                    "il_db": float(il),
                    "er_db": float(er),
                    "probe_mw": float(sweep.values[i, j]),
                }
            )
    xiao = _probe_power(6.5, 7.5)
    rows.append({"il_db": 6.5, "er_db": 7.5, "probe_mw": xiao})
    return ExperimentResult(
        experiment_id="fig6a",
        title="Fig. 6(a): min probe power (mW) vs MZI IL/ER @0.6 W pump, BER 1e-6",
        rows=rows,
        paper_reference={
            "xiao_point_mw": 0.26,
            "trend": "probe power rises with IL and with decreasing ER",
            "paper_range_mw": "0.24-0.36",
        },
        notes=(
            f"Model value at the Xiao point: {xiao:.3f} mW (paper 0.26 mW, "
            "factor ~1.9). Monotone trends reproduce exactly; the absolute "
            "level sits below the paper because the receiver constants are "
            "calibrated to the Fig. 7 energy targets (see EXPERIMENTS.md)."
        ),
    )


@register("fig6b")
def fig6b() -> ExperimentResult:
    """Fig. 6(b): minimum probe power vs target BER.

    Paper: relaxing 1e-6 to 1e-2 halves the probe power (a closed-form
    consequence of Eq. 9).
    """
    rows = []
    reference = None
    for ber in (1e-2, 1e-4, 1e-6):
        probe = _probe_power(
            XIAO_2013.insertion_loss_db,
            XIAO_2013.extinction_ratio_db,
            target_ber=ber,
        )
        if ber == 1e-6:
            reference = probe
        rows.append({"target_ber": ber, "probe_mw": probe})
    for row in rows:
        row["relative_to_1e-6"] = row["probe_mw"] / reference
    return ExperimentResult(
        experiment_id="fig6b",
        title="Fig. 6(b): min probe power vs target BER (Xiao MZI, 0.6 W pump)",
        rows=rows,
        paper_reference={
            "claim": "10^-2 BER needs ~50 % of the 10^-6 power",
        },
        notes="Ratio follows erfc^-1(2 BER); ~0.49 at 1e-2 as the paper states.",
    )


@register("fig6c")
def fig6c() -> ExperimentResult:
    """Fig. 6(c): probe power per literature MZI (speed / shifter length).

    Paper order: Dong (50G/1mm), Thomson (40G/1mm), Dong (40G/4mm),
    Xiao (60G/0.75mm).  IL/ER of the first three are not published in the
    paper; assigned values (documented in repro.photonics.devices) stay
    inside the Fig. 6(a) exploration ranges.
    """
    rows = []
    for device in FIG6C_DEVICES:
        probe = _probe_power(
            device.insertion_loss_db, device.extinction_ratio_db
        )
        rows.append(
            {
                "device": device.name,
                "speed_gbps": device.modulation_speed_gbps,
                "psl_mm": device.phase_shifter_length_mm,
                "il_db": device.insertion_loss_db,
                "er_db": device.extinction_ratio_db,
                "probe_mw": probe,
            }
        )
    return ExperimentResult(
        experiment_id="fig6c",
        title="Fig. 6(c): min probe power per MZI device (0.6 W pump, BER 1e-6)",
        rows=rows,
        paper_reference={
            "bar_range_mw": "0-0.35",
            "devices": "Dong 50G/1mm, Thomson 40G/1mm, Dong 40G/4mm, Xiao 60G/0.75mm",
        },
        notes=(
            "IL/ER for the non-Xiao devices are assumptions inside the "
            "paper's explored ranges; the comparison shape (long-shifter "
            "device cheapest, lossy Xiao device most expensive) holds."
        ),
    )

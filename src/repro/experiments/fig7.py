"""Fig. 7 experiments: the pulse-based laser energy study.

Regenerates the energy-vs-spacing curves (Fig. 7(a)) with their
order-independent optimum, and the order-scaling comparison at 1 nm vs
optimal spacing (Fig. 7(b)) with its ~76.6 % energy saving.

Both figures size their spacing grids through the vectorized MRR-first
designer (:mod:`repro.core.vectorized`): each
:func:`~repro.core.energy.energy_vs_spacing` call evaluates all its
candidate spacings as one stacked pass — see
``benchmarks/bench_optics.py`` for the measured speedup and parity
gate.
"""

from __future__ import annotations

import numpy as np

from ..core.energy import energy_vs_spacing, optimal_wl_spacing_nm
from ..exploration.scaling import order_scaling_table
from .registry import ExperimentResult, register

__all__ = ["fig7a", "fig7b"]


@register("fig7a")
def fig7a() -> ExperimentResult:
    """Fig. 7(a): laser energy per bit vs WLspacing for n in {2, 4, 6}.

    Paper: probe lasers dominate at small spacing (crosstalk), the pump
    at large spacing (bigger swing); optimal spacing ~0.165 nm,
    independent of the polynomial degree.
    """
    spacings = np.round(np.linspace(0.11, 0.30, 20), 4)
    rows = []
    optima = {}
    for order in (2, 4, 6):
        sweep = energy_vs_spacing(order, spacings)
        for s, pump, probe, total in zip(
            sweep["spacing_nm"],
            sweep["pump_pj"],
            sweep["probe_pj"],
            sweep["total_pj"],
        ):
            rows.append(
                {
                    "order": order,
                    "spacing_nm": float(s),
                    "pump_pj": float(pump),
                    "probe_pj": float(probe),
                    "total_pj": float(total),
                }
            )
        optima[order] = optimal_wl_spacing_nm(order)
    spread = max(optima.values()) - min(optima.values())
    return ExperimentResult(
        experiment_id="fig7a",
        title="Fig. 7(a): laser energy per computed bit vs wavelength spacing",
        rows=rows,
        paper_reference={
            "optimal_spacing_nm": 0.165,
            "order_independence": "optimum identical for n = 2, 4, 6",
        },
        notes=(
            "Model optima: "
            + ", ".join(f"n={n}: {o:.4f} nm" for n, o in optima.items())
            + f" (spread {spread:.4f} nm - order-independent as the paper "
            "observes)."
        ),
    )


@register("fig7b")
def fig7b() -> ExperimentResult:
    """Fig. 7(b): total energy vs order at 1 nm and optimal spacing.

    Paper: orders 2..16; using the optimal spacing saves ~76.6 %; the
    1 nm curve reaches ~600 pJ at order 16.
    """
    table = order_scaling_table([2, 4, 8, 12, 16])
    rows = []
    for order, coarse, optimal, saving in zip(
        table["order"],
        table["coarse_total_pj"],
        table["optimal_total_pj"],
        table["saving_fraction"],
    ):
        rows.append(
            {
                "order": int(order),
                "total_pj@1nm": float(coarse),
                f"total_pj@{table['optimal_spacing_nm']:.3f}nm": float(optimal),
                "saving_%": float(saving * 100.0),
            }
        )
    mean_saving = float(np.mean(table["saving_fraction"]) * 100.0)
    return ExperimentResult(
        experiment_id="fig7b",
        title="Fig. 7(b): total laser energy vs polynomial order",
        rows=rows,
        paper_reference={
            "saving_percent": 76.6,
            "order16_at_1nm_pj": "~600 (figure axis)",
        },
        notes=(
            f"Mean saving across orders: {mean_saving:.1f} % "
            "(paper: 76.6 %)."
        ),
    )

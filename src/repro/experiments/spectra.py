"""Fig. 5(a)/(b) spectral curves — the literal plotted series.

``fig5a``/``fig5b`` reproduce the *numbers* the text quotes;
``fig5spec`` regenerates the *curves* the figure panels draw: the
through-transmission of each modulator MRR and the drop response of the
pump-tuned filter across 1547-1550.6 nm, for both panel states.  Export
with ``python -m repro.experiments fig5spec --csv out/`` and plot
``transmission`` columns against ``wavelength_nm`` to redraw the figure.
"""

from __future__ import annotations

import numpy as np

from ..core.design import mrr_first_design
from ..core.transmission import TransmissionModel
from .registry import ExperimentResult, register

__all__ = ["fig5_spectra"]

_PANELS = {
    # label: (z pattern, adder level, paper description)
    "a": ((0, 1, 0), 2, "z=(0,1,0), x1=x2=1: filter at lambda_2"),
    "b": ((1, 1, 0), 0, "z=(1,1,0), x1=x2=0: filter at lambda_0"),
}


@register("fig5spec")
def fig5_spectra(points: int = 181) -> ExperimentResult:
    """Sampled spectra of every ring for both Fig. 5 panels.

    One row per (panel, wavelength): the three modulator through-curves
    plus the filter drop-curve, exactly the four traces of each panel.
    """
    design = mrr_first_design(order=2, wl_spacing_nm=1.0, probe_power_mw=1.0)
    model = TransmissionModel(design.params)
    wavelengths = np.linspace(1547.0, 1550.6, points)
    rows = []
    for label, (z, level, description) in _PANELS.items():
        curves = model.spectrum(list(z), level, wavelengths)
        for i, wl in enumerate(wavelengths):
            rows.append(
                {
                    "panel": label,
                    "wavelength_nm": float(wl),
                    "MRR0": float(curves["MRR0"][i]),
                    "MRR1": float(curves["MRR1"][i]),
                    "MRR2": float(curves["MRR2"][i]),
                    "filter": float(curves["filter"][i]),
                }
            )
    return ExperimentResult(
        experiment_id="fig5spec",
        title="Fig. 5(a)/(b): device spectra (4 curves x 2 panels)",
        rows=rows,
        paper_reference={
            "panel_a": _PANELS["a"][2],
            "panel_b": _PANELS["b"][2],
            "probes_nm": "1548 / 1549 / 1550 (vertical arrows)",
        },
        notes=(
            "Panel (a): MRR1 detuned (z1=1) so lambda_1 transmits; filter "
            "resonant at lambda_2.  Panel (b): MRR0/MRR1 detuned, filter "
            "tuned to lambda_0 by the full pump swing."
        ),
    )

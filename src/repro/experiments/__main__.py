"""Command-line experiment runner.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments all        # run everything
    python -m repro.experiments fig7a ...  # run selected experiments
    python -m repro.experiments all --csv results/   # also write CSVs
    python -m repro.experiments accuracy --sng-kind sobol --length 4096 \
        --workers 4                        # configure the session

The ``--sng-kind``/``--length``/``--noiseless`` flags build an
:class:`repro.session.EvalSpec` and
``--workers``/``--chunk-length``/``--kernel``/``--transport`` a
:class:`repro.simulation.runtime.RuntimeConfig`; both are forwarded to
the experiments that declare them (currently the simulation-backed
ones, e.g. ``accuracy``).  Experiments that take no configuration are
still run, with a note that the flags were ignored for them.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import ConfigurationError
from ..reporting.csvio import write_csv
from ..session import EvalSpec
from ..simulation.kernels import KERNELS
from ..simulation.runtime import TRANSPORTS, RuntimeConfig
from ..stochastic.sng import SNG_KINDS
from .registry import (
    experiment_config_parameters,
    list_experiments,
    run_experiment,
)

__all__ = ["main"]


def _build_config(args) -> tuple:
    """The (spec, runtime) pair the CLI flags describe (None = default).

    Only explicitly passed flags go into the spec, so EvalSpec's own
    dataclass defaults stay the single source of truth — e.g.
    ``--length 4096`` alone keeps the default randomizer family
    *unspecified* rather than silently pinning it to lfsr.
    """
    spec_kwargs = {}
    if args.length is not None:
        spec_kwargs["length"] = args.length
    if args.sng_kind is not None:
        spec_kwargs["sng_kind"] = args.sng_kind
    if args.base_seed is not None:
        spec_kwargs["base_seed"] = args.base_seed
    if args.noiseless:
        spec_kwargs["noisy"] = False
    spec = EvalSpec(**spec_kwargs) if spec_kwargs else None
    runtime = None
    if (
        args.workers is not None
        or args.chunk_length is not None
        or args.kernel is not None
        or args.transport is not None
    ):
        runtime_kwargs = {
            "workers": args.workers,
            "chunk_length": args.chunk_length,
        }
        if args.kernel is not None:
            runtime_kwargs["kernel"] = args.kernel
        if args.transport is not None:
            runtime_kwargs["transport"] = args.transport
        runtime = RuntimeConfig(**runtime_kwargs)
    return spec, runtime


def main(argv=None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Stochastic Computing "
            "with Integrated Optics' (DATE 2019)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (or 'all'); empty lists the registry",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each result's rows to DIR/<id>.csv",
    )
    spec_group = parser.add_argument_group(
        "evaluation spec (forwarded to configurable experiments)"
    )
    spec_group.add_argument(
        "--sng-kind",
        choices=SNG_KINDS,
        default=None,
        help="randomizer family to focus configurable experiments on",
    )
    spec_group.add_argument(
        "--length", type=int, default=None, help="stream length in bits"
    )
    spec_group.add_argument(
        "--base-seed",
        type=int,
        default=None,
        help="pin the SNG seed space (deterministic, cacheable runs)",
    )
    spec_group.add_argument(
        "--noiseless",
        action="store_true",
        help="disable receiver noise (isolate the SC error)",
    )
    runtime_group = parser.add_argument_group(
        "runtime config (pure wall-clock levers, never change results)"
    )
    runtime_group.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard evaluation batches across N worker processes",
    )
    runtime_group.add_argument(
        "--chunk-length",
        type=int,
        default=None,
        help="stream long evaluations in bounded-memory tiles of this size",
    )
    runtime_group.add_argument(
        "--kernel",
        choices=KERNELS,
        default=None,
        help=(
            "engine compute kernel: numpy (reference), packed (uint64 "
            "bit-plane), numba (packed + JIT; needs the numba package)"
        ),
    )
    runtime_group.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default=None,
        help=(
            "shard transport for process workers: pickle (pool-pipe "
            "serialization) or shm (zero-copy shared-memory arenas)"
        ),
    )
    args = parser.parse_args(argv)
    try:
        spec, runtime = _build_config(args)
    except ConfigurationError as error:
        print(f"invalid configuration flags: {error}", file=sys.stderr)
        return 2
    # --sng-kind is an explicit focus request, separate from the spec
    # template: it must narrow the family comparison even when it names
    # the default family.
    sng_kinds = (args.sng_kind,) if args.sng_kind is not None else None

    available = list_experiments()
    if not args.experiments:
        print("available experiments:")
        for name in available:
            supports = experiment_config_parameters(name)
            suffix = "  [configurable]" if supports else ""
            print(f"  {name}{suffix}")
        return 0

    selected = (
        available if args.experiments == ["all"] else args.experiments
    )
    provided = {
        name: value
        for name, value in (
            ("spec", spec), ("runtime", runtime), ("sng_kinds", sng_kinds)
        )
        if value is not None
    }
    status = 0
    for name in selected:
        try:
            supported = experiment_config_parameters(name)
            # Every provided-but-unsupported flag gets a note — partial
            # support (e.g. spec-only experiments given --workers) must
            # not silently drop configuration the user asked for.
            dropped = sorted(set(provided) - supported)
            if dropped:
                print(
                    f"[{name}] note: does not take "
                    f"{', '.join(dropped)}; those flags are ignored",
                    file=sys.stderr,
                )
            result = run_experiment(
                name, **{k: v for k, v in provided.items() if k in supported}
            )
        except Exception as error:  # surface but keep running the rest
            print(f"[{name}] FAILED: {error}", file=sys.stderr)
            status = 1
            continue
        print()
        print(result.to_text())
        if args.csv:
            path = write_csv(Path(args.csv) / f"{name}.csv", result.rows)
            print(f"(rows written to {path})")
    return status


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line experiment runner.

Usage::

    python -m repro.experiments            # list experiments
    python -m repro.experiments all        # run everything
    python -m repro.experiments fig7a ...  # run selected experiments
    python -m repro.experiments all --csv results/   # also write CSVs
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..reporting.csvio import write_csv
from .registry import list_experiments, run_experiment

__all__ = ["main"]


def main(argv=None) -> int:
    """Entry point for ``python -m repro.experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Stochastic Computing "
            "with Integrated Optics' (DATE 2019)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids (or 'all'); empty lists the registry",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each result's rows to DIR/<id>.csv",
    )
    args = parser.parse_args(argv)

    available = list_experiments()
    if not args.experiments:
        print("available experiments:")
        for name in available:
            print(f"  {name}")
        return 0

    selected = (
        available if args.experiments == ["all"] else args.experiments
    )
    status = 0
    for name in selected:
        try:
            result = run_experiment(name)
        except Exception as error:  # surface but keep running the rest
            print(f"[{name}] FAILED: {error}", file=sys.stderr)
            status = 1
            continue
        print()
        print(result.to_text())
        if args.csv:
            path = write_csv(Path(args.csv) / f"{name}.csv", result.rows)
            print(f"(rows written to {path})")
    return status


if __name__ == "__main__":
    raise SystemExit(main())

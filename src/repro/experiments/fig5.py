"""Fig. 5 experiments: the Section V-A 2nd-order design example.

Regenerates the two spectral case studies (Fig. 5(a)/(b)), the full
received-power table (Fig. 5(c)) and the pump/ER sizing numbers the text
derives with the MRR-first method.
"""

from __future__ import annotations

from ..core.design import mrr_first_design
from ..core.link_budget import received_power_table
from ..core.transmission import TransmissionModel
from .registry import ExperimentResult, register

__all__ = ["fig5a", "fig5b", "fig5c", "pump_sizing"]


def _paper_design():
    return mrr_first_design(order=2, wl_spacing_nm=1.0, probe_power_mw=1.0)


@register("fig5a")
def fig5a() -> ExperimentResult:
    """Fig. 5(a): z=(0,1,0), x1=x2=1 — filter tuned to lambda_2.

    The paper quotes total transmissions 0.091 / 0.004 / 0.0002 for the
    signals at lambda_2 / lambda_1 / lambda_0 and 0.0952 mW received for
    a 1 mW probe.
    """
    design = _paper_design()
    model = TransmissionModel(design.params)
    totals = model.total_transmissions([0, 1, 0], 2)
    received = model.received_power_mw([0, 1, 0], 2)
    rows = [
        {
            "signal": "lambda_2",
            "total_transmission": float(totals[2]),
            "paper": 0.091,
        },
        {
            "signal": "lambda_1",
            "total_transmission": float(totals[1]),
            "paper": 0.004,
        },
        {
            "signal": "lambda_0",
            "total_transmission": float(totals[0]),
            "paper": 0.0002,
        },
        {
            "signal": "received (mW)",
            "total_transmission": received,
            "paper": 0.0952,
        },
    ]
    return ExperimentResult(
        experiment_id="fig5a",
        title="Fig. 5(a): transmissions for z=(0,1,0), x1=x2=1",
        rows=rows,
        paper_reference={
            "transmissions": "0.091 / 0.004 / 0.0002",
            "received_power_mw": 0.0952,
        },
        notes=(
            "COARSE ring profile calibrated to the quoted values; "
            "the selected coefficient is z2=0, so the received power "
            "sits in the '0' band."
        ),
    )


@register("fig5b")
def fig5b() -> ExperimentResult:
    """Fig. 5(b): z=(1,1,0), x1=x2=0 — filter tuned to lambda_0.

    The paper quotes a 0.476 total transmission of the lambda_0 signal
    and 0.482 mW received power.
    """
    design = _paper_design()
    model = TransmissionModel(design.params)
    totals = model.total_transmissions([1, 1, 0], 0)
    received = model.received_power_mw([1, 1, 0], 0)
    rows = [
        {
            "signal": "lambda_0",
            "total_transmission": float(totals[0]),
            "paper": 0.476,
        },
        {
            "signal": "lambda_1 (crosstalk)",
            "total_transmission": float(totals[1]),
            "paper": None,
        },
        {
            "signal": "lambda_2 (crosstalk)",
            "total_transmission": float(totals[2]),
            "paper": None,
        },
        {
            "signal": "received (mW)",
            "total_transmission": received,
            "paper": 0.482,
        },
    ]
    return ExperimentResult(
        experiment_id="fig5b",
        title="Fig. 5(b): transmissions for z=(1,1,0), x1=x2=0",
        rows=rows,
        paper_reference={
            "t_lambda0": 0.476,
            "received_power_mw": 0.482,
        },
        notes="Selected coefficient z0=1: received power in the '1' band.",
    )


@register("fig5c")
def fig5c() -> ExperimentResult:
    """Fig. 5(c): received power for all 8 z-patterns x 3 levels.

    The paper reports the '0' cases in 0.092-0.099 mW and the '1' cases
    in 0.477-0.482 mW, "allowing a correct execution of SC in the
    optical domain".
    """
    design = _paper_design()
    budget = received_power_table(design.params)
    rows = []
    for p in range(budget.power_mw.shape[0]):
        pattern = budget.patterns[p]
        label = f"{pattern[2]}{pattern[1]}{pattern[0]}"  # z2 z1 z0
        for level in range(budget.power_mw.shape[1]):
            rows.append(
                {
                    "z2z1z0": label,
                    "level(x ones)": level,
                    "selected_bit": int(pattern[level]),
                    "received_mw": float(budget.power_mw[p, level]),
                }
            )
    rows.append(
        {
            "z2z1z0": "'0' band",
            "level(x ones)": "",
            "selected_bit": 0,
            "received_mw": f"{budget.zero_band_mw[0]:.4f}-{budget.zero_band_mw[1]:.4f}",
        }
    )
    rows.append(
        {
            "z2z1z0": "'1' band",
            "level(x ones)": "",
            "selected_bit": 1,
            "received_mw": f"{budget.one_band_mw[0]:.4f}-{budget.one_band_mw[1]:.4f}",
        }
    )
    return ExperimentResult(
        experiment_id="fig5c",
        title="Fig. 5(c): received optical power, all (z, x) combinations",
        rows=rows,
        paper_reference={
            "zero_band_mw": "0.092-0.099",
            "one_band_mw": "0.477-0.482",
        },
        notes=(
            "Bands separated -> correct optical SC execution "
            f"(eye {budget.eye_opening_mw:.3f} mW at 1 mW probes)."
        ),
    )


@register("pump")
def pump_sizing() -> ExperimentResult:
    """Section V-A sizing: minimum pump power and required MZI ER.

    The paper derives 591.8 mW (IL 4.5 dB, OTE 0.1 nm/10 mW, swing
    2.1 nm) and ER = 13.22 dB.
    """
    design = _paper_design()
    model = TransmissionModel(design.params)
    rows = [
        {
            "quantity": "pump power (mW)",
            "model": design.pump_power_mw,
            "paper": 591.8,
        },
        {
            "quantity": "required MZI ER (dB)",
            "model": design.required_er_db,
            "paper": 13.22,
        },
        {
            "quantity": "detuning x=00 (nm)",
            "model": model.filter_detuning_nm(0),
            "paper": 2.1,
        },
        {
            "quantity": "detuning x=01/10 (nm)",
            "model": model.filter_detuning_nm(1),
            "paper": 1.1,
        },
        {
            "quantity": "detuning x=11 (nm)",
            "model": model.filter_detuning_nm(2),
            "paper": 0.1,
        },
    ]
    return ExperimentResult(
        experiment_id="pump",
        title="Section V-A pump/ER sizing (MRR-first method)",
        rows=rows,
        paper_reference={"pump_mw": 591.8, "er_db": 13.22},
        notes="Closed-form consequences of Eq. 7; match is exact.",
    )

"""Headline experiments: the 20.1 pJ/bit result and the gamma case study.

The abstract/conclusion quote one number — a 2nd-order circuit at 1 GHz
consumes 20.1 pJ of laser energy per computed bit — and Section V-C adds
the application-level claim of a 10x speedup over the 100 MHz electronic
ReSC for 6th-order gamma correction.  Both are regenerated here, plus the
Fig. 4(b) parameter table for reference.
"""

from __future__ import annotations

from ..constants import PAPER_HEADLINE_ENERGY_PJ_PER_BIT
from ..core.design import mrr_first_design
from ..core.energy import energy_breakdown, optimal_wl_spacing_nm
from ..core.params import paper_section5a_parameters
from ..exploration.scaling import gamma_correction_case_study
from .registry import ExperimentResult, register

__all__ = ["headline", "gamma", "params_table"]


@register("headline")
def headline() -> ExperimentResult:
    """Sections I/VI: 2nd-order circuit at 1 GHz -> ~20.1 pJ per bit."""
    spacing = optimal_wl_spacing_nm(2)
    design = mrr_first_design(order=2, wl_spacing_nm=spacing)
    breakdown = energy_breakdown(design.params)
    rows = [
        {"quantity": "optimal WLspacing (nm)", "model": spacing, "paper": 0.165},
        {
            "quantity": "pump power (mW)",
            "model": design.pump_power_mw,
            "paper": None,
        },
        {
            "quantity": "probe power (mW/channel)",
            "model": design.probe_power_mw,
            "paper": None,
        },
        {
            "quantity": "pump energy (pJ/bit)",
            "model": breakdown.pump_energy_pj,
            "paper": None,
        },
        {
            "quantity": "probe energy (pJ/bit)",
            "model": breakdown.probe_energy_pj,
            "paper": None,
        },
        {
            "quantity": "total energy (pJ/bit)",
            "model": breakdown.total_energy_pj,
            "paper": PAPER_HEADLINE_ENERGY_PJ_PER_BIT,
        },
    ]
    return ExperimentResult(
        experiment_id="headline",
        title="Headline: laser energy per computed bit (n=2, 1 GHz)",
        rows=rows,
        paper_reference={"total_pj_per_bit": PAPER_HEADLINE_ENERGY_PJ_PER_BIT},
        notes=(
            "Pulse-based pump (26 ps), CW probes, 20 % lasing efficiency "
            "(paper Section V-C assumptions)."
        ),
    )


@register("gamma")
def gamma() -> ExperimentResult:
    """Section V-C: gamma correction (order 6) and the 10x speedup."""
    study = gamma_correction_case_study()
    rows = [
        {"quantity": "Bernstein order", "model": study["order"], "paper": 6},
        {
            "quantity": "WLspacing (nm)",
            "model": study["wl_spacing_nm"],
            "paper": 0.165,
        },
        {
            "quantity": "energy per bit (pJ)",
            "model": study["energy_per_bit_pj"],
            "paper": None,
        },
        {
            "quantity": "speedup vs 100 MHz ReSC",
            "model": study["speedup"],
            "paper": 10.0,
        },
    ]
    return ExperimentResult(
        experiment_id="gamma",
        title="Section V-C: gamma-correction case study (order 6)",
        rows=rows,
        paper_reference={"speedup": "10x vs the 100 MHz ReSC of [9]"},
        notes="1 Gb/s optical modulation vs the 100 MHz CMOS clock of [9].",
    )


@register("params")
def params_table() -> ExperimentResult:
    """Fig. 4(b): the system/device parameter table."""
    params = paper_section5a_parameters()
    rows = [
        {"parameter": "n (polynomial degree)", "value": params.order, "unit": "-"},
        {
            "parameter": "WLspacing",
            "value": params.wl_spacing_nm,
            "unit": "nm",
        },
        {
            "parameter": "MZI IL",
            "value": params.mzi.insertion_loss_db,
            "unit": "dB",
        },
        {
            "parameter": "MZI ER",
            "value": params.mzi.extinction_ratio_db,
            "unit": "dB",
        },
        {
            "parameter": "MRR modulation shift",
            "value": params.ring_profile.modulation_shift_nm,
            "unit": "nm",
        },
        {
            "parameter": "lambda_ref",
            "value": params.lambda_ref_nm,
            "unit": "nm",
        },
        {
            "parameter": "filter FSR",
            "value": params.ring_profile.filter.fsr_nm,
            "unit": "nm",
        },
        {
            "parameter": "OTE",
            "value": params.ote.nm_per_mw,
            "unit": "nm/mW",
        },
        {
            "parameter": "lasing efficiency",
            "value": params.laser_efficiency,
            "unit": "-",
        },
        {
            "parameter": "detector responsivity",
            "value": params.detector.responsivity_a_per_w,
            "unit": "A/W",
        },
        {
            "parameter": "detector noise current",
            "value": params.detector.noise_current_a,
            "unit": "A",
        },
    ]
    return ExperimentResult(
        experiment_id="params",
        title="Fig. 4(b): system- and device-level parameters",
        rows=rows,
        paper_reference={"table": "Fig. 4(b) lists the same parameter set"},
        notes="Detector constants are calibrated (see DESIGN.md section 6).",
    )

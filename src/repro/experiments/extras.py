"""Extension experiments beyond the paper's figures.

These quantify the studies the paper only sketches (robustness to
process variation, the calibration loop, parameter sensitivities, the
parallel implementation) with the same registry/CLI machinery as the
figure reproductions:

* ``yield``       — Monte Carlo yield vs fabrication sigma;
* ``controller``  — calibration-loop convergence from thermal drift;
* ``sensitivity`` — relative sensitivity of the 20.1 pJ headline to
  each technology constant;
* ``parallel``    — throughput/power-density scaling of parallel
  instances (the paper's closing §V-C remark).
"""

from __future__ import annotations

import numpy as np

from ..core.circuit import OpticalStochasticCircuit
from ..core.design import mrr_first_design
from ..core.params import paper_section5a_parameters
from ..exploration.parallelism import FootprintModel, parallel_study
from ..exploration.sensitivity import headline_energy_sensitivities
from ..simulation.controller import CalibrationController
from ..simulation.montecarlo import yield_vs_sigma
from ..stochastic.bernstein import BernsteinPolynomial
from .registry import ExperimentResult, register

__all__ = ["yield_study", "controller_study", "sensitivity_study", "parallel_scaling"]

_YIELD_STUDY_SEED = 0x51A
"""Fixed corner-sampling seed making the published yield curve rerunnable."""


@register("yield")
def yield_study() -> ExperimentResult:
    """Monte Carlo yield of the Section V-A design vs variation sigma."""
    params = paper_section5a_parameters()
    rng = np.random.default_rng(_YIELD_STUDY_SEED)
    # One stacked evaluation across every (sigma, corner) pair — the
    # vectorized optics engine makes the whole curve a single pass.
    curve = yield_vs_sigma(
        params,
        [0.005, 0.01, 0.02, 0.04, 0.08],
        samples=80,
        rng=rng,
        vectorized=True,
    )
    rows = [
        {
            "sigma_nm": float(s),
            "yield_fraction": float(y),
            "mean_eye_mw": float(e),
        }
        for s, y, e in zip(
            curve["sigma_nm"], curve["yield_fraction"], curve["mean_eye_mw"]
        )
    ]
    return ExperimentResult(
        experiment_id="yield",
        title="Extension: fabrication yield vs per-ring variation sigma",
        rows=rows,
        paper_reference={
            "context": "SC motivated for process-variation resilience (II-A)"
        },
        notes=(
            "Yield = corners whose '0'/'1' bands stay separated without "
            "recalibration; the falloff motivates the future-work "
            "controller (run experiment 'controller')."
        ),
    )


@register("controller")
def controller_study() -> ExperimentResult:
    """Calibration-loop convergence (paper future work item i)."""
    circuit = OpticalStochasticCircuit(
        paper_section5a_parameters(), BernsteinPolynomial([0.25, 0.5, 0.75])
    )
    controller = CalibrationController(circuit)
    rows = []
    for drift in (0.02, 0.05, -0.04, 0.08):
        trace = controller.calibrate(initial_drift_nm=drift, iterations=50)
        rows.append(
            {
                "initial_drift_nm": drift,
                "final_residual_nm": float(trace.residual_drift_nm[-1]),
                "settling_iterations": trace.settling_iterations,
                "converged": trace.converged,
            }
        )
    return ExperimentResult(
        experiment_id="controller",
        title="Extension: thermal-calibration feedback loop convergence",
        rows=rows,
        paper_reference={
            "context": "Section VI item (i): monitoring + thermal tuning"
        },
        notes=(
            "Dither-gradient integral controller locking the all-optical "
            "filter back onto the channel grid; pilot = z0-only pattern "
            "at level 0."
        ),
    )


@register("sensitivity")
def sensitivity_study() -> ExperimentResult:
    """Relative sensitivity of the 20.1 pJ headline to technology knobs."""
    sensitivities = headline_energy_sensitivities()
    rows = [
        {"parameter": name, "relative_sensitivity": float(value)}
        for name, value in sorted(
            sensitivities.items(), key=lambda kv: -abs(kv[1])
        )
    ]
    return ExperimentResult(
        experiment_id="sensitivity",
        title="Extension: headline-energy sensitivity to device constants",
        rows=rows,
        paper_reference={
            "context": "Section III-B: conflicting objectives across devices"
        },
        notes=(
            "d(log E)/d(log p) at the headline operating point; "
            "lasing efficiency enters exactly inversely (-1)."
        ),
    )


@register("parallel")
def parallel_scaling() -> ExperimentResult:
    """Parallel-implementation scaling (Section V-C closing remark)."""
    design = mrr_first_design(order=2, wl_spacing_nm=0.165)
    footprint = FootprintModel()
    rows = []
    for instances in (1, 4, 16, 64):
        study = parallel_study(design, instances, footprint)
        rows.append(
            {
                "instances": instances,
                "throughput_gbps": study.throughput_bits_per_s / 1e9,
                "wall_power_mw": study.total_wall_power_mw,
                "area_mm2": study.total_area_mm2,
                "power_density_mw_mm2": study.power_density_mw_per_mm2,
            }
        )
    return ExperimentResult(
        experiment_id="parallel",
        title="Extension: parallel instances (throughput vs power density)",
        rows=rows,
        paper_reference={
            "context": "Section V-C: 'power density limitation could be "
            "leveraged using a parallel implementation'"
        },
        notes=(
            "Homogeneous scaling keeps the density constant; the budget "
            "check in repro.exploration.parallelism flags violations."
        ),
    )

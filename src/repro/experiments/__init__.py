"""Experiment harness: one callable per paper table/figure.

Every artifact of the paper's evaluation (Section V) has a registered
experiment that regenerates its rows/series and records the paper's
reference values next to the model's output:

===========  ====================================================
experiment   paper artifact
===========  ====================================================
``fig5a``    Fig. 5(a) transmissions, z=(0,1,0), x1=x2=1
``fig5b``    Fig. 5(b) transmissions, z=(1,1,0), x1=x2=0
``fig5spec`` Fig. 5(a)/(b) spectral curves (the plotted series)
``fig5c``    Fig. 5(c) received power for all (z, x) combinations
``pump``     Section V-A pump sizing (591.8 mW / 13.22 dB)
``fig6a``    Fig. 6(a) min probe power vs (IL, ER)
``fig6b``    Fig. 6(b) min probe power vs target BER
``fig6c``    Fig. 6(c) min probe power per literature MZI
``fig7a``    Fig. 7(a) energy vs wavelength spacing, n = 2/4/6
``fig7b``    Fig. 7(b) energy vs order, 1 nm vs optimal spacing
``headline`` 20.1 pJ/bit headline + 10x gamma-correction speedup
``gamma``    Section V-C gamma-correction case study
``params``   Fig. 4(b) parameter table
===========  ====================================================

Extensions beyond the paper's artifacts: ``accuracy`` (batched
input-sweep error study per randomizer family), ``yield`` (Monte Carlo
process variation), ``controller`` (calibration-loop convergence),
``sensitivity`` (headline-energy sensitivities) and ``parallel``
(power-density scaling).

Run them via ``python -m repro.experiments <name|all>`` or the
``repro-experiments`` console script.
"""

from .registry import ExperimentResult, get_experiment, list_experiments, run_experiment

__all__ = [
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]

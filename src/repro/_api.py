"""Aggregated public API re-exported lazily by ``repro.__getattr__``.

Everything a downstream user needs for the common workflows:

>>> import repro
>>> design = repro.mrr_first_design(order=2, wl_spacing_nm=1.0)
>>> circuit = repro.OpticalStochasticCircuit.from_design(
...     design, repro.BernsteinPolynomial([0.25, 0.625, 0.375]))
>>> evaluator = repro.Evaluator(circuit, repro.EvalSpec(length=4096))
>>> batch = evaluator.evaluate([0.25, 0.5, 0.75])
"""

from .core.circuit import OpticalStochasticCircuit
from .core.design import CircuitDesign, mrr_first_design, mzi_first_design
from .core.energy import (
    EnergyBreakdown,
    energy_breakdown,
    energy_vs_spacing,
    optimal_wl_spacing_nm,
)
from .core.link_budget import LinkBudget, batch_eye_bands, received_power_table
from .core.params import OpticalSCParameters, paper_section5a_parameters
from .core.reconfigurable import ReconfigurableCircuit
from .core.snr import (
    ber_for_snr,
    circuit_ber,
    circuit_snr,
    minimum_probe_power_mw,
    probe_power_for_eyes_mw,
    required_snr_for_ber,
    worst_case_eye,
)
from .core.transmission import StackedTransmissionModel, TransmissionModel
from .core.vectorized import (
    energy_vs_spacing_batch,
    monte_carlo_eye_batch,
    mrr_first_design_batch,
    mrr_first_sizing_batch,
    worst_case_eye_batch,
)
from .exploration import (
    gamma_correction_case_study,
    grid_sweep,
    measured_accuracy_frontier,
    order_scaling_table,
    pareto_front,
    throughput_accuracy_frontier,
)
from .experiments import list_experiments, run_experiment
from .experiments.registry import experiment_config_parameters
from .photonics import (
    CWLaser,
    MZIModulator,
    Photodetector,
    PulsedLaser,
    RingParameters,
    WDMGrid,
)
from .photonics import devices
from .simulation import (
    KERNELS,
    TRANSPORTS,
    BatchEvaluation,
    CalibrationController,
    ChunkedEvaluation,
    EvaluationCache,
    FaultInjector,
    FaultSpec,
    OpticalReceiver,
    RuntimeConfig,
    SeedSchedule,
    TransientSimulator,
    available_kernels,
    derive_seed_schedule,
    fault_frontier,
    kernel_capabilities,
    run_batch,
    simulate_batch,
    simulate_batch_sharded,
    simulate_chunked,
    simulate_evaluation,
    simulate_sweep,
)
from .serving import (
    BatchServer,
    CircuitBreaker,
    DegradationController,
    DegradationLadder,
    HistogramSnapshot,
    ManualClock,
    MetricsSnapshot,
    MonotonicClock,
    RetryPolicy,
    RungMetrics,
    ServingStats,
)
from .session import EvalSpec, Evaluator
from .stochastic import (
    BernsteinPolynomial,
    Bitstream,
    ComparatorSNG,
    PowerPolynomial,
    ReSCUnit,
)
from .stochastic.functions import bernstein_program, gamma_bernstein

__all__ = [
    "OpticalStochasticCircuit",
    "CircuitDesign",
    "mrr_first_design",
    "mzi_first_design",
    "EnergyBreakdown",
    "energy_breakdown",
    "energy_vs_spacing",
    "optimal_wl_spacing_nm",
    "LinkBudget",
    "received_power_table",
    "OpticalSCParameters",
    "paper_section5a_parameters",
    "ReconfigurableCircuit",
    "ber_for_snr",
    "required_snr_for_ber",
    "circuit_snr",
    "circuit_ber",
    "minimum_probe_power_mw",
    "worst_case_eye",
    "TransmissionModel",
    "StackedTransmissionModel",
    "batch_eye_bands",
    "probe_power_for_eyes_mw",
    "worst_case_eye_batch",
    "monte_carlo_eye_batch",
    "mrr_first_sizing_batch",
    "mrr_first_design_batch",
    "energy_vs_spacing_batch",
    "grid_sweep",
    "pareto_front",
    "order_scaling_table",
    "gamma_correction_case_study",
    "measured_accuracy_frontier",
    "throughput_accuracy_frontier",
    "list_experiments",
    "run_experiment",
    "experiment_config_parameters",
    "EvalSpec",
    "Evaluator",
    "BatchServer",
    "ServingStats",
    "MetricsSnapshot",
    "RungMetrics",
    "HistogramSnapshot",
    "RetryPolicy",
    "CircuitBreaker",
    "DegradationLadder",
    "DegradationController",
    "ManualClock",
    "MonotonicClock",
    "MZIModulator",
    "RingParameters",
    "WDMGrid",
    "Photodetector",
    "CWLaser",
    "PulsedLaser",
    "devices",
    "OpticalReceiver",
    "BatchEvaluation",
    "ChunkedEvaluation",
    "EvaluationCache",
    "RuntimeConfig",
    "SeedSchedule",
    "KERNELS",
    "TRANSPORTS",
    "available_kernels",
    "kernel_capabilities",
    "derive_seed_schedule",
    "run_batch",
    "simulate_batch",
    "simulate_batch_sharded",
    "simulate_chunked",
    "simulate_evaluation",
    "simulate_sweep",
    "TransientSimulator",
    "CalibrationController",
    "FaultInjector",
    "FaultSpec",
    "fault_frontier",
    "Bitstream",
    "BernsteinPolynomial",
    "PowerPolynomial",
    "ReSCUnit",
    "ComparatorSNG",
    "bernstein_program",
    "gamma_bernstein",
]

"""repro — reproduction of *Stochastic Computing with Integrated Optics*.

A from-scratch implementation of the DATE 2019 paper by El-Derhalli,
Le Beux and Tahar: a photonic stochastic-computing architecture executing
Bernstein polynomial functions, together with the silicon-photonics device
substrate, the electronic ReSC baseline, analytical transmission/SNR/energy
models, the MRR-first and MZI-first design methods, bit-level functional
simulation, and the design-space-exploration harness that regenerates every
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import mrr_first_design
>>> design = mrr_first_design(order=2, wl_spacing_nm=1.0)
>>> round(design.pump_power_mw, 1)
591.8

Evaluation workloads bind their configuration once through the session
API (``repro.EvalSpec`` + ``repro.Evaluator``; see ``repro.session``),
and concurrent traffic is served by the async micro-batcher
``repro.BatchServer`` (see ``repro.serving``).
"""

from __future__ import annotations

from .constants import (
    PAPER_HEADLINE_ENERGY_PJ_PER_BIT,
    PAPER_OPTIMAL_WL_SPACING_NM,
)
from .errors import (
    CalibrationError,
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    DesignInfeasibleError,
    OverloadedError,
    PhysicalModelError,
    ReproError,
    ServingError,
    SimulationError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "PhysicalModelError",
    "DesignInfeasibleError",
    "CalibrationError",
    "SimulationError",
    "ServingError",
    "OverloadedError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "PAPER_OPTIMAL_WL_SPACING_NM",
    "PAPER_HEADLINE_ENERGY_PJ_PER_BIT",
]


def __getattr__(name):
    """Lazily expose the high-level API to keep ``import repro`` light.

    The heavy subpackages (scipy-dependent core, simulation) are imported
    on first attribute access rather than at package import time.  Uses
    ``importlib`` rather than ``from . import _api`` because the latter
    re-enters this ``__getattr__`` while ``_api`` is still initializing.
    """
    import importlib

    if name.startswith("_"):
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    api = importlib.import_module("repro._api")
    try:
        value = getattr(api, name)
    except AttributeError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    globals()[name] = value
    return value

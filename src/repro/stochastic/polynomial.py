"""Power-basis polynomials and the paper's running example.

The ReSC architecture evaluates polynomials given in the *Bernstein*
basis; applications usually specify them in the *power* basis
(``f(x) = sum a_k x^k``).  :class:`PowerPolynomial` is the small value
class used on the application side; basis conversion lives in
:mod:`repro.stochastic.bernstein`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..units import ArrayLike

__all__ = ["PowerPolynomial", "PAPER_EXAMPLE_F1"]


class PowerPolynomial:
    """Polynomial ``a_0 + a_1 x + ... + a_n x^n`` in the power basis.

    Parameters
    ----------
    coefficients:
        Ascending-order coefficients ``(a_0, ..., a_n)``.
    """

    def __init__(self, coefficients: Sequence[float]):
        coeffs = np.asarray(list(coefficients), dtype=float)
        if coeffs.ndim != 1 or coeffs.size == 0:
            raise ConfigurationError("need a non-empty 1-D coefficient list")
        self._coefficients = coeffs
        self._coefficients.setflags(write=False)

    @property
    def coefficients(self) -> np.ndarray:
        """Ascending power-basis coefficients (read-only)."""
        return self._coefficients

    @property
    def degree(self) -> int:
        """Degree ``n`` (trailing zeros are *not* trimmed: the declared
        degree is part of the ReSC configuration)."""
        return self._coefficients.size - 1

    def __call__(self, x: ArrayLike) -> ArrayLike:
        """Evaluate with Horner's scheme."""
        x = np.asarray(x, dtype=float)
        result = np.zeros_like(x)
        for coefficient in self._coefficients[::-1]:
            result = result * x + coefficient
        if result.ndim == 0:
            return float(result)
        return result

    def __eq__(self, other) -> bool:
        if not isinstance(other, PowerPolynomial):
            return NotImplemented
        return self._coefficients.shape == other._coefficients.shape and bool(
            np.allclose(self._coefficients, other._coefficients)
        )

    def __repr__(self) -> str:
        terms = ", ".join(f"{c:g}" for c in self._coefficients)
        return f"PowerPolynomial([{terms}])"

    def derivative(self) -> "PowerPolynomial":
        """First derivative as a new polynomial."""
        if self.degree == 0:
            return PowerPolynomial([0.0])
        k = np.arange(1, self.degree + 1)
        return PowerPolynomial(self._coefficients[1:] * k)

    def is_bounded_on_unit_interval(self, samples: int = 1001) -> bool:
        """Check ``f([0, 1]) ⊆ [0, 1]`` (necessary for SC implementability)."""
        grid = np.linspace(0.0, 1.0, samples)
        values = self(grid)
        return bool(np.all(values >= -1e-12) and np.all(values <= 1.0 + 1e-12))

    @classmethod
    def fit(
        cls, function: Callable[[np.ndarray], np.ndarray], degree: int, samples: int = 257
    ) -> "PowerPolynomial":
        """Least-squares power-basis fit of *function* on ``[0, 1]``."""
        if degree < 0:
            raise ConfigurationError(f"degree must be >= 0, got {degree!r}")
        grid = np.linspace(0.0, 1.0, samples)
        values = np.asarray(function(grid), dtype=float)
        # numpy.polynomial uses ascending order, matching our convention.
        coeffs = np.polynomial.polynomial.polyfit(grid, values, degree)
        return cls(coeffs)


PAPER_EXAMPLE_F1 = PowerPolynomial([0.25, 9.0 / 8.0, -15.0 / 8.0, 5.0 / 4.0])
"""The paper's Fig. 1(b) example: ``f1(x) = 1/4 + 9x/8 - 15x^2/8 + 5x^3/4``,
whose degree-3 Bernstein coefficients are (2/8, 5/8, 3/8, 6/8)."""

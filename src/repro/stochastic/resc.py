"""The electronic ReSC unit of Qian et al. [9] (paper Fig. 1).

This is the CMOS baseline the optical architecture transposes.  Per clock:

1. ``n`` SNGs emit one bit each of the data streams ``x_1..x_n``;
2. ``n + 1`` SNGs emit one bit each of the coefficient streams
   ``z_0..z_n``;
3. the adder counts the ones among the data bits, producing the select
   word ``k``;
4. the multiplexer forwards bit ``z_k`` to the output;
5. a counter accumulates the output ones (the de-randomizer).

The expected output equals the Bernstein value ``B(x)`` because the
select word is ``Binomial(n, x)``-distributed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..constants import PAPER_RESC_CLOCK_HZ
from ..errors import ConfigurationError
from .bernstein import BernsteinPolynomial
from .bitstream import Bitstream
from .elements import adder_select
from .sng import StochasticNumberGenerator, make_independent_sngs

__all__ = ["ReSCUnit", "ReSCResult"]


@dataclass(frozen=True)
class ReSCResult:
    """Outcome of one ReSC evaluation.

    Attributes
    ----------
    value:
        De-randomized output probability (ones count / stream length).
    ones_count:
        Raw counter value.
    stream_length:
        Number of clocks (bits) used.
    expected:
        The exact Bernstein value ``B(x)`` for reference.
    output_stream:
        The multiplexed output stream (kept for receiver-side studies).
    """

    value: float
    ones_count: int
    stream_length: int
    expected: float
    output_stream: Bitstream

    @property
    def absolute_error(self) -> float:
        """``|value - expected|`` of this evaluation."""
        return abs(self.value - self.expected)


class ReSCUnit:
    """Reconfigurable stochastic computing unit (Fig. 1(a)).

    Parameters
    ----------
    polynomial:
        The Bernstein program; every coefficient must be in ``[0, 1]``.
    data_sngs / coefficient_sngs:
        Optional explicit randomizers (``n`` for data, ``n + 1`` for the
        coefficients).  Defaults to decorrelated LFSR comparator SNGs.
    clock_hz:
        Clock frequency used for throughput accounting; the paper
        compares against a 100 MHz electronic implementation.
    """

    def __init__(
        self,
        polynomial: BernsteinPolynomial,
        data_sngs: Optional[Sequence[StochasticNumberGenerator]] = None,
        coefficient_sngs: Optional[Sequence[StochasticNumberGenerator]] = None,
        clock_hz: float = PAPER_RESC_CLOCK_HZ,
    ):
        if not isinstance(polynomial, BernsteinPolynomial):
            raise ConfigurationError("polynomial must be a BernsteinPolynomial")
        if not polynomial.is_sc_implementable():
            raise ConfigurationError(
                "Bernstein coefficients must lie in [0, 1]; call "
                "elevated_until_implementable() first"
            )
        if clock_hz <= 0:
            raise ConfigurationError(f"clock_hz must be positive, got {clock_hz!r}")
        self.polynomial = polynomial
        self.degree = polynomial.degree
        self.clock_hz = float(clock_hz)
        if data_sngs is not None:
            self._data_sngs = list(data_sngs)
        elif self.degree > 0:
            self._data_sngs = make_independent_sngs(self.degree, base_seed=0x1234)
        else:
            self._data_sngs = []  # a constant program needs no data inputs
        self._coefficient_sngs = (
            list(coefficient_sngs)
            if coefficient_sngs is not None
            else make_independent_sngs(self.degree + 1, base_seed=0xBEEF)
        )
        if len(self._data_sngs) != self.degree:
            raise ConfigurationError(
                f"need {self.degree} data SNGs, got {len(self._data_sngs)}"
            )
        if len(self._coefficient_sngs) != self.degree + 1:
            raise ConfigurationError(
                f"need {self.degree + 1} coefficient SNGs, "
                f"got {len(self._coefficient_sngs)}"
            )

    # -- stream generation -------------------------------------------------------

    def data_streams(self, x: float, length: int) -> list:
        """The ``n`` independent stochastic encodings of the input *x*."""
        if not 0.0 <= x <= 1.0:
            raise ConfigurationError(f"x must be in [0, 1], got {x!r}")
        return [sng.generate(x, length) for sng in self._data_sngs]

    def coefficient_streams(self, length: int) -> list:
        """The ``n + 1`` coefficient streams ``z_0..z_n``."""
        return [
            sng.generate(float(b), length)
            for sng, b in zip(
                self._coefficient_sngs, self.polynomial.coefficients
            )
        ]

    # -- evaluation ----------------------------------------------------------------

    def evaluate(self, x: float, length: int = 1024) -> ReSCResult:
        """Run the unit for *length* clocks on input *x*."""
        if length <= 0:
            raise ConfigurationError(f"length must be positive, got {length!r}")
        data = self.data_streams(x, length)
        coefficients = self.coefficient_streams(length)
        if data:
            select = adder_select(data)
        else:
            select = np.zeros(length, dtype=np.int64)
        coefficient_matrix = np.stack([s.bits for s in coefficients])
        output_bits = coefficient_matrix[select, np.arange(length)]
        output = Bitstream(output_bits)
        return ReSCResult(
            value=output.probability,
            ones_count=output.ones_count,
            stream_length=length,
            expected=float(self.polynomial(x)),
            output_stream=output,
        )

    def evaluate_sweep(self, xs: Sequence[float], length: int = 1024) -> np.ndarray:
        """Vector of de-randomized outputs over the inputs *xs*."""
        return np.asarray([self.evaluate(float(x), length).value for x in xs])

    # -- throughput accounting ---------------------------------------------------

    def computation_time_s(self, length: int) -> float:
        """Wall time to stream *length* bits at the configured clock."""
        if length <= 0:
            raise ConfigurationError(f"length must be positive, got {length!r}")
        return length / self.clock_hz

    def throughput_bits_per_s(self) -> float:
        """Stream bits processed per second (one bit per clock)."""
        return self.clock_hz

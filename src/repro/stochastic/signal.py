"""Signal-processing kernels in stochastic logic.

Beyond images, the paper motivates SC with signal processing
(Section II-A).  This module builds the classical SC filter structures
from the elements of :mod:`repro.stochastic.elements`:

* :class:`StochasticFIRFilter` — an N-tap scaled-addition FIR filter: a
  multiplexer tree selects among tap streams with probabilities equal to
  the normalized tap weights, computing ``sum_k w_k x[n-k] / sum_k w_k``
  exactly in expectation;
* :func:`moving_average` — the equal-weight special case;
* helpers for converting real-valued signals to/from the unipolar domain.

These run on any SNG and can be fed through the optical circuit's
coefficient path, giving a second end-to-end application workload.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from .bitstream import Bitstream

__all__ = [
    "DEFAULT_FILTER_SEED",
    "normalize_signal",
    "denormalize_signal",
    "StochasticFIRFilter",
    "moving_average",
]

DEFAULT_FILTER_SEED = 0xF17
"""Seed :meth:`StochasticFIRFilter.filter_signal` falls back to.

Kept equal to the historical inline default so existing callers keep
getting bit-identical filter outputs; pass ``seed=`` (or an explicit
*rng*) to decorrelate runs.
"""


def normalize_signal(signal: Sequence[float]) -> tuple:
    """Affine-map a real signal into ``[0, 1]``.

    Returns ``(normalized, offset, scale)`` with
    ``original = normalized * scale + offset``.  Constant signals map to
    0.5 with unit scale so the inverse stays well-defined.
    """
    array = np.asarray(list(signal), dtype=float)
    if array.ndim != 1 or array.size == 0:
        raise ConfigurationError("signal must be a non-empty 1-D sequence")
    low, high = float(array.min()), float(array.max())
    if high == low:
        return np.full_like(array, 0.5), low - 0.5, 1.0
    scale = high - low
    return (array - low) / scale, low, scale


def denormalize_signal(
    normalized: Sequence[float], offset: float, scale: float
) -> np.ndarray:
    """Invert :func:`normalize_signal`."""
    array = np.asarray(list(normalized), dtype=float)
    if scale == 0.0:
        raise ConfigurationError("scale must be non-zero")
    return array * scale + offset


class StochasticFIRFilter:
    """Scaled-addition FIR filter over unipolar streams.

    Parameters
    ----------
    weights:
        Non-negative tap weights ``w_0..w_{N-1}`` (at least one positive).
        The stochastic structure computes the *normalized* response
        ``y = sum w_k x_k / sum w_k``; callers rescale by
        :attr:`weight_sum` if the unnormalized sum is needed.

    Notes
    -----
    Implementation: one categorical select stream chooses tap ``k`` with
    probability ``w_k / sum w``; the output bit is the selected tap's
    bit.  This is the direct N-way generalization of the 2:1 MUX scaled
    adder of Fig. 1, and it is unbiased for any tap count.
    """

    def __init__(self, weights: Sequence[float]):
        array = np.asarray(list(weights), dtype=float)
        if array.ndim != 1 or array.size == 0:
            raise ConfigurationError("need a non-empty 1-D weight list")
        if np.any(array < 0.0):
            raise ConfigurationError("weights must be >= 0")
        total = float(array.sum())
        if total <= 0.0:
            raise ConfigurationError("at least one weight must be positive")
        self._weights = array
        self._weights.setflags(write=False)
        self._probabilities = array / total

    @property
    def weights(self) -> np.ndarray:
        """The tap weights (read-only)."""
        return self._weights

    @property
    def tap_count(self) -> int:
        """Number of taps ``N``."""
        return int(self._weights.size)

    @property
    def weight_sum(self) -> float:
        """Normalization factor ``sum_k w_k``."""
        return float(self._weights.sum())

    def expected_output(self, tap_values: Sequence[float]) -> float:
        """The exact normalized response for given tap probabilities."""
        values = np.asarray(list(tap_values), dtype=float)
        if values.shape != self._weights.shape:
            raise ConfigurationError(
                f"need {self.tap_count} tap values, got {values.size}"
            )
        return float(np.dot(self._probabilities, values))

    def filter_streams(
        self,
        tap_streams: Sequence[Bitstream],
        rng: np.random.Generator,
    ) -> Bitstream:
        """One output stream from ``N`` equal-length tap streams."""
        if len(tap_streams) != self.tap_count:
            raise ConfigurationError(
                f"need {self.tap_count} tap streams, got {len(tap_streams)}"
            )
        length = len(tap_streams[0])
        for stream in tap_streams:
            if not isinstance(stream, Bitstream):
                raise ConfigurationError("taps must be Bitstreams")
            if len(stream) != length:
                raise ConfigurationError("tap streams must share one length")
        selects = rng.choice(
            self.tap_count, size=length, p=self._probabilities
        )
        matrix = np.stack([stream.bits for stream in tap_streams])
        return Bitstream(matrix[selects, np.arange(length)])

    def filter_signal(
        self,
        signal: Sequence[float],
        stream_length: int = 1024,
        rng: Optional[np.random.Generator] = None,
        seed: int = DEFAULT_FILTER_SEED,
    ) -> np.ndarray:
        """Run a unit-range signal through the stochastic filter.

        Produces the normalized FIR response sample by sample (the first
        ``N - 1`` outputs use zero-padding history, as a hardware shift
        register would).  When no *rng* is given, one is derived from
        *seed* — the default reproduces the historical fixed streams.
        """
        values = np.asarray(list(signal), dtype=float)
        if values.ndim != 1 or values.size == 0:
            raise ConfigurationError("signal must be a non-empty 1-D sequence")
        if np.any(values < 0.0) or np.any(values > 1.0):
            raise ConfigurationError("signal samples must be in [0, 1]")
        if stream_length <= 0:
            raise ConfigurationError("stream_length must be positive")
        rng = rng or np.random.default_rng(seed)
        padded = np.concatenate([np.zeros(self.tap_count - 1), values])
        output = np.empty(values.size)
        for n in range(values.size):
            history = padded[n : n + self.tap_count][::-1]
            taps = [
                Bitstream.from_probability(float(p), stream_length, rng)
                for p in history
            ]
            output[n] = self.filter_streams(taps, rng).probability
        return output


def moving_average(
    signal: Sequence[float],
    window: int,
    stream_length: int = 1024,
    rng: Optional[np.random.Generator] = None,
    seed: int = DEFAULT_FILTER_SEED,
) -> np.ndarray:
    """Equal-weight stochastic moving average over a unit-range signal."""
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window!r}")
    fir = StochasticFIRFilter(np.ones(window))
    return fir.filter_signal(
        signal, stream_length=stream_length, rng=rng, seed=seed
    )

"""De-randomizers: stream-to-binary back-conversion (paper Fig. 1(a)).

The receiver side of both the electronic and the optical circuit counts
the ones in the output stream; the count divided by the stream length is
the computed probability.  A saturating up/down counter is also provided
for the feedback/calibration controller study (paper future work (i)).
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from ..errors import ConfigurationError
from .bitstream import Bitstream

__all__ = ["Derandomizer", "SaturatingCounter"]


class Derandomizer:
    """Ones-counting de-randomizer with fixed-point output.

    Parameters
    ----------
    resolution_bits:
        Width of the binary output; the probability estimate is quantized
        to ``2**resolution_bits`` levels (0 disables quantization).
    """

    def __init__(self, resolution_bits: int = 0):
        if resolution_bits < 0:
            raise ConfigurationError(
                f"resolution_bits must be >= 0, got {resolution_bits!r}"
            )
        self.resolution_bits = int(resolution_bits)

    def count(self, stream: Union[Bitstream, Iterable[int]]) -> int:
        """Counter value: number of ones in the stream."""
        if isinstance(stream, Bitstream):
            return stream.ones_count
        return int(Bitstream(np.asarray(list(stream))).ones_count)

    def probability(self, stream: Union[Bitstream, Iterable[int]]) -> float:
        """De-randomized probability, quantized to the output resolution."""
        if not isinstance(stream, Bitstream):
            stream = Bitstream(np.asarray(list(stream)))
        estimate = stream.probability
        if self.resolution_bits == 0:
            return estimate
        levels = 1 << self.resolution_bits
        return round(estimate * levels) / levels


class SaturatingCounter:
    """Saturating up/down counter for monitoring and calibration loops.

    Counts up on 1, down on 0, clamping at ``[0, 2**width - 1]``.  Its
    normalized value tracks the recent ones-density of a stream, which is
    the observable a thermal-tuning feedback controller locks on.
    """

    def __init__(self, width: int = 8, initial: int = 0):
        if width < 1:
            raise ConfigurationError(f"width must be >= 1, got {width!r}")
        self.width = int(width)
        self.maximum = (1 << width) - 1
        if not 0 <= initial <= self.maximum:
            raise ConfigurationError(
                f"initial must be in [0, {self.maximum}], got {initial!r}"
            )
        self._value = int(initial)

    @property
    def value(self) -> int:
        """Current counter contents."""
        return self._value

    @property
    def normalized(self) -> float:
        """Counter value scaled to ``[0, 1]``."""
        return self._value / self.maximum

    def update(self, bit: int) -> int:
        """Clock the counter with one stream bit; returns the new value."""
        if bit not in (0, 1):
            raise ConfigurationError(f"bit must be 0 or 1, got {bit!r}")
        if bit:
            self._value = min(self._value + 1, self.maximum)
        else:
            self._value = max(self._value - 1, 0)
        return self._value

    def update_many(self, bits: Union[Bitstream, Iterable[int]]) -> int:
        """Clock a whole stream through the counter."""
        iterable = bits.bits if isinstance(bits, Bitstream) else bits
        for bit in iterable:
            self.update(int(bit))
        return self._value

    def reset(self, value: int = 0) -> None:
        """Force the counter to *value*."""
        if not 0 <= value <= self.maximum:
            raise ConfigurationError(
                f"value must be in [0, {self.maximum}], got {value!r}"
            )
        self._value = int(value)

"""Target function library for the SC applications the paper motivates.

Section V-C of the paper singles out **gamma correction** — a non-linear
image-processing kernel implemented with a 6th-order Bernstein
approximation in Qian et al. [9] — as the workload for the scalability
discussion.  This module provides that kernel, the paper's Fig. 1(b)
example polynomial, and a few standard SC benchmark functions, each with
a ready-to-run Bernstein program.
"""

from __future__ import annotations

import numpy as np

from ..constants import PAPER_GAMMA_ORDER
from ..errors import ConfigurationError
from ..units import ArrayLike
from .bernstein import BernsteinPolynomial
from .polynomial import PAPER_EXAMPLE_F1, PowerPolynomial

__all__ = [
    "gamma_correction",
    "gamma_bernstein",
    "paper_example_bernstein",
    "sigmoid_like",
    "smoothstep",
    "scaled_sine",
    "FUNCTION_LIBRARY",
]


def gamma_correction(x: ArrayLike, gamma: float = 0.45) -> ArrayLike:
    """Gamma correction ``x**gamma`` on normalized intensities.

    ``gamma = 0.45`` is the standard encoding gamma (~1/2.2) used in the
    image-processing literature the paper's application discussion
    targets.
    """
    if gamma <= 0.0:
        raise ConfigurationError(f"gamma must be positive, got {gamma!r}")
    x = np.asarray(x, dtype=float)
    if np.any(x < 0.0) or np.any(x > 1.0):
        raise ConfigurationError("gamma correction expects x in [0, 1]")
    value = x**gamma
    if value.ndim == 0:
        return float(value)
    return value


def gamma_bernstein(
    degree: int = PAPER_GAMMA_ORDER, gamma: float = 0.45
) -> BernsteinPolynomial:
    """Degree-*degree* Bernstein program for gamma correction.

    Uses the bounded least-squares fit (the approach of Qian et al. [9]),
    which keeps every coefficient inside ``[0, 1]`` — the property SC
    hardware requires — while staying accurate away from the singular
    slope at ``x = 0``.  The paper's scalability study assumes the
    6th-order version from [9].
    """
    return BernsteinPolynomial.from_function(
        lambda x: gamma_correction(x, gamma), degree, method="least_squares"
    )


def paper_example_bernstein() -> BernsteinPolynomial:
    """The paper's Fig. 1(b) program: coefficients (2/8, 5/8, 3/8, 6/8)."""
    return BernsteinPolynomial.from_power(PAPER_EXAMPLE_F1)


def sigmoid_like(x: ArrayLike) -> ArrayLike:
    """A [0,1]->[0,1] logistic kernel: ``1 / (1 + exp(-8(x - 1/2)))``.

    Stand-in for neural activation functions (the neural-computation
    application class mentioned in Section II-A).
    """
    x = np.asarray(x, dtype=float)
    value = 1.0 / (1.0 + np.exp(-8.0 * (x - 0.5)))
    if value.ndim == 0:
        return float(value)
    return value


def smoothstep(x: ArrayLike) -> ArrayLike:
    """The cubic smoothstep ``3x^2 - 2x^3`` (exactly degree-3 Bernstein)."""
    x = np.asarray(x, dtype=float)
    value = 3.0 * x**2 - 2.0 * x**3
    if value.ndim == 0:
        return float(value)
    return value


def scaled_sine(x: ArrayLike) -> ArrayLike:
    """``(1 + sin(2 pi x - pi/2)) / 2``: one full period into [0, 1]."""
    x = np.asarray(x, dtype=float)
    value = 0.5 * (1.0 + np.sin(2.0 * np.pi * x - np.pi / 2.0))
    if value.ndim == 0:
        return float(value)
    return value


FUNCTION_LIBRARY: dict = {
    "gamma": (gamma_correction, PAPER_GAMMA_ORDER),
    "paper_f1": (PAPER_EXAMPLE_F1, 3),
    "sigmoid": (sigmoid_like, 6),
    # smoothstep is itself a cubic: stored in power form so the Bernstein
    # program is the exact basis conversion rather than an approximation.
    "smoothstep": (PowerPolynomial([0.0, 0.0, 3.0, -2.0]), 3),
    "scaled_sine": (scaled_sine, 8),
}
"""Named benchmark kernels: ``name -> (callable_or_polynomial, degree)``."""


def bernstein_program(name: str) -> BernsteinPolynomial:
    """Build the Bernstein program for a library function by name."""
    if name not in FUNCTION_LIBRARY:
        raise ConfigurationError(
            f"unknown function {name!r}; choose from "
            f"{sorted(FUNCTION_LIBRARY)}"
        )
    function, degree = FUNCTION_LIBRARY[name]
    if isinstance(function, PowerPolynomial):
        return BernsteinPolynomial.from_power(function)
    return BernsteinPolynomial.from_function(function, degree, method="operator")


__all__.append("bernstein_program")

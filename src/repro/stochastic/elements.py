"""Elementary stochastic logic (paper Section II-A).

With unipolar coding and independent streams, ordinary gates compute
arithmetic: AND multiplies, a multiplexer computes scaled addition, NOT
computes ``1 - p``.  These are the primitives from which the ReSC unit
(and its optical transposition) is built.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .bitstream import Bitstream

__all__ = [
    "stochastic_and",
    "stochastic_or",
    "stochastic_xor",
    "stochastic_not",
    "stochastic_mux",
    "scaled_add",
    "adder_select",
]


def stochastic_and(a: Bitstream, b: Bitstream) -> Bitstream:
    """Multiplication: ``P(a AND b) = P(a) * P(b)`` for independent streams."""
    return a & b


def stochastic_or(a: Bitstream, b: Bitstream) -> Bitstream:
    """``P(a OR b) = P(a) + P(b) - P(a) P(b)`` for independent streams."""
    return a | b


def stochastic_xor(a: Bitstream, b: Bitstream) -> Bitstream:
    """``P(a XOR b) = P(a) + P(b) - 2 P(a) P(b)`` for independent streams."""
    return a ^ b


def stochastic_not(a: Bitstream) -> Bitstream:
    """Complement: ``P(NOT a) = 1 - P(a)``."""
    return ~a


def stochastic_mux(select: Bitstream, a: Bitstream, b: Bitstream) -> Bitstream:
    """2:1 multiplexer: picks ``a`` where select = 0, ``b`` where select = 1.

    Computes the scaled addition ``(1 - s) * P(a) + s * P(b)`` with
    ``s = P(select)``.
    """
    if not (len(select) == len(a) == len(b)):
        raise ConfigurationError("mux streams must share one length")
    bits = np.where(select.bits == 0, a.bits, b.bits)
    return Bitstream(bits)


def scaled_add(a: Bitstream, b: Bitstream, select: Bitstream) -> Bitstream:
    """Scaled addition ``(P(a) + P(b)) / 2`` when ``P(select) = 1/2``."""
    return stochastic_mux(select, a, b)


def adder_select(inputs: Sequence[Bitstream]) -> np.ndarray:
    """The ReSC select word: per-clock count of ones among the data streams.

    This is the electronic equivalent of the paper's optical adder: the
    ``n`` MZI data bits are summed into a selector ``k in [0, n]`` that
    picks coefficient ``z_k`` (Fig. 1(a), the boxed numbers of Fig. 1(b)).
    """
    if not inputs:
        raise ConfigurationError("adder needs at least one input stream")
    length = len(inputs[0])
    for stream in inputs:
        if len(stream) != length:
            raise ConfigurationError("adder streams must share one length")
    stacked = np.stack([stream.bits for stream in inputs])
    return stacked.sum(axis=0).astype(np.int64)

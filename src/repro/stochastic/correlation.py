"""Stream correlation metrics for stochastic computing.

SC arithmetic is exact only for *independent* streams: an AND gate
multiplies probabilities when its inputs are uncorrelated and computes
``min`` when they are maximally positively correlated.  The standard
metric is the stochastic computing correlation (SCC) of Alaghi & Hayes
(cited as [2] in the paper): 0 for independence, +1/-1 for maximal
positive/negative correlation.  The randomizer choices in
:mod:`repro.stochastic.sng` (seed/offset decorrelation) are validated
with these metrics.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .bitstream import Bitstream

__all__ = ["scc", "overlap_probability", "autocorrelation", "and_gate_error"]


def overlap_probability(a: Bitstream, b: Bitstream) -> float:
    """Empirical ``P(a = 1 and b = 1)`` of two equal-length streams."""
    if not isinstance(a, Bitstream) or not isinstance(b, Bitstream):
        raise ConfigurationError("operands must be Bitstreams")
    if len(a) != len(b):
        raise ConfigurationError(
            f"stream lengths differ: {len(a)} vs {len(b)}"
        )
    return float(np.mean((a.bits & b.bits).astype(float)))


def scc(a: Bitstream, b: Bitstream) -> float:
    """Stochastic computing correlation in ``[-1, +1]``.

    ``SCC = (p11 - pa*pb) / (min(pa, pb) - pa*pb)`` when the numerator
    is positive, and ``(p11 - pa*pb) / (pa*pb - max(pa + pb - 1, 0))``
    when negative.  Returns 0 for degenerate (constant) streams, where
    correlation is undefined but harmless.
    """
    p11 = overlap_probability(a, b)
    pa, pb = a.probability, b.probability
    delta = p11 - pa * pb
    if delta > 0:
        denominator = min(pa, pb) - pa * pb
    else:
        denominator = pa * pb - max(pa + pb - 1.0, 0.0)
    if denominator <= 1e-15:
        return 0.0
    return float(np.clip(delta / denominator, -1.0, 1.0))


def autocorrelation(stream: Bitstream, max_lag: int = 16) -> np.ndarray:
    """Normalized autocorrelation of a stream for lags ``1..max_lag``.

    Near-zero values indicate white (memoryless) bit generation — the
    property a good SNG must have for the ReSC adder statistics to be
    binomial.
    """
    if not isinstance(stream, Bitstream):
        raise ConfigurationError("stream must be a Bitstream")
    if max_lag < 1 or max_lag >= len(stream):
        raise ConfigurationError(
            f"max_lag must be in [1, {len(stream) - 1}], got {max_lag!r}"
        )
    bits = stream.bits.astype(float)
    mean = bits.mean()
    centered = bits - mean
    variance = float(np.mean(centered**2))
    if variance <= 1e-15:
        return np.zeros(max_lag)
    out = np.empty(max_lag)
    for lag in range(1, max_lag + 1):
        out[lag - 1] = float(
            np.mean(centered[:-lag] * centered[lag:]) / variance
        )
    return out


def and_gate_error(a: Bitstream, b: Bitstream) -> float:
    """|AND output − pa·pb|: the multiplication error caused by correlation.

    Zero for perfectly independent streams; grows toward
    ``min(pa, pb) - pa*pb`` for maximally correlated ones.
    """
    product = a.probability * b.probability
    return abs(overlap_probability(a, b) - product)

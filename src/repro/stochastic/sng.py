"""Stochastic number generators (SNG): the randomizer interface.

An SNG converts a number ``p`` in ``[0, 1]`` into a stochastic bit-stream
whose fraction of ones approximates ``p`` (paper Fig. 1(a)).  Several
generators are provided:

* :class:`ComparatorSNG` — the classical LFSR + comparator randomizer.
* :class:`CounterSNG` — a deterministic ramp comparator (unary coding);
  zero random error, but streams are maximally correlated.
* :class:`SobolLikeSNG` — a bit-reversed-counter (van der Corput)
  comparator; low-discrepancy streams with ``O(1/N)`` error.
* :class:`ChaoticLaserBitSource` — a logistic-map model of the chaotic
  semiconductor laser RNG of Zhang et al. [20], the paper's proposed
  optical randomizer (Section V-D / future work (iii)).
"""

from __future__ import annotations

import abc
import math

import numpy as np

from ..errors import ConfigurationError
from .bitstream import Bitstream
from .lfsr import LFSR

__all__ = [
    "StochasticNumberGenerator",
    "ComparatorSNG",
    "CounterSNG",
    "SobolLikeSNG",
    "ChaoticLaserBitSource",
]


def _validate_probability(value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"value must be in [0, 1], got {value!r}")
    return float(value)


def _validate_length(length: int) -> int:
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length!r}")
    return int(length)


class StochasticNumberGenerator(abc.ABC):
    """Interface of all randomizers: value in [0, 1] -> bit-stream."""

    @abc.abstractmethod
    def generate(self, value: float, length: int) -> Bitstream:
        """Produce a stream of *length* bits encoding *value*."""

    def generate_many(self, values, length: int) -> list:
        """One independent stream per value (convenience for ReSC inputs)."""
        return [self.generate(v, length) for v in values]


class ComparatorSNG(StochasticNumberGenerator):
    """LFSR + comparator randomizer (the SNG of Qian et al. [9]).

    Each clock, the binary-encoded value is compared with the LFSR state;
    the output bit is 1 when the LFSR sample falls below the value.

    Parameters
    ----------
    width:
        LFSR width; the value is quantized to ``2**width`` levels.
    seed:
        LFSR seed; use different seeds for independent streams.
    """

    def __init__(self, width: int = 16, seed: int = 1):
        self._lfsr = LFSR(width=width, seed=seed)
        self.width = width

    def generate(self, value: float, length: int) -> Bitstream:
        value = _validate_probability(value)
        length = _validate_length(length)
        samples = self._lfsr.uniform(length)
        return Bitstream((samples < value).astype(np.uint8))


class CounterSNG(StochasticNumberGenerator):
    """Deterministic ramp comparator: evenly spread unary coding.

    Produces exactly ``round(p * length)`` ones.  Useful as the
    zero-variance baseline when isolating transmission errors from
    randomizer noise.
    """

    def generate(self, value: float, length: int) -> Bitstream:
        value = _validate_probability(value)
        length = _validate_length(length)
        return Bitstream.exact(value, length)


class SobolLikeSNG(StochasticNumberGenerator):
    """Bit-reversed counter comparator (1-D van der Corput sequence).

    Low-discrepancy streams converge as ``O(1/N)`` instead of the
    Bernoulli ``O(1/sqrt(N))`` while remaining usable as independent
    inputs when different *bit_offset* values are chosen.
    """

    def __init__(self, bits: int = 16, bit_offset: int = 0):
        if not 1 <= bits <= 30:
            raise ConfigurationError(f"bits must be in [1, 30], got {bits!r}")
        if bit_offset < 0:
            raise ConfigurationError("bit_offset must be >= 0")
        self.bits = bits
        self.bit_offset = bit_offset

    def _van_der_corput(self, count: int) -> np.ndarray:
        indices = np.arange(self.bit_offset, self.bit_offset + count, dtype=np.uint64)
        values = np.zeros(count, dtype=float)
        scale = 0.5
        for _ in range(self.bits):
            values += (indices & 1) * scale
            indices >>= np.uint64(1)
            scale *= 0.5
        return values

    def generate(self, value: float, length: int) -> Bitstream:
        value = _validate_probability(value)
        length = _validate_length(length)
        samples = self._van_der_corput(length)
        return Bitstream((samples < value).astype(np.uint8))


class ChaoticLaserBitSource(StochasticNumberGenerator):
    """Logistic-map model of a chaotic-laser random bit generator [20].

    Zhang et al. demonstrated 640 Gbit/s physical random bit generation
    from a broadband chaotic semiconductor laser; the paper proposes such
    a source as the optical-domain randomizer.  The laser intensity
    dynamics are modeled with the fully chaotic logistic map
    ``I_{k+1} = 4 I_k (1 - I_k)``, whose invariant (arcsine) density is
    mapped to uniform samples through ``u = (2/pi) * asin(sqrt(I))``;
    uniform samples then drive a comparator as in the electronic SNG.

    Parameters
    ----------
    seed_intensity:
        Initial normalized intensity in (0, 1), excluding the fixed
        points {0, 0.5, 0.75, 1}.
    warmup:
        Iterations discarded before use (transient removal).
    """

    _FIXED_POINTS = (0.0, 0.5, 0.75, 1.0)

    def __init__(self, seed_intensity: float = 0.123456789, warmup: int = 64):
        if not 0.0 < seed_intensity < 1.0:
            raise ConfigurationError(
                f"seed_intensity must be in (0, 1), got {seed_intensity!r}"
            )
        if any(
            math.isclose(seed_intensity, fp, abs_tol=1e-12)
            for fp in self._FIXED_POINTS
        ):
            raise ConfigurationError(
                "seed_intensity must avoid the logistic-map fixed points"
            )
        if warmup < 0:
            raise ConfigurationError("warmup must be >= 0")
        self._intensity = float(seed_intensity)
        for _ in range(warmup):
            self._advance()

    def _advance(self) -> float:
        self._intensity = 4.0 * self._intensity * (1.0 - self._intensity)
        # Guard against numerical collapse onto the absorbing endpoints.
        if self._intensity <= 1e-15 or self._intensity >= 1.0 - 1e-15:
            self._intensity = 0.31830988618  # re-inject (1/pi)
        return self._intensity

    def uniform(self, count: int) -> np.ndarray:
        """*count* approximately uniform samples from the chaotic orbit."""
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count!r}")
        samples = np.empty(count, dtype=float)
        for i in range(count):
            samples[i] = self._advance()
        return (2.0 / math.pi) * np.arcsin(np.sqrt(samples))

    def random_bits(self, count: int) -> np.ndarray:
        """Raw random bits (uniform samples thresholded at 1/2)."""
        return (self.uniform(count) < 0.5).astype(np.uint8)

    def generate(self, value: float, length: int) -> Bitstream:
        value = _validate_probability(value)
        length = _validate_length(length)
        samples = self.uniform(length)
        return Bitstream((samples < value).astype(np.uint8))


def make_independent_sngs(
    count: int,
    kind: str = "lfsr",
    width: int = 16,
    base_seed: int = 0x5EED,
) -> list:
    """Build *count* decorrelated SNGs of the given *kind*.

    ``kind`` is one of ``"lfsr"``, ``"counter"``, ``"sobol"``,
    ``"chaotic"``.  Decorrelation uses distinct seeds / offsets.
    """
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count!r}")
    generators: list = []
    for index in range(count):
        if kind == "lfsr":
            seed = (base_seed + 7919 * index) % ((1 << width) - 1) or 1
            generators.append(ComparatorSNG(width=width, seed=seed))
        elif kind == "counter":
            generators.append(CounterSNG())
        elif kind == "sobol":
            generators.append(SobolLikeSNG(bits=width, bit_offset=977 * index))
        elif kind == "chaotic":
            generators.append(
                ChaoticLaserBitSource(
                    seed_intensity=(0.1 + 0.779 * index / max(count, 1)) % 0.99
                    + 0.001,
                    warmup=64 + index,
                )
            )
        else:
            raise ConfigurationError(f"unknown SNG kind {kind!r}")
    return generators


__all__.append("make_independent_sngs")

"""Stochastic number generators (SNG): the randomizer interface.

An SNG converts a number ``p`` in ``[0, 1]`` into a stochastic bit-stream
whose fraction of ones approximates ``p`` (paper Fig. 1(a)).  Several
generators are provided:

* :class:`ComparatorSNG` — the classical LFSR + comparator randomizer.
* :class:`CounterSNG` — a deterministic ramp comparator (unary coding);
  zero random error, but streams are maximally correlated.
* :class:`SobolLikeSNG` — a bit-reversed-counter (van der Corput)
  comparator; low-discrepancy streams with ``O(1/N)`` error.
* :class:`ChaoticLaserBitSource` — a logistic-map model of the chaotic
  semiconductor laser RNG of Zhang et al. [20], the paper's proposed
  optical randomizer (Section V-D / future work (iii)).

Every generator is **array-first**: besides the scalar
:meth:`~StochasticNumberGenerator.generate`, each supports
:meth:`~StochasticNumberGenerator.generate_batch`, producing a
``(B, L)`` uint8 bit tensor for a whole vector of values in one
vectorized pass.  The batched evaluation engine
(:mod:`repro.simulation.engine`) builds on these plus the seed-derivation
helpers (:func:`derive_lfsr_seeds` and friends), which both the scalar
factory :func:`make_independent_sngs` and the engine share so the two
paths stay bit-for-bit identical.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from ..errors import ConfigurationError
from .bitstream import Bitstream, exact_bit_matrix, validate_probability_vector
from .lfsr import LFSR

__all__ = [
    "StochasticNumberGenerator",
    "ComparatorSNG",
    "CounterSNG",
    "SobolLikeSNG",
    "ChaoticLaserBitSource",
    "SNG_KINDS",
    "make_independent_sngs",
    "derive_lfsr_seeds",
    "derive_sobol_offsets",
    "derive_chaotic_intensities",
    "chaotic_warmup",
    "chaotic_orbit",
    "van_der_corput",
]

SNG_KINDS = ("lfsr", "counter", "sobol", "chaotic")
"""The randomizer kinds :func:`make_independent_sngs` and the engine accept."""


def _validate_probability(value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"value must be in [0, 1], got {value!r}")
    return float(value)


def _validate_length(length: int) -> int:
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length!r}")
    return int(length)


class StochasticNumberGenerator(abc.ABC):
    """Interface of all randomizers: value in [0, 1] -> bit-stream."""

    @abc.abstractmethod
    def generate(self, value: float, length: int) -> Bitstream:
        """Produce a stream of *length* bits encoding *value*."""

    def generate_many(self, values, length: int) -> list:
        """One independent stream per value (convenience for ReSC inputs)."""
        return [self.generate(v, length) for v in values]

    def generate_batch(self, values, length: int) -> np.ndarray:
        """Encode many values at once: a ``(len(values), length)`` uint8 array.

        Stateless: every row is the stream a **freshly constructed** copy
        of this generator would emit for that value — comparator-style
        generators share one underlying sample sequence across rows, just
        as one hardware LFSR feeds many comparators.  Row ``b`` is
        bit-for-bit ``type(self)(<same config>).generate(values[b], length)``.
        """
        values = validate_probability_vector(values)
        length = _validate_length(length)
        samples = self._uniform_block(length)
        return (samples[None, :] < values[:, None]).astype(np.uint8)

    def _uniform_block(self, length: int) -> np.ndarray:
        """The comparator sample sequence from the generator's initial state."""
        raise NotImplementedError(
            f"{type(self).__name__} does not provide batched generation"
        )


class ComparatorSNG(StochasticNumberGenerator):
    """LFSR + comparator randomizer (the SNG of Qian et al. [9]).

    Each clock, the binary-encoded value is compared with the LFSR state;
    the output bit is 1 when the LFSR sample falls below the value.

    Parameters
    ----------
    width:
        LFSR width; the value is quantized to ``2**width`` levels.
    seed:
        LFSR seed; use different seeds for independent streams.
    """

    def __init__(self, width: int = 16, seed: int = 1):
        self._lfsr = LFSR(width=width, seed=seed)
        self.width = width
        self.seed = int(seed)

    def generate(self, value: float, length: int) -> Bitstream:
        value = _validate_probability(value)
        length = _validate_length(length)
        samples = self._lfsr.uniform(length)
        return Bitstream((samples < value).astype(np.uint8))

    def _uniform_block(self, length: int) -> np.ndarray:
        # A fresh register from the configured seed: stateless batching.
        return LFSR(self.width, self.seed, self._lfsr.taps).uniform(length)


class CounterSNG(StochasticNumberGenerator):
    """Deterministic ramp comparator: evenly spread unary coding.

    Produces exactly ``round(p * length)`` ones.  Useful as the
    zero-variance baseline when isolating transmission errors from
    randomizer noise.
    """

    def generate(self, value: float, length: int) -> Bitstream:
        value = _validate_probability(value)
        length = _validate_length(length)
        return Bitstream.exact(value, length)

    def generate_batch(self, values, length: int) -> np.ndarray:
        values = validate_probability_vector(values)
        length = _validate_length(length)
        return exact_bit_matrix(values, length)


def van_der_corput(indices: np.ndarray, bits: int) -> np.ndarray:
    """Base-2 van der Corput samples for an arbitrary-shape index array.

    Bit-reverses each index over *bits* bits into ``[0, 1)``; shared by
    the scalar and batched Sobol-like randomizer paths (identical
    accumulation order, hence identical floats).
    """
    indices = np.asarray(indices, dtype=np.uint64)
    values = np.zeros(indices.shape, dtype=float)
    scale = 0.5
    for _ in range(bits):
        values += (indices & np.uint64(1)) * scale
        indices = indices >> np.uint64(1)
        scale *= 0.5
    return values


class SobolLikeSNG(StochasticNumberGenerator):
    """Bit-reversed counter comparator (1-D van der Corput sequence).

    Low-discrepancy streams converge as ``O(1/N)`` instead of the
    Bernoulli ``O(1/sqrt(N))`` while remaining usable as independent
    inputs when different *bit_offset* values are chosen.
    """

    def __init__(self, bits: int = 16, bit_offset: int = 0):
        if not 1 <= bits <= 30:
            raise ConfigurationError(f"bits must be in [1, 30], got {bits!r}")
        if bit_offset < 0:
            raise ConfigurationError("bit_offset must be >= 0")
        self.bits = bits
        self.bit_offset = bit_offset

    def _van_der_corput(self, count: int) -> np.ndarray:
        indices = np.arange(
            self.bit_offset, self.bit_offset + count, dtype=np.uint64
        )
        return van_der_corput(indices, self.bits)

    def generate(self, value: float, length: int) -> Bitstream:
        value = _validate_probability(value)
        length = _validate_length(length)
        samples = self._van_der_corput(length)
        return Bitstream((samples < value).astype(np.uint8))

    def _uniform_block(self, length: int) -> np.ndarray:
        return self._van_der_corput(length)


_LOGISTIC_REINJECT = 0.31830988618  # 1/pi, off every fixed point


def _logistic_step(intensity: np.ndarray) -> np.ndarray:
    """One guarded logistic-map iteration, elementwise over any shape."""
    advanced = 4.0 * intensity * (1.0 - intensity)
    return np.where(
        (advanced <= 1e-15) | (advanced >= 1.0 - 1e-15),
        _LOGISTIC_REINJECT,
        advanced,
    )


def chaotic_orbit(intensities, warmups, length: int, return_state: bool = False):
    """Vectorized chaotic-laser sampling over many independent orbits.

    Runs the guarded logistic map for every element of *intensities*
    (any shape), discarding per-element *warmups* iterations, then maps
    *length* samples through the arcsine-to-uniform transform.  Returns
    ``intensities.shape + (length,)``; each slice is bit-for-bit the
    sequence :meth:`ChaoticLaserBitSource.uniform` produces for the same
    seed intensity and warmup.

    With ``return_state=True`` the result is ``(samples, state)`` where
    *state* holds the raw orbit intensities **after** the last sampled
    step: calling ``chaotic_orbit(state, 0, more)`` continues each orbit
    exactly where it left off — the chunked streaming runtime's resume
    hook (chaotic orbits, unlike the counter-indexed randomizers, can
    only be resumed by carrying state).
    """
    if length <= 0:
        raise ConfigurationError(f"count must be positive, got {length!r}")
    intensity = np.asarray(intensities, dtype=float).copy()
    warmups = np.broadcast_to(np.asarray(warmups, dtype=np.int64), intensity.shape)
    for iteration in range(int(warmups.max()) if warmups.size else 0):
        advanced = _logistic_step(intensity)
        intensity = np.where(iteration < warmups, advanced, intensity)
    samples = np.empty(intensity.shape + (length,), dtype=float)
    # The logistic map is a sequential recurrence: step k+1 needs step
    # k, so a per-clock loop is inherent to the chaotic source (each
    # step is vectorized across all orbits).  Every other randomizer
    # stays loop-free on the packed path.
    for slot in range(length):  # repro-lint: disable=RL009
        intensity = _logistic_step(intensity)
        samples[..., slot] = intensity
    uniforms = (2.0 / math.pi) * np.arcsin(np.sqrt(samples))
    if return_state:
        return uniforms, intensity
    return uniforms


class ChaoticLaserBitSource(StochasticNumberGenerator):
    """Logistic-map model of a chaotic-laser random bit generator [20].

    Zhang et al. demonstrated 640 Gbit/s physical random bit generation
    from a broadband chaotic semiconductor laser; the paper proposes such
    a source as the optical-domain randomizer.  The laser intensity
    dynamics are modeled with the fully chaotic logistic map
    ``I_{k+1} = 4 I_k (1 - I_k)``, whose invariant (arcsine) density is
    mapped to uniform samples through ``u = (2/pi) * asin(sqrt(I))``;
    uniform samples then drive a comparator as in the electronic SNG.

    Parameters
    ----------
    seed_intensity:
        Initial normalized intensity in (0, 1), excluding the fixed
        points {0, 0.5, 0.75, 1}.
    warmup:
        Iterations discarded before use (transient removal).
    """

    _FIXED_POINTS = (0.0, 0.5, 0.75, 1.0)

    def __init__(self, seed_intensity: float = 0.123456789, warmup: int = 64):
        if not 0.0 < seed_intensity < 1.0:
            raise ConfigurationError(
                f"seed_intensity must be in (0, 1), got {seed_intensity!r}"
            )
        if any(
            math.isclose(seed_intensity, fp, abs_tol=1e-12)
            for fp in self._FIXED_POINTS
        ):
            raise ConfigurationError(
                "seed_intensity must avoid the logistic-map fixed points"
            )
        if warmup < 0:
            raise ConfigurationError("warmup must be >= 0")
        self._seed_intensity = float(seed_intensity)
        self._warmup = int(warmup)
        self._intensity = float(seed_intensity)
        for _ in range(warmup):
            self._advance()

    def _advance(self) -> float:
        self._intensity = 4.0 * self._intensity * (1.0 - self._intensity)
        # Guard against numerical collapse onto the absorbing endpoints.
        if self._intensity <= 1e-15 or self._intensity >= 1.0 - 1e-15:
            self._intensity = _LOGISTIC_REINJECT  # re-inject (1/pi)
        return self._intensity

    def uniform(self, count: int) -> np.ndarray:
        """*count* approximately uniform samples from the chaotic orbit."""
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count!r}")
        samples = np.empty(count, dtype=float)
        for i in range(count):
            samples[i] = self._advance()
        return (2.0 / math.pi) * np.arcsin(np.sqrt(samples))

    def random_bits(self, count: int) -> np.ndarray:
        """Raw random bits (uniform samples thresholded at 1/2)."""
        return (self.uniform(count) < 0.5).astype(np.uint8)

    def generate(self, value: float, length: int) -> Bitstream:
        value = _validate_probability(value)
        length = _validate_length(length)
        samples = self.uniform(length)
        return Bitstream((samples < value).astype(np.uint8))

    def _uniform_block(self, length: int) -> np.ndarray:
        return chaotic_orbit(self._seed_intensity, self._warmup, length)


# -- seed derivation (shared by the factory and the batched engine) -----------


def derive_lfsr_seeds(base_seeds, count: int, width: int = 16) -> np.ndarray:
    """Decorrelated LFSR seeds: ``(len(base_seeds), count)`` int64 array.

    ``seed[b, i] = (base_seeds[b] + 7919 i) mod (2**width - 1)`` with the
    lock-up state 0 remapped to 1 — the factory's classic stride formula,
    vectorized over many base seeds.
    """
    base = np.atleast_1d(np.asarray(base_seeds, dtype=np.int64))
    period = (1 << width) - 1
    seeds = (base[:, None] + 7919 * np.arange(count, dtype=np.int64)) % period
    seeds[seeds == 0] = 1
    return seeds


def derive_sobol_offsets(base_seeds, count: int) -> np.ndarray:
    """Decorrelated van der Corput offsets, ``(len(base_seeds), count)``.

    Large per-channel strides plus a base-seed-dependent shift so
    distinct sweep rows sample distinct low-discrepancy windows.  The
    full 31-bit seed space is preserved (no modulus) so distinct base
    seeds never collide onto identical offsets.
    """
    base = np.atleast_1d(np.asarray(base_seeds, dtype=np.int64))
    return base[:, None] * 613 + 977 * np.arange(count, dtype=np.int64)


_MIX_MASK = (1 << 64) - 1


def _chaotic_seed_intensity(base_seed: int, index: int) -> float:
    """Deterministic (0, 1) intensity off every logistic fixed point."""
    mixed = (
        int(base_seed) * 0x9E3779B97F4A7C15
        + (int(index) + 1) * 0xD1B54A32D192ED03
    ) & _MIX_MASK
    mixed = (mixed ^ (mixed >> 31)) * 0xBF58476D1CE4E5B9 & _MIX_MASK
    fraction = (mixed >> 11) / float(1 << 53)
    intensity = 0.05 + 0.9 * fraction
    for fixed_point in ChaoticLaserBitSource._FIXED_POINTS:
        if abs(intensity - fixed_point) < 1e-9:
            intensity += 3e-9
    return intensity


def derive_chaotic_intensities(base_seeds, count: int) -> np.ndarray:
    """Seed intensities for decorrelated chaotic sources, ``(B, count)``."""
    base = np.atleast_1d(np.asarray(base_seeds, dtype=np.int64))
    return np.asarray(
        [
            [_chaotic_seed_intensity(int(b), i) for i in range(count)]
            for b in base
        ],
        dtype=float,
    )


def chaotic_warmup(index: int) -> int:
    """Per-channel warmup of the factory's chaotic sources."""
    return 64 + int(index)


def make_independent_sngs(
    count: int,
    kind: str = "lfsr",
    width: int = 16,
    base_seed: int = 0x5EED,
) -> list:
    """Build *count* decorrelated SNGs of the given *kind*.

    ``kind`` is one of ``"lfsr"``, ``"counter"``, ``"sobol"``,
    ``"chaotic"``.  Decorrelation uses distinct seeds / offsets derived
    from *base_seed* with the same :func:`derive_lfsr_seeds`-family
    helpers the batched engine uses, so scalar and batched evaluation
    stay bit-for-bit identical.
    """
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count!r}")
    generators: list = []
    if kind == "lfsr":
        seeds = derive_lfsr_seeds(base_seed, count, width)[0]
        for seed in seeds:
            generators.append(ComparatorSNG(width=width, seed=int(seed)))
    elif kind == "counter":
        generators.extend(CounterSNG() for _ in range(count))
    elif kind == "sobol":
        offsets = derive_sobol_offsets(base_seed, count)[0]
        for offset in offsets:
            generators.append(SobolLikeSNG(bits=width, bit_offset=int(offset)))
    elif kind == "chaotic":
        intensities = derive_chaotic_intensities(base_seed, count)[0]
        for index, intensity in enumerate(intensities):
            generators.append(
                ChaoticLaserBitSource(
                    seed_intensity=float(intensity),
                    warmup=chaotic_warmup(index),
                )
            )
    else:
        raise ConfigurationError(f"unknown SNG kind {kind!r}")
    return generators

"""Accuracy metrics for stochastic computations.

SC accuracy is statistical: a unipolar stream of length ``N`` estimates
its probability with standard error ``sqrt(p(1-p)/N)``.  These helpers
quantify computation error (MSE/MAE against a reference function) and
size streams for a target accuracy — the quantities behind the paper's
throughput-accuracy tradeoff discussion (Sections V-B and V-D).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy.stats import norm

from ..errors import ConfigurationError

__all__ = [
    "mean_squared_error",
    "mean_absolute_error",
    "max_absolute_error",
    "binomial_confidence_interval",
    "required_stream_length",
    "stream_error_std",
]


def _as_arrays(estimates: Sequence[float], references: Sequence[float]):
    est = np.asarray(estimates, dtype=float)
    ref = np.asarray(references, dtype=float)
    if est.shape != ref.shape:
        raise ConfigurationError(
            f"shape mismatch: {est.shape} vs {ref.shape}"
        )
    if est.size == 0:
        raise ConfigurationError("need at least one sample")
    return est, ref


def mean_squared_error(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """MSE between stochastic estimates and the reference values."""
    est, ref = _as_arrays(estimates, references)
    return float(np.mean((est - ref) ** 2))


def mean_absolute_error(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """MAE between stochastic estimates and the reference values."""
    est, ref = _as_arrays(estimates, references)
    return float(np.mean(np.abs(est - ref)))


def max_absolute_error(
    estimates: Sequence[float], references: Sequence[float]
) -> float:
    """Worst-case absolute error over the sample set."""
    est, ref = _as_arrays(estimates, references)
    return float(np.max(np.abs(est - ref)))


def stream_error_std(probability: float, length: int) -> float:
    """Standard error of a Bernoulli stream estimate:
    ``sqrt(p (1-p) / N)``."""
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError(
            f"probability must be in [0, 1], got {probability!r}"
        )
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length!r}")
    return math.sqrt(probability * (1.0 - probability) / length)


def binomial_confidence_interval(
    ones_count: int, length: int, confidence: float = 0.95
) -> tuple:
    """Normal-approximation confidence interval for a stream estimate.

    Returns ``(low, high)`` clipped to ``[0, 1]``.
    """
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length!r}")
    if not 0 <= ones_count <= length:
        raise ConfigurationError(
            f"ones_count must be in [0, {length}], got {ones_count!r}"
        )
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    p = ones_count / length
    z = float(norm.ppf(0.5 + confidence / 2.0))
    half_width = z * math.sqrt(max(p * (1.0 - p), 1e-12) / length)
    return (max(0.0, p - half_width), min(1.0, p + half_width))


def required_stream_length(
    epsilon: float, confidence: float = 0.95
) -> int:
    """Stream length for ``P(|estimate - p| < epsilon) >= confidence``.

    Uses the worst case ``p = 1/2``: ``N >= (z / (2 * epsilon))^2``.
    This is the knob of the paper's throughput-accuracy tradeoff: halving
    the tolerated error quadruples the stream length (and computation
    time), which optical transmission speed can buy back.
    """
    if epsilon <= 0.0 or epsilon >= 0.5:
        raise ConfigurationError(
            f"epsilon must be in (0, 0.5), got {epsilon!r}"
        )
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    z = float(norm.ppf(0.5 + confidence / 2.0))
    return int(math.ceil((z / (2.0 * epsilon)) ** 2))

"""Image-processing workload support (the paper's application domain).

Section II-A motivates SC with "error tolerant applications such as
image and signal processing", and Section V-C uses gamma correction as
the scaling workload.  This module provides the image-side machinery:
synthetic test charts, quality metrics, and an efficient per-pixel
kernel runner that batches identical gray levels through one stochastic
evaluation (the standard trick for LUT-style SC image pipelines).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "radial_gradient",
    "linear_ramp",
    "checkerboard",
    "quantize_levels",
    "psnr_db",
    "mean_absolute_error_image",
    "apply_pixel_kernel",
]


def _validate_size(size: int) -> int:
    if size < 2:
        raise ConfigurationError(f"size must be >= 2, got {size!r}")
    return int(size)


def radial_gradient(size: int = 64) -> np.ndarray:
    """Radial gradient chart in ``[0, 1]``, bright center, dark corners."""
    size = _validate_size(size)
    axis = np.linspace(-1.0, 1.0, size)
    xx, yy = np.meshgrid(axis, axis)
    radius = np.sqrt(xx**2 + yy**2) / np.sqrt(2.0)
    return np.clip(1.0 - radius, 0.0, 1.0)


def linear_ramp(size: int = 64) -> np.ndarray:
    """Horizontal intensity ramp in ``[0, 1]`` (gamma's classic test)."""
    size = _validate_size(size)
    row = np.linspace(0.0, 1.0, size)
    return np.tile(row, (size, 1))


def checkerboard(size: int = 64, tiles: int = 8) -> np.ndarray:
    """Checkerboard of 0.25/0.75 tiles (edge-preservation check)."""
    size = _validate_size(size)
    if tiles < 1 or tiles > size:
        raise ConfigurationError(f"tiles must be in [1, {size}], got {tiles!r}")
    cell = max(size // tiles, 1)
    idx = np.arange(size) // cell
    board = (idx[:, None] + idx[None, :]) % 2
    return np.where(board == 0, 0.25, 0.75)


def quantize_levels(image: np.ndarray, levels: int = 256) -> np.ndarray:
    """Quantize a unit-range image to ``levels`` uniform gray levels."""
    image = np.asarray(image, dtype=float)
    if np.any(image < 0.0) or np.any(image > 1.0):
        raise ConfigurationError("image values must be in [0, 1]")
    if levels < 2:
        raise ConfigurationError(f"levels must be >= 2, got {levels!r}")
    return np.round(image * (levels - 1)) / (levels - 1)


def psnr_db(reference: np.ndarray, processed: np.ndarray) -> float:
    """Peak signal-to-noise ratio (dB) for unit-range images."""
    reference = np.asarray(reference, dtype=float)
    processed = np.asarray(processed, dtype=float)
    if reference.shape != processed.shape:
        raise ConfigurationError(
            f"shape mismatch: {reference.shape} vs {processed.shape}"
        )
    mse = float(np.mean((reference - processed) ** 2))
    if mse == 0.0:
        return float("inf")
    return -10.0 * float(np.log10(mse))


def mean_absolute_error_image(
    reference: np.ndarray, processed: np.ndarray
) -> float:
    """Mean absolute per-pixel error."""
    reference = np.asarray(reference, dtype=float)
    processed = np.asarray(processed, dtype=float)
    if reference.shape != processed.shape:
        raise ConfigurationError(
            f"shape mismatch: {reference.shape} vs {processed.shape}"
        )
    return float(np.mean(np.abs(reference - processed)))


def apply_pixel_kernel(
    image: np.ndarray,
    kernel: Optional[Callable[[float], float]] = None,
    levels: Optional[int] = 64,
    batch_kernel: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """Apply a pixel *kernel* to every pixel, batching repeated levels.

    Stochastic evaluations are expensive per call; quantizing to
    *levels* gray levels and evaluating each unique level once turns an
    ``O(pixels)`` workload into ``O(levels)`` — exactly how an SC image
    pipeline would share one hardware unit across a frame.  With
    ``levels=None`` every unique value in the image is evaluated.

    Pass *batch_kernel* instead of *kernel* to map **all** unique levels
    in one vectorized call (``values -> mapped values``) — the hook the
    batched evaluation engine plugs into (see
    :meth:`repro.session.Evaluator.apply_kernel`).
    """
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ConfigurationError("image must be 2-D")
    if np.any(image < 0.0) or np.any(image > 1.0):
        raise ConfigurationError("image values must be in [0, 1]")
    if (kernel is None) == (batch_kernel is None):
        raise ConfigurationError(
            "pass exactly one of kernel= or batch_kernel="
        )
    working = image if levels is None else quantize_levels(image, levels)
    unique = np.unique(working)
    if batch_kernel is not None:
        mapped = np.asarray(batch_kernel(unique), dtype=float)
        if mapped.shape != unique.shape:
            raise ConfigurationError(
                f"batch_kernel must map {unique.shape} values to as many "
                f"outputs, got {mapped.shape}"
            )
    else:
        mapped = np.asarray(
            [float(kernel(float(value))) for value in unique], dtype=float
        )
    # np.unique returns sorted values, so searchsorted recovers each
    # pixel's LUT row in one vectorized pass.
    return mapped[np.searchsorted(unique, working)]

"""Electronic stochastic-computing substrate.

Implements the SC background of the paper's Section II-A: stochastic
bit-streams, number generators (SNG), elementary stochastic logic,
Bernstein polynomial machinery, and the ReSC architecture of Qian et
al. [9] that the optical circuit transposes.  This subpackage is pure
numpy and independent of the photonics stack.
"""

from .bitstream import Bitstream
from .lfsr import LFSR, MAXIMAL_TAPS
from .sng import (
    ChaoticLaserBitSource,
    ComparatorSNG,
    CounterSNG,
    SobolLikeSNG,
    StochasticNumberGenerator,
)
from .elements import (
    scaled_add,
    stochastic_and,
    stochastic_mux,
    stochastic_not,
    stochastic_or,
    stochastic_xor,
)
from .polynomial import PowerPolynomial
from .bernstein import (
    BernsteinPolynomial,
    bernstein_basis,
    degree_elevation,
    power_to_bernstein,
)
from .resc import ReSCUnit, ReSCResult
from .derandomizer import Derandomizer, SaturatingCounter
from .accuracy import (
    binomial_confidence_interval,
    mean_absolute_error,
    mean_squared_error,
    required_stream_length,
)
from . import correlation, functions, image

__all__ = [
    "Bitstream",
    "LFSR",
    "MAXIMAL_TAPS",
    "StochasticNumberGenerator",
    "ComparatorSNG",
    "CounterSNG",
    "SobolLikeSNG",
    "ChaoticLaserBitSource",
    "stochastic_and",
    "stochastic_or",
    "stochastic_xor",
    "stochastic_not",
    "stochastic_mux",
    "scaled_add",
    "PowerPolynomial",
    "BernsteinPolynomial",
    "bernstein_basis",
    "power_to_bernstein",
    "degree_elevation",
    "ReSCUnit",
    "ReSCResult",
    "Derandomizer",
    "SaturatingCounter",
    "mean_squared_error",
    "mean_absolute_error",
    "binomial_confidence_interval",
    "required_stream_length",
    "functions",
    "correlation",
    "image",
]

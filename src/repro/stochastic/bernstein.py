"""Bernstein polynomial machinery (paper Eq. 1).

The ReSC unit evaluates functions written in the Bernstein form

``B(x) = sum_i b_i * B_{i,n}(x)``,  ``B_{i,n}(x) = C(n,i) x^i (1-x)^(n-i)``

because the architecture realizes exactly this expression: the adder's
ones-count ``k`` follows a binomial distribution ``Binomial(n, x)`` whose
probability mass at ``k`` *is* ``B_{k,n}(x)``, and the multiplexer picks
coefficient stream ``z_k`` with that probability.  SC-implementability
requires every ``b_i`` to lie in ``[0, 1]``; degree elevation can repair
out-of-range coefficients without changing the function.
"""

from __future__ import annotations

from typing import Callable, Sequence, Union

import numpy as np
from scipy.special import comb

from ..errors import ConfigurationError, DesignInfeasibleError
from ..units import ArrayLike
from .polynomial import PowerPolynomial

__all__ = [
    "bernstein_basis",
    "BernsteinPolynomial",
    "power_to_bernstein",
    "bernstein_to_power",
    "degree_elevation",
]


def bernstein_basis(i: int, n: int, x: ArrayLike) -> ArrayLike:
    """Bernstein basis polynomial ``B_{i,n}(x) = C(n,i) x^i (1-x)^(n-i)``."""
    if not 0 <= i <= n:
        raise ConfigurationError(f"need 0 <= i <= n, got i={i}, n={n}")
    x = np.asarray(x, dtype=float)
    value = comb(n, i, exact=True) * x**i * (1.0 - x) ** (n - i)
    if value.ndim == 0:
        return float(value)
    return value


class BernsteinPolynomial:
    """A polynomial in Bernstein form: the ReSC/optical-circuit program.

    Parameters
    ----------
    coefficients:
        Bernstein coefficients ``(b_0, ..., b_n)``.

    Notes
    -----
    The coefficients directly program the hardware: coefficient ``b_i``
    becomes the probability of coefficient stream ``z_i`` (electronic
    ReSC) or the duty cycle of MRR modulator ``i`` (optical circuit).
    """

    def __init__(self, coefficients: Sequence[float]):
        coeffs = np.asarray(list(coefficients), dtype=float)
        if coeffs.ndim != 1 or coeffs.size == 0:
            raise ConfigurationError("need a non-empty 1-D coefficient list")
        self._coefficients = coeffs
        self._coefficients.setflags(write=False)

    @property
    def coefficients(self) -> np.ndarray:
        """Bernstein coefficients (read-only)."""
        return self._coefficients

    @property
    def degree(self) -> int:
        """Bernstein degree ``n``."""
        return self._coefficients.size - 1

    def __call__(self, x: ArrayLike) -> ArrayLike:
        """Evaluate Eq. 1 at *x* (de Casteljau for numerical stability)."""
        x = np.asarray(x, dtype=float)
        scalar = x.ndim == 0
        x = np.atleast_1d(x)
        # de Casteljau: repeated convex combination of the coefficients.
        beta = np.broadcast_to(
            self._coefficients[:, None], (self._coefficients.size, x.size)
        ).copy()
        for r in range(self.degree):
            beta = beta[:-1] * (1.0 - x) + beta[1:] * x
        result = beta[0]
        if scalar:
            return float(result[0])
        return result

    def __eq__(self, other) -> bool:
        if not isinstance(other, BernsteinPolynomial):
            return NotImplemented
        return self._coefficients.shape == other._coefficients.shape and bool(
            np.allclose(self._coefficients, other._coefficients)
        )

    def __repr__(self) -> str:
        terms = ", ".join(f"{c:g}" for c in self._coefficients)
        return f"BernsteinPolynomial([{terms}])"

    # -- SC implementability ---------------------------------------------------

    def is_sc_implementable(self, tolerance: float = 1e-12) -> bool:
        """True when every coefficient is a probability (in ``[0, 1]``)."""
        return bool(
            np.all(self._coefficients >= -tolerance)
            and np.all(self._coefficients <= 1.0 + tolerance)
        )

    def elevated(self, times: int = 1) -> "BernsteinPolynomial":
        """Degree-elevated copy (same function, degree ``n + times``)."""
        if times < 0:
            raise ConfigurationError(f"times must be >= 0, got {times!r}")
        coeffs = self._coefficients
        for _ in range(times):
            coeffs = degree_elevation(coeffs)
        return BernsteinPolynomial(coeffs)

    def elevated_until_implementable(
        self, max_degree: int = 64
    ) -> "BernsteinPolynomial":
        """Elevate until all coefficients land in ``[0, 1]``.

        Degree elevation contracts the coefficients toward the function's
        range; if the function maps ``[0,1]`` into ``[0,1]`` strictly, a
        finite elevation always succeeds.  Raises
        :class:`DesignInfeasibleError` when *max_degree* is reached first.
        """
        current = self
        while not current.is_sc_implementable():
            if current.degree >= max_degree:
                raise DesignInfeasibleError(
                    "coefficients still outside [0, 1] at degree "
                    f"{current.degree}; the function likely leaves [0, 1]"
                )
            current = current.elevated()
        return current

    # -- conversions -------------------------------------------------------------

    def to_power(self) -> PowerPolynomial:
        """Convert to the power basis."""
        return PowerPolynomial(bernstein_to_power(self._coefficients))

    @classmethod
    def from_power(
        cls, polynomial: Union[PowerPolynomial, Sequence[float]]
    ) -> "BernsteinPolynomial":
        """Exact basis conversion from power form (same degree)."""
        if isinstance(polynomial, PowerPolynomial):
            coefficients = polynomial.coefficients
        else:
            coefficients = np.asarray(list(polynomial), dtype=float)
        return cls(power_to_bernstein(coefficients))

    @classmethod
    def from_function(
        cls,
        function: Callable[[np.ndarray], np.ndarray],
        degree: int,
        method: str = "least_squares",
        samples: int = 513,
    ) -> "BernsteinPolynomial":
        """Approximate an arbitrary continuous function on ``[0, 1]``.

        ``method="operator"`` uses the Bernstein operator
        (``b_i = f(i/n)``): uniformly convergent and automatically
        SC-implementable for ``f([0,1]) ⊆ [0,1]``, but only first-order
        accurate.  ``method="least_squares"`` solves the *bounded*
        least-squares problem with ``0 <= b_i <= 1`` (the approach of
        Qian et al. [9]), so the result is SC-implementable by
        construction while being markedly more accurate than the
        operator.
        """
        if degree < 0:
            raise ConfigurationError(f"degree must be >= 0, got {degree!r}")
        if method == "operator":
            nodes = np.arange(degree + 1) / max(degree, 1)
            values = np.asarray(function(nodes), dtype=float)
            return cls(values)
        if method == "least_squares":
            from scipy.optimize import lsq_linear

            grid = np.linspace(0.0, 1.0, samples)
            basis = np.stack(
                [bernstein_basis(i, degree, grid) for i in range(degree + 1)],
                axis=1,
            )
            target = np.asarray(function(grid), dtype=float)
            solution = lsq_linear(basis, target, bounds=(0.0, 1.0))
            if not solution.success:  # pragma: no cover - solver failure
                raise DesignInfeasibleError(
                    "bounded least-squares fit failed: " + solution.message
                )
            return cls(np.clip(solution.x, 0.0, 1.0))
        raise ConfigurationError(f"unknown method {method!r}")


def power_to_bernstein(power_coefficients: Sequence[float]) -> np.ndarray:
    """Exact power-to-Bernstein conversion (same degree).

    ``b_i = sum_{k=0}^{i} [C(i,k) / C(n,k)] a_k``

    Reproduces the paper's Fig. 1(b) example: ``f1`` with power
    coefficients (1/4, 9/8, -15/8, 5/4) maps to (2/8, 5/8, 3/8, 6/8).
    """
    a = np.asarray(list(power_coefficients), dtype=float)
    if a.ndim != 1 or a.size == 0:
        raise ConfigurationError("need a non-empty 1-D coefficient list")
    n = a.size - 1
    b = np.zeros(n + 1)
    for i in range(n + 1):
        for k in range(i + 1):
            b[i] += comb(i, k, exact=True) / comb(n, k, exact=True) * a[k]
    return b


def bernstein_to_power(bernstein_coefficients: Sequence[float]) -> np.ndarray:
    """Exact Bernstein-to-power conversion (inverse of
    :func:`power_to_bernstein`).

    ``a_k = C(n,k) * sum_{i=0}^{k} (-1)^(k-i) C(k,i) b_i``
    """
    b = np.asarray(list(bernstein_coefficients), dtype=float)
    if b.ndim != 1 or b.size == 0:
        raise ConfigurationError("need a non-empty 1-D coefficient list")
    n = b.size - 1
    a = np.zeros(n + 1)
    for k in range(n + 1):
        total = 0.0
        for i in range(k + 1):
            total += (-1) ** (k - i) * comb(k, i, exact=True) * b[i]
        a[k] = comb(n, k, exact=True) * total
    return a


def degree_elevation(bernstein_coefficients: Sequence[float]) -> np.ndarray:
    """One step of Bernstein degree elevation (``n -> n + 1``).

    ``b'_i = (i / (n+1)) b_{i-1} + (1 - i/(n+1)) b_i`` with the
    conventions ``b_{-1} = b_{n+1} = 0``.  The represented function is
    unchanged; the coefficients move toward the function's value range.
    """
    b = np.asarray(list(bernstein_coefficients), dtype=float)
    if b.ndim != 1 or b.size == 0:
        raise ConfigurationError("need a non-empty 1-D coefficient list")
    n = b.size - 1
    elevated = np.zeros(n + 2)
    for i in range(n + 2):
        left = b[i - 1] if 1 <= i <= n + 1 else 0.0
        right = b[i] if i <= n else 0.0
        weight = i / (n + 1)
        elevated[i] = weight * left + (1.0 - weight) * right
    return elevated

"""Stochastic bit-streams: the data representation of SC.

In stochastic computing a number ``p`` in ``[0, 1]`` is represented by a
random bit-stream whose fraction of ones equals ``p`` (unipolar coding,
the coding used throughout the paper).  The :class:`Bitstream` value class
wraps a numpy array of 0/1 values with the SC-specific operations:
probability estimation, stream algebra and format conversion.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Bitstream",
    "exact_bit_matrix",
    "exact_bit_window",
    "validate_probability_vector",
]


def validate_probability_vector(values) -> np.ndarray:
    """A non-empty 1-D float array of probabilities (NaN rejected)."""
    values = np.atleast_1d(np.asarray(values, dtype=float))
    if values.ndim != 1 or values.size == 0:
        raise ConfigurationError("values must be a non-empty 1-D array")
    if not np.all((values >= 0.0) & (values <= 1.0)):  # also rejects NaN
        raise ConfigurationError("values must be in [0, 1]")
    return values


def exact_bit_matrix(values, length: int) -> np.ndarray:
    """Deterministic evenly-spread streams for many values at once.

    Row ``b`` is bit-for-bit :meth:`Bitstream.exact` of ``values[b]``:
    ``round(p * length)`` ones spread evenly over the stream.  Returns a
    ``(len(values), length)`` uint8 array — the batched counter/unary
    randomizer of the evaluation engine.
    """
    values = validate_probability_vector(values)
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length!r}")
    ones = np.round(values * length).astype(np.int64)
    positions = (np.arange(length, dtype=np.int64)[None, :] * ones[:, None]) // length
    prepend = np.where(ones > 0, -1, 0)[:, None]
    bits = np.diff(positions, axis=1, prepend=prepend) > 0
    return bits.astype(np.uint8)


def exact_bit_window(values, length: int, start: int, stop: int) -> np.ndarray:
    """Columns ``[start, stop)`` of :func:`exact_bit_matrix`, tile-sized.

    The evenly-spread stream's bit at clock ``i`` depends only on the
    integer positions at ``i - 1`` and ``i``, so any window can be
    produced without materializing the full ``(len(values), length)``
    matrix — the counter randomizer's hook for the chunked streaming
    runtime (bounded memory for ``length >> 2**20``).
    """
    values = validate_probability_vector(values)
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length!r}")
    if not 0 <= start < stop <= length:
        raise ConfigurationError(
            f"window [{start}, {stop}) must lie inside [0, {length})"
        )
    ones = np.round(values * length).astype(np.int64)
    indices = np.arange(start, stop, dtype=np.int64)
    positions = (indices[None, :] * ones[:, None]) // length
    # At start == 0 this floor-divides to -1 whenever ones > 0 (and 0
    # when ones == 0), reproducing exact_bit_matrix's first-bit prepend.
    prepend = ((start - 1) * ones[:, None]) // length
    bits = np.diff(positions, axis=1, prepend=prepend) > 0
    return bits.astype(np.uint8)


class Bitstream:
    """An immutable unipolar stochastic bit-stream.

    Parameters
    ----------
    bits:
        Iterable of 0/1 values (ints, bools, or a numpy array).

    Examples
    --------
    >>> stream = Bitstream([0, 1, 1, 0, 1, 0, 0, 0])
    >>> stream.probability
    0.375
    """

    __slots__ = ("_bits",)

    def __init__(self, bits: Union[Iterable[int], np.ndarray]):
        array = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
        if array.ndim != 1:
            raise ConfigurationError("a bit-stream must be one-dimensional")
        if array.size == 0:
            raise ConfigurationError("a bit-stream must contain at least one bit")
        if not np.all((array == 0) | (array == 1)):
            raise ConfigurationError("bit-stream values must be 0 or 1")
        self._bits = array.astype(np.uint8)
        self._bits.setflags(write=False)

    # -- basic protocol -------------------------------------------------------

    def __len__(self) -> int:
        return int(self._bits.size)

    def __iter__(self):
        return iter(self._bits.tolist())

    def __getitem__(self, index):
        result = self._bits[index]
        if isinstance(index, slice):
            return Bitstream(result)
        return int(result)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Bitstream):
            return NotImplemented
        return self._bits.shape == other._bits.shape and bool(
            np.all(self._bits == other._bits)
        )

    def __hash__(self) -> int:
        return hash(self._bits.tobytes())

    def __repr__(self) -> str:
        preview = "".join(str(b) for b in self._bits[:16].tolist())
        ellipsis = "..." if len(self) > 16 else ""
        return (
            f"Bitstream({preview}{ellipsis}, len={len(self)}, "
            f"p={self.probability:.4f})"
        )

    # -- SC semantics ----------------------------------------------------------

    @property
    def bits(self) -> np.ndarray:
        """The underlying read-only uint8 array."""
        return self._bits

    @property
    def ones_count(self) -> int:
        """Number of ones in the stream (the de-randomizer's counter value)."""
        return int(self._bits.sum())

    @property
    def probability(self) -> float:
        """Estimated value: fraction of ones (unipolar decoding)."""
        return self.ones_count / len(self)

    # -- algebra ----------------------------------------------------------------

    def __and__(self, other: "Bitstream") -> "Bitstream":
        """Bit-wise AND — stochastic multiplication for independent streams."""
        self._check_compatible(other)
        return Bitstream(self._bits & other._bits)

    def __or__(self, other: "Bitstream") -> "Bitstream":
        self._check_compatible(other)
        return Bitstream(self._bits | other._bits)

    def __xor__(self, other: "Bitstream") -> "Bitstream":
        self._check_compatible(other)
        return Bitstream(self._bits ^ other._bits)

    def __invert__(self) -> "Bitstream":
        """Bit-wise NOT — computes ``1 - p``."""
        return Bitstream(1 - self._bits)

    def _check_compatible(self, other: "Bitstream") -> None:
        if not isinstance(other, Bitstream):
            raise ConfigurationError("operand must be a Bitstream")
        if len(other) != len(self):
            raise ConfigurationError(
                f"stream lengths differ: {len(self)} vs {len(other)}"
            )

    # -- constructors -------------------------------------------------------------

    @classmethod
    def from_probability(
        cls,
        probability: float,
        length: int,
        rng: np.random.Generator,
    ) -> "Bitstream":
        """Bernoulli stream of given *probability* (ideal randomizer)."""
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {probability!r}"
            )
        if length <= 0:
            raise ConfigurationError(f"length must be positive, got {length!r}")
        return cls((rng.random(length) < probability).astype(np.uint8))

    @classmethod
    def exact(cls, probability: float, length: int) -> "Bitstream":
        """Deterministic stream whose ones count is ``round(p * length)``.

        The ones are spread evenly (low-discrepancy unary coding), which is
        useful for exact-value tests and the counter-based SNG baseline.
        """
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {probability!r}"
            )
        if length <= 0:
            raise ConfigurationError(f"length must be positive, got {length!r}")
        # `positions` in the shared helper increments exactly
        # ``round(p * length)`` times across the stream.
        return cls(exact_bit_matrix([probability], length)[0])

    def resampled(self, length: int, rng: np.random.Generator) -> "Bitstream":
        """New Bernoulli stream with this stream's probability."""
        return Bitstream.from_probability(self.probability, length, rng)

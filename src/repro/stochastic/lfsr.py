"""Linear-feedback shift registers: the classical SC pseudo-random source.

Electronic stochastic number generators (Fig. 1(a) of the paper, after
Qian et al. [9]) compare a binary input against the state of a
maximal-period LFSR.  This module implements a Fibonacci LFSR with the
standard maximal-length tap sets for register widths 3..24.

A maximal-length LFSR visits every non-zero state exactly once per
period, so the stream emitted from any seed is a contiguous window of
one canonical cycle.  The module caches that cycle per ``(width, taps)``
and serves ``states()`` — and the batched windows the evaluation engine
needs — by array slicing instead of per-bit Python stepping.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["LFSR", "MAXIMAL_TAPS", "lfsr_state_windows", "lfsr_uniform_windows"]

MAXIMAL_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
}
"""Maximal-period XOR tap positions (1-based, MSB first) per width."""

_TABLE_MAX_WIDTH = 20
"""Widest register for which the full-period cycle is cached (1M states)."""

_CYCLE_CACHE: Dict[
    Tuple[int, Tuple[int, ...]], Tuple[np.ndarray, np.ndarray, np.ndarray]
] = {}
_CYCLE_LOCK = threading.Lock()


def _cycle_tables(
    width: int, taps: Tuple[int, ...]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(cycle, position, uniform)`` for the orbit of state 1.

    ``cycle[k]`` is the ``(k + 1)``-th successor of state 1 (the orbit
    closes with ``cycle[-1] == 1``); ``position`` maps a state to its
    index in ``cycle`` (-1 for states off the orbit); ``uniform`` is the
    cycle pre-scaled to ``(0, 1)`` comparator samples.

    Tap sets without the width tap make the update map non-injective, so
    the walk from state 1 may be rho-shaped (a tail into a loop that
    never revisits 1).  Such orbits are NOT a cycle and cannot back a
    wrap-around table: the cache then records an empty cycle, which
    sends every seed down the per-step fallback.

    Built once under the module lock: thread-backend shards warm the
    cache concurrently, and the ~1M-state walk is expensive enough
    that racing duplicate builds (and a torn publish) must not happen.
    """
    key = (width, taps)
    cached = _CYCLE_CACHE.get(key)
    if cached is not None:
        return cached
    with _CYCLE_LOCK:
        cached = _CYCLE_CACHE.get(key)
        if cached is not None:
            return cached
        mask = (1 << width) - 1
        states = np.arange(1 << width, dtype=np.uint32)
        feedback = np.zeros_like(states)
        for tap in taps:
            feedback ^= (states >> np.uint32(tap - 1)) & np.uint32(1)
        successor = ((states << np.uint32(1)) | feedback) & np.uint32(mask)
        succ_list = successor.tolist()
        orbit = []
        closed = False
        state = succ_list[1]
        for _ in range(mask):
            orbit.append(state)
            if state == 1:
                closed = True
                break
            state = succ_list[state]
        if not closed:
            orbit = []
        cycle = np.asarray(orbit, dtype=np.uint32)
        position = np.full(1 << width, -1, dtype=np.int64)
        position[cycle] = np.arange(cycle.size, dtype=np.int64)
        # Pre-scaled comparator samples: the float cycle is what both
        # the scalar `uniform` path and the batched gathers compute.
        uniform = cycle.astype(float) / float(1 << width)
        _CYCLE_CACHE[key] = (cycle, position, uniform)
        return _CYCLE_CACHE[key]


def _window_indices(
    seeds,
    count: int,
    width: int,
    taps: Optional[Sequence[int]],
    offset: int = 0,
) -> tuple:
    """``(indices, cycle, uniform)`` for per-seed windows of the cycle."""
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count!r}")
    if offset < 0:
        raise ConfigurationError(f"offset must be >= 0, got {offset!r}")
    taps = _resolve_taps(width, taps)
    seeds = np.asarray(seeds, dtype=np.int64)
    if np.any(seeds < 1) or np.any(seeds >= (1 << width)):
        raise ConfigurationError(
            f"seeds must be in [1, 2**{width} - 1]"
        )
    cycle, position, uniform = _cycle_tables(width, taps)
    starts = position[seeds]
    if np.any(starts < 0):
        raise ConfigurationError(
            "seed lies outside the LFSR state cycle (non-maximal taps); "
            "use LFSR.states for such seeds"
        )
    # int64 offsets + take(mode="wrap") beat an explicit modulo on the
    # large (batch, channels, length) index tensors of the engine.
    indices = starts[..., None] + 1 + offset + np.arange(count, dtype=np.int64)
    return indices, cycle, uniform


def _stepped_windows(
    seeds: np.ndarray,
    count: int,
    width: int,
    taps: Optional[Sequence[int]],
    offset: int = 0,
) -> np.ndarray:
    """Per-seed stepping fallback for registers too wide to cache."""
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count!r}")
    if offset < 0:
        raise ConfigurationError(f"offset must be >= 0, got {offset!r}")
    seeds = np.asarray(seeds, dtype=np.int64)
    out = np.empty(seeds.shape + (count,), dtype=np.uint32)
    for index in np.ndindex(seeds.shape):
        register = LFSR(width, int(seeds[index]), taps)
        if offset:
            register.states(offset)
        out[index] = register.states(count)
    return out


def lfsr_state_windows(
    seeds,
    count: int,
    width: int,
    taps: Optional[Sequence[int]] = None,
    offset: int = 0,
) -> np.ndarray:
    """The next *count* states after each seed, as a ``seeds.shape + (count,)`` array.

    Vectorized across any number of seeds via the cached full-period
    cycle: each output row is bit-for-bit the sequence
    ``LFSR(width, seed).states(count)`` would produce.  With *offset*
    the window starts ``offset`` clocks after the seed — the resume hook
    of the chunked streaming runtime (``offset=k`` returns elements
    ``[k, k + count)`` of the ``offset=0`` stream).  Registers wider
    than the cache limit take a per-seed stepping fallback (correct but
    slow).  The workhorse behind the batched evaluation engine.
    """
    if width > _TABLE_MAX_WIDTH:
        return _stepped_windows(seeds, count, width, taps, offset=offset)
    indices, cycle, _ = _window_indices(seeds, count, width, taps, offset=offset)
    return cycle.take(indices, mode="wrap")


def lfsr_uniform_windows(
    seeds,
    count: int,
    width: int,
    taps: Optional[Sequence[int]] = None,
    offset: int = 0,
) -> np.ndarray:
    """Comparator samples in ``(0, 1)`` for each seed's window.

    Bit-for-bit ``LFSR(width, seed).uniform(count)`` per row, gathered
    from the pre-scaled float cycle in one pass (stepping fallback for
    registers wider than the cache limit).  *offset* selects a later
    window of the same stream, exactly like :func:`lfsr_state_windows`.
    """
    if width > _TABLE_MAX_WIDTH:
        states = _stepped_windows(seeds, count, width, taps, offset=offset)
        return states.astype(float) / float(1 << width)
    indices, _, uniform = _window_indices(seeds, count, width, taps, offset=offset)
    return uniform.take(indices, mode="wrap")


def _resolve_taps(
    width: int, taps: Optional[Sequence[int]]
) -> Tuple[int, ...]:
    """Validated tap tuple for *width* (defaulting to the maximal set)."""
    if width < 2:
        raise ConfigurationError(f"width must be >= 2, got {width!r}")
    if taps is None:
        if width not in MAXIMAL_TAPS:
            raise ConfigurationError(
                f"no built-in maximal taps for width {width}; "
                "pass taps= explicitly"
            )
        taps = MAXIMAL_TAPS[width]
    if not all(1 <= t <= width for t in taps):
        raise ConfigurationError(
            f"tap positions must be in [1, {width}], got {taps!r}"
        )
    return tuple(sorted(set(int(t) for t in taps)))


class LFSR:
    """Fibonacci LFSR over GF(2) with maximal-length default taps.

    Parameters
    ----------
    width:
        Register width in bits (3..24 for the built-in tap table).
    seed:
        Initial state, any value in ``[1, 2**width - 1]`` (zero is the
        lock-up state of a XOR LFSR and is rejected).
    taps:
        Optional explicit tap positions (1-based, counted from the MSB
        side like the classical app-note convention).  Defaults to the
        maximal-period set for *width*.
    """

    def __init__(
        self,
        width: int,
        seed: int = 1,
        taps: Optional[Sequence[int]] = None,
    ):
        resolved = _resolve_taps(width, taps)
        if not 1 <= seed < (1 << width):
            raise ConfigurationError(
                f"seed must be in [1, 2**{width} - 1], got {seed!r}"
            )
        self.width = int(width)
        self.taps: Tuple[int, ...] = resolved
        self._state = int(seed)
        self._seed = int(seed)

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    @property
    def period(self) -> int:
        """Period of a maximal-length sequence: ``2**width - 1``."""
        return (1 << self.width) - 1

    def reset(self) -> None:
        """Return to the seed state."""
        self._state = self._seed

    def step(self) -> int:
        """Advance one clock; returns the new state.

        Taps are 1-based bit positions (XAPP052 convention): tap ``t``
        reads register bit ``t - 1``, with bit ``width - 1`` (tap
        ``width``) the bit shifted out each clock.
        """
        feedback = 0
        for tap in self.taps:
            feedback ^= (self._state >> (tap - 1)) & 1
        self._state = ((self._state << 1) | feedback) & ((1 << self.width) - 1)
        return self._state

    def states(self, count: int) -> np.ndarray:
        """The next *count* states as a uint32 array (advances the LFSR).

        Served from the cached full-period cycle by array slicing when
        the width permits (bit-for-bit identical to stepping); falls back
        to per-bit stepping for very wide registers or seeds off the
        canonical orbit of a non-maximal tap set.
        """
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count!r}")
        if self.width <= _TABLE_MAX_WIDTH:
            cycle, position, _ = _cycle_tables(self.width, self.taps)
            start = int(position[self._state])
            if start >= 0:
                indices = (
                    start + 1 + np.arange(count, dtype=np.int64)
                ) % cycle.size
                out = cycle[indices]
                self._state = int(out[-1])
                return out
        out = np.empty(count, dtype=np.uint32)
        for i in range(count):
            out[i] = self.step()
        return out

    def uniform(self, count: int) -> np.ndarray:
        """The next *count* states scaled to ``(0, 1)`` floats."""
        return self.states(count).astype(float) / float(1 << self.width)

    def full_period_states(self) -> np.ndarray:
        """All ``2**width - 1`` states of one full period from the seed."""
        self.reset()
        return self.states(self.period)

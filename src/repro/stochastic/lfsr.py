"""Linear-feedback shift registers: the classical SC pseudo-random source.

Electronic stochastic number generators (Fig. 1(a) of the paper, after
Qian et al. [9]) compare a binary input against the state of a
maximal-period LFSR.  This module implements a Fibonacci LFSR with the
standard maximal-length tap sets for register widths 3..24.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["LFSR", "MAXIMAL_TAPS"]

MAXIMAL_TAPS = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    6: (6, 5),
    7: (7, 6),
    8: (8, 6, 5, 4),
    9: (9, 5),
    10: (10, 7),
    11: (11, 9),
    12: (12, 11, 10, 4),
    13: (13, 12, 11, 8),
    14: (14, 13, 12, 2),
    15: (15, 14),
    16: (16, 15, 13, 4),
    17: (17, 14),
    18: (18, 11),
    19: (19, 18, 17, 14),
    20: (20, 17),
    21: (21, 19),
    22: (22, 21),
    23: (23, 18),
    24: (24, 23, 22, 17),
}
"""Maximal-period XOR tap positions (1-based, MSB first) per width."""


class LFSR:
    """Fibonacci LFSR over GF(2) with maximal-length default taps.

    Parameters
    ----------
    width:
        Register width in bits (3..24 for the built-in tap table).
    seed:
        Initial state, any value in ``[1, 2**width - 1]`` (zero is the
        lock-up state of a XOR LFSR and is rejected).
    taps:
        Optional explicit tap positions (1-based, counted from the MSB
        side like the classical app-note convention).  Defaults to the
        maximal-period set for *width*.
    """

    def __init__(
        self,
        width: int,
        seed: int = 1,
        taps: Optional[Sequence[int]] = None,
    ):
        if taps is None:
            if width not in MAXIMAL_TAPS:
                raise ConfigurationError(
                    f"no built-in maximal taps for width {width}; "
                    "pass taps= explicitly"
                )
            taps = MAXIMAL_TAPS[width]
        if width < 2:
            raise ConfigurationError(f"width must be >= 2, got {width!r}")
        if not all(1 <= t <= width for t in taps):
            raise ConfigurationError(
                f"tap positions must be in [1, {width}], got {taps!r}"
            )
        if not 1 <= seed < (1 << width):
            raise ConfigurationError(
                f"seed must be in [1, 2**{width} - 1], got {seed!r}"
            )
        self.width = int(width)
        self.taps: Tuple[int, ...] = tuple(sorted(set(int(t) for t in taps)))
        self._state = int(seed)
        self._seed = int(seed)

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    @property
    def period(self) -> int:
        """Period of a maximal-length sequence: ``2**width - 1``."""
        return (1 << self.width) - 1

    def reset(self) -> None:
        """Return to the seed state."""
        self._state = self._seed

    def step(self) -> int:
        """Advance one clock; returns the new state.

        Taps are 1-based bit positions (XAPP052 convention): tap ``t``
        reads register bit ``t - 1``, with bit ``width - 1`` (tap
        ``width``) the bit shifted out each clock.
        """
        feedback = 0
        for tap in self.taps:
            feedback ^= (self._state >> (tap - 1)) & 1
        self._state = ((self._state << 1) | feedback) & ((1 << self.width) - 1)
        return self._state

    def states(self, count: int) -> np.ndarray:
        """The next *count* states as a uint32 array (advances the LFSR)."""
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count!r}")
        out = np.empty(count, dtype=np.uint32)
        for i in range(count):
            out[i] = self.step()
        return out

    def uniform(self, count: int) -> np.ndarray:
        """The next *count* states scaled to ``(0, 1)`` floats."""
        return self.states(count).astype(float) / float(1 << self.width)

    def full_period_states(self) -> np.ndarray:
        """All ``2**width - 1`` states of one full period from the seed."""
        self.reset()
        return self.states(self.period)

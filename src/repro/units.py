"""Unit conversions used across the library.

Conventions
-----------
The library sticks to one unit per physical quantity and encodes it in
argument names, following the paper's own tables (Fig. 4(b)):

=====================  ==========  =========================================
quantity               unit        suffix used in signatures
=====================  ==========  =========================================
wavelength             nm          ``_nm``
optical power          mW          ``_mw``
electrical current     A           ``_a``
energy                 J / pJ      ``_j`` / ``_pj``
time                   s           ``_s``
data rate              bit/s       ``_hz`` (NRZ: 1 symbol per bit)
loss / extinction      dB or %     ``_db`` / fractional (0..1)
=====================  ==========  =========================================

"Percent" quantities such as the paper's ``IL%``/``ER%`` are represented as
*fractions* in ``[0, 1]`` (the paper's % notation means "linear scale", not
"multiply by 100").

All conversion helpers accept scalars or numpy arrays and preserve shape.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .constants import SPEED_OF_LIGHT_M_S
from .errors import ConfigurationError

__all__ = [
    "ArrayLike",
    "db_to_linear",
    "linear_to_db",
    "db_loss_to_transmission",
    "transmission_to_db_loss",
    "mw_to_w",
    "w_to_mw",
    "dbm_to_mw",
    "mw_to_dbm",
    "joules_to_picojoules",
    "picojoules_to_joules",
    "wavelength_nm_to_frequency_hz",
    "frequency_hz_to_wavelength_nm",
    "fsr_nm_from_group_index",
    "validate_fraction",
    "validate_positive",
    "validate_non_negative",
]

ArrayLike = Union[float, np.ndarray]


def db_to_linear(value_db: ArrayLike) -> ArrayLike:
    """Convert a dB power ratio to a linear ratio.

    >>> db_to_linear(3.0103)
    2.0000...
    """
    return 10.0 ** (np.asarray(value_db, dtype=float) / 10.0)


def linear_to_db(ratio: ArrayLike) -> ArrayLike:
    """Convert a linear power ratio to dB.

    Raises :class:`ConfigurationError` for non-positive ratios, for which
    dB is undefined.
    """
    ratio = np.asarray(ratio, dtype=float)
    if np.any(ratio <= 0.0):
        raise ConfigurationError("dB undefined for non-positive ratio")
    return 10.0 * np.log10(ratio)


def db_loss_to_transmission(loss_db: ArrayLike) -> ArrayLike:
    """Convert an insertion loss in dB to a power transmission fraction.

    This is the paper's ``IL_dB -> IL%`` conversion: 4.5 dB -> 0.3548.
    A *loss* of ``x`` dB means a transmission of ``10**(-x/10)``.
    """
    loss_db = np.asarray(loss_db, dtype=float)
    if np.any(loss_db < 0.0):
        raise ConfigurationError("insertion loss must be >= 0 dB")
    return 10.0 ** (-loss_db / 10.0)


def transmission_to_db_loss(transmission: ArrayLike) -> ArrayLike:
    """Convert a power transmission fraction to an insertion loss in dB."""
    transmission = np.asarray(transmission, dtype=float)
    if np.any(transmission <= 0.0) or np.any(transmission > 1.0):
        raise ConfigurationError("transmission must be in (0, 1]")
    return -10.0 * np.log10(transmission)


def mw_to_w(power_mw: ArrayLike) -> ArrayLike:
    """Convert milliwatts to watts."""
    return np.asarray(power_mw, dtype=float) * 1e-3


def w_to_mw(power_w: ArrayLike) -> ArrayLike:
    """Convert watts to milliwatts."""
    return np.asarray(power_w, dtype=float) * 1e3


def dbm_to_mw(power_dbm: ArrayLike) -> ArrayLike:
    """Convert dBm to milliwatts (0 dBm == 1 mW)."""
    return 10.0 ** (np.asarray(power_dbm, dtype=float) / 10.0)


def mw_to_dbm(power_mw: ArrayLike) -> ArrayLike:
    """Convert milliwatts to dBm (0 dBm == 1 mW)."""
    power_mw = np.asarray(power_mw, dtype=float)
    if np.any(power_mw <= 0.0):
        raise ConfigurationError("dBm undefined for non-positive power")
    return 10.0 * np.log10(power_mw)


def joules_to_picojoules(energy_j: ArrayLike) -> ArrayLike:
    """Convert joules to picojoules."""
    return np.asarray(energy_j, dtype=float) * 1e12


def picojoules_to_joules(energy_pj: ArrayLike) -> ArrayLike:
    """Convert picojoules to joules."""
    return np.asarray(energy_pj, dtype=float) * 1e-12


def wavelength_nm_to_frequency_hz(wavelength_nm: ArrayLike) -> ArrayLike:
    """Convert a vacuum wavelength in nm to an optical frequency in Hz."""
    wavelength_nm = np.asarray(wavelength_nm, dtype=float)
    if np.any(wavelength_nm <= 0.0):
        raise ConfigurationError("wavelength must be positive")
    return SPEED_OF_LIGHT_M_S / (wavelength_nm * 1e-9)


def frequency_hz_to_wavelength_nm(frequency_hz: ArrayLike) -> ArrayLike:
    """Convert an optical frequency in Hz to a vacuum wavelength in nm."""
    frequency_hz = np.asarray(frequency_hz, dtype=float)
    if np.any(frequency_hz <= 0.0):
        raise ConfigurationError("frequency must be positive")
    return SPEED_OF_LIGHT_M_S / frequency_hz * 1e9


def fsr_nm_from_group_index(
    wavelength_nm: float, group_index: float, round_trip_length_um: float
) -> float:
    """Free spectral range of a resonator: ``FSR = lambda^2 / (n_g * L)``.

    Parameters
    ----------
    wavelength_nm:
        Operating wavelength (nm).
    group_index:
        Waveguide group index ``n_g`` (dimensionless, ~4.3 for Si wire).
    round_trip_length_um:
        Resonator round-trip length (um).
    """
    validate_positive(wavelength_nm, "wavelength_nm")
    validate_positive(group_index, "group_index")
    validate_positive(round_trip_length_um, "round_trip_length_um")
    length_nm = round_trip_length_um * 1e3
    return wavelength_nm**2 / (group_index * length_nm)


def validate_fraction(value: float, name: str, *, allow_zero: bool = False) -> float:
    """Validate that *value* lies in ``(0, 1]`` (or ``[0, 1]``).

    Returns the value so it can be used inline in constructors.
    """
    lower_ok = value >= 0.0 if allow_zero else value > 0.0
    if not (lower_ok and value <= 1.0):
        bound = "[0, 1]" if allow_zero else "(0, 1]"
        raise ConfigurationError(f"{name} must be in {bound}, got {value!r}")
    return float(value)


def validate_positive(value: float, name: str) -> float:
    """Validate that *value* is strictly positive; returns it."""
    if not value > 0.0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return float(value)


def validate_non_negative(value: float, name: str) -> float:
    """Validate that *value* is >= 0; returns it."""
    if value < 0.0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return float(value)

"""Plain-text table rendering for experiment outputs.

The experiment harness prints the same rows the paper's tables and
figures report; this module renders lists of dict rows as aligned ASCII
tables without third-party dependencies.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..errors import ConfigurationError

__all__ = ["format_table", "format_value"]


def format_value(value, precision: int = 4) -> str:
    """Human-friendly scalar formatting (floats trimmed, rest via str)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # nan
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render *rows* (dicts) as an aligned text table.

    Parameters
    ----------
    rows:
        One mapping per table row; missing keys render empty.
    columns:
        Column order (defaults to the keys of the first row).
    title:
        Optional heading printed above the table.
    precision:
        Significant digits for floats.
    """
    rows = list(rows)
    if not rows:
        raise ConfigurationError("cannot format an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    columns = list(columns)
    if not columns:
        raise ConfigurationError("need at least one column")

    cells = [
        [format_value(row.get(col, ""), precision) for col in columns]
        for row in rows
    ]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = "\n".join(
        " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
        for row in cells
    )
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.extend([header, rule, body])
    return "\n".join(lines)

"""CSV output for experiment results (plotting-tool friendly)."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from ..errors import ConfigurationError

__all__ = ["write_csv"]


def write_csv(
    path: Union[str, Path],
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
) -> Path:
    """Write dict *rows* to *path* as CSV; returns the resolved path.

    Parent directories are created as needed.  Column order defaults to
    the keys of the first row.
    """
    rows = list(rows)
    if not rows:
        raise ConfigurationError("cannot write an empty CSV")
    if columns is None:
        columns = list(rows[0].keys())
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k, "") for k in columns})
    return path.resolve()

"""Result rendering: text tables and CSV output."""

from .tables import format_table
from .csvio import write_csv

__all__ = ["format_table", "write_csv"]

"""Laser energy model (paper Section V-C, Fig. 7).

Per computed bit:

* the pulse-based **pump** laser emits one 26 ps pulse [15], so
  ``E_pump = OP_pump * tau_pulse / eta``;
* the ``n + 1`` CW **probe** lasers stay on for the whole bit period, so
  ``E_probe = (n + 1) * OP_probe * T_bit / eta``;

with ``eta`` the lasing efficiency (20 % in the paper).  Because the pump
power grows linearly with the wavelength spacing (Eq. 7 via the MRR-first
sizing) while the probe power falls as crosstalk abates, the total energy
has an interior optimum — the paper's Fig. 7(a), with the key observation
that the optimal spacing is independent of the polynomial degree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError, DesignInfeasibleError
from ..photonics.devices import DENSE_RING_PROFILE, RingProfile
from .design import CircuitDesign, mrr_first_design
from .params import OpticalSCParameters

__all__ = [
    "EnergyBreakdown",
    "energy_breakdown",
    "energy_vs_spacing",
    "laser_energies_pj",
    "optimal_wl_spacing_nm",
]


@dataclass(frozen=True)
class EnergyBreakdown:
    """Wall-plug laser energy per computed bit, split by laser type."""

    pump_energy_j: float
    probe_energy_j: float
    probe_laser_count: int

    @property
    def total_energy_j(self) -> float:
        """All ``n + 2`` lasers (pump + probes) per bit (J)."""
        return self.pump_energy_j + self.probe_energy_j

    @property
    def pump_energy_pj(self) -> float:
        """Pump laser energy per bit (pJ)."""
        return self.pump_energy_j * 1e12

    @property
    def probe_energy_pj(self) -> float:
        """Aggregate probe laser energy per bit (pJ)."""
        return self.probe_energy_j * 1e12

    @property
    def total_energy_pj(self) -> float:
        """Total laser energy per bit (pJ) — the Fig. 7 y-axis."""
        return self.total_energy_j * 1e12

    @property
    def dominant(self) -> str:
        """Which laser type dominates (``"pump"`` or ``"probe"``)."""
        return "pump" if self.pump_energy_j >= self.probe_energy_j else "probe"


def energy_breakdown(params: OpticalSCParameters) -> EnergyBreakdown:
    """Evaluate the Section V-C energy model for one parameter set."""
    if not isinstance(params, OpticalSCParameters):
        raise ConfigurationError("params must be OpticalSCParameters")
    eta = params.laser_efficiency
    pump_j = params.pump_power_mw * 1e-3 * params.pump_pulse_width_s / eta
    bit_period_s = 1.0 / params.bit_rate_hz
    probe_count = params.channel_count
    probe_j = probe_count * params.probe_power_mw * 1e-3 * bit_period_s / eta
    return EnergyBreakdown(
        pump_energy_j=pump_j,
        probe_energy_j=probe_j,
        probe_laser_count=probe_count,
    )


def laser_energies_pj(
    pump_power_mw,
    probe_power_mw,
    channel_count: int,
    bit_rate_hz: float,
    pump_pulse_width_s,
    laser_efficiency,
) -> tuple:
    """The Section V-C energy model over ``(S,)`` arrays: ``(pump_pj, probe_pj)``.

    The one vectorized form of the per-bit formulas in
    :func:`energy_breakdown` (same operand order, so results match the
    scalar path to the last bit); *pump_pulse_width_s* and
    *laser_efficiency* may themselves be ``(S,)`` arrays (the
    sensitivity study's per-probe knobs).  ``inf`` probe powers — the
    closed-eye convention of the batch sizing — propagate to ``inf``
    probe energies.
    """
    pump_mw = np.asarray(pump_power_mw, dtype=float)
    probe_mw = np.asarray(probe_power_mw, dtype=float)
    bit_period_s = 1.0 / bit_rate_hz
    pump_pj = (pump_mw * 1e-3 * pump_pulse_width_s / laser_efficiency) * 1e12
    probe_pj = (
        channel_count * probe_mw * 1e-3 * bit_period_s / laser_efficiency
    ) * 1e12
    return pump_pj, probe_pj


def _default_designer(
    order: int, spacing_nm: float, ring_profile: RingProfile, target_ber: float
) -> CircuitDesign:
    return mrr_first_design(
        order=order,
        wl_spacing_nm=spacing_nm,
        ring_profile=ring_profile,
        target_ber=target_ber,
    )


def energy_vs_spacing(
    order: int,
    spacings_nm: Sequence[float],
    ring_profile: RingProfile = DENSE_RING_PROFILE,
    target_ber: float = 1e-6,
    designer: Optional[Callable[..., CircuitDesign]] = None,
    vectorized: Optional[bool] = None,
) -> dict:
    """The Fig. 7(a) sweep: laser energies across wavelength spacings.

    For each spacing an MRR-first design is sized (pump from the swing,
    probe from the BER target) and its energy breakdown recorded.
    Spacings whose worst-case eye is closed yield ``inf`` probe energy.

    With the built-in designer the whole sweep is sized as **one**
    stacked pass through
    :func:`repro.core.vectorized.energy_vs_spacing_batch` (the default;
    point-for-point equal to the scalar loop up to floating-point
    rounding, including the ``inf``/``nan`` infeasibility rows).  Pass
    ``vectorized=False`` to force the per-spacing scalar loop; a custom
    *designer* always uses it.

    Returns a dict of numpy arrays keyed ``"spacing_nm"``,
    ``"pump_pj"``, ``"probe_pj"``, ``"total_pj"``.
    """
    if vectorized is None:
        vectorized = designer is None
    if vectorized:
        if designer is not None:
            raise ConfigurationError(
                "vectorized sizing supports only the built-in MRR-first "
                "designer; pass vectorized=False with a custom designer"
            )
        from .vectorized import energy_vs_spacing_batch

        return energy_vs_spacing_batch(
            order,
            spacings_nm,
            ring_profile=ring_profile,
            target_ber=target_ber,
        )
    designer = designer or _default_designer
    spacings = np.asarray(list(spacings_nm), dtype=float)
    if spacings.size == 0:
        raise ConfigurationError("need at least one spacing")
    pump = np.empty_like(spacings)
    probe = np.empty_like(spacings)
    for index, spacing in enumerate(spacings):
        try:
            design = designer(
                order=order,
                spacing_nm=float(spacing),
                ring_profile=ring_profile,
                target_ber=target_ber,
            )
        except DesignInfeasibleError:
            pump[index] = np.nan
            probe[index] = np.inf
            continue
        breakdown = energy_breakdown(design.params)
        pump[index] = breakdown.pump_energy_pj
        probe[index] = breakdown.probe_energy_pj
    return {
        "spacing_nm": spacings,
        "pump_pj": pump,
        "probe_pj": probe,
        "total_pj": pump + probe,
    }


def optimal_wl_spacing_nm(
    order: int,
    lower_nm: float = 0.1,
    upper_nm: float = 0.3,
    ring_profile: RingProfile = DENSE_RING_PROFILE,
    target_ber: float = 1e-6,
    tolerance_nm: float = 1e-4,
) -> float:
    """Spacing minimizing the total laser energy (Fig. 7(a) optimum).

    Golden-section search on the (unimodal) total-energy curve; the
    paper's headline observation is that the result is independent of
    *order* (validated in ``tests/test_energy.py``).
    """
    if not 0.0 < lower_nm < upper_nm:
        raise ConfigurationError("need 0 < lower_nm < upper_nm")

    def total_pj(spacing: float) -> float:
        result = energy_vs_spacing(
            order, [spacing], ring_profile=ring_profile, target_ber=target_ber
        )
        value = float(result["total_pj"][0])
        return value if np.isfinite(value) else 1e30

    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = lower_nm, upper_nm
    c = b - inv_phi * (b - a)
    d = a + inv_phi * (b - a)
    fc, fd = total_pj(c), total_pj(d)
    while (b - a) > tolerance_nm:
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - inv_phi * (b - a)
            fc = total_pj(c)
        else:
            a, c, fc = c, d, fd
            d = a + inv_phi * (b - a)
            fd = total_pj(d)
    return 0.5 * (a + b)

"""The paper's design methods (Section IV-B): MRR-first and MZI-first.

*MRR-first* starts from the ring side: choose the wavelength grid
(``WLspacing``, anchor, guard), then derive the pump power that tunes the
filter across the full swing and the MZI extinction ratio that makes the
``n + 1`` detuning levels land exactly on the channels.  This reproduces
the Section V-A numbers: 591.8 mW pump and 13.22 dB ER for the 2nd-order,
1 nm-spacing circuit.

*MZI-first* starts from a given MZI device (IL, ER) and pump budget: the
achievable filter swing dictates the wavelength grid instead.  This is
the method behind the Fig. 6 probe-power exploration.

Both end by sizing the probe lasers from the SNR/BER target (Eqs. 8-9).

The key structural fact both methods exploit: the MZI power sum of
Eq. 7a takes ``n + 1`` *equally spaced* values as the ones-count goes
``0..n``, so equally spaced detuning levels align with an equally spaced
wavelength grid — see ``tests/test_design.py`` for the property test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..constants import (
    PAPER_BIT_RATE_HZ,
    PAPER_FIG6_TARGET_BER,
    PAPER_GUARD_NM,
    PAPER_LASING_EFFICIENCY,
    PAPER_MZI_IL_DB,
    PAPER_PULSE_WIDTH_S,
)
from ..errors import ConfigurationError, DesignInfeasibleError
from ..photonics.devices import (
    COARSE_RING_PROFILE,
    DEFAULT_PHOTODETECTOR,
    DENSE_RING_PROFILE,
    RingProfile,
    VAN_2002_OTE,
)
from ..photonics.mzi import MZIModulator
from ..photonics.nonlinear import OpticalTuningEfficiency
from ..photonics.photodetector import Photodetector
from ..photonics.wdm import WDMGrid
from .params import OpticalSCParameters
from .snr import circuit_ber, circuit_snr, minimum_probe_power_mw

__all__ = ["CircuitDesign", "mrr_first_design", "mzi_first_design"]

_DENSE_GRID_THRESHOLD_NM = 0.5
"""Spacing below which the high-Q DENSE ring profile is the default."""


def _default_profile(spacing_nm: float) -> RingProfile:
    if spacing_nm >= _DENSE_GRID_THRESHOLD_NM:
        return COARSE_RING_PROFILE
    return DENSE_RING_PROFILE


@dataclass(frozen=True)
class CircuitDesign:
    """A fully sized circuit produced by one of the design methods.

    Attributes
    ----------
    params:
        The complete parameter bundle (consumable by every model).
    method:
        ``"mrr_first"`` or ``"mzi_first"``.
    target_ber:
        The BER constraint the probe power was sized for.
    """

    params: OpticalSCParameters
    method: str
    target_ber: float

    # -- headline knobs ----------------------------------------------------------

    @property
    def order(self) -> int:
        """Polynomial degree ``n``."""
        return self.params.order

    @property
    def pump_power_mw(self) -> float:
        """Pump laser power (mW)."""
        return self.params.pump_power_mw

    @property
    def probe_power_mw(self) -> float:
        """Per-channel probe laser power (mW)."""
        return self.params.probe_power_mw

    @property
    def wl_spacing_nm(self) -> float:
        """Wavelength spacing of the probe grid (nm)."""
        return self.params.wl_spacing_nm

    @property
    def required_er_db(self) -> float:
        """MZI extinction ratio of the sized design (dB)."""
        return self.params.mzi.extinction_ratio_db

    # -- achieved link metrics ------------------------------------------------------

    def snr(self, method: str = "worstcase") -> float:
        """Achieved electrical SNR at the designed probe power."""
        return circuit_snr(self.params, method=method)

    def ber(self, method: str = "worstcase") -> float:
        """Achieved BER at the designed probe power."""
        return circuit_ber(self.params, method=method)

    def describe(self) -> str:
        """One-paragraph summary of the sized design."""
        return (
            f"{self.method} design, order {self.order}: "
            f"WLspacing {self.wl_spacing_nm:.3f} nm, "
            f"pump {self.pump_power_mw:.1f} mW, "
            f"probe {self.probe_power_mw:.3f} mW/channel, "
            f"MZI ER {self.required_er_db:.2f} dB, "
            f"target BER {self.target_ber:g}"
        )


def mrr_first_design(
    order: int,
    wl_spacing_nm: float,
    anchor_nm: float = 1550.0,
    guard_nm: float = PAPER_GUARD_NM,
    insertion_loss_db: float = PAPER_MZI_IL_DB,
    ring_profile: Optional[RingProfile] = None,
    ote: OpticalTuningEfficiency = VAN_2002_OTE,
    detector: Photodetector = DEFAULT_PHOTODETECTOR,
    target_ber: float = PAPER_FIG6_TARGET_BER,
    probe_power_mw: Optional[float] = None,
    bit_rate_hz: float = PAPER_BIT_RATE_HZ,
    pump_pulse_width_s: float = PAPER_PULSE_WIDTH_S,
    laser_efficiency: float = PAPER_LASING_EFFICIENCY,
    mzi_speed_gbps: Optional[float] = 40.0,
) -> CircuitDesign:
    """Section IV-B MRR-first method: grid in, lasers and MZI ER out.

    Steps (following the paper):

    1. place the ``n + 1`` channels on the grid (*wl_spacing_nm*, anchored
       at *anchor_nm*) with ``lambda_ref = anchor + guard``;
    2. the minimum pump power puts the filter on the left-most channel
       when all MZIs are constructive:
       ``OP_pump = (n * spacing + guard) / (OTE * IL%)``;
    3. the required extinction ratio makes the all-destructive state land
       on the right-most channel: ``ER% = guard / (n * spacing + guard)``;
    4. the probe power is the Eq. 8/9 minimum for *target_ber* (unless
       fixed explicitly, as in the Fig. 5 study's 1 mW).
    """
    if order < 1:
        raise ConfigurationError(f"order must be >= 1, got {order!r}")
    grid = WDMGrid(
        channel_count=order + 1,
        spacing_nm=wl_spacing_nm,
        anchor_nm=anchor_nm,
        guard_nm=guard_nm,
    )
    profile = ring_profile or _default_profile(wl_spacing_nm)

    il_fraction = MZIModulator(
        insertion_loss_db=insertion_loss_db, extinction_ratio_db=1.0
    ).il_fraction
    swing_nm = grid.span_nm
    pump_power_mw = float(ote.required_power_mw(swing_nm)) / il_fraction

    er_fraction = guard_nm / swing_nm
    er_db = -10.0 * math.log10(er_fraction)
    mzi = MZIModulator(
        insertion_loss_db=insertion_loss_db,
        extinction_ratio_db=er_db,
        modulation_speed_gbps=mzi_speed_gbps,
        name="MRR-first sized MZI",
    )

    params = OpticalSCParameters(
        order=order,
        grid=grid,
        ring_profile=profile,
        mzi=mzi,
        ote=ote,
        pump_power_mw=pump_power_mw,
        probe_power_mw=1.0,  # placeholder until sized below
        detector=detector,
        bit_rate_hz=bit_rate_hz,
        pump_pulse_width_s=pump_pulse_width_s,
        laser_efficiency=laser_efficiency,
    )
    if probe_power_mw is None:
        probe_power_mw = minimum_probe_power_mw(params, target_ber=target_ber)
    params = params.with_probe_power(probe_power_mw)
    return CircuitDesign(params=params, method="mrr_first", target_ber=target_ber)


def mzi_first_design(
    order: int,
    mzi: MZIModulator,
    pump_power_mw: float,
    lambda_ref_nm: float = 1550.1,
    ring_profile: Optional[RingProfile] = None,
    ote: OpticalTuningEfficiency = VAN_2002_OTE,
    detector: Photodetector = DEFAULT_PHOTODETECTOR,
    target_ber: float = PAPER_FIG6_TARGET_BER,
    probe_power_mw: Optional[float] = None,
    bit_rate_hz: float = PAPER_BIT_RATE_HZ,
    pump_pulse_width_s: float = PAPER_PULSE_WIDTH_S,
    laser_efficiency: float = PAPER_LASING_EFFICIENCY,
) -> CircuitDesign:
    """Section IV-B MZI-first method: device and pump in, grid out.

    Steps:

    1. the available filter swing is ``OP_pump * OTE * IL%`` (all MZIs
       constructive);
    2. the all-destructive state retains ``ER%`` of that swing, which
       becomes the guard band; the remaining swing is divided into ``n``
       equal channel spacings: ``WLspacing = swing * (1 - ER%) / n``;
    3. channels are placed below ``lambda_ref``; the probe power is the
       Eq. 8/9 minimum for *target_ber*.
    """
    if order < 1:
        raise ConfigurationError(f"order must be >= 1, got {order!r}")
    if pump_power_mw <= 0.0:
        raise ConfigurationError(
            f"pump_power_mw must be positive, got {pump_power_mw!r}"
        )
    swing_nm = float(ote.shift_nm(pump_power_mw * mzi.il_fraction))
    guard_nm = swing_nm * mzi.er_fraction
    spacing_nm = swing_nm * (1.0 - mzi.er_fraction) / order
    if spacing_nm <= 0.0:
        raise DesignInfeasibleError(
            "MZI extinction leaves no usable swing for the channel grid"
        )
    grid = WDMGrid(
        channel_count=order + 1,
        spacing_nm=spacing_nm,
        anchor_nm=lambda_ref_nm - guard_nm,
        guard_nm=guard_nm,
    )
    profile = ring_profile or _default_profile(spacing_nm)
    params = OpticalSCParameters(
        order=order,
        grid=grid,
        ring_profile=profile,
        mzi=mzi,
        ote=ote,
        pump_power_mw=pump_power_mw,
        probe_power_mw=1.0,  # placeholder until sized below
        detector=detector,
        bit_rate_hz=bit_rate_hz,
        pump_pulse_width_s=pump_pulse_width_s,
        laser_efficiency=laser_efficiency,
    )
    if probe_power_mw is None:
        probe_power_mw = minimum_probe_power_mw(params, target_ber=target_ber)
    params = params.with_probe_power(probe_power_mw)
    return CircuitDesign(params=params, method="mzi_first", target_ber=target_ber)

"""The paper's core contribution: the optical stochastic-computing circuit.

Analytical models (transmission Eqs. 6-7, SNR/BER Eqs. 8-9, laser energy),
the MRR-first and MZI-first design methods of Section IV-B, the assembled
circuit facade, and the calibration layer that pins the constants the
paper leaves unstated.
"""

from .params import OpticalSCParameters, paper_section5a_parameters
from .transmission import StackedTransmissionModel, TransmissionModel
from .link_budget import LinkBudget, batch_eye_bands, received_power_table
from .snr import (
    ber_for_snr,
    minimum_probe_power_mw,
    probe_power_for_eyes_mw,
    required_snr_for_ber,
    worst_case_eye,
    EyeDiagram,
)
from .design import CircuitDesign, mrr_first_design, mzi_first_design
from .energy import (
    EnergyBreakdown,
    energy_breakdown,
    energy_vs_spacing,
    optimal_wl_spacing_nm,
)
from .vectorized import (
    energy_vs_spacing_batch,
    monte_carlo_eye_batch,
    mrr_first_design_batch,
    mrr_first_sizing_batch,
    worst_case_eye_batch,
)
from .circuit import OpticalStochasticCircuit
from .reconfigurable import ReconfigurableCircuit

__all__ = [
    "OpticalSCParameters",
    "paper_section5a_parameters",
    "TransmissionModel",
    "LinkBudget",
    "received_power_table",
    "required_snr_for_ber",
    "ber_for_snr",
    "worst_case_eye",
    "EyeDiagram",
    "minimum_probe_power_mw",
    "CircuitDesign",
    "mrr_first_design",
    "mzi_first_design",
    "EnergyBreakdown",
    "energy_breakdown",
    "energy_vs_spacing",
    "optimal_wl_spacing_nm",
    "StackedTransmissionModel",
    "batch_eye_bands",
    "probe_power_for_eyes_mw",
    "worst_case_eye_batch",
    "monte_carlo_eye_batch",
    "mrr_first_sizing_batch",
    "mrr_first_design_batch",
    "energy_vs_spacing_batch",
    "OpticalStochasticCircuit",
    "ReconfigurableCircuit",
]

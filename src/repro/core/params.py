"""System- and device-level parameter bundle (paper Fig. 4(b)).

:class:`OpticalSCParameters` collects everything the analytical models
need: the polynomial order ``n``, the WDM grid (``WLspacing``, guard,
``lambda_ref``), the ring technology (modulator and filter coefficients,
modulation shift), the MZI figures (IL, ER), the all-optical tuning
efficiency, laser powers and receiver constants.  It is a frozen
dataclass so parameter sets can be hashed, compared and swept safely.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..constants import (
    PAPER_BIT_RATE_HZ,
    PAPER_LASING_EFFICIENCY,
    PAPER_MZI_IL_DB,
    PAPER_PROBE_POWER_MW,
    PAPER_PULSE_WIDTH_S,
    PAPER_PUMP_POWER_MW,
    PAPER_WL_SPACING_NM,
)
from ..errors import ConfigurationError
from ..photonics.devices import (
    COARSE_RING_PROFILE,
    DEFAULT_PHOTODETECTOR,
    RingProfile,
    VAN_2002_OTE,
)
from ..photonics.mzi import MZIModulator
from ..photonics.nonlinear import OpticalTuningEfficiency
from ..photonics.photodetector import Photodetector
from ..photonics.wdm import WDMGrid
from ..units import validate_fraction, validate_non_negative, validate_positive

__all__ = ["OpticalSCParameters", "paper_section5a_parameters"]


@dataclass(frozen=True)
class OpticalSCParameters:
    """Complete parameterization of the generic circuit (Fig. 4).

    Parameters
    ----------
    order:
        Polynomial degree ``n``: the circuit has ``n`` MZIs and ``n + 1``
        coefficient MRRs.
    grid:
        WDM channel plan of the coefficient probes.
    ring_profile:
        Modulator/filter ring technology.
    mzi:
        MZI device characteristics (IL, ER) used by the adder.
    ote:
        All-optical tuning efficiency of the filter (nm/mW).
    pump_power_mw / probe_power_mw:
        Laser powers; *probe_power_mw* is per probe channel.
    detector:
        Receiver responsivity and noise.
    bit_rate_hz:
        Modulation speed of data and coefficients (1 Gb/s in the paper).
    pump_pulse_width_s:
        Pump pulse width for the pulse-based energy accounting.
    laser_efficiency:
        Wall-plug (lasing) efficiency shared by all lasers.
    """

    order: int
    grid: WDMGrid
    ring_profile: RingProfile
    mzi: MZIModulator
    ote: OpticalTuningEfficiency = VAN_2002_OTE
    pump_power_mw: float = PAPER_PUMP_POWER_MW
    probe_power_mw: float = PAPER_PROBE_POWER_MW
    detector: Photodetector = DEFAULT_PHOTODETECTOR
    bit_rate_hz: float = PAPER_BIT_RATE_HZ
    pump_pulse_width_s: float = PAPER_PULSE_WIDTH_S
    laser_efficiency: float = PAPER_LASING_EFFICIENCY

    def __post_init__(self) -> None:
        if self.order < 1:
            raise ConfigurationError(
                f"order must be >= 1, got {self.order!r}"
            )
        if self.grid.channel_count != self.order + 1:
            raise ConfigurationError(
                f"grid must have order + 1 = {self.order + 1} channels, "
                f"got {self.grid.channel_count}"
            )
        validate_non_negative(self.pump_power_mw, "pump_power_mw")
        validate_positive(self.probe_power_mw, "probe_power_mw")
        validate_positive(self.bit_rate_hz, "bit_rate_hz")
        validate_positive(self.pump_pulse_width_s, "pump_pulse_width_s")
        validate_fraction(self.laser_efficiency, "laser_efficiency")
        # The probe comb plus guard must fit inside the filter FSR so the
        # pump resonance one FSR below does not alias onto a channel.
        self.grid.validate_against_fsr(self.ring_profile.filter.fsr_nm)

    # -- convenience accessors --------------------------------------------------

    @property
    def channel_count(self) -> int:
        """Number of coefficient channels (``n + 1``)."""
        return self.order + 1

    @property
    def wl_spacing_nm(self) -> float:
        """``WLspacing`` (Eq. 5)."""
        return self.grid.spacing_nm

    @property
    def lambda_ref_nm(self) -> float:
        """Untuned filter resonance."""
        return self.grid.reference_nm

    @property
    def full_swing_nm(self) -> float:
        """Detuning required to reach the left-most channel
        (``lambda_ref - lambda_0``)."""
        return self.grid.span_nm

    def with_pump_power(self, pump_power_mw: float) -> "OpticalSCParameters":
        """Copy with a different pump power."""
        return replace(self, pump_power_mw=pump_power_mw)

    def with_probe_power(self, probe_power_mw: float) -> "OpticalSCParameters":
        """Copy with a different per-channel probe power."""
        return replace(self, probe_power_mw=probe_power_mw)

    def describe(self) -> str:
        """Human-readable parameter table in the spirit of Fig. 4(b)."""
        lines = [
            "Optical SC circuit parameters",
            f"  order n                : {self.order}",
            f"  WLspacing              : {self.wl_spacing_nm:.4g} nm",
            f"  lambda grid            : "
            + ", ".join(f"{w:.3f}" for w in self.grid.wavelengths_nm)
            + " nm",
            f"  lambda_ref             : {self.lambda_ref_nm:.3f} nm",
            f"  MZI IL / ER            : {self.mzi.insertion_loss_db:.3g} dB / "
            f"{self.mzi.extinction_ratio_db:.3g} dB",
            f"  MRR shift (delta)      : "
            f"{self.ring_profile.modulation_shift_nm:.3g} nm",
            f"  filter FWHM / FSR      : {self.ring_profile.filter.fwhm_nm:.4g} / "
            f"{self.ring_profile.filter.fsr_nm:.4g} nm",
            f"  OTE                    : {self.ote.nm_per_mw:.4g} nm/mW",
            f"  pump / probe power     : {self.pump_power_mw:.4g} / "
            f"{self.probe_power_mw:.4g} mW",
            f"  detector R, i_n        : {self.detector.responsivity_a_per_w:.3g} A/W, "
            f"{self.detector.noise_current_a * 1e6:.3g} uA",
            f"  bit rate               : {self.bit_rate_hz / 1e9:.3g} Gb/s",
        ]
        return "\n".join(lines)


def paper_section5a_parameters(
    pump_power_mw: Optional[float] = None,
    probe_power_mw: float = PAPER_PROBE_POWER_MW,
) -> OpticalSCParameters:
    """The Section V-A design example: n=2, 1 nm grid, lambda_2 = 1550 nm.

    With the default *pump_power_mw* of ``None`` the paper's published
    591.8 mW operating point is used (which the MRR-first method derives;
    see :func:`repro.core.design.mrr_first_design`).
    """
    grid = WDMGrid(
        channel_count=3,
        spacing_nm=PAPER_WL_SPACING_NM,
        anchor_nm=1550.0,
        guard_nm=0.1,
    )
    mzi = MZIModulator(
        insertion_loss_db=PAPER_MZI_IL_DB,
        extinction_ratio_db=13.22,
        modulation_speed_gbps=40.0,
        name="Ziebell IL with MRR-first-derived ER",
    )
    return OpticalSCParameters(
        order=2,
        grid=grid,
        ring_profile=COARSE_RING_PROFILE,
        mzi=mzi,
        pump_power_mw=(
            PAPER_PUMP_POWER_MW if pump_power_mw is None else pump_power_mw
        ),
        probe_power_mw=probe_power_mw,
    )

"""Reconfigurable multi-order circuit (paper Sections V-C and VI).

The paper's key energy result — the optimal wavelength spacing is
independent of the polynomial degree — enables a *reconfigurable* version
of the architecture: fix the grid at the shared optimal spacing, then
serve any order up to ``max_order`` by enabling a subset of MZIs/MRRs and
resizing the pump.  This module implements that circuit and verifies the
underlying order-independence property.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..photonics.devices import DENSE_RING_PROFILE, RingProfile
from ..stochastic.bernstein import BernsteinPolynomial
from .circuit import OpticalStochasticCircuit
from .design import CircuitDesign, mrr_first_design
from .energy import energy_breakdown, optimal_wl_spacing_nm

__all__ = ["ReconfigurableCircuit"]


class ReconfigurableCircuit:
    """A shared-grid circuit serving polynomial orders ``1..max_order``.

    Parameters
    ----------
    max_order:
        Largest polynomial degree the hardware supports (its MZI/MRR
        count is provisioned for this order).
    wl_spacing_nm:
        Shared grid spacing.  Defaults to the energy-optimal spacing of
        the *max_order* configuration, which — per the paper's Fig. 7(a)
        observation — is also optimal for every smaller order.
    ring_profile:
        Ring technology (defaults to the dense/high-Q profile).
    target_ber:
        BER target used to size per-order probe powers.
    """

    def __init__(
        self,
        max_order: int,
        wl_spacing_nm: Optional[float] = None,
        ring_profile: RingProfile = DENSE_RING_PROFILE,
        target_ber: float = 1e-6,
    ):
        if max_order < 1:
            raise ConfigurationError(
                f"max_order must be >= 1, got {max_order!r}"
            )
        self.max_order = int(max_order)
        self.ring_profile = ring_profile
        self.target_ber = float(target_ber)
        if wl_spacing_nm is None:
            wl_spacing_nm = optimal_wl_spacing_nm(
                max_order, ring_profile=ring_profile, target_ber=target_ber
            )
        if wl_spacing_nm <= 0.0:
            raise ConfigurationError("wl_spacing_nm must be positive")
        self.wl_spacing_nm = float(wl_spacing_nm)
        self._designs: Dict[int, CircuitDesign] = {}

    @property
    def supported_orders(self) -> range:
        """Orders this hardware can execute."""
        return range(1, self.max_order + 1)

    def design_for(self, order: int) -> CircuitDesign:
        """The sized configuration for one order (cached).

        Reconfiguration keeps the grid and rings; only the pump power
        (smaller swing for smaller order) and probe sizing change.
        """
        if order not in self.supported_orders:
            raise ConfigurationError(
                f"order must be in [1, {self.max_order}], got {order!r}"
            )
        if order not in self._designs:
            self._designs[order] = mrr_first_design(
                order=order,
                wl_spacing_nm=self.wl_spacing_nm,
                ring_profile=self.ring_profile,
                target_ber=self.target_ber,
            )
        return self._designs[order]

    def circuit_for(
        self, polynomial: BernsteinPolynomial
    ) -> OpticalStochasticCircuit:
        """Program the hardware with *polynomial* (order from its degree)."""
        design = self.design_for(polynomial.degree)
        return OpticalStochasticCircuit.from_design(design, polynomial)

    def energy_per_bit_pj(self, order: int) -> float:
        """Total laser energy per bit in the given configuration (pJ)."""
        return energy_breakdown(self.design_for(order).params).total_energy_pj

    def energy_table_pj(self, orders: Optional[Sequence[int]] = None) -> dict:
        """Energy per bit across configurations (Fig. 7(b) companion)."""
        orders = list(orders) if orders is not None else list(self.supported_orders)
        return {
            "order": np.asarray(orders, dtype=int),
            "total_pj": np.asarray(
                [self.energy_per_bit_pj(order) for order in orders]
            ),
        }

    def verify_order_independence(
        self,
        orders: Sequence[int],
        tolerance_nm: float = 0.02,
    ) -> dict:
        """Check the paper's claim: per-order optima agree within tolerance.

        Returns a dict ``order -> optimal spacing``; raises
        :class:`ConfigurationError` for an empty order list.  Callers
        (and tests) assert the spread against *tolerance_nm*.
        """
        orders = list(orders)
        if not orders:
            raise ConfigurationError("need at least one order")
        optima = {
            order: optimal_wl_spacing_nm(
                order,
                ring_profile=self.ring_profile,
                target_ber=self.target_ber,
            )
            for order in orders
        }
        spread = max(optima.values()) - min(optima.values())
        optima["spread_nm"] = spread
        optima["within_tolerance"] = spread <= tolerance_nm
        return optima

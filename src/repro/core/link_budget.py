"""Link budget: received power for all data/coefficient combinations.

Reproduces the Fig. 5(c) study: for every coefficient pattern ``z`` and
every adder level (combination of data bits ``x``), the optical power at
the photodetector is evaluated; the powers must split into two disjoint
bands — one for transmitted '0' coefficients, one for '1' — for correct
execution of stochastic computing in the optical domain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .params import OpticalSCParameters
from .transmission import TransmissionModel, all_coefficient_patterns

__all__ = ["LinkBudget", "received_power_table", "batch_eye_bands"]


@dataclass(frozen=True)
class LinkBudget:
    """Exhaustive received-power table plus its '0'/'1' band statistics.

    Attributes
    ----------
    power_mw:
        Array ``(patterns, levels)``: received power for coefficient
        pattern row and adder level column (Fig. 5(c) unrolled).
    patterns:
        The coefficient patterns, one row per table row.
    zero_band_mw / one_band_mw:
        ``(min, max)`` received power over all cases where the *selected*
        coefficient is 0 / 1.
    """

    power_mw: np.ndarray
    patterns: np.ndarray
    zero_band_mw: tuple
    one_band_mw: tuple

    @property
    def bands_separated(self) -> bool:
        """True when every '1' case exceeds every '0' case (open eye)."""
        return self.one_band_mw[0] > self.zero_band_mw[1]

    @property
    def eye_opening_mw(self) -> float:
        """Worst-case separation ``min('1') - max('0')`` (may be < 0)."""
        return self.one_band_mw[0] - self.zero_band_mw[1]

    @property
    def decision_threshold_mw(self) -> float:
        """Midpoint threshold between the two bands."""
        return 0.5 * (self.one_band_mw[0] + self.zero_band_mw[1])

    def describe(self) -> str:
        """Summary string in the style of the Section V-A discussion."""
        z0 = self.zero_band_mw
        z1 = self.one_band_mw
        status = "separated" if self.bands_separated else "OVERLAPPING"
        return (
            f"'0' band: {z0[0]:.4f}-{z0[1]:.4f} mW, "
            f"'1' band: {z1[0]:.4f}-{z1[1]:.4f} mW ({status}; "
            f"eye {self.eye_opening_mw:.4f} mW)"
        )


def received_power_table(params: OpticalSCParameters) -> LinkBudget:
    """Evaluate the full Fig. 5(c) table for *params*.

    For each level ``m`` the *selected* coefficient is ``z_m``; table
    entries with ``z_m = 1`` belong to the '1' band, the rest to the '0'
    band.
    """
    if not isinstance(params, OpticalSCParameters):
        raise ConfigurationError("params must be OpticalSCParameters")
    model = TransmissionModel(params)
    table = model.received_power_table_mw()
    patterns = all_coefficient_patterns(params.channel_count)
    levels = np.arange(params.order + 1)
    selected = patterns[:, levels]  # [p, m] = z_m of pattern p
    ones_mask = selected == 1
    one_values = table[ones_mask]
    zero_values = table[~ones_mask]
    return LinkBudget(
        power_mw=table,
        patterns=patterns,
        zero_band_mw=(float(zero_values.min()), float(zero_values.max())),
        one_band_mw=(float(one_values.min()), float(one_values.max())),
    )


def batch_eye_bands(power_tables_mw: np.ndarray) -> tuple:
    """Band extrema for a stack of received-power tables: ``(S, P, L)`` in.

    Applies the same '0'/'1' selection rule as
    :func:`received_power_table` — table entry ``(p, m)`` belongs to the
    '1' band iff pattern ``p`` has ``z_m = 1`` — to every stacked table
    at once, returning the ``(one_level_min, zero_level_max)`` arrays
    (each ``(S,)``) that define the worst-case eye of each geometry.
    """
    tables = np.asarray(power_tables_mw, dtype=float)
    if tables.ndim != 3:
        raise ConfigurationError(
            f"power_tables_mw must be (S, P, L), got shape {tables.shape}"
        )
    pattern_count, levels = tables.shape[1], tables.shape[2]
    channel_count = int(np.log2(pattern_count))
    if (1 << channel_count) != pattern_count or levels > channel_count:
        raise ConfigurationError(
            f"table shape {tables.shape} is not a pattern enumeration "
            "(P must be a power of two covering the level count)"
        )
    patterns = all_coefficient_patterns(channel_count)
    selected = patterns[:, :levels] == 1  # [p, m] = z_m of pattern p
    one_min = np.where(selected, tables, np.inf).min(axis=(1, 2))
    zero_max = np.where(selected, -np.inf, tables).max(axis=(1, 2))
    return one_min, zero_max

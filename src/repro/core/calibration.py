"""Calibration of the constants the paper leaves unstated.

The paper quotes *outputs* (transmissions, received powers, probe powers,
energies) but not the ring quality factors or receiver constants that
produce them.  This module recovers those constants by fitting the
analytical models to the paper-quoted numbers; the fitted values are
frozen in :mod:`repro.photonics.devices` and re-derived here so tests can
verify the frozen constants still reproduce the paper:

* **COARSE profile** (Fig. 5, 1 nm grid): modulator OFF-leakage 0.10 and
  filter drop peak 0.91 follow directly from the quoted 0.091 total
  transmission (``0.091 = 0.10 x 0.91``); the two linewidths are fitted
  to the quoted 0.476 '1'-level and the 0.004 / 0.0002 crosstalk terms.
* **DENSE profile + detector noise** (Figs. 6-7): the shared ring
  linewidth and the receiver noise current are fitted so the n=2 energy
  optimum lands at WLspacing = 0.165 nm with 20.1 pJ/bit total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import CalibrationError
from ..photonics.devices import RingProfile
from ..photonics.photodetector import Photodetector
from ..photonics.ring import design_add_drop_ring, design_modulator_ring
from .design import mrr_first_design
from .energy import energy_breakdown
from .link_budget import received_power_table

__all__ = [
    "PAPER_FIG5_QUOTES",
    "fig5_report",
    "calibrate_coarse_linewidths",
    "calibrate_dense_profile",
    "dense_profile_with_fwhm",
]

PAPER_FIG5_QUOTES = {
    "t_lambda2_case_a": 0.091,  # z=(0,1,0), x1=x2=1: transmission at l2
    "t_lambda1_case_a": 0.004,  # crosstalk of l1 in the same state
    "t_lambda0_case_a": 0.0002,  # crosstalk of l0 in the same state
    "received_case_a_mw": 0.0952,
    "t_lambda0_case_b": 0.476,  # z=(1,1,0), x1=x2=0: transmission at l0
    "received_case_b_mw": 0.482,
    "zero_band_mw": (0.092, 0.099),
    "one_band_mw": (0.477, 0.482),
}
"""Every number quoted in Section V-A for the Fig. 5 study."""


@dataclass(frozen=True)
class Fig5Report:
    """Model-vs-paper comparison for the Fig. 5 link-budget quotes."""

    model: dict
    paper: dict

    def worst_relative_error(self) -> float:
        """Largest relative deviation across the scalar quotes."""
        worst = 0.0
        for key, paper_value in self.paper.items():
            if isinstance(paper_value, tuple):
                continue
            model_value = self.model[key]
            worst = max(worst, abs(model_value - paper_value) / paper_value)
        return worst


def fig5_report(profile: Optional[RingProfile] = None) -> Fig5Report:
    """Evaluate the Fig. 5 quotes with the given (default frozen) profile."""
    design = mrr_first_design(
        order=2, wl_spacing_nm=1.0, ring_profile=profile, probe_power_mw=1.0
    )
    from .transmission import TransmissionModel

    model = TransmissionModel(design.params)
    # Case (a): z = (0, 1, 0), x1 = x2 = 1 -> level 2 (filter at lambda_2).
    t_a = model.total_transmissions([0, 1, 0], 2)
    # Case (b): z = (1, 1, 0), x1 = x2 = 0 -> level 0 (filter at lambda_0).
    t_b = model.total_transmissions([1, 1, 0], 0)
    budget = received_power_table(design.params)
    values = {
        "t_lambda2_case_a": float(t_a[2]),
        "t_lambda1_case_a": float(t_a[1]),
        "t_lambda0_case_a": float(t_a[0]),
        "received_case_a_mw": float(t_a.sum()),
        "t_lambda0_case_b": float(t_b[0]),
        "received_case_b_mw": float(t_b.sum()),
        "zero_band_mw": budget.zero_band_mw,
        "one_band_mw": budget.one_band_mw,
    }
    return Fig5Report(model=values, paper=dict(PAPER_FIG5_QUOTES))


def calibrate_coarse_linewidths(
    fsr_nm: float = 20.0,
    through_floor: float = 0.10,
    drop_peak: float = 0.91,
) -> dict:
    """Re-derive the COARSE profile linewidths from the Fig. 5 quotes.

    The filter linewidth follows from the crosstalk ratio
    ``phi_d(1 nm)/phi_d(0) = 0.004/0.55/0.91`` (Lorentzian tail) and the
    modulator linewidth from the '1'-level product 0.476.  A coarse scan
    plus golden refinement keeps this dependency-free and fast.
    """
    best = None
    for filt_fwhm in np.linspace(0.14, 0.24, 21):
        for mod_fwhm in np.linspace(0.16, 0.26, 21):
            profile = RingProfile(
                modulator=design_modulator_ring(
                    fsr_nm=fsr_nm,
                    fwhm_nm=float(mod_fwhm),
                    through_floor=through_floor,
                    a=0.998,
                ),
                filter=design_add_drop_ring(
                    fsr_nm=fsr_nm, fwhm_nm=float(filt_fwhm), drop_peak=drop_peak
                ),
                modulation_shift_nm=0.10,
                name="calibration candidate",
            )
            report = fig5_report(profile)
            error = report.worst_relative_error()
            if best is None or error < best[0]:
                best = (error, float(mod_fwhm), float(filt_fwhm))
    if best is None or best[0] > 0.25:
        raise CalibrationError(
            "coarse-profile calibration failed to approach the Fig. 5 quotes"
        )
    return {
        "modulator_fwhm_nm": best[1],
        "filter_fwhm_nm": best[2],
        "worst_relative_error": best[0],
    }


def dense_profile_with_fwhm(fwhm_nm: float, fsr_nm: float = 40.0) -> RingProfile:
    """Candidate dense profile with a shared modulator/filter linewidth."""
    return RingProfile(
        modulator=design_modulator_ring(
            fsr_nm=fsr_nm, fwhm_nm=fwhm_nm, through_floor=0.10, a=0.999
        ),
        filter=design_add_drop_ring(
            fsr_nm=fsr_nm, fwhm_nm=fwhm_nm, drop_peak=0.91
        ),
        modulation_shift_nm=0.10,
        name=f"dense candidate (FWHM {fwhm_nm} nm)",
    )


def _energy_total_pj(
    spacing_nm: float, profile: RingProfile, noise_a: float
) -> float:
    detector = Photodetector(responsivity_a_per_w=1.0, noise_current_a=noise_a)
    design = mrr_first_design(
        order=2,
        wl_spacing_nm=spacing_nm,
        ring_profile=profile,
        detector=detector,
    )
    return energy_breakdown(design.params).total_energy_pj


def calibrate_dense_profile(
    target_spacing_nm: float = 0.165,
    target_total_pj: float = 20.1,
    fwhm_grid_nm: Optional[np.ndarray] = None,
) -> dict:
    """Re-derive the DENSE linewidth and receiver noise from Fig. 7 targets.

    For each candidate linewidth, the noise current is solved in closed
    form so the *total* energy at 0.165 nm equals 20.1 pJ (probe energy
    scales linearly with noise); the linewidth is then chosen so the
    energy *optimum* also falls at 0.165 nm.
    """
    if fwhm_grid_nm is None:
        fwhm_grid_nm = np.linspace(0.09, 0.14, 11)
    spacing_scan = np.linspace(0.11, 0.25, 29)
    best = None
    for fwhm in fwhm_grid_nm:
        profile = dense_profile_with_fwhm(float(fwhm))
        reference_noise = 10e-6
        design = mrr_first_design(
            order=2,
            wl_spacing_nm=target_spacing_nm,
            ring_profile=profile,
            detector=Photodetector(
                responsivity_a_per_w=1.0, noise_current_a=reference_noise
            ),
        )
        breakdown = energy_breakdown(design.params)
        needed_probe_pj = target_total_pj - breakdown.pump_energy_pj
        if needed_probe_pj <= 0.0:
            continue
        noise_a = reference_noise * needed_probe_pj / breakdown.probe_energy_pj
        totals = []
        for spacing in spacing_scan:
            try:
                totals.append(_energy_total_pj(float(spacing), profile, noise_a))
            except Exception:
                totals.append(np.inf)
        optimum = float(spacing_scan[int(np.argmin(totals))])
        miss = abs(optimum - target_spacing_nm)
        if best is None or miss < best[0]:
            best = (miss, float(fwhm), float(noise_a), optimum)
    if best is None or best[0] > 0.02:
        raise CalibrationError(
            "dense-profile calibration failed to place the energy optimum "
            f"near {target_spacing_nm} nm"
        )
    return {
        "fwhm_nm": best[1],
        "noise_current_a": best[2],
        "achieved_optimum_nm": best[3],
        "optimum_miss_nm": best[0],
    }

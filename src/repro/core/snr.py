"""SNR and BER models (paper Eqs. 8 and 9).

Eq. 8 evaluates the photocurrent swing between a coefficient transmitted
as '1' and the worst-case background (modulator leakage plus crosstalk
from the other channels), scaled by the receiver's ``R / i_n``:

``SNR = OP_probe * (R / i_n) * [T_{z_i=1}[i] - sum_{w != i} T_{z_w=1}[w]]``

Eq. 9 maps SNR to bit-error rate for on-off keying:

``BER = (1/2) * erfc(SNR / (2 * sqrt(2)))``

Two SNR evaluations are provided: the literal Eq. 8 sum (``method="eq8"``)
and the exhaustive worst-case eye over all coefficient patterns
(``method="worstcase"``, the default), which also captures the
through-modulator interaction between channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import erfc, erfcinv

from ..errors import ConfigurationError, DesignInfeasibleError
from .link_budget import received_power_table
from .params import OpticalSCParameters
from .transmission import TransmissionModel

__all__ = [
    "ber_for_snr",
    "required_snr_for_ber",
    "EyeDiagram",
    "worst_case_eye",
    "snr_eq8",
    "circuit_snr",
    "circuit_ber",
    "minimum_probe_power_mw",
    "probe_power_for_eyes_mw",
]


def ber_for_snr(snr: float) -> float:
    """Paper Eq. 9: OOK bit-error rate for a given electrical SNR."""
    if snr < 0.0:
        raise ConfigurationError(f"snr must be >= 0, got {snr!r}")
    return 0.5 * float(erfc(snr / (2.0 * math.sqrt(2.0))))


def required_snr_for_ber(ber: float) -> float:
    """Invert Eq. 9: the SNR needed to reach a target BER.

    Note the closed-form consequence the paper reports in Fig. 6(b):
    ``required_snr(1e-2) / required_snr(1e-6) ~ 0.49`` — relaxing the BER
    target from 1e-6 to 1e-2 halves the required probe power.
    """
    if not 0.0 < ber < 0.5:
        raise ConfigurationError(f"ber must be in (0, 0.5), got {ber!r}")
    return 2.0 * math.sqrt(2.0) * float(erfcinv(2.0 * ber))


@dataclass(frozen=True)
class EyeDiagram:
    """Worst-case eye of the optical link, in transmission units.

    All quantities are normalized to 1 mW probe power per channel, so the
    received-power eye scales linearly with ``OP_probe``.
    """

    one_level_min: float
    zero_level_max: float

    @property
    def opening(self) -> float:
        """Eye opening (may be negative when crosstalk closes the eye)."""
        return self.one_level_min - self.zero_level_max

    @property
    def is_open(self) -> bool:
        """True when '1' and '0' power bands are disjoint."""
        return self.opening > 0.0


def worst_case_eye(params: OpticalSCParameters) -> EyeDiagram:
    """Exhaustive worst-case eye over all coefficient patterns and levels.

    Normalized to 1 mW probe power (transmissions), so callers can scale
    by any candidate ``OP_probe``.
    """
    reference = params.with_probe_power(1.0)
    budget = received_power_table(reference)
    return EyeDiagram(
        one_level_min=budget.one_band_mw[0],
        zero_level_max=budget.zero_band_mw[1],
    )


def snr_eq8(params: OpticalSCParameters) -> float:
    """The literal Eq. 8 evaluation, minimized over channels and levels.

    For each level ``i`` (filter tuned to channel ``i``):
    ``dT = T_{z_i=1, others 0}[i] - sum_{w != i} T_{z_w=1, others 0}[w]``
    and ``SNR = OP_probe * R / i_n * min_i dT``.
    """
    model = TransmissionModel(params)
    count = params.channel_count
    worst = math.inf
    for i in range(count):
        z_signal = np.zeros(count, dtype=np.uint8)
        z_signal[i] = 1
        signal = model.total_transmissions(z_signal, i)[i]
        crosstalk = 0.0
        for w in range(count):
            if w == i:
                continue
            z_cross = np.zeros(count, dtype=np.uint8)
            z_cross[w] = 1
            crosstalk += model.total_transmissions(z_cross, i)[w]
        worst = min(worst, signal - crosstalk)
    detector = params.detector
    swing_w = params.probe_power_mw * 1e-3 * worst
    return detector.responsivity_a_per_w * swing_w / detector.noise_current_a


def circuit_snr(params: OpticalSCParameters, method: str = "worstcase") -> float:
    """Electrical SNR of the link for the configured probe power."""
    if method == "worstcase":
        eye = worst_case_eye(params)
        swing_w = params.probe_power_mw * 1e-3 * eye.opening
        detector = params.detector
        return (
            detector.responsivity_a_per_w * swing_w / detector.noise_current_a
        )
    if method == "eq8":
        return snr_eq8(params)
    raise ConfigurationError(f"unknown SNR method {method!r}")


def circuit_ber(params: OpticalSCParameters, method: str = "worstcase") -> float:
    """Bit-error rate of the link (Eq. 9 applied to the circuit SNR)."""
    snr = circuit_snr(params, method=method)
    if snr <= 0.0:
        return 0.5  # closed eye: the receiver guesses
    return ber_for_snr(snr)


def minimum_probe_power_mw(
    params: OpticalSCParameters,
    target_ber: float = 1e-6,
    method: str = "worstcase",
) -> float:
    """Smallest per-channel probe power reaching *target_ber* (Eq. 8+9).

    The eye in transmission units is independent of the probe power, so
    the required power is closed-form:
    ``OP_probe = SNR_req * i_n / (R * eye)``.

    Raises :class:`DesignInfeasibleError` when the worst-case eye is
    closed (no finite probe power can reach the target).
    """
    snr_required = required_snr_for_ber(target_ber)
    if method == "worstcase":
        eye_opening = worst_case_eye(params).opening
    elif method == "eq8":
        eye_opening = snr_eq8(params.with_probe_power(1.0)) * (
            params.detector.noise_current_a
            / params.detector.responsivity_a_per_w
        ) / 1e-3
    else:
        raise ConfigurationError(f"unknown SNR method {method!r}")
    if eye_opening <= 0.0:
        raise DesignInfeasibleError(
            "worst-case eye is closed at this wavelength spacing; "
            "crosstalk exceeds the signal swing"
        )
    detector = params.detector
    swing_needed_w = (
        snr_required * detector.noise_current_a / detector.responsivity_a_per_w
    )
    return swing_needed_w / (eye_opening * 1e-3)


def probe_power_for_eyes_mw(
    eye_openings,
    detector,
    target_ber: float = 1e-6,
) -> np.ndarray:
    """Vectorized :func:`minimum_probe_power_mw` over a stack of eyes.

    *eye_openings* are worst-case eye openings in transmission units
    (1 mW-normalized, as produced by
    :class:`repro.core.transmission.StackedTransmissionModel`); the
    closed-form Eq. 8+9 inversion is applied elementwise.  Where the
    scalar sizing raises :class:`DesignInfeasibleError` on a closed eye,
    the batch returns ``inf`` — the feasibility-mask convention of the
    Fig. 7 sweep (callers that need the hard failure can check
    ``np.isinf`` themselves).
    """
    eyes = np.asarray(eye_openings, dtype=float)
    snr_required = required_snr_for_ber(target_ber)
    swing_needed_w = (
        snr_required
        * detector.noise_current_a
        / detector.responsivity_a_per_w
    )
    probe = np.full(eyes.shape, np.inf)
    feasible = eyes > 0.0
    probe[feasible] = swing_needed_w / (eyes[feasible] * 1e-3)
    return probe

"""The paper's analytical transmission model (Eqs. 6 and 7).

For a probe channel ``i`` the end-to-end power transmission is

``T_s,z[i] = prod_w phi_t(lambda_i, lambda_w - dl*z_w)
           * phi_d(lambda_i, lambda_ref - DeltaFilter(x))``      (Eq. 6)

with the pump-controlled filter detuning

``DeltaFilter(x) = OP_pump * OTE * (1/n) * sum_i T_MZI(x_i)``    (Eq. 7a)
``T_MZI(0) = IL%``, ``T_MZI(1) = IL% * ER%``                      (Eq. 7b)

:class:`TransmissionModel` precomputes the modulator through matrices and
the per-level filter drop matrix, and vectorizes the evaluation over all
``2^(n+1)`` coefficient patterns — the exhaustive enumeration behind the
Fig. 5(c) link budget and the worst-case SNR of Eq. 8.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..photonics.ring import drop_matrix, through_matrix
from .params import OpticalSCParameters

__all__ = [
    "TransmissionModel",
    "StackedTransmissionModel",
    "all_coefficient_patterns",
]


def all_coefficient_patterns(channel_count: int) -> np.ndarray:
    """All ``2**channel_count`` coefficient patterns as a (P, C) 0/1 array.

    Row ``p`` is the binary expansion of ``p`` with ``z_0`` in column 0
    (so pattern index reads as the integer ``z_n ... z_1 z_0``, matching
    the ``z2 z1 z0`` row labels of Fig. 5(c)).
    """
    if channel_count < 1:
        raise ConfigurationError(
            f"channel_count must be >= 1, got {channel_count!r}"
        )
    if channel_count > 20:
        raise ConfigurationError(
            "exhaustive pattern enumeration limited to 20 channels "
            f"(got {channel_count}); use sampled methods beyond that"
        )
    indices = np.arange(1 << channel_count, dtype=np.int64)
    bits = (indices[:, None] >> np.arange(channel_count)) & 1
    return bits.astype(np.uint8)


class TransmissionModel:
    """Vectorized evaluation of Eq. 6 over channels, patterns and levels.

    Parameters
    ----------
    params:
        The full circuit parameterization.

    Notes
    -----
    *Levels* index the adder output: level ``m`` means ``m`` of the ``n``
    data bits are 1, which tunes the filter to (nominally) channel ``m``
    — the multiplexing rule of the ReSC architecture.
    """

    def __init__(self, params: OpticalSCParameters):
        if not isinstance(params, OpticalSCParameters):
            raise ConfigurationError("params must be OpticalSCParameters")
        self.params = params
        grid = params.grid
        self._wavelengths = grid.wavelengths_nm
        shift = params.ring_profile.modulation_shift_nm
        modulator = params.ring_profile.modulator

        # Through matrices [k, w]: channel k past modulator w (Eq. 6 product).
        self._phi_off = through_matrix(
            modulator, self._wavelengths, self._wavelengths
        )
        self._phi_on = through_matrix(
            modulator, self._wavelengths, self._wavelengths - shift
        )
        self._log_phi_off = np.log(np.maximum(self._phi_off, 1e-300))
        self._log_phi_on = np.log(np.maximum(self._phi_on, 1e-300))

        # Filter drop matrix [m, k]: level m dropping channel k (Eq. 6 tail).
        resonances = self.filter_resonances_nm()
        self._drop = drop_matrix(
            params.ring_profile.filter, self._wavelengths, resonances
        )
        self._power_table_mw: "np.ndarray | None" = None

    # -- Eq. 7: pump-controlled filter tuning -------------------------------------

    def mzi_transmission_sum(self, ones_count: int) -> float:
        """``(1/n) * sum_i T_MZI(x_i)`` for *ones_count* destructive MZIs."""
        n = self.params.order
        if not 0 <= ones_count <= n:
            raise ConfigurationError(
                f"ones_count must be in [0, {n}], got {ones_count!r}"
            )
        il = self.params.mzi.il_fraction
        er = self.params.mzi.er_fraction
        return il * ((n - ones_count) + ones_count * er) / n

    def filter_detuning_nm(self, ones_count: int) -> float:
        """Eq. 7a: pump-induced blue shift of the filter resonance (nm)."""
        control_mw = self.params.pump_power_mw * self.mzi_transmission_sum(
            ones_count
        )
        return float(self.params.ote.shift_nm(control_mw))

    def filter_resonances_nm(self) -> np.ndarray:
        """Filter resonance per level: ``lambda_ref - DeltaFilter(m)``."""
        ref = self.params.lambda_ref_nm
        return np.asarray(
            [
                ref - self.filter_detuning_nm(m)
                for m in range(self.params.order + 1)
            ]
        )

    def tuning_errors_nm(self) -> np.ndarray:
        """Per-level misalignment between filter resonance and its channel.

        Zero for a perfectly sized pump/ER pair (the MRR-first condition);
        non-zero values quantify calibration error for the controller
        study.
        """
        return self.filter_resonances_nm() - self._wavelengths

    # -- Eq. 6: probe transmissions -------------------------------------------------

    def modulator_through_matrices(self) -> tuple:
        """``(phi_on, phi_off)`` matrices ``[k, w]`` for z_w = 1 / 0."""
        return self._phi_on.copy(), self._phi_off.copy()

    def drop_matrix(self) -> np.ndarray:
        """Drop transmission ``[m, k]``: level ``m`` dropping channel ``k``."""
        return self._drop.copy()

    def channel_transmissions(self, z: Sequence[int]) -> np.ndarray:
        """Per-channel transmission through the modulator bus (no filter)."""
        z = self._validate_pattern(z)
        log_t = np.where(z[None, :] == 1, self._log_phi_on, self._log_phi_off)
        return np.exp(log_t.sum(axis=1))

    def total_transmissions(self, z: Sequence[int], ones_count: int) -> np.ndarray:
        """Eq. 6 for every channel: modulator bus times filter drop."""
        bus = self.channel_transmissions(z)
        if not 0 <= ones_count <= self.params.order:
            raise ConfigurationError(
                f"ones_count must be in [0, {self.params.order}]"
            )
        return bus * self._drop[ones_count]

    def received_power_mw(self, z: Sequence[int], ones_count: int) -> float:
        """Total optical power at the photodetector (mW).

        Sum of all probe channels after modulators and filter; the pump is
        assumed fully absorbed by the band-pass filter (paper assumption).
        """
        return float(
            self.params.probe_power_mw
            * self.total_transmissions(z, ones_count).sum()
        )

    # -- exhaustive pattern tables ---------------------------------------------------

    def pattern_bus_transmissions(self) -> np.ndarray:
        """Modulator-bus transmission for all patterns: ``(P, C)`` array."""
        patterns = all_coefficient_patterns(self.params.channel_count)
        z = patterns.astype(float)
        # log T[p, k] = sum_w [ z log phi_on + (1 - z) log phi_off ][k, w]
        log_t = z @ self._log_phi_on.T + (1.0 - z) @ self._log_phi_off.T
        return np.exp(log_t)

    def received_power_table_mw(self) -> np.ndarray:
        """Received power for every (pattern, level): ``(P, L)`` array (mW).

        ``table[p, m]`` is the photodetector power when the coefficients
        take pattern ``p`` and ``m`` data bits are 1 — the exhaustive
        enumeration plotted in Fig. 5(c) for n = 2.

        The table is computed once and cached (the parameters are
        immutable); the returned array is marked read-only since the
        batched engine indexes it on every evaluation.
        """
        if self._power_table_mw is None:
            table = self.params.probe_power_mw * (
                self.pattern_bus_transmissions() @ self._drop.T
            )
            table.setflags(write=False)
            self._power_table_mw = table
        return self._power_table_mw

    # -- helpers ---------------------------------------------------------------------

    def _validate_pattern(self, z: Iterable[int]) -> np.ndarray:
        z = np.asarray(list(z) if not isinstance(z, np.ndarray) else z)
        if z.shape != (self.params.channel_count,):
            raise ConfigurationError(
                f"need {self.params.channel_count} coefficient bits, "
                f"got shape {z.shape}"
            )
        if not np.all((z == 0) | (z == 1)):
            raise ConfigurationError("coefficient bits must be 0 or 1")
        return z.astype(np.uint8)

    def spectrum(
        self,
        z: Sequence[int],
        ones_count: int,
        wavelengths_nm: np.ndarray,
    ) -> dict:
        """Spectral responses for Fig. 5(a)/(b)-style plots.

        Returns a dict with one through-transmission curve per modulator
        MRR (keyed ``"MRR0"..``), the filter drop curve (``"filter"``),
        and the probe-channel markers (``"probes"``).
        """
        z = self._validate_pattern(z)
        wavelengths_nm = np.asarray(wavelengths_nm, dtype=float)
        profile = self.params.ring_profile
        shift = profile.modulation_shift_nm
        curves: dict = {}
        for w, lam_w in enumerate(self._wavelengths):
            resonance = lam_w - shift * int(z[w])
            curves[f"MRR{w}"] = np.asarray(
                profile.modulator.through(wavelengths_nm, resonance)
            )
        level_res = self.filter_resonances_nm()[ones_count]
        curves["filter"] = np.asarray(
            profile.filter.drop(wavelengths_nm, level_res)
        )
        curves["probes"] = self._wavelengths.copy()
        return curves


class StackedTransmissionModel:
    """Eq. 6 evaluated for a whole stack of perturbed circuit geometries.

    Where :class:`TransmissionModel` computes the through/drop matrices
    and the exhaustive ``(P, L)`` received-power table for *one*
    parameter set, this class takes ``S`` geometries at once — each a
    row of channel wavelengths and per-level filter resonances sharing
    one ring technology — and evaluates every Eq. 6 product as a single
    broadcasted pass: through matrices ``(S, K, W)``, drop matrices
    ``(S, L, K)`` and power tables ``(S, P, L)``.  The ``2^K`` pattern
    enumeration and the channel/modulator geometry are materialized once
    per stack instead of once per corner, which is what makes the Monte
    Carlo yield study and the Fig. 7 design sizing one-pass.

    Parameters
    ----------
    ring_profile:
        The shared ring technology (modulator + filter coefficients and
        the electro-optic modulation shift).
    order:
        Polynomial degree ``n``; every stacked geometry has ``n + 1``
        channels and ``n + 1`` filter levels.
    wavelengths_nm:
        ``(S, n + 1)`` channel wavelengths, one row per geometry.
    filter_resonances_nm:
        ``(S, n + 1)`` pump-tuned filter resonances, one row per
        geometry (level ``m`` in column ``m``).
    probe_power_mw:
        Per-channel probe power: a scalar shared by the stack or an
        ``(S,)`` array of per-geometry candidates (the design sweep
        case).  Defaults to the 1 mW normalization used by
        :func:`repro.core.snr.worst_case_eye`.
    """

    def __init__(
        self,
        ring_profile,
        order: int,
        wavelengths_nm: np.ndarray,
        filter_resonances_nm: np.ndarray,
        probe_power_mw=1.0,
    ):
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order!r}")
        self.order = int(order)
        channels = self.order + 1
        wavelengths = np.atleast_2d(np.asarray(wavelengths_nm, dtype=float))
        resonances = np.atleast_2d(
            np.asarray(filter_resonances_nm, dtype=float)
        )
        if wavelengths.ndim != 2 or wavelengths.shape[1] != channels:
            raise ConfigurationError(
                f"wavelengths_nm must be (S, {channels}), got shape "
                f"{np.shape(wavelengths_nm)}"
            )
        if resonances.shape != wavelengths.shape:
            raise ConfigurationError(
                f"filter_resonances_nm must match wavelengths_nm shape "
                f"{wavelengths.shape}, got {np.shape(filter_resonances_nm)}"
            )
        self._wavelengths = wavelengths
        self._resonances = resonances
        probe = np.asarray(probe_power_mw, dtype=float)
        if probe.ndim == 0:
            probe = np.full(self.stack_size, float(probe))
        if probe.shape != (self.stack_size,):
            raise ConfigurationError(
                f"probe_power_mw must be scalar or ({self.stack_size},), "
                f"got shape {probe.shape}"
            )
        if np.any(probe <= 0.0):
            raise ConfigurationError("probe_power_mw must be positive")
        self._probe_mw = probe

        shift = ring_profile.modulation_shift_nm
        phi_off = through_matrix(
            ring_profile.modulator, wavelengths, wavelengths
        )
        phi_on = through_matrix(
            ring_profile.modulator, wavelengths, wavelengths - shift
        )
        self._log_phi_off = np.log(np.maximum(phi_off, 1e-300))
        self._log_phi_on = np.log(np.maximum(phi_on, 1e-300))
        self._drop = drop_matrix(ring_profile.filter, wavelengths, resonances)
        self._power_tables_mw: "np.ndarray | None" = None

    @property
    def stack_size(self) -> int:
        """Number of stacked geometries ``S``."""
        return int(self._wavelengths.shape[0])

    @property
    def channel_count(self) -> int:
        """Number of coefficient channels (``n + 1``)."""
        return self.order + 1

    def pattern_bus_transmissions(self) -> np.ndarray:
        """Modulator-bus transmission for all patterns: ``(S, P, K)``."""
        patterns = all_coefficient_patterns(self.channel_count)
        z = patterns.astype(float)
        log_t = np.einsum(
            "pw,skw->spk", z, self._log_phi_on
        ) + np.einsum("pw,skw->spk", 1.0 - z, self._log_phi_off)
        return np.exp(log_t)

    def received_power_tables_mw(self) -> np.ndarray:
        """Received power for every (geometry, pattern, level): ``(S, P, L)``.

        ``tables[s, p, m]`` is the photodetector power of geometry ``s``
        under coefficient pattern ``p`` at adder level ``m`` — the
        Fig. 5(c) table for every stacked corner at once.  Computed once
        and cached read-only, mirroring the scalar model.
        """
        if self._power_tables_mw is None:
            bus = self.pattern_bus_transmissions()
            tables = self._probe_mw[:, None, None] * np.einsum(
                "spk,smk->spm", bus, self._drop
            )
            tables.setflags(write=False)
            self._power_tables_mw = tables
        return self._power_tables_mw

    def eye_bands(self) -> tuple:
        """Per-geometry ``(one_level_min, zero_level_max)`` arrays.

        The stacked equivalent of
        :attr:`repro.core.link_budget.LinkBudget.one_band_mw` /
        ``zero_band_mw`` extrema — see
        :func:`repro.core.link_budget.batch_eye_bands`.
        """
        from .link_budget import batch_eye_bands

        return batch_eye_bands(self.received_power_tables_mw())

    def eye_openings_mw(self) -> np.ndarray:
        """Worst-case eye opening per geometry (may be negative)."""
        one_min, zero_max = self.eye_bands()
        return one_min - zero_max

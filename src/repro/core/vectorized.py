"""Stacked-corner optics analysis: batched Monte Carlo and one-pass sizing.

The scalar analysis stack rebuilds a
:class:`~repro.core.transmission.TransmissionModel` — through matrices,
drop matrix, the ``2^(n+1)`` pattern table — for every Monte Carlo
fabrication corner and every candidate wavelength spacing.  This module
evaluates a whole stack of perturbed geometries as one broadcasted numpy
pass over :class:`~repro.core.transmission.StackedTransmissionModel`:

* :func:`worst_case_eye_batch` — the eye openings of ``S`` fabrication
  corners (ring/filter resonance offsets) in one call, numerically
  matching the scalar ``_perturbed_params`` + ``worst_case_eye`` chain
  of :mod:`repro.simulation.montecarlo` corner for corner;
* :func:`monte_carlo_eye_batch` — the same, sharded over the runtime's
  ``parallel_map`` worker pool for very large corner counts;
* :func:`mrr_first_sizing_batch` — the Section IV-B MRR-first method
  solved for all spacing (and guard/IL/OTE) candidates at once, with a
  vectorized feasibility mask instead of per-candidate exceptions;
* :func:`mrr_first_design_batch` — fully assembled
  :class:`~repro.core.design.CircuitDesign` objects from one stacked
  sizing pass;
* :func:`energy_vs_spacing_batch` — the Fig. 7(a) energy sweep as a
  single evaluation, point-for-point equal to the scalar
  :func:`~repro.core.energy.energy_vs_spacing` loop including its
  ``inf``/``nan`` infeasibility convention.

Everything here is a pure wall-clock optimization: the batched results
agree with the scalar chain to floating-point rounding (same formulas,
same operand values; only the summation order inside matrix products
differs), and the parity suite in ``tests/test_vectorized.py`` plus the
``benchmarks/bench_optics.py`` exit gate enforce it.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..constants import (
    PAPER_BIT_RATE_HZ,
    PAPER_FIG6_TARGET_BER,
    PAPER_GUARD_NM,
    PAPER_LASING_EFFICIENCY,
    PAPER_MZI_IL_DB,
    PAPER_PULSE_WIDTH_S,
)
from ..errors import (
    ConfigurationError,
    DesignInfeasibleError,
    PhysicalModelError,
)
from ..photonics.devices import (
    DEFAULT_PHOTODETECTOR,
    DENSE_RING_PROFILE,
    RingProfile,
    VAN_2002_OTE,
)
from ..photonics.mzi import MZIModulator
from ..photonics.nonlinear import OpticalTuningEfficiency
from ..photonics.wdm import WDMGrid
from ..units import db_loss_to_transmission
from .design import CircuitDesign, _default_profile
from .energy import laser_energies_pj
from .params import OpticalSCParameters
from .snr import probe_power_for_eyes_mw
from .transmission import StackedTransmissionModel

__all__ = [
    "perturbed_geometry",
    "worst_case_eye_batch",
    "monte_carlo_eye_batch",
    "mrr_first_sizing_batch",
    "mrr_first_design_batch",
    "energy_vs_spacing_batch",
]

_GUARD_CLAMP_NM = 1e-6
"""Collapsed-guard clamp shared with ``montecarlo._perturbed_params``."""


def _as_offset_arrays(ring_offsets_nm, filter_offsets_nm) -> tuple:
    ring = np.atleast_1d(np.asarray(ring_offsets_nm, dtype=float))
    filt = np.atleast_1d(np.asarray(filter_offsets_nm, dtype=float))
    if ring.ndim != 1 or filt.ndim != 1:
        raise ConfigurationError("offset arrays must be one-dimensional")
    if ring.size == 1 and filt.size > 1:
        ring = np.full(filt.size, float(ring[0]))
    if filt.size == 1 and ring.size > 1:
        filt = np.full(ring.size, float(filt[0]))
    if ring.size != filt.size:
        raise ConfigurationError(
            f"ring offsets ({ring.size}) and filter offsets ({filt.size}) "
            "must have the same length"
        )
    if ring.size == 0:
        raise ConfigurationError("need at least one corner")
    return ring, filt


def _filter_detunings_nm(params: OpticalSCParameters) -> np.ndarray:
    """Per-level pump-induced detuning (Eq. 7a), nominal-parameter only.

    Replicates ``TransmissionModel.filter_detuning_nm`` level by level
    with the same scalar float arithmetic, so the stacked resonances
    match the scalar model's exactly.
    """
    n = params.order
    il = params.mzi.il_fraction
    er = params.mzi.er_fraction
    pump = params.pump_power_mw
    return np.asarray(
        [
            float(
                params.ote.shift_nm(
                    pump * (il * ((n - m) + m * er) / n)
                )
            )
            for m in range(n + 1)
        ]
    )


def perturbed_geometry(
    params: OpticalSCParameters,
    ring_offsets_nm,
    filter_offsets_nm,
) -> tuple:
    """Stacked ``(wavelengths, filter_resonances)`` for fabrication corners.

    Applies the Monte Carlo perturbation encoding of
    :mod:`repro.simulation.montecarlo` to *params* for every corner at
    once: a common-mode modulator-bank offset shifts the grid anchor
    (only relative detuning matters) and the filter offset changes the
    guard band, clamped at ``1e-6`` nm when the filter collapses onto
    the last channel (the worst case).  Returns ``(S, n + 1)`` channel
    wavelengths and pump-tuned filter resonances, numerically identical
    to rebuilding the perturbed parameter set per corner.

    Raises :class:`DesignInfeasibleError` when a perturbed grid no
    longer fits the filter FSR — the same failure the scalar corner
    rebuild hits inside ``WDMGrid.validate_against_fsr``.
    """
    if not isinstance(params, OpticalSCParameters):
        raise ConfigurationError("params must be OpticalSCParameters")
    ring, filt = _as_offset_arrays(ring_offsets_nm, filter_offsets_nm)
    grid = params.grid
    degree = grid.polynomial_degree
    guard = grid.guard_nm + filt - ring
    guard = np.where(guard <= _GUARD_CLAMP_NM, _GUARD_CLAMP_NM, guard)
    anchor = grid.anchor_nm + ring
    span = degree * grid.spacing_nm + guard
    fsr = params.ring_profile.filter.fsr_nm
    if np.any(span >= fsr):
        worst = float(span.max())
        raise DesignInfeasibleError(
            f"perturbed WDM span {worst:.3f} nm does not fit inside the "
            f"filter FSR {fsr:.3f} nm"
        )
    index = np.arange(grid.channel_count)
    wavelengths = anchor[:, None] - ((degree - index) * grid.spacing_nm)[None, :]
    detunings = _filter_detunings_nm(params)
    reference = anchor + guard
    resonances = reference[:, None] - detunings[None, :]
    return wavelengths, resonances


def worst_case_eye_batch(
    params: OpticalSCParameters,
    ring_offsets_nm,
    filter_offsets_nm,
) -> np.ndarray:
    """Worst-case eye openings of ``S`` fabrication corners, one pass.

    The batched equivalent of perturbing *params* per corner and calling
    :func:`repro.core.snr.worst_case_eye` (1 mW probe normalization):
    returns the ``(S,)`` eye openings in transmission units, negative
    where crosstalk closes the eye.  Pattern enumeration and geometry
    are materialized once for the whole stack.
    """
    wavelengths, resonances = perturbed_geometry(
        params, ring_offsets_nm, filter_offsets_nm
    )
    model = StackedTransmissionModel(
        params.ring_profile,
        params.order,
        wavelengths,
        resonances,
        probe_power_mw=1.0,
    )
    return model.eye_openings_mw()


def _eye_block_worker(payload: tuple) -> np.ndarray:
    """One corner block (module-level so process pools can pickle it)."""
    params, ring, filt = payload
    return worst_case_eye_batch(params, ring, filt)


def monte_carlo_eye_batch(
    params: OpticalSCParameters,
    ring_offsets_nm,
    filter_offsets_nm,
    workers: Optional[int] = None,
    backend: str = "process",
) -> np.ndarray:
    """:func:`worst_case_eye_batch`, sharded over the runtime worker pool.

    For huge corner counts the stacked evaluation composes with the
    same ``parallel_map`` fan-out the scalar Monte Carlo loop uses:
    contiguous corner blocks are evaluated per worker and concatenated
    in order, so the result is independent of the worker count.
    ``workers`` defaults to the ``REPRO_RUNTIME_WORKERS`` environment
    setting, like every runtime entry point.
    """
    from ..simulation.runtime import (
        _shard_bounds,
        default_worker_count,
        parallel_map,
    )

    if not isinstance(params, OpticalSCParameters):
        raise ConfigurationError("params must be OpticalSCParameters")
    ring, filt = _as_offset_arrays(ring_offsets_nm, filter_offsets_nm)
    workers = default_worker_count() if workers is None else int(workers)
    if workers <= 1 or ring.size <= 1:
        return worst_case_eye_batch(params, ring, filt)
    payloads = [
        (params, ring[lo:hi], filt[lo:hi])
        for lo, hi in _shard_bounds(ring.size, workers)
    ]
    blocks = parallel_map(
        _eye_block_worker, payloads, workers=workers, backend=backend
    )
    return np.concatenate(blocks)


# -- one-pass MRR-first design sizing ------------------------------------------


def _broadcast_knob(value, size: int, name: str) -> np.ndarray:
    array = np.asarray(value, dtype=float)
    if array.ndim == 0:
        return np.full(size, float(array))
    if array.shape != (size,):
        raise ConfigurationError(
            f"{name} must be a scalar or a ({size},) array, got shape "
            f"{array.shape}"
        )
    return array.copy()


def _merge_sizing(results: List[tuple]) -> dict:
    """Stitch per-profile sub-batches back into input order."""
    template = results[0][1]
    merged: dict = {}
    size = sum(r["spacing_nm"].size for _, r in results)
    for key, value in template.items():
        out = np.empty(size, dtype=value.dtype)
        for indices, result in results:
            out[indices] = result[key]
        merged[key] = out
    return merged


def mrr_first_sizing_batch(
    order: int,
    spacings_nm,
    anchor_nm: float = 1550.0,
    guard_nm=PAPER_GUARD_NM,
    insertion_loss_db=PAPER_MZI_IL_DB,
    ring_profile: Optional[RingProfile] = None,
    ote: OpticalTuningEfficiency = VAN_2002_OTE,
    ote_nm_per_mw=None,
    detector=DEFAULT_PHOTODETECTOR,
    target_ber: float = PAPER_FIG6_TARGET_BER,
    size_probe: bool = True,
) -> dict:
    """Section IV-B MRR-first sizing for all candidates in one pass.

    Vectorizes the pump/ER/probe derivation of
    :func:`repro.core.design.mrr_first_design` over ``(S,)`` candidate
    arrays: *spacings_nm* always, and optionally per-candidate
    *guard_nm*, *insertion_loss_db* and *ote_nm_per_mw* (an ``(S,)``
    override of the OTE slope, used by the sensitivity study).  With
    *ring_profile* ``None`` each spacing gets the same COARSE/DENSE
    default the scalar designer would pick, evaluated as at most two
    stacked sub-batches.

    Returns a dict of ``(S,)`` arrays::

        spacing_nm, span_nm, pump_power_mw, er_db, eye_opening,
        probe_power_mw, fits_fsr, eye_open, feasible

    Feasibility is a mask, not an exception: candidates whose grid
    exceeds the filter FSR have ``fits_fsr`` False (``eye_opening``
    ``nan``), and open-eye failures surface as ``probe_power_mw`` =
    ``inf`` — matching the scalar sweep's handling of
    :class:`DesignInfeasibleError`.  An OTE saturation violation still
    raises :class:`PhysicalModelError`, exactly like the scalar pump
    sizing.

    ``size_probe=False`` skips the stacked eye evaluation — the
    expensive step — for callers that fix the probe power externally
    (the scalar designer skips ``minimum_probe_power_mw`` the same
    way); the eye-dependent outputs then stay at their unevaluated
    placeholders (``eye_opening`` ``nan``, ``probe_power_mw`` ``inf``,
    ``eye_open``/``feasible`` ``False``).
    """
    if order < 1:
        raise ConfigurationError(f"order must be >= 1, got {order!r}")
    spacings = np.asarray(spacings_nm, dtype=float)
    if spacings.ndim != 1 or spacings.size == 0:
        raise ConfigurationError(
            "spacings_nm must be a non-empty one-dimensional array"
        )
    if np.any(spacings <= 0.0):
        raise ConfigurationError("spacings must be positive")
    size = spacings.size
    guard = _broadcast_knob(guard_nm, size, "guard_nm")
    il_db = _broadcast_knob(insertion_loss_db, size, "insertion_loss_db")
    if np.any(guard <= 0.0):
        raise ConfigurationError("guard_nm must be positive")

    if ring_profile is None:
        profiles = [_default_profile(float(s)) for s in spacings]
        unique = {id(p): p for p in profiles}
        if len(unique) > 1:
            results = []
            for profile in unique.values():
                indices = np.asarray(
                    [i for i, p in enumerate(profiles) if p is profile]
                )
                slope = (
                    None
                    if ote_nm_per_mw is None
                    else _broadcast_knob(ote_nm_per_mw, size, "ote_nm_per_mw")[
                        indices
                    ]
                )
                results.append(
                    (
                        indices,
                        mrr_first_sizing_batch(
                            order,
                            spacings[indices],
                            anchor_nm=anchor_nm,
                            guard_nm=guard[indices],
                            insertion_loss_db=il_db[indices],
                            ring_profile=profile,
                            ote=ote,
                            ote_nm_per_mw=slope,
                            detector=detector,
                            target_ber=target_ber,
                            size_probe=size_probe,
                        ),
                    )
                )
            return _merge_sizing(results)
        ring_profile = profiles[0]

    if ote_nm_per_mw is None:
        slope = np.full(size, ote.nm_per_mw)
        saturation_nm = ote.max_shift_nm
    else:
        slope = _broadcast_knob(ote_nm_per_mw, size, "ote_nm_per_mw")
        if np.any(slope <= 0.0):
            raise ConfigurationError("ote_nm_per_mw must be positive")
        saturation_nm = None

    # Step 2 of the method: the minimum pump puts the filter on the
    # left-most channel when all MZIs are constructive.
    span = order * spacings + guard
    if saturation_nm is not None and np.any(span > saturation_nm):
        raise PhysicalModelError(
            f"shift beyond saturation bound ({saturation_nm} nm)"
        )
    il_fraction = np.asarray(db_loss_to_transmission(il_db))
    pump_mw = (span / slope) / il_fraction

    # Step 3: the ER makes the all-destructive state land on the
    # right-most channel.  Round-trip through dB like MZIModulator so
    # the detuning levels match the scalar designer's bit for bit.
    er_db = -10.0 * np.log10(guard / span)
    er_fraction = np.asarray(db_loss_to_transmission(er_db))

    fits_fsr = span < ring_profile.filter.fsr_nm

    eye = np.full(size, np.nan)
    probe_mw = np.full(size, np.inf)
    eye_open = np.zeros(size, dtype=bool)
    if size_probe and np.any(fits_fsr):
        index = np.arange(order + 1)
        wavelengths = anchor_nm - (
            (order - index)[None, :] * spacings[:, None]
        )
        levels = np.arange(order + 1)
        mzi_sums = (
            il_fraction[:, None]
            * (
                (order - levels)[None, :]
                + levels[None, :] * er_fraction[:, None]
            )
            / order
        )
        detunings = slope[:, None] * (pump_mw[:, None] * mzi_sums)
        resonances = (anchor_nm + guard)[:, None] - detunings
        model = StackedTransmissionModel(
            ring_profile,
            order,
            wavelengths[fits_fsr],
            resonances[fits_fsr],
            probe_power_mw=1.0,
        )
        eye[fits_fsr] = model.eye_openings_mw()
        probe_mw[fits_fsr] = probe_power_for_eyes_mw(
            eye[fits_fsr], detector, target_ber=target_ber
        )
        eye_open[fits_fsr] = eye[fits_fsr] > 0.0
    return {
        "spacing_nm": spacings,
        "span_nm": span,
        "pump_power_mw": pump_mw,
        "er_db": er_db,
        "eye_opening": eye,
        "probe_power_mw": probe_mw,
        "fits_fsr": fits_fsr,
        "eye_open": eye_open,
        "feasible": fits_fsr & eye_open,
    }


def mrr_first_design_batch(
    order: int,
    spacings_nm,
    anchor_nm: float = 1550.0,
    guard_nm: float = PAPER_GUARD_NM,
    insertion_loss_db: float = PAPER_MZI_IL_DB,
    ring_profile: Optional[RingProfile] = None,
    ote: OpticalTuningEfficiency = VAN_2002_OTE,
    detector=DEFAULT_PHOTODETECTOR,
    target_ber: float = PAPER_FIG6_TARGET_BER,
    probe_power_mw: Optional[float] = None,
    bit_rate_hz: float = PAPER_BIT_RATE_HZ,
    pump_pulse_width_s: float = PAPER_PULSE_WIDTH_S,
    laser_efficiency: float = PAPER_LASING_EFFICIENCY,
    mzi_speed_gbps: Optional[float] = 40.0,
) -> List[CircuitDesign]:
    """Batch :func:`repro.core.design.mrr_first_design`: one sizing pass.

    Sizes every spacing with :func:`mrr_first_sizing_batch` and
    assembles the full :class:`CircuitDesign` list; the eye — the
    expensive part of the scalar designer — is evaluated once for the
    whole stack.  Like the scalar method, an explicit *probe_power_mw*
    skips the BER probe sizing (and with it the eye evaluation)
    entirely; otherwise any candidate with a closed eye (or a grid
    outside the filter FSR) raises :class:`DesignInfeasibleError`
    naming the offending spacings — callers that want a mask instead
    should use :func:`mrr_first_sizing_batch` directly.
    """
    sizing = mrr_first_sizing_batch(
        order,
        spacings_nm,
        anchor_nm=anchor_nm,
        guard_nm=guard_nm,
        insertion_loss_db=insertion_loss_db,
        ring_profile=ring_profile,
        ote=ote,
        detector=detector,
        target_ber=target_ber,
        size_probe=probe_power_mw is None,
    )
    spacings = sizing["spacing_nm"]
    bad = ~sizing["fits_fsr"]
    if probe_power_mw is None:
        bad = bad | ~sizing["eye_open"]
    if np.any(bad):
        raise DesignInfeasibleError(
            "no feasible MRR-first design at spacings "
            f"{spacings[bad].tolist()} nm (grid beyond the filter FSR or "
            "worst-case eye closed)"
        )
    designs = []
    for s in range(spacings.size):
        spacing = float(spacings[s])
        profile = ring_profile or _default_profile(spacing)
        grid = WDMGrid(
            channel_count=order + 1,
            spacing_nm=spacing,
            anchor_nm=anchor_nm,
            guard_nm=guard_nm,
        )
        mzi = MZIModulator(
            insertion_loss_db=insertion_loss_db,
            extinction_ratio_db=float(sizing["er_db"][s]),
            modulation_speed_gbps=mzi_speed_gbps,
            name="MRR-first sized MZI",
        )
        probe = (
            float(sizing["probe_power_mw"][s])
            if probe_power_mw is None
            else probe_power_mw
        )
        params = OpticalSCParameters(
            order=order,
            grid=grid,
            ring_profile=profile,
            mzi=mzi,
            ote=ote,
            pump_power_mw=float(sizing["pump_power_mw"][s]),
            probe_power_mw=probe,
            detector=detector,
            bit_rate_hz=bit_rate_hz,
            pump_pulse_width_s=pump_pulse_width_s,
            laser_efficiency=laser_efficiency,
        )
        designs.append(
            CircuitDesign(
                params=params, method="mrr_first", target_ber=target_ber
            )
        )
    return designs


def energy_vs_spacing_batch(
    order: int,
    spacings_nm,
    ring_profile: RingProfile = DENSE_RING_PROFILE,
    target_ber: float = 1e-6,
) -> dict:
    """The Fig. 7(a) sweep as one stacked sizing pass.

    Point-for-point equal (to floating-point rounding) to the scalar
    :func:`repro.core.energy.energy_vs_spacing` loop with the default
    MRR-first designer, including the infeasibility convention:
    candidates whose design fails get ``nan`` pump energy and ``inf``
    probe energy (so ``total_pj`` is ``nan`` there).
    """
    spacings = np.asarray(list(spacings_nm), dtype=float)
    if spacings.size == 0:
        raise ConfigurationError("need at least one spacing")
    sizing = mrr_first_sizing_batch(
        order,
        spacings,
        ring_profile=ring_profile,
        target_ber=target_ber,
    )
    pump_pj, probe_pj = laser_energies_pj(
        sizing["pump_power_mw"],
        sizing["probe_power_mw"],
        channel_count=order + 1,
        bit_rate_hz=PAPER_BIT_RATE_HZ,
        pump_pulse_width_s=PAPER_PULSE_WIDTH_S,
        laser_efficiency=PAPER_LASING_EFFICIENCY,
    )
    infeasible = ~sizing["feasible"]
    pump_pj = np.where(infeasible, np.nan, pump_pj)
    probe_pj = np.where(infeasible, np.inf, probe_pj)
    return {
        "spacing_nm": spacings,
        "pump_pj": pump_pj,
        "probe_pj": probe_pj,
        "total_pj": pump_pj + probe_pj,
    }

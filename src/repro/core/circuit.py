"""High-level facade: the assembled optical stochastic-computing circuit.

:class:`OpticalStochasticCircuit` binds a sized design (parameters) to a
Bernstein program (coefficients) and exposes the whole evaluation stack —
analytical link budget, spectra, energy, and bit-level functional
simulation — through one object, mirroring Fig. 3(a).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..stochastic.bernstein import BernsteinPolynomial
from .design import CircuitDesign
from .energy import EnergyBreakdown, energy_breakdown
from .link_budget import LinkBudget, received_power_table
from .params import OpticalSCParameters
from .snr import circuit_ber, circuit_snr
from .transmission import TransmissionModel

__all__ = ["OpticalStochasticCircuit"]


class OpticalStochasticCircuit:
    """The generic circuit of Fig. 4(a), programmed with one polynomial.

    Parameters
    ----------
    params:
        Device/system parameterization (typically from a design method).
    polynomial:
        Bernstein program; its degree must equal ``params.order`` and all
        coefficients must be probabilities.
    """

    def __init__(
        self,
        params: OpticalSCParameters,
        polynomial: Optional[BernsteinPolynomial] = None,
    ):
        if not isinstance(params, OpticalSCParameters):
            raise ConfigurationError("params must be OpticalSCParameters")
        if polynomial is None:
            # Default program: the identity-like ramp b_i = i/n, a neutral
            # but non-trivial program (B(x) = x for the ramp coefficients).
            polynomial = BernsteinPolynomial(
                np.arange(params.order + 1) / params.order
            )
        if polynomial.degree != params.order:
            raise ConfigurationError(
                f"polynomial degree {polynomial.degree} must equal the "
                f"circuit order {params.order}"
            )
        if not polynomial.is_sc_implementable():
            raise ConfigurationError(
                "Bernstein coefficients must lie in [0, 1]"
            )
        self.params = params
        self.polynomial = polynomial
        self.model = TransmissionModel(params)
        self._link_budget_cache: Optional[LinkBudget] = None

    @classmethod
    def from_design(
        cls,
        design: CircuitDesign,
        polynomial: Optional[BernsteinPolynomial] = None,
    ) -> "OpticalStochasticCircuit":
        """Build the circuit from a :class:`CircuitDesign`."""
        if not isinstance(design, CircuitDesign):
            raise ConfigurationError("design must be a CircuitDesign")
        return cls(design.params, polynomial)

    def fingerprint(self) -> str:
        """Stable digest of the design point and Bernstein program.

        Two circuits with equal parameters and coefficients evaluate
        identically under a fixed seed schedule, so this digest (plus
        the SNG configuration) keys the runtime's evaluation cache
        (:class:`repro.simulation.runtime.EvaluationCache`).
        """
        import hashlib

        payload = "|".join(
            (
                repr(self.params),
                ",".join(repr(float(c)) for c in self.polynomial.coefficients),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # -- analytical views ---------------------------------------------------------

    def link_budget(self) -> LinkBudget:
        """Received-power table over all (z, x) combinations (Fig. 5(c)).

        Computed once and cached: the parameters are immutable and the
        batched engine consults the budget on every evaluation pass.
        """
        if self._link_budget_cache is None:
            self._link_budget_cache = received_power_table(self.params)
        return self._link_budget_cache

    def energy(self) -> EnergyBreakdown:
        """Laser energy per computed bit (Section V-C model)."""
        return energy_breakdown(self.params)

    def snr(self, method: str = "worstcase") -> float:
        """Electrical SNR at the photodetector."""
        return circuit_snr(self.params, method=method)

    def ber(self, method: str = "worstcase") -> float:
        """Transmission bit-error rate (Eq. 9)."""
        return circuit_ber(self.params, method=method)

    def spectra(
        self,
        z: Sequence[int],
        ones_count: int,
        wavelengths_nm: Optional[np.ndarray] = None,
    ) -> dict:
        """Device spectra for a given circuit state (Fig. 5(a)/(b))."""
        if wavelengths_nm is None:
            grid = self.params.grid
            lo = grid.wavelengths_nm[0] - 1.0
            hi = grid.reference_nm + 0.5
            wavelengths_nm = np.linspace(lo, hi, 2001)
        return self.model.spectrum(z, ones_count, wavelengths_nm)

    # -- expected values ------------------------------------------------------------

    def expected_value(self, x: float) -> float:
        """The exact Bernstein value ``B(x)`` the circuit approximates."""
        if not 0.0 <= x <= 1.0:
            raise ConfigurationError(f"x must be in [0, 1], got {x!r}")
        return float(self.polynomial(x))

    def throughput_bits_per_s(self) -> float:
        """Stream bits per second (one per bit period)."""
        return self.params.bit_rate_hz

    def speedup_vs_electronic(self, electronic_clock_hz: float = 100e6) -> float:
        """Throughput ratio vs an electronic ReSC (paper: 10x vs 100 MHz)."""
        if electronic_clock_hz <= 0.0:
            raise ConfigurationError("electronic_clock_hz must be positive")
        return self.params.bit_rate_hz / electronic_clock_hz

    # -- simulation ------------------------------------------------------------------

    def evaluate(
        self,
        x: float,
        length: int = 1024,
        rng: Optional[np.random.Generator] = None,
        noisy: bool = True,
    ):
        """Bit-level functional simulation of one evaluation.

        Delegates to :func:`repro.simulation.functional.simulate_evaluation`;
        see that module for the step-by-step physical pipeline.  Returns
        an :class:`~repro.simulation.functional.OpticalEvaluation`.
        """
        from ..simulation.functional import simulate_evaluation

        return simulate_evaluation(
            self, x=x, length=length, rng=rng, noisy=noisy
        )

    def evaluate_batch(
        self,
        xs,
        length: int = 1024,
        rng: Optional[np.random.Generator] = None,
        noisy: bool = True,
        sng_kind: str = "lfsr",
        base_seed: Optional[int] = None,
        sng_width: int = 16,
    ):
        """Vectorized bit-level simulation of many evaluations at once.

        Delegates to :func:`repro.simulation.engine.simulate_batch`;
        returns a :class:`~repro.simulation.engine.BatchEvaluation` with
        one row per input.
        """
        from ..simulation.engine import simulate_batch

        return simulate_batch(
            self,
            xs,
            length=length,
            rng=rng,
            noisy=noisy,
            sng_kind=sng_kind,
            base_seed=base_seed,
            sng_width=sng_width,
        )

    def describe(self) -> str:
        """Readable summary of the programmed circuit."""
        coeffs = ", ".join(f"{b:.3f}" for b in self.polynomial.coefficients)
        return (
            self.params.describe()
            + f"\n  Bernstein program       : [{coeffs}]"
        )

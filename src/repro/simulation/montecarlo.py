"""Monte Carlo process-variation analysis.

The paper motivates SC for domains "where soft errors and process
variations are of major concern" (Section II-A).  Resonant photonics is
acutely sensitive to fabrication variation: ±0.1 % waveguide-width error
moves a ring resonance by hundreds of picometers.  This module samples
per-ring resonance offsets and evaluates the resulting link-budget eye,
producing yield numbers (fraction of fabricated circuits that still
separate '0' from '1') and the eye distribution — the quantitative case
for the calibration controller.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..photonics.wdm import WDMGrid

__all__ = ["VariationModel", "MonteCarloResult", "run_monte_carlo"]

_CORNER_SAMPLING_SEED = 0x5EED
"""Default corner-offset seed shared by the Monte Carlo entry points."""


@dataclass(frozen=True)
class VariationModel:
    """Gaussian per-device variation magnitudes (1-sigma).

    Parameters
    ----------
    ring_sigma_nm:
        Per-ring resonance offset sigma (applied as a common-mode grid
        offset per modulator bank sample plus the filter offset; see
        note in :func:`run_monte_carlo`).
    filter_sigma_nm:
        Rest-resonance sigma of the add-drop filter.
    """

    ring_sigma_nm: float = 0.02
    filter_sigma_nm: float = 0.02

    def __post_init__(self) -> None:
        if self.ring_sigma_nm < 0.0 or self.filter_sigma_nm < 0.0:
            raise ConfigurationError("sigmas must be >= 0")


@dataclass(frozen=True)
class MonteCarloResult:
    """Yield statistics over the sampled fabrication corners."""

    eye_openings_mw: "np.ndarray[Any, Any]"
    yield_fraction: float
    mean_eye_mw: float
    worst_eye_mw: float

    @property
    def sample_count(self) -> int:
        """Number of Monte Carlo samples evaluated."""
        return int(self.eye_openings_mw.size)


def _perturbed_params(
    params: Any, ring_offset_nm: float, filter_offset_nm: float
) -> Any:
    """Parameters with rings and filter moved off their nominal grid.

    A common-mode modulator-bank offset relative to the probe grid is
    modeled by shifting the grid anchor (the probes stay put in reality;
    only relative detuning matters), and the filter offset by changing
    the guard band — the same device-level encodings used by
    :mod:`repro.simulation.faults`.
    """
    grid = params.grid
    guard = grid.guard_nm + filter_offset_nm - ring_offset_nm
    if guard <= 1e-6:
        guard = 1e-6  # filter collapsed onto the last channel: worst case
    shifted = WDMGrid(
        channel_count=grid.channel_count,
        spacing_nm=grid.spacing_nm,
        anchor_nm=grid.anchor_nm + ring_offset_nm,
        guard_nm=guard,
    )
    return replace(params, grid=shifted)


def _corner_eye_mw(params: Any, offsets_nm: Tuple[float, float]) -> float:
    """Worst-case eye of one fabrication corner (picklable for pools).

    Mapped as ``functools.partial(_corner_eye_mw, params)`` so the
    parameter bundle is pickled once per pool chunk and each corner
    payload is just its two float offsets.
    """
    from ..core.snr import worst_case_eye

    ring_offset_nm, filter_offset_nm = offsets_nm
    corner = _perturbed_params(params, ring_offset_nm, filter_offset_nm)
    return float(worst_case_eye(corner).opening)


def _draw_corner_offsets(
    params: Any,
    variation: VariationModel,
    samples: int,
    rng: np.random.Generator,
) -> Tuple["np.ndarray[Any, Any]", "np.ndarray[Any, Any]"]:
    """One-pass corner sampling: every offset drawn vectorized up front.

    Row-major generation keeps the (ring, filter) interleaving — and
    hence the seeded results — identical to the historical per-sample
    draws.  Extreme ring offsets are clamped to the modulation shift so
    the ON/OFF contrast stays physical.
    """
    offsets = rng.normal(
        0.0,
        [variation.ring_sigma_nm, variation.filter_sigma_nm],
        size=(samples, 2),
    )
    shift = params.ring_profile.modulation_shift_nm
    ring_offsets = np.clip(offsets[:, 0], -0.8 * shift, 0.8 * shift)
    return ring_offsets, offsets[:, 1]


def _corner_eyes_mw(
    params: Any,
    ring_offsets_nm: "np.ndarray[Any, Any]",
    filter_offsets_nm: "np.ndarray[Any, Any]",
    workers: Optional[int],
    backend: str,
    vectorized: bool,
) -> "np.ndarray[Any, Any]":
    """Eye openings for pre-drawn corners, scalar loop or stacked pass.

    The scalar path maps :func:`_corner_eye_mw` over the runtime pool
    (one ``TransmissionModel`` rebuild per corner); the vectorized path
    evaluates all corners as one broadcasted
    :func:`repro.core.vectorized.monte_carlo_eye_batch` stack (sharded
    over the same pool for huge corner counts).  Both agree to
    floating-point rounding, with identical yield decisions for the
    seeds used in the tests and benchmarks.
    """
    if vectorized:
        from ..core.vectorized import monte_carlo_eye_batch

        return monte_carlo_eye_batch(
            params,
            ring_offsets_nm,
            filter_offsets_nm,
            workers=workers,
            backend=backend,
        )
    from .runtime import parallel_map

    corners: List[Tuple[float, float]] = [
        (float(ring_offsets_nm[index]), float(filter_offsets_nm[index]))
        for index in range(ring_offsets_nm.size)
    ]
    return np.asarray(
        parallel_map(
            functools.partial(_corner_eye_mw, params),
            corners,
            workers=workers,
            backend=backend,
        ),
        dtype=float,
    )


def run_monte_carlo(
    params: Any,
    variation: VariationModel = VariationModel(),
    samples: int = 200,
    rng: Optional[np.random.Generator] = None,
    workers: Optional[int] = None,
    runtime: Any = None,
    vectorized: Optional[bool] = None,
) -> MonteCarloResult:
    """Sample fabrication corners and evaluate the worst-case eye of each.

    A corner *yields* when its '1'/'0' received-power bands stay
    disjoint (eye > 0), i.e. the circuit still executes SC correctly
    without recalibration.

    Corner evaluations are independent, so they fan out across the
    runtime's process pool when *workers* > 1 (default: the
    ``REPRO_RUNTIME_WORKERS`` environment setting).  Pass a
    :class:`~repro.simulation.runtime.RuntimeConfig` as *runtime* to
    take the worker count, pool backend and ``vectorized`` default from
    a bound session config instead (explicit arguments win); this is
    how :meth:`repro.session.Evaluator.monte_carlo` routes through.
    All corner offsets are drawn up front from *rng*, so serial,
    sharded and vectorized runs evaluate identical corners for the same
    seed.

    With ``vectorized=True`` every corner is evaluated in one stacked
    :mod:`repro.core.vectorized` pass instead of rebuilding a
    ``TransmissionModel`` per corner — an order of magnitude faster,
    numerically equal to the scalar loop up to floating-point rounding.
    """
    from ..core.params import OpticalSCParameters
    from .runtime import resolve_pool, resolve_vectorized

    if not isinstance(params, OpticalSCParameters):
        raise ConfigurationError("params must be OpticalSCParameters")
    workers, backend = resolve_pool(runtime, workers)
    vectorized = resolve_vectorized(runtime, vectorized)
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples!r}")
    rng = rng or np.random.default_rng(_CORNER_SAMPLING_SEED)
    ring_offsets, filter_offsets = _draw_corner_offsets(
        params, variation, samples, rng
    )
    eyes = _corner_eyes_mw(
        params, ring_offsets, filter_offsets, workers, backend, vectorized
    )
    return MonteCarloResult(
        eye_openings_mw=eyes,
        yield_fraction=float(np.mean(eyes > 0.0)),
        mean_eye_mw=float(eyes.mean()),
        worst_eye_mw=float(eyes.min()),
    )


def yield_vs_sigma(
    params: Any,
    sigmas_nm: Sequence[float],
    samples: int = 100,
    rng: Optional[np.random.Generator] = None,
    workers: Optional[int] = None,
    runtime: Any = None,
    vectorized: Optional[bool] = None,
) -> Dict[str, "np.ndarray[Any, Any]"]:
    """Yield curve across variation magnitudes (controller motivation).

    All sigma blocks draw their corner offsets up front, in the same
    order the historical serial implementation consumed *rng* — so for
    a given seed the curve is identical whatever *workers* count (or
    *runtime* pool config) evaluates it.  With ``vectorized=True`` (or
    a runtime config enabling it) the whole curve — every corner of
    every sigma — is evaluated as **one** stacked
    :mod:`repro.core.vectorized` pass.
    """
    from ..core.params import OpticalSCParameters
    from .runtime import resolve_pool, resolve_vectorized

    if not isinstance(params, OpticalSCParameters):
        raise ConfigurationError("params must be OpticalSCParameters")
    workers, backend = resolve_pool(runtime, workers)
    vectorized = resolve_vectorized(runtime, vectorized)
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples!r}")
    rng = rng or np.random.default_rng(_CORNER_SAMPLING_SEED)
    sigmas = np.asarray(list(sigmas_nm), dtype=float)
    if sigmas.size == 0:
        raise ConfigurationError("need at least one sigma")
    blocks = [
        _draw_corner_offsets(
            params,
            VariationModel(
                ring_sigma_nm=float(sigma), filter_sigma_nm=float(sigma)
            ),
            samples,
            rng,
        )
        for sigma in sigmas
    ]
    if vectorized:
        # One stacked evaluation across every (sigma, sample) corner.
        eyes = _corner_eyes_mw(
            params,
            np.concatenate([ring for ring, _ in blocks]),
            np.concatenate([filt for _, filt in blocks]),
            workers,
            backend,
            vectorized,
        ).reshape(sigmas.size, samples)
    else:
        eyes = np.stack(
            [
                _corner_eyes_mw(
                    params, ring, filt, workers, backend, vectorized
                )
                for ring, filt in blocks
            ]
        )
    return {
        "sigma_nm": sigmas,
        "yield_fraction": np.mean(eyes > 0.0, axis=1),
        "mean_eye_mw": eyes.mean(axis=1),
    }


def fault_frontier(
    circuit: Any,
    faults: Sequence[Any],
    xs: Optional[Any] = None,
    spec: Any = None,
    runtime: Any = None,
) -> Dict[str, "np.ndarray[Any, Any]"]:
    """Accuracy-vs-fault-severity frontier over a fault scenario axis.

    *faults* is a sequence of fault points: plain floats are promoted to
    pure bit-flip scenarios (``FaultSpec(flip_probability=p)``), and
    :class:`~repro.simulation.faultmodel.FaultSpec` instances are taken
    as-is — so the axis can sweep flip rate, drift ramp, stuck-MZI
    scenarios or any mixture.  Every point is evaluated through one
    :class:`~repro.session.Evaluator` session derived per fault via
    :meth:`~repro.session.Evaluator.with_fault`, so the whole frontier
    inherits the session guarantees: fault realizations are
    schedule-seeded and bit-for-bit identical across kernels, workers,
    chunk sizes and transports.

    Returns a dict of aligned arrays: ``flip_probability`` and
    ``shift_clocks`` (the axis, as scheduled), ``mean_abs_error`` /
    ``max_abs_error`` (computation accuracy against the de-randomized
    target) and ``mean_link_ber`` (observed-vs-ideal decision error
    rate of the faulty link).  The first entry of a pure-rate sweep is
    conventionally 0.0, giving the clean-baseline row the degradation
    curves are read against.
    """
    from ..session import EvalSpec, Evaluator
    from .faultmodel import FaultSpec

    points: List[Optional[FaultSpec]] = []
    for fault in faults:
        if fault is None:
            points.append(None)
        elif isinstance(fault, FaultSpec):
            points.append(None if fault.is_null else fault)
        else:
            rate = float(fault)
            points.append(
                None if rate == 0.0 else FaultSpec(flip_probability=rate)
            )
    if not points:
        raise ConfigurationError("need at least one fault point")
    if spec is None:
        spec = EvalSpec(length=4096, base_seed=_CORNER_SAMPLING_SEED)
    session = Evaluator(circuit, spec=spec, runtime=runtime)
    if session.spec.base_seed is None:
        raise ConfigurationError(
            "fault_frontier needs a fixed base_seed in the EvalSpec so "
            "every fault point reuses the same seed schedule and the "
            "curve isolates the fault axis"
        )
    inputs = (
        np.linspace(0.0, 1.0, 9) if xs is None else np.asarray(xs, dtype=float)
    )
    mean_errors: List[float] = []
    max_errors: List[float] = []
    bers: List[float] = []
    for point in points:
        result = session.with_fault(point).evaluate(inputs)
        errors = np.asarray(result.absolute_errors, dtype=float)
        mean_errors.append(float(errors.mean()))
        max_errors.append(float(errors.max()))
        bers.append(float(np.mean(np.asarray(result.transmission_ber))))
    return {
        "flip_probability": np.asarray(
            [0.0 if p is None else p.flip_probability for p in points],
            dtype=float,
        ),
        "shift_clocks": np.asarray(
            [0 if p is None else p.shift_clocks for p in points],
            dtype=np.int64,
        ),
        "mean_abs_error": np.asarray(mean_errors, dtype=float),
        "max_abs_error": np.asarray(max_errors, dtype=float),
        "mean_link_ber": np.asarray(bers, dtype=float),
    }


__all__.append("yield_vs_sigma")
__all__.append("fault_frontier")

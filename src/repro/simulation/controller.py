"""Monitoring/calibration feedback controller — paper future work item (i).

Section V-D calls for a "feedback loop-based control circuit involving
monitoring and voltage/thermal tuning for device calibration".  This
module implements that loop: a pilot measurement estimates the filter's
tuning error from the received power of a known coefficient pattern, and
an integral controller drives a thermal tuner until the error is nulled.

The observable: with the pilot pattern "selected coefficient = 1, all
others = 0" at a known level, the received power is maximal when the
filter resonance sits exactly on the selected channel and falls off with
misalignment (the Lorentzian of Eq. 3).  A dithered (two-point) gradient
estimate turns this into a signed error signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from .faults import with_filter_drift

__all__ = ["ControllerTrace", "CalibrationController"]

_CALIBRATION_RNG_SEED = 0xCA11
"""Default dither/sensor-noise seed when the caller supplies no rng."""


@dataclass(frozen=True)
class ControllerTrace:
    """Convergence record of a calibration run."""

    residual_drift_nm: np.ndarray
    correction_nm: np.ndarray
    pilot_power_mw: np.ndarray
    tolerance_nm: float

    @property
    def converged(self) -> bool:
        """True when the final residual is inside the tolerance band."""
        return bool(abs(self.residual_drift_nm[-1]) <= self.tolerance_nm)

    @property
    def settling_iterations(self) -> int:
        """First iteration with the residual inside the tolerance band."""
        inside = np.abs(self.residual_drift_nm) <= self.tolerance_nm
        indices = np.nonzero(inside)[0]
        return int(indices[0]) if indices.size else len(self.residual_drift_nm)


class CalibrationController:
    """Integral controller locking the filter onto the channel grid.

    Parameters
    ----------
    circuit:
        The healthy circuit whose filter may drift.
    gain:
        Integral gain applied to the dither-estimated power gradient.
    dither_nm:
        Probe step used for the two-point gradient estimate.
    tolerance_nm:
        Residual drift considered "locked".
    """

    def __init__(
        self,
        circuit,
        gain: float = 0.005,
        gain_decay: float = 0.98,
        dither_nm: float = 0.005,
        tolerance_nm: float = 1e-3,
    ):
        from ..core.circuit import OpticalStochasticCircuit

        if not isinstance(circuit, OpticalStochasticCircuit):
            raise ConfigurationError(
                "circuit must be an OpticalStochasticCircuit"
            )
        if gain <= 0.0:
            raise ConfigurationError("gain must be positive")
        if not 0.0 < gain_decay <= 1.0:
            raise ConfigurationError("gain_decay must be in (0, 1]")
        if dither_nm <= 0.0:
            raise ConfigurationError("dither_nm must be positive")
        if tolerance_nm <= 0.0:
            raise ConfigurationError("tolerance_nm must be positive")
        self.circuit = circuit
        self.gain = float(gain)
        self.gain_decay = float(gain_decay)
        self.dither_nm = float(dither_nm)
        self.tolerance_nm = float(tolerance_nm)

    # -- plant + sensor -------------------------------------------------------------

    def _pilot_power_mw(self, drift_nm: float) -> float:
        """Received pilot power with the filter drifted by *drift_nm*.

        Pilot: level 0 (all data zeros) with only ``z_0 = 1`` — maximal
        sensitivity because channel 0 needs the full tuning swing.
        """
        from ..core.transmission import TransmissionModel

        params = with_filter_drift(self.circuit.params, drift_nm)
        model = TransmissionModel(params)
        z = np.zeros(params.channel_count, dtype=np.uint8)
        z[0] = 1
        return float(model.received_power_mw(z, 0))

    def _error_signal(self, drift_nm: float) -> float:
        """Dithered gradient of the pilot power w.r.t. the correction."""
        plus = self._pilot_power_mw(drift_nm + self.dither_nm)
        minus = self._pilot_power_mw(drift_nm - self.dither_nm)
        return (plus - minus) / (2.0 * self.dither_nm)

    # -- closed loop ------------------------------------------------------------------

    def calibrate(
        self,
        initial_drift_nm: float,
        iterations: int = 60,
        sensor_noise_mw: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> ControllerTrace:
        """Run the loop from an initial thermal drift.

        Each iteration measures the dithered gradient (optionally with
        additive sensor noise) and integrates a correction; the residual
        drift is ``initial - correction``.
        """
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if sensor_noise_mw < 0.0:
            raise ConfigurationError("sensor_noise_mw must be >= 0")
        rng = rng or np.random.default_rng(_CALIBRATION_RNG_SEED)
        residuals = np.empty(iterations)
        corrections = np.empty(iterations)
        powers = np.empty(iterations)
        correction = 0.0
        gain = self.gain
        for step in range(iterations):
            residual = initial_drift_nm - correction
            gradient = self._error_signal(residual)
            if sensor_noise_mw > 0.0:
                gradient += rng.normal(0.0, sensor_noise_mw) / self.dither_nm
            # Gradient ascent on pilot power in residual space: the
            # residual moves by +gain*gradient, so the correction (which
            # subtracts from the residual) moves by -gain*gradient.  The
            # decaying gain kills the limit cycle a fixed step would
            # settle into around the peak.
            correction -= gain * gradient
            gain *= self.gain_decay
            correction = float(np.clip(correction, -0.5, 0.5))
            residuals[step] = initial_drift_nm - correction
            corrections[step] = correction
            powers[step] = self._pilot_power_mw(residuals[step])
        return ControllerTrace(
            residual_drift_nm=residuals,
            correction_nm=corrections,
            pilot_power_mw=powers,
            tolerance_nm=self.tolerance_nm,
        )

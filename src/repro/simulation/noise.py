"""Abstract transmission-noise models for robustness studies.

The paper's throughput-accuracy argument (Sections V-B and V-D) is that
SC tolerates transmission bit errors gracefully: a flipped stream bit
perturbs the estimated probability by only ``1/N``.  These helpers inject
BER-driven flips into streams and predict their analytical effect, so the
error-resilience claim can be quantified without re-running the full
optical pipeline.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from ..stochastic.bitstream import Bitstream

__all__ = ["apply_ber_flips", "effective_probability_after_flips"]


def apply_ber_flips(
    stream: Bitstream, ber: float, rng: np.random.Generator
) -> Bitstream:
    """Flip each bit of *stream* independently with probability *ber*."""
    if not isinstance(stream, Bitstream):
        raise ConfigurationError("stream must be a Bitstream")
    if not 0.0 <= ber <= 1.0:
        raise ConfigurationError(f"ber must be in [0, 1], got {ber!r}")
    flips = (rng.random(len(stream)) < ber).astype(np.uint8)
    return Bitstream(stream.bits ^ flips)


def effective_probability_after_flips(probability: float, ber: float) -> float:
    """Expected decoded value of a unipolar stream after symmetric flips.

    ``E[p'] = p (1 - ber) + (1 - p) ber = p + ber (1 - 2p)``

    The bias vanishes at ``p = 1/2`` and is at most ``ber`` at the
    endpoints — the analytical backbone of SC's error resilience: a
    ``1e-2`` link BER costs at most ``1e-2`` in output value, regardless
    of stream length.
    """
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError(
            f"probability must be in [0, 1], got {probability!r}"
        )
    if not 0.0 <= ber <= 1.0:
        raise ConfigurationError(f"ber must be in [0, 1], got {ber!r}")
    return probability + ber * (1.0 - 2.0 * probability)

"""Bit-level functional simulation of the optical ReSC circuit.

Runs the complete Fig. 3 pipeline for one evaluation:

1. ``n`` SNGs produce the stochastic data streams ``x_1..x_n`` that drive
   the MZIs (one bit per 1 ns bit slot);
2. ``n + 1`` SNGs produce the coefficient streams ``z_0..z_n`` that drive
   the MRR modulators;
3. per clock, the MZI ones-count tunes the all-optical filter and the
   coefficient pattern sets the modulator states; the received power
   follows the analytical Eq. 6 model (vectorized via the precomputed
   pattern table);
4. the receiver slices the power against the link-budget midpoint
   threshold (optionally with Gaussian receiver noise) and counts ones.

The result carries both the optics-level observables (power trace,
transmission errors) and the SC-level outcome (de-randomized value vs the
exact Bernstein value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..stochastic.bitstream import Bitstream
from ..stochastic.elements import adder_select
from ..stochastic.sng import make_independent_sngs
from .receiver import OpticalReceiver

__all__ = ["OpticalEvaluation", "simulate_evaluation", "simulate_sweep"]


@dataclass(frozen=True)
class OpticalEvaluation:
    """Outcome of one bit-level evaluation of the optical circuit."""

    value: float
    expected: float
    x: float
    stream_length: int
    received_power_mw: np.ndarray
    output_bits: Bitstream
    ideal_bits: Bitstream
    select_levels: np.ndarray

    @property
    def absolute_error(self) -> float:
        """|de-randomized value - exact Bernstein value|."""
        return abs(self.value - self.expected)

    @property
    def transmission_bit_errors(self) -> int:
        """Bits flipped by the optical link + receiver noise."""
        return int(np.sum(self.output_bits.bits != self.ideal_bits.bits))

    @property
    def transmission_ber(self) -> float:
        """Observed link bit-error rate for this evaluation."""
        return self.transmission_bit_errors / self.stream_length


def simulate_evaluation(
    circuit,
    x: float,
    length: int = 1024,
    rng: Optional[np.random.Generator] = None,
    noisy: bool = True,
) -> OpticalEvaluation:
    """Run the optical circuit for *length* bit slots on input *x*.

    Parameters
    ----------
    circuit:
        An :class:`repro.core.circuit.OpticalStochasticCircuit`.
    x:
        Input value in ``[0, 1]``.
    length:
        Stream length (clock count).
    rng:
        Random generator for the receiver noise (a default seeded
        generator is created when omitted).
    noisy:
        When False the receiver slices noiselessly — isolating the
        stochastic-computing error from the transmission error.
    """
    from ..core.circuit import OpticalStochasticCircuit

    if not isinstance(circuit, OpticalStochasticCircuit):
        raise ConfigurationError(
            "circuit must be an OpticalStochasticCircuit"
        )
    if not 0.0 <= x <= 1.0:
        raise ConfigurationError(f"x must be in [0, 1], got {x!r}")
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length!r}")
    rng = rng or np.random.default_rng(0xD47E)

    params = circuit.params
    order = params.order
    coefficients = circuit.polynomial.coefficients

    # 1-2. randomizers: data streams for the MZIs, coefficient streams
    # for the MRRs (decorrelated LFSR comparators, as in Fig. 1(a)).
    data_sngs = make_independent_sngs(order, base_seed=0xACE1)
    coeff_sngs = make_independent_sngs(order + 1, base_seed=0xC0FE)
    data_streams = [sng.generate(x, length) for sng in data_sngs]
    coeff_streams = [
        sng.generate(float(b), length)
        for sng, b in zip(coeff_sngs, coefficients)
    ]

    # 3. per-clock optics: level from the MZI adder, pattern from the
    # coefficients; received power via the precomputed Eq. 6 table.
    levels = adder_select(data_streams)
    coeff_matrix = np.stack([s.bits for s in coeff_streams])  # (C, L)
    pattern_index = np.zeros(length, dtype=np.int64)
    for channel in range(order + 1):
        pattern_index |= coeff_matrix[channel].astype(np.int64) << channel
    table = circuit.model.received_power_table_mw()  # (patterns, levels)
    powers = table[pattern_index, levels]

    # 4. receiver: midpoint threshold from the link budget bands.
    budget = circuit.link_budget()
    if not budget.bands_separated:
        raise SimulationError(
            "link budget bands overlap: the circuit cannot distinguish "
            "'0' from '1' at this design point"
        )
    receiver = OpticalReceiver.from_power_bands(
        params.detector,
        zero_level_mw=budget.zero_band_mw[1],
        one_level_mw=budget.one_band_mw[0],
    )
    decision = receiver.decide(powers, rng=rng if noisy else None)

    # Reference: the bits the ideal (electronic) multiplexer would pick.
    ideal_bits = Bitstream(coeff_matrix[levels, np.arange(length)])

    return OpticalEvaluation(
        value=decision.probability,
        expected=circuit.expected_value(x),
        x=float(x),
        stream_length=length,
        received_power_mw=powers,
        output_bits=decision.bits,
        ideal_bits=ideal_bits,
        select_levels=levels,
    )


def simulate_sweep(
    circuit,
    xs,
    length: int = 1024,
    rng: Optional[np.random.Generator] = None,
    noisy: bool = True,
) -> np.ndarray:
    """De-randomized outputs across the inputs *xs* (one evaluation each)."""
    rng = rng or np.random.default_rng(0xD47E)
    return np.asarray(
        [
            simulate_evaluation(
                circuit, float(x), length=length, rng=rng, noisy=noisy
            ).value
            for x in xs
        ]
    )

"""Bit-level functional simulation of the optical ReSC circuit.

Runs the complete Fig. 3 pipeline for one evaluation:

1. ``n`` SNGs produce the stochastic data streams ``x_1..x_n`` that drive
   the MZIs (one bit per 1 ns bit slot);
2. ``n + 1`` SNGs produce the coefficient streams ``z_0..z_n`` that drive
   the MRR modulators;
3. per clock, the MZI ones-count tunes the all-optical filter and the
   coefficient pattern sets the modulator states; the received power
   follows the analytical Eq. 6 model (vectorized via the precomputed
   pattern table);
4. the receiver slices the power against the link-budget midpoint
   threshold (optionally with Gaussian receiver noise) and counts ones.

Both entry points are thin wrappers over the batched engine
(:func:`repro.simulation.engine.simulate_batch`):
:func:`simulate_evaluation` is a batch of one, and
:func:`simulate_sweep` is one vectorized pass over all inputs —
bit-for-bit identical to looping :func:`simulate_evaluation` under a
shared ``rng``.

SNG seeds are derived from the caller's ``rng`` by default, so distinct
evaluations (and distinct sweep points) get decorrelated randomizer
streams; pass ``base_seed`` to pin the seed space instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..stochastic.bitstream import Bitstream
from .engine import BatchEvaluation, simulate_batch

__all__ = ["OpticalEvaluation", "simulate_evaluation", "simulate_sweep"]


@dataclass(frozen=True)
class OpticalEvaluation:
    """Outcome of one bit-level evaluation of the optical circuit."""

    value: float
    expected: float
    x: float
    stream_length: int
    received_power_mw: np.ndarray
    output_bits: Bitstream
    ideal_bits: Bitstream
    select_levels: np.ndarray

    @property
    def absolute_error(self) -> float:
        """|de-randomized value - exact Bernstein value|."""
        return abs(self.value - self.expected)

    @property
    def transmission_bit_errors(self) -> int:
        """Bits flipped by the optical link + receiver noise."""
        return int(np.sum(self.output_bits.bits != self.ideal_bits.bits))

    @property
    def transmission_ber(self) -> float:
        """Observed link bit-error rate for this evaluation."""
        return self.transmission_bit_errors / self.stream_length


def _evaluation_from_batch(batch: BatchEvaluation, row: int) -> OpticalEvaluation:
    """One :class:`OpticalEvaluation` view of a batch row."""
    return OpticalEvaluation(
        value=float(batch.values[row]),
        expected=float(batch.expected[row]),
        x=float(batch.xs[row]),
        stream_length=batch.stream_length,
        received_power_mw=batch.received_power_mw[row],
        output_bits=Bitstream(batch.output_bits[row]),
        ideal_bits=Bitstream(batch.ideal_bits[row]),
        select_levels=batch.select_levels[row],
    )


def simulate_evaluation(
    circuit,
    x: float,
    length: int = 1024,
    rng: Optional[np.random.Generator] = None,
    noisy: bool = True,
    sng_kind: str = "lfsr",
    base_seed: Optional[int] = None,
    sng_width: int = 16,
) -> OpticalEvaluation:
    """Run the optical circuit for *length* bit slots on input *x*.

    Parameters
    ----------
    circuit:
        An :class:`repro.core.circuit.OpticalStochasticCircuit`.
    x:
        Input value in ``[0, 1]``.
    length:
        Stream length (clock count).
    rng:
        Random generator for the SNG seed derivation and the receiver
        noise (a default seeded generator is created when omitted).
    noisy:
        When False the receiver slices noiselessly — isolating the
        stochastic-computing error from the transmission error.
    sng_kind:
        Randomizer family: ``"lfsr"`` (default), ``"counter"``,
        ``"sobol"`` or ``"chaotic"``.
    base_seed:
        Pin the SNG seed space instead of deriving it from *rng*
        (repeat calls then reuse identical randomizer streams).
    sng_width:
        LFSR register width / comparator resolution in bits.
    """
    try:
        x = float(x)
    except (TypeError, ValueError):
        raise ConfigurationError(f"x must be a number in [0, 1], got {x!r}")
    if not 0.0 <= x <= 1.0:
        raise ConfigurationError(f"x must be in [0, 1], got {x!r}")
    batch = simulate_batch(
        circuit,
        [x],
        length=length,
        rng=rng,
        noisy=noisy,
        sng_kind=sng_kind,
        base_seed=base_seed,
        sng_width=sng_width,
    )
    return _evaluation_from_batch(batch, 0)


def simulate_sweep(
    circuit,
    xs,
    length: int = 1024,
    rng: Optional[np.random.Generator] = None,
    noisy: bool = True,
    sng_kind: str = "lfsr",
    base_seed: Optional[int] = None,
    sng_width: int = 16,
) -> np.ndarray:
    """De-randomized outputs across the inputs *xs* (one batched pass).

    Bit-exact with evaluating each input through
    :func:`simulate_evaluation` under the same ``rng``, but an order of
    magnitude faster; use :func:`repro.simulation.engine.simulate_batch`
    directly for the full per-row observables.
    """
    return simulate_batch(
        circuit,
        xs,
        length=length,
        rng=rng,
        noisy=noisy,
        sng_kind=sng_kind,
        base_seed=base_seed,
        sng_width=sng_width,
    ).values

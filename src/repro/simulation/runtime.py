"""Scaling runtime over the batched engine: sharding, chunking, caching.

PR 1 made ``(B, L)`` whole-vector evaluation the unit of work, but one
:func:`~repro.simulation.engine.simulate_batch` call still runs on a
single core and materializes the full ``(B, L)`` power/bit tensors.
This module is the scaling layer above the engine:

* **Row-wise sharding** (:func:`simulate_batch_sharded`): per-row
  ``(data_seed, coeff_seed, noise_seed)`` triples are pre-derived into a
  :class:`~repro.simulation.engine.SeedSchedule`, shards of rows are
  shipped to a process (or thread) pool, and the shard results are
  reassembled into a :class:`~repro.simulation.engine.BatchEvaluation`
  that is **bit-for-bit identical** to the single-process call under the
  same schedule — every row is fully determined by its seed triple, so
  rows are relocatable across workers.  Shard data moves over a
  pluggable *transport*: ``"pickle"`` (pool-pipe serialization) or
  ``"shm"`` (zero-copy shared-memory arenas, see
  :mod:`repro.simulation.transport`).
* **Chunked streaming** (:func:`simulate_chunked`): very long streams
  (``length >> 2**20``, the ``O(1/N)``-convergence regime that motivates
  low-discrepancy and chaotic-laser randomizers) are evaluated in
  ``(B, chunk)`` tiles with running accumulators — ones count, link
  bit-error count, optional received-power histogram — so memory stays
  bounded by the tile size while the accumulated statistics stay
  bit-exact with the one-shot pass.  LFSR/Sobol/counter streams resume
  by index offset; chaotic orbits resume by carrying raw map state.
* **Keyed evaluation cache** (:class:`EvaluationCache`, enabled through
  :class:`RuntimeConfig`): repeated exploration sweeps over the same
  ``circuit fingerprint x sng_kind x base_seed x sng_width x length x
  inputs`` skip recomputation entirely.  Cacheable runs derive their
  receiver-noise seeds from ``base_seed`` so even noisy results are
  deterministic.
* **Generic parallel map** (:func:`parallel_map`): the process-pool
  primitive the exploration grid sweep and the Monte Carlo corner loop
  share.

:func:`run_batch` bundles the knobs behind one dispatcher
(:class:`RuntimeConfig`); ``REPRO_RUNTIME_WORKERS`` sets the default
worker count process-wide (``auto`` = one per CPU).
"""

from __future__ import annotations

import hashlib
import math
import multiprocessing
import os
import sys
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..errors import ConfigurationError
from ..stochastic.bitstream import exact_bit_window
from ..stochastic.lfsr import LFSR, _TABLE_MAX_WIDTH
from ..stochastic.sng import (
    chaotic_orbit,
    chaotic_warmup,
    derive_chaotic_intensities,
    derive_lfsr_seeds,
    derive_sobol_offsets,
)
from .engine import (
    BatchEvaluation,
    SeedSchedule,
    _batch_uniforms,
    _optical_pass,
    _validate_batch_inputs,
    derive_seed_schedule,
    simulate_batch,
)
from .faultmodel import (
    FaultSpec,
    fault_channel_for,
    pin_stuck_bits,
    pin_stuck_words,
)
from .kernels import (
    PackedChaoticSource,
    PackedLfsrSource,
    PackedSobolSource,
    pack_bits,
    packed_tile_statistics,
    resolve_kernel,
    unpack_bits,
)
from .transport import TRANSPORTS, SharedArena, resolve_transport

__all__ = [
    "BACKENDS",
    "TRANSPORTS",
    "ChunkedEvaluation",
    "EvaluationCache",
    "RuntimeConfig",
    "default_evaluation_cache",
    "default_worker_count",
    "parallel_map",
    "resolve_pool",
    "resolve_transport",
    "resolve_vectorized",
    "run_batch",
    "simulate_batch_sharded",
    "simulate_chunked",
]

BACKENDS: Tuple[str, ...] = ("process", "thread")
"""Execution backends for sharded evaluation and :func:`parallel_map`."""

_WORKERS_ENV = "REPRO_RUNTIME_WORKERS"


def default_worker_count() -> int:
    """Worker count from ``REPRO_RUNTIME_WORKERS`` (0 = in-process serial).

    ``auto`` maps to one worker per CPU; anything unparsable maps to 0 so
    a stray environment value can never break an evaluation.
    """
    raw = os.environ.get(_WORKERS_ENV, "").strip().lower()
    if not raw:
        return 0
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        return max(0, int(raw))
    except ValueError:
        return 0


def _validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


def _pool_context() -> Any:
    """Prefer fork (cheap workers, inherited caches) where safe.

    Only on Linux — macOS keeps spawn as its default precisely because
    forking there can crash/deadlock inside system frameworks — and only
    while no extra Python thread is alive, since forking a
    multi-threaded process can deadlock the child on locks held by
    other threads (the reason CPython is moving away from fork as a
    default).  Everywhere else, honor the platform default.
    """
    methods = multiprocessing.get_all_start_methods()
    if (
        sys.platform.startswith("linux")
        and "fork" in methods
        and threading.active_count() <= 1
    ):
        return multiprocessing.get_context("fork")
    # Never fall back to a fork default (Linux <= 3.13) once the fast
    # path was refused: pick an explicitly fork-free start method.
    for method in ("forkserver", "spawn"):
        if method in methods:
            return multiprocessing.get_context(method)
    return multiprocessing.get_context()


def resolve_pool(
    runtime: Any, workers: Optional[int] = None
) -> Tuple[Optional[int], str]:
    """``(workers, backend)`` for a pooled consumer of a session config.

    The one place the ``runtime=RuntimeConfig(...)`` convenience kwarg
    is unpacked for :func:`parallel_map`-style fan-outs (grid sweeps,
    Monte Carlo corners): an explicit *workers* wins over the config's,
    the config supplies the pool backend, and ``runtime=None`` keeps
    the historical defaults (environment worker count, process pool).
    """
    backend = "process"
    if runtime is not None:
        if not isinstance(runtime, RuntimeConfig):
            raise ConfigurationError(
                f"runtime must be a RuntimeConfig, got {runtime!r}"
            )
        backend = runtime.backend
        if workers is None:
            workers = runtime.resolved_workers
    return workers, backend


def resolve_vectorized(
    runtime: Any, vectorized: Optional[bool] = None
) -> bool:
    """Whether an optics consumer should take the stacked-array fast path.

    The companion of :func:`resolve_pool` for the ``vectorized`` knob of
    :class:`RuntimeConfig`: an explicit *vectorized* argument wins, a
    bound session config supplies its default otherwise, and with
    neither the historical scalar corner loop is kept (batched results
    match it only to floating-point rounding, so flipping the default
    silently would perturb seeded reference numbers).
    """
    if vectorized is not None:
        return bool(vectorized)
    if runtime is not None:
        if not isinstance(runtime, RuntimeConfig):
            raise ConfigurationError(
                f"runtime must be a RuntimeConfig, got {runtime!r}"
            )
        return runtime.vectorized
    return False


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: Optional[int] = None,
    backend: str = "process",
) -> List[Any]:
    """Ordered ``[fn(item) for item in items]`` over a worker pool.

    The shared fan-out primitive behind sharded evaluation, the
    exploration grid sweep and the Monte Carlo corner loop.  With
    ``workers`` at most 1 (or a single item) the map runs in-process —
    no pool, no pickling, bit-identical results either way.  *fn* and
    the items must be picklable for the ``process`` backend (module-level
    functions, plain data).
    """
    _validate_backend(backend)
    items = list(items)
    workers = default_worker_count() if workers is None else int(workers)
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    workers = min(workers, len(items))
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items))
    chunksize = max(1, math.ceil(len(items) / workers))
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_pool_context()
    ) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))


# -- row-wise sharding ---------------------------------------------------------


def _shard_bounds(batch: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal row ranges covering ``[0, batch)``."""
    shard_count = min(workers, batch)
    size = batch // shard_count
    remainder = batch % shard_count
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(shard_count):
        stop = start + size + (1 if index < remainder else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _map_row_shards(
    worker: Callable[[Any], Any],
    payload_builder: Callable[..., Any],
    xs: "np.ndarray[Any, Any]",
    schedule: SeedSchedule,
    workers: int,
    backend: str,
) -> List[Any]:
    """Fan one row-sharded evaluation out over the pool, order preserved.

    ``payload_builder(xs_shard, schedule_shard)`` produces each worker's
    payload — the single place the shard layout is decided for both the
    one-shot and the chunked sharded paths.
    """
    payloads = [
        payload_builder(xs[lo:hi], schedule.shard(lo, hi))
        for lo, hi in _shard_bounds(xs.size, workers)
    ]
    return parallel_map(worker, payloads, workers=workers, backend=backend)


def _validate_fault(fault: Optional[FaultSpec], circuit: Any) -> None:
    """Shared fault validation of every runtime dispatch path."""
    if fault is None:
        return
    if not isinstance(fault, FaultSpec):
        raise ConfigurationError(f"fault must be a FaultSpec, got {fault!r}")
    fault.validate_against_order(circuit.params.order)


def _shard_worker(payload: Tuple[Any, ...]) -> BatchEvaluation:
    """Evaluate one row shard (module-level so process pools can pickle it)."""
    (
        circuit,
        xs,
        length,
        noisy,
        sng_kind,
        sng_width,
        schedule,
        kernel,
        fault,
    ) = payload
    return simulate_batch(
        circuit,
        xs,
        length=length,
        noisy=noisy,
        sng_kind=sng_kind,
        sng_width=sng_width,
        schedule=schedule,
        kernel=kernel,
        fault=fault,
    )


def _concatenate_batches(
    shards: Sequence[BatchEvaluation], length: int
) -> BatchEvaluation:
    """Reassemble shard results into one batch, row order preserved."""
    return BatchEvaluation(
        xs=np.concatenate([s.xs for s in shards]),
        values=np.concatenate([s.values for s in shards]),
        expected=np.concatenate([s.expected for s in shards]),
        stream_length=int(length),
        received_power_mw=np.concatenate(
            [s.received_power_mw for s in shards], axis=0
        ),
        output_bits=np.concatenate([s.output_bits for s in shards], axis=0),
        ideal_bits=np.concatenate([s.ideal_bits for s in shards], axis=0),
        select_levels=np.concatenate([s.select_levels for s in shards], axis=0),
    )


def _shard_input_fields(batch: int) -> Dict[str, Any]:
    """Arena fields carrying the batch inputs (parent -> workers)."""
    return {
        "xs": ((batch,), np.float64),
        "data_seeds": ((batch,), np.int64),
        "coeff_seeds": ((batch,), np.int64),
        "noise_seeds": ((batch,), np.int64),
    }


def _write_shard_inputs(
    arena: SharedArena, xs: "np.ndarray[Any, Any]", schedule: SeedSchedule
) -> None:
    arena.write("xs", xs)
    arena.write("data_seeds", schedule.data_seeds)
    arena.write("coeff_seeds", schedule.coeff_seeds)
    arena.write("noise_seeds", schedule.noise_seeds)


def _read_shard_inputs(
    arena: SharedArena, lo: int, hi: int
) -> Tuple["np.ndarray[Any, Any]", SeedSchedule]:
    """``(xs, schedule)`` for rows ``[lo, hi)`` from the input arena."""
    return (
        arena.read("xs", lo, hi),
        SeedSchedule(
            data_seeds=arena.read("data_seeds", lo, hi),
            coeff_seeds=arena.read("coeff_seeds", lo, hi),
            noise_seeds=arena.read("noise_seeds", lo, hi),
        ),
    )


def _shm_shard_worker(payload: Tuple[Any, ...]) -> Tuple[int, int]:
    """Evaluate one row shard in place through the shared arena.

    Attaches by segment name, reads its input rows, writes its result
    rows into the arena's field views, and returns only the row range —
    no result tensor crosses the process boundary.  Bit tensors are
    written in packed uint64 form (8x smaller) when a packed kernel
    runs; the parent unpacks once at reassembly (an exact inverse).
    """
    (
        spec,
        circuit,
        lo,
        hi,
        length,
        noisy,
        sng_kind,
        sng_width,
        kernel,
        packed,
        fault,
    ) = payload
    arena = SharedArena.attach(spec)
    try:
        xs, schedule = _read_shard_inputs(arena, lo, hi)
        result = simulate_batch(
            circuit,
            xs,
            length=length,
            noisy=noisy,
            sng_kind=sng_kind,
            sng_width=sng_width,
            schedule=schedule,
            kernel=kernel,
            fault=fault,
        )
        arena.write("values", result.values, lo)
        arena.write("expected", result.expected, lo)
        arena.write("received_power_mw", result.received_power_mw, lo)
        arena.write("select_levels", result.select_levels, lo)
        if packed:
            arena.write("output_words", pack_bits(result.output_bits), lo)
            arena.write("ideal_words", pack_bits(result.ideal_bits), lo)
        else:
            arena.write("output_bits", result.output_bits, lo)
            arena.write("ideal_bits", result.ideal_bits, lo)
    finally:
        arena.close()
    return lo, hi


def _simulate_batch_sharded_shm(
    circuit: Any,
    xs: "np.ndarray[Any, Any]",
    length: int,
    noisy: bool,
    sng_kind: str,
    sng_width: int,
    schedule: SeedSchedule,
    kernel: str,
    workers: int,
    backend: str,
    fault: Optional[FaultSpec] = None,
) -> BatchEvaluation:
    """The zero-copy shm fan-out behind ``transport="shm"``.

    One arena holds the inputs and every result field for the whole
    batch; workers write their row ranges in place and reassembly is a
    view (:meth:`~repro.simulation.transport.SharedArena.export_views`)
    plus — under a packed kernel — one vectorized unpack of the bit
    tensors.  Bit-for-bit identical to the pickle transport: the same
    :func:`~repro.simulation.engine.simulate_batch` runs per shard, and
    copies/views of identical values are identical.
    """
    batch = xs.size
    packed = kernel != "numpy"
    words = (int(length) + 63) // 64
    fields = _shard_input_fields(batch)
    fields.update(
        {
            "values": ((batch,), np.float64),
            "expected": ((batch,), np.float64),
            "received_power_mw": ((batch, length), np.float64),
            "select_levels": ((batch, length), np.int64),
        }
    )
    if packed:
        fields["output_words"] = ((batch, words), np.uint64)
        fields["ideal_words"] = ((batch, words), np.uint64)
    else:
        fields["output_bits"] = ((batch, length), np.uint8)
        fields["ideal_bits"] = ((batch, length), np.uint8)
    arena = SharedArena(fields)
    try:
        _write_shard_inputs(arena, xs, schedule)
        spec = arena.spec
        payloads = [
            (
                spec,
                circuit,
                lo,
                hi,
                length,
                noisy,
                sng_kind,
                sng_width,
                kernel,
                packed,
                fault,
            )
            for lo, hi in _shard_bounds(batch, workers)
        ]
        parallel_map(
            _shm_shard_worker, payloads, workers=workers, backend=backend
        )
    except BaseException:
        arena.destroy()
        raise
    views = arena.export_views()
    if packed:
        output_bits = unpack_bits(views["output_words"], length)
        ideal_bits = unpack_bits(views["ideal_words"], length)
    else:
        output_bits = views["output_bits"]
        ideal_bits = views["ideal_bits"]
    return BatchEvaluation(
        xs=views["xs"],
        values=views["values"],
        expected=views["expected"],
        stream_length=int(length),
        received_power_mw=views["received_power_mw"],
        output_bits=output_bits,
        ideal_bits=ideal_bits,
        select_levels=views["select_levels"],
    )


def simulate_batch_sharded(
    circuit: Any,
    xs: Any,
    length: int = 1024,
    rng: Optional[np.random.Generator] = None,
    noisy: bool = True,
    sng_kind: str = "lfsr",
    base_seed: Optional[int] = None,
    sng_width: int = 16,
    workers: Optional[int] = None,
    backend: str = "process",
    schedule: Optional[SeedSchedule] = None,
    kernel: str = "numpy",
    transport: str = "pickle",
    fault: Optional[FaultSpec] = None,
) -> BatchEvaluation:
    """Row-sharded :func:`~repro.simulation.engine.simulate_batch`.

    Pre-derives the per-row seed schedule from *rng* (or takes an
    explicit *schedule*), splits the rows into up to *workers* contiguous
    shards, evaluates them on a worker pool, and reassembles the result.
    Because every row is fully determined by its seed triple, the
    reassembled :class:`~repro.simulation.engine.BatchEvaluation` is
    bit-for-bit identical to ``simulate_batch(..., schedule=schedule)``
    run serially — sharding is a pure wall-clock optimization.

    ``workers`` defaults to ``REPRO_RUNTIME_WORKERS`` (0 = serial).  The
    ``thread`` backend avoids inter-process copies and suits workloads
    dominated by GIL-releasing numpy kernels; ``process`` (default) is
    immune to the GIL entirely.  *kernel* selects the compute kernel
    every shard evaluates with (:data:`repro.simulation.kernels.KERNELS`)
    and *transport* how shard results return from process workers:
    ``"pickle"`` (serialize through the pool pipe) or ``"shm"`` (write
    row ranges in place into a shared-memory arena, reassembled as
    views — see :mod:`repro.simulation.transport`).  Like the pool
    knobs, neither ever changes an output bit.
    """
    _validate_backend(backend)
    kernel = resolve_kernel(kernel)
    transport = resolve_transport(transport, backend)
    xs = _validate_batch_inputs(
        circuit, xs, length, sng_kind, base_seed, sng_width
    )
    _validate_fault(fault, circuit)
    batch = xs.size
    if schedule is None:
        schedule = derive_seed_schedule(
            batch, rng=rng, sng_kind=sng_kind, base_seed=base_seed
        )
    elif schedule.batch_size != batch:
        raise ConfigurationError(
            f"schedule covers {schedule.batch_size} rows but xs has {batch}"
        )
    workers = default_worker_count() if workers is None else int(workers)
    if workers <= 1 or batch == 1:
        return simulate_batch(
            circuit,
            xs,
            length=length,
            noisy=noisy,
            sng_kind=sng_kind,
            sng_width=sng_width,
            schedule=schedule,
            kernel=kernel,
            fault=fault,
        )
    if transport == "shm":
        return _simulate_batch_sharded_shm(
            circuit,
            xs,
            length,
            noisy,
            sng_kind,
            sng_width,
            schedule,
            kernel,
            workers,
            backend,
            fault=fault,
        )
    shards = _map_row_shards(
        _shard_worker,
        lambda xs_shard, schedule_shard: (
            circuit,
            xs_shard,
            length,
            noisy,
            sng_kind,
            sng_width,
            schedule_shard,
            kernel,
            fault,
        ),
        xs,
        schedule,
        workers,
        backend,
    )
    return _concatenate_batches(shards, length)


# -- chunked streaming ---------------------------------------------------------


@dataclass(frozen=True)
class ChunkedEvaluation:
    """Accumulated statistics of a tile-streamed evaluation.

    Holds only ``O(batch)`` state (plus the optional fixed-size power
    histogram) no matter how long the stream was; the per-clock tensors
    existed one ``(B, chunk)`` tile at a time.  All counters are
    bit-exact with what the one-shot
    :class:`~repro.simulation.engine.BatchEvaluation` of the same seed
    schedule would report.
    """

    xs: "np.ndarray[Any, Any]"
    expected: "np.ndarray[Any, Any]"
    stream_length: int
    chunk_length: int
    chunk_count: int
    ones_count: "np.ndarray[Any, Any]"
    transmission_bit_errors: "np.ndarray[Any, Any]"
    power_histogram: Optional["np.ndarray[Any, Any]"] = None
    power_bin_edges: Optional["np.ndarray[Any, Any]"] = None

    @property
    def batch_size(self) -> int:
        """Number of evaluations in the batch."""
        return int(self.xs.size)

    @property
    def values(self) -> "np.ndarray[Any, Any]":
        """Per-row de-randomized outputs (ones fraction)."""
        return self.ones_count / self.stream_length

    @property
    def absolute_errors(self) -> "np.ndarray[Any, Any]":
        """Per-row ``|value - expected|``."""
        return np.abs(self.values - self.expected)

    @property
    def mean_absolute_error(self) -> float:
        """Batch-mean ``|value - expected|`` (the accuracy-sweep metric)."""
        return float(np.mean(self.absolute_errors))

    @property
    def transmission_ber(self) -> "np.ndarray[Any, Any]":
        """Per-row observed link bit-error rate."""
        return self.transmission_bit_errors / self.stream_length


class _UniformCursor:
    """Resumable comparator-sample source for one seeded randomizer bank.

    ``take(offset, count)`` returns the ``(B, channels, count)`` slab of
    uniforms covering stream clocks ``[offset, offset + count)`` —
    bit-for-bit the same floats the one-shot engine tensor holds at
    those columns.  Table-cached LFSRs and Sobol streams are pure index
    maps, so any offset is a cheap re-aim; chaotic orbits and LFSRs too
    wide for the cycle table are iterated state machines, so the cursor
    carries their state forward (raw logistic-map intensities, live
    registers) and only supports the sequential chunk order the
    streaming loop issues — re-stepping ``offset`` states per tile would
    make long streams quadratic.
    """

    def __init__(
        self, kind: str, base_seeds: Any, channel_count: int, width: int
    ) -> None:
        self._kind = kind
        self._seeds = np.asarray(base_seeds, dtype=np.int64)
        self._channels = int(channel_count)
        self._width = int(width)
        self._next_offset = 0
        self._registers: Optional[List[List[LFSR]]] = None
        if kind == "chaotic":
            self._state = derive_chaotic_intensities(
                self._seeds, self._channels
            )
            self._warmups = np.asarray(
                [chaotic_warmup(c) for c in range(self._channels)],
                dtype=np.int64,
            )[None, :]
        elif kind == "lfsr" and self._width > _TABLE_MAX_WIDTH:
            seeds = derive_lfsr_seeds(
                self._seeds, self._channels, self._width
            )
            self._registers = [
                [LFSR(self._width, int(seed)) for seed in row]
                for row in seeds
            ]

    def _check_sequential(self, offset: int) -> None:
        if offset != self._next_offset:
            raise ConfigurationError(
                "stateful streams resume sequentially: expected offset "
                f"{self._next_offset}, got {offset}"
            )

    def take(self, offset: int, count: int) -> "np.ndarray[Any, Any]":
        if self._registers is not None:
            # Wide registers step live state instead of replaying
            # `offset` states from the seed on every tile.
            self._check_sequential(offset)
            # Bounded (B, C, chunk) fallback tile for registers wider
            # than the cycle table — the packed sources cover every
            # standard width, so this never runs on the fast path.
            out = np.empty(  # repro-lint: disable=RL009
                (self._seeds.size, self._channels, count), dtype=float
            )
            for b, row in enumerate(self._registers):
                for c, register in enumerate(row):
                    out[b, c] = register.uniform(count)
            self._next_offset = offset + count
            return out
        if self._kind != "chaotic":
            return _batch_uniforms(
                self._kind,
                self._seeds,
                self._channels,
                count,
                self._width,
                offset=offset,
            )
        self._check_sequential(offset)
        warmups = self._warmups if offset == 0 else 0
        uniforms, self._state = chaotic_orbit(
            self._state, warmups, count, return_state=True
        )
        self._next_offset = offset + count
        return uniforms


class _PackedCursor:
    """Resumable packed comparator-word source for one randomizer bank.

    The packed kernels' counterpart of :class:`_UniformCursor`:
    ``take(offset, count)`` returns the ``(B, channels, ceil(count/64))``
    uint64 word slab covering stream clocks ``[offset, offset + count)``
    — bit-for-bit ``pack_bits(uniforms < values)`` of the tile the
    unpacked cursor would produce.  Table-cached LFSR and Sobol banks
    read packed words straight off their cycles
    (:class:`repro.simulation.kernels.PackedLfsrSource` /
    :class:`~repro.simulation.kernels.PackedSobolSource`, built once and
    re-aimed per tile), chaotic banks pack blockwise off the carried
    orbit (:class:`~repro.simulation.kernels.PackedChaoticSource`,
    sequential resume like the unpacked cursor); only the fallback
    cases — registers/widths beyond the cycle-table caps — go through
    the unpacked cursor followed by compare-and-pack.
    """

    def __init__(
        self,
        kind: str,
        base_seeds: Any,
        channel_count: int,
        width: int,
        values: Any,
    ) -> None:
        self._values = np.asarray(values, dtype=float)
        self._source: Optional[Any] = None
        self._cursor: Optional[_UniformCursor] = None
        if kind == "lfsr":
            derived = derive_lfsr_seeds(base_seeds, channel_count, width)
            self._source = PackedLfsrSource.create(
                derived, self._values, width
            )
        elif kind == "sobol":
            offsets = derive_sobol_offsets(base_seeds, channel_count)
            self._source = PackedSobolSource.create(
                offsets, self._values, width
            )
        elif kind == "chaotic":
            self._source = PackedChaoticSource(
                base_seeds, self._values, channel_count
            )
        if self._source is None:
            self._cursor = _UniformCursor(kind, base_seeds, channel_count, width)

    def take(self, offset: int, count: int) -> "np.ndarray[Any, Any]":
        if self._source is not None:
            return np.asarray(self._source.take(offset, count))
        assert self._cursor is not None
        uniforms = self._cursor.take(offset, count)
        return pack_bits((uniforms < self._values[..., None]).astype(np.uint8))


def _chunked_shard_worker(payload: Tuple[Any, ...]) -> ChunkedEvaluation:
    """Stream one row shard (module-level so process pools can pickle it)."""
    (
        circuit,
        xs,
        length,
        chunk_length,
        noisy,
        sng_kind,
        sng_width,
        schedule,
        bins,
        kernel,
        fault,
    ) = payload
    return simulate_chunked(
        circuit,
        xs,
        length=length,
        chunk_length=chunk_length,
        noisy=noisy,
        sng_kind=sng_kind,
        sng_width=sng_width,
        schedule=schedule,
        power_histogram_bins=bins,
        workers=0,
        kernel=kernel,
        fault=fault,
    )


def _chunked_shm_worker(
    payload: Tuple[Any, ...],
) -> Tuple[int, int, Optional["np.ndarray[Any, Any]"]]:
    """Stream one row shard, accumulating into the shared arena.

    The streaming accumulators are ``O(rows)`` scalars per row plus an
    optional fixed-size histogram, so the worker writes them straight
    into its row range (histograms get one private arena row per shard
    — integer counts over shared bin edges, summed exactly by the
    parent) and returns only the tile geometry.
    """
    (
        spec,
        circuit,
        shard_index,
        lo,
        hi,
        length,
        chunk_length,
        noisy,
        sng_kind,
        sng_width,
        bins,
        kernel,
        fault,
    ) = payload
    arena = SharedArena.attach(spec)
    try:
        xs, schedule = _read_shard_inputs(arena, lo, hi)
        result = simulate_chunked(
            circuit,
            xs,
            length=length,
            chunk_length=chunk_length,
            noisy=noisy,
            sng_kind=sng_kind,
            sng_width=sng_width,
            schedule=schedule,
            power_histogram_bins=bins,
            workers=0,
            kernel=kernel,
            fault=fault,
        )
        arena.write("expected", result.expected, lo)
        arena.write("ones_count", result.ones_count, lo)
        arena.write("bit_errors", result.transmission_bit_errors, lo)
        if bins:
            histogram = result.power_histogram
            assert histogram is not None
            arena.write("histogram", histogram[None, :], shard_index)
    finally:
        arena.close()
    return result.chunk_count, result.chunk_length, result.power_bin_edges


def _simulate_chunked_shm(
    circuit: Any,
    xs: "np.ndarray[Any, Any]",
    length: int,
    chunk_length: int,
    noisy: bool,
    sng_kind: str,
    sng_width: int,
    schedule: SeedSchedule,
    bins: int,
    kernel: str,
    workers: int,
    backend: str,
    fault: Optional[FaultSpec] = None,
) -> ChunkedEvaluation:
    """Shared-memory row sharding for the streaming path."""
    batch = xs.size
    bounds = _shard_bounds(batch, workers)
    fields = _shard_input_fields(batch)
    fields.update(
        {
            "expected": ((batch,), np.float64),
            "ones_count": ((batch,), np.int64),
            "bit_errors": ((batch,), np.int64),
        }
    )
    if bins:
        fields["histogram"] = ((len(bounds), bins), np.int64)
    arena = SharedArena(fields)
    try:
        _write_shard_inputs(arena, xs, schedule)
        spec = arena.spec
        payloads = [
            (
                spec,
                circuit,
                shard_index,
                lo,
                hi,
                length,
                chunk_length,
                noisy,
                sng_kind,
                sng_width,
                bins,
                kernel,
                fault,
            )
            for shard_index, (lo, hi) in enumerate(bounds)
        ]
        metas = parallel_map(
            _chunked_shm_worker, payloads, workers=workers, backend=backend
        )
    except BaseException:
        arena.destroy()
        raise
    views = arena.export_views()
    chunk_count, shard_chunk_length, edges = metas[0]
    return ChunkedEvaluation(
        xs=views["xs"],
        expected=views["expected"],
        stream_length=int(length),
        chunk_length=int(shard_chunk_length),
        chunk_count=int(chunk_count),
        ones_count=views["ones_count"],
        transmission_bit_errors=views["bit_errors"],
        power_histogram=views["histogram"].sum(axis=0) if bins else None,
        power_bin_edges=edges,
    )


def _concatenate_chunked(
    shards: Sequence[ChunkedEvaluation],
) -> ChunkedEvaluation:
    """Reassemble row-sharded streaming results, row order preserved."""
    first = shards[0]
    histogram = first.power_histogram
    if histogram is not None:
        histogram = np.sum([s.power_histogram for s in shards], axis=0)
    return ChunkedEvaluation(
        xs=np.concatenate([s.xs for s in shards]),
        expected=np.concatenate([s.expected for s in shards]),
        stream_length=first.stream_length,
        chunk_length=first.chunk_length,
        chunk_count=first.chunk_count,
        ones_count=np.concatenate([s.ones_count for s in shards]),
        transmission_bit_errors=np.concatenate(
            [s.transmission_bit_errors for s in shards]
        ),
        power_histogram=histogram,
        power_bin_edges=first.power_bin_edges,
    )


def simulate_chunked(
    circuit: Any,
    xs: Any,
    length: int = 1 << 21,
    chunk_length: int = 1 << 16,
    rng: Optional[np.random.Generator] = None,
    noisy: bool = True,
    sng_kind: str = "lfsr",
    base_seed: Optional[int] = None,
    sng_width: int = 16,
    schedule: Optional[SeedSchedule] = None,
    power_histogram_bins: int = 0,
    workers: Optional[int] = None,
    backend: str = "process",
    kernel: str = "numpy",
    transport: str = "pickle",
    fault: Optional[FaultSpec] = None,
) -> ChunkedEvaluation:
    """Stream a long evaluation through ``(B, chunk_length)`` tiles.

    Peak memory is bounded by the tile size instead of the stream
    length, so ``length >> 2**20`` runs (the regime where the Sobol and
    chaotic randomizers' ``O(1/N)`` convergence pays off) stay cheap.
    The accumulated statistics — ones count, link bit-error count, and
    the optional received-power histogram over *power_histogram_bins*
    equal-width bins spanning the Eq. 6 table range — are **bit-exact**
    with a one-shot ``simulate_batch(..., schedule=schedule)`` of the
    same seed schedule: tiles reuse the engine's own optical pass, and
    every randomizer resumes exactly (index offsets for LFSR/Sobol/
    counter, carried orbit state for chaotic; receiver noise continues
    from per-row seeded generators, which numpy draws identically
    whether in one call or split across tiles).

    Chunking composes with sharding: ``workers > 1`` (default: the
    ``REPRO_RUNTIME_WORKERS`` environment setting, like every runtime
    entry point) streams row shards on a worker pool (each worker
    bounded by its own tile), and the reassembled accumulators are
    identical to the serial streaming run — rows are independent under
    the schedule, and per-shard histograms share the table-derived bin
    edges so they sum exactly.  *transport* picks how shard
    accumulators return from process workers (``"pickle"`` through the
    pool pipe, ``"shm"`` in place through a shared-memory arena — see
    :mod:`repro.simulation.transport`); both are bit-exact.

    With a packed *kernel* (``"packed"``/``"numba"``) each tile is
    evaluated on 64-clock uint64 words: the ones/bit-error accumulators
    come from popcounts and per-key counts instead of per-clock byte
    tensors (:func:`repro.simulation.kernels.packed_tile_statistics`),
    and on the noiseless LFSR path no per-clock array is materialized
    at all.  The accumulated statistics stay bit-exact with the numpy
    kernel's.

    *fault* injects a :class:`~repro.simulation.faultmodel.FaultSpec`
    scenario: flip/erasure masks are pure functions of the absolute
    clock index and the per-row schedule seeds, and the
    desynchronization shift carries its bits across tiles — so the
    accumulated statistics are bit-exact with the one-shot faulted
    evaluation whatever the chunk length, worker count or kernel.
    """
    _validate_backend(backend)
    kernel = resolve_kernel(kernel)
    transport = resolve_transport(transport, backend)
    xs = _validate_batch_inputs(
        circuit, xs, length, sng_kind, base_seed, sng_width
    )
    _validate_fault(fault, circuit)
    if chunk_length <= 0:
        raise ConfigurationError(
            f"chunk_length must be positive, got {chunk_length!r}"
        )
    if power_histogram_bins < 0:
        raise ConfigurationError(
            f"power_histogram_bins must be >= 0, got {power_histogram_bins!r}"
        )
    batch = xs.size
    if schedule is None:
        schedule = derive_seed_schedule(
            batch, rng=rng, sng_kind=sng_kind, base_seed=base_seed
        )
    elif schedule.batch_size != batch:
        raise ConfigurationError(
            f"schedule covers {schedule.batch_size} rows but xs has {batch}"
        )
    workers = default_worker_count() if workers is None else int(workers)
    if workers > 1 and batch > 1:
        if transport == "shm":
            return _simulate_chunked_shm(
                circuit,
                xs,
                length,
                chunk_length,
                noisy,
                sng_kind,
                sng_width,
                schedule,
                power_histogram_bins,
                kernel,
                workers,
                backend,
                fault=fault,
            )
        shards = _map_row_shards(
            _chunked_shard_worker,
            lambda xs_shard, schedule_shard: (
                circuit,
                xs_shard,
                length,
                chunk_length,
                noisy,
                sng_kind,
                sng_width,
                schedule_shard,
                power_histogram_bins,
                kernel,
                fault,
            ),
            xs,
            schedule,
            workers,
            backend,
        )
        return _concatenate_chunked(shards)
    params = circuit.params
    order = params.order
    channel_count = order + 1
    coefficients = np.asarray(circuit.polynomial.coefficients, dtype=float)
    noise_sigma = params.detector.noise_current_a

    use_packed = kernel != "numpy"
    data_cursor: Any = None
    coeff_cursor: Any = None
    if sng_kind != "counter":
        if use_packed:
            data_cursor = _PackedCursor(
                sng_kind, schedule.data_seeds, order, sng_width, xs[:, None]
            )
            coeff_cursor = _PackedCursor(
                sng_kind,
                schedule.coeff_seeds,
                channel_count,
                sng_width,
                coefficients[None, :],
            )
        else:
            data_cursor = _UniformCursor(
                sng_kind, schedule.data_seeds, order, sng_width
            )
            coeff_cursor = _UniformCursor(
                sng_kind, schedule.coeff_seeds, channel_count, sng_width
            )
    noise_rngs: Optional[List[Any]] = (
        [schedule.row_noise_rng(row) for row in range(batch)] if noisy else None
    )
    # One stream-fault channel for the whole run: masks are addressed by
    # absolute clock, the desynchronization carry advances tile by tile.
    fault_channel = (
        fault_channel_for(fault, schedule.noise_seeds, length)
        if fault is not None
        else None
    )
    pin_stuck = fault is not None and fault.stuck_channel is not None

    ones_count = np.zeros(batch, dtype=np.int64)
    error_count = np.zeros(batch, dtype=np.int64)
    histogram: Optional["np.ndarray[Any, Any]"] = None
    edges: Optional["np.ndarray[Any, Any]"] = None
    if power_histogram_bins:
        table = circuit.model.received_power_table_mw()
        edges = np.linspace(
            float(table.min()), float(table.max()), power_histogram_bins + 1
        )
        histogram = np.zeros(power_histogram_bins, dtype=np.int64)

    chunk_count = 0
    for start in range(0, length, chunk_length):
        count = min(chunk_length, length - start)
        if use_packed:
            if sng_kind == "counter":
                data_streams = np.broadcast_to(
                    pack_bits(
                        exact_bit_window(xs, length, start, start + count)
                    )[:, None, :],
                    (batch, order, (count + 63) // 64),
                )
                coeff_streams = np.broadcast_to(
                    pack_bits(
                        exact_bit_window(
                            coefficients, length, start, start + count
                        )
                    )[None, :, :],
                    (batch, channel_count, (count + 63) // 64),
                )
            else:
                data_streams = data_cursor.take(start, count)
                coeff_streams = coeff_cursor.take(start, count)
        elif sng_kind == "counter":
            data_streams = np.broadcast_to(
                exact_bit_window(xs, length, start, start + count)[:, None, :],
                (batch, order, count),
            )
            coeff_streams = np.broadcast_to(
                exact_bit_window(coefficients, length, start, start + count)[
                    None, :, :
                ],
                (batch, channel_count, count),
            )
        else:
            data_u = data_cursor.take(start, count)
            coeff_u = coeff_cursor.take(start, count)
            data_streams = (data_u < xs[:, None, None]).astype(np.uint8)
            coeff_streams = (coeff_u < coefficients[None, :, None]).astype(
                np.uint8
            )
        if pin_stuck:
            assert fault is not None
            data_streams = (
                pin_stuck_words(data_streams, fault, count)
                if use_packed
                else pin_stuck_bits(data_streams, fault)
            )
        noise_a = (
            np.stack(
                [gen.normal(0.0, noise_sigma, count) for gen in noise_rngs]
            )
            if noise_rngs is not None
            else None
        )
        if use_packed:
            ones_inc, error_inc, histogram_inc = packed_tile_statistics(
                circuit,
                data_streams,
                coeff_streams,
                count,
                noise_a=noise_a,
                histogram_edges=edges if histogram is not None else None,
                kernel=kernel,
                fault_channel=fault_channel,
                clock_offset=start,
            )
            ones_count += ones_inc
            error_count += error_inc
            if histogram is not None:
                assert histogram_inc is not None
                histogram += histogram_inc
        else:
            powers, output_bits, ideal_bits, _ = _optical_pass(
                circuit, data_streams, coeff_streams, noise_a
            )
            if fault_channel is not None:
                output_bits = fault_channel.apply_bits(output_bits, start)
            ones_count += output_bits.sum(axis=1, dtype=np.int64)
            error_count += np.sum(
                output_bits != ideal_bits, axis=1, dtype=np.int64
            )
            if histogram is not None:
                assert edges is not None
                histogram += np.histogram(powers, bins=edges)[0]
        chunk_count += 1

    expected = np.asarray(circuit.polynomial(xs), dtype=float)
    return ChunkedEvaluation(
        xs=xs,
        expected=expected,
        stream_length=int(length),
        chunk_length=int(min(chunk_length, length)),
        chunk_count=chunk_count,
        ones_count=ones_count,
        transmission_bit_errors=error_count,
        power_histogram=histogram,
        power_bin_edges=edges,
    )


# -- keyed evaluation cache ----------------------------------------------------


class EvaluationCache:
    """LRU cache of deterministic batch evaluations.

    Keyed on ``circuit fingerprint x sng_kind x base_seed x sng_width x
    length x noisy x inputs digest`` — everything that determines a
    schedule-seeded evaluation.  Exploration sweeps that revisit the
    same design point skip the engine pass entirely; ``hits`` /
    ``misses`` expose the effectiveness.

    Each entry retains the full :class:`BatchEvaluation` including its
    per-clock ``(B, L)`` tensors (roughly ``18 * B * L`` bytes), so size
    ``max_entries`` to your memory budget — the default is deliberately
    small.  For streams long enough that one entry is itself a memory
    problem, use :func:`simulate_chunked` instead of caching.

    The cache is thread-safe: ``backend="thread"`` sharded runs and the
    serving layer's executor threads share the process-wide default
    instance, so lookup/store/clear each hold an internal lock — the
    LRU reorder, the hit/miss counters and eviction stay atomic.
    """

    def __init__(self, max_entries: int = 16) -> None:
        if max_entries < 1:
            raise ConfigurationError(
                f"max_entries must be >= 1, got {max_entries!r}"
            )
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[Tuple[Any, ...], BatchEvaluation]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def lookup(self, key: Tuple[Any, ...]) -> Optional[BatchEvaluation]:
        """The cached evaluation for *key*, refreshing its LRU slot."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(self, key: Tuple[Any, ...], result: BatchEvaluation) -> None:
        """Insert *result*, evicting the least-recently-used overflow.

        The stored arrays are frozen read-only: hits return the stored
        object by identity, so an in-place mutation by one caller would
        otherwise silently corrupt every later hit of the same key.
        """
        for name in (
            "xs",
            "values",
            "expected",
            "received_power_mw",
            "output_bits",
            "ideal_bits",
            "select_levels",
        ):
            getattr(result, name).setflags(write=False)
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)


_DEFAULT_CACHE = EvaluationCache(max_entries=16)


def default_evaluation_cache() -> EvaluationCache:
    """The process-wide cache :func:`cached_simulate_batch` defaults to."""
    return _DEFAULT_CACHE


def _evaluation_key(
    circuit: Any,
    xs: "np.ndarray[Any, Any]",
    length: int,
    noisy: bool,
    sng_kind: str,
    base_seed: int,
    sng_width: int,
    fault: Optional[FaultSpec] = None,
) -> Tuple[Any, ...]:
    digest = hashlib.sha1(np.ascontiguousarray(xs).tobytes()).hexdigest()
    return (
        circuit.fingerprint(),
        sng_kind,
        int(base_seed),
        int(sng_width),
        int(length),
        bool(noisy),
        int(xs.size),
        digest,
        # FaultSpec is a frozen value object: equal scenarios hash equal,
        # and the fault realization is a pure function of base_seed + spec.
        fault,
    )


def _cached_simulate_batch(
    circuit: Any,
    xs: Any,
    length: int = 1024,
    noisy: bool = True,
    sng_kind: str = "lfsr",
    base_seed: int = 0x5EED,
    sng_width: int = 16,
    cache: Optional[EvaluationCache] = None,
    workers: Optional[int] = None,
    backend: str = "process",
    kernel: str = "numpy",
    transport: str = "pickle",
    fault: Optional[FaultSpec] = None,
) -> BatchEvaluation:
    """Keyed, memoized batch evaluation for repeated exploration sweeps.

    Requires a fixed *base_seed*: the whole evaluation (including the
    receiver noise, whose per-row seeds are derived from *base_seed* via
    the deterministic schedule) is then a pure function of the key, so a
    hit can return the stored result unchanged.  A miss computes through
    :func:`simulate_batch_sharded` (serial when ``workers <= 1``) and
    stores the result in *cache* (the process-wide default when
    omitted).  The *kernel* is deliberately **not** part of the cache
    key: every kernel is bit-for-bit identical, so entries computed by
    one serve hits requested under another.
    """
    if base_seed is None:
        raise ConfigurationError(
            "the evaluation cache needs a fixed base_seed; rng-derived "
            "seeds make every call unique"
        )
    xs = _validate_batch_inputs(
        circuit, xs, length, sng_kind, base_seed, sng_width
    )
    # Private copy: the stored result's arrays are frozen read-only on
    # store, and np.asarray may have returned the caller's own float
    # array by identity — freezing that would break callers who reuse
    # or mutate their input buffer after the call.
    xs = xs.copy()
    cache = _DEFAULT_CACHE if cache is None else cache
    key = _evaluation_key(
        circuit, xs, length, noisy, sng_kind, base_seed, sng_width, fault
    )
    hit = cache.lookup(key)
    if hit is not None:
        return hit
    schedule = derive_seed_schedule(
        xs.size, sng_kind=sng_kind, base_seed=base_seed
    )
    result = simulate_batch_sharded(
        circuit,
        xs,
        length=length,
        noisy=noisy,
        sng_kind=sng_kind,
        sng_width=sng_width,
        workers=workers,
        backend=backend,
        schedule=schedule,
        kernel=kernel,
        transport=transport,
        fault=fault,
    )
    cache.store(key, result)
    return result


# -- one-stop dispatcher -------------------------------------------------------


@dataclass(frozen=True)
class RuntimeConfig:
    """Scaling knobs for :func:`run_batch`.

    ``workers`` > 1 enables row sharding (``None`` defers to the
    ``REPRO_RUNTIME_WORKERS`` environment default); ``chunk_length``
    enables tile streaming for streams longer than one tile (the result
    is then a :class:`ChunkedEvaluation`); ``use_cache``/``cache``
    enable memoization for fixed-``base_seed`` calls; ``vectorized``
    routes the optics analysis consumers (Monte Carlo corners, yield
    curves) through the stacked-array engine of
    :mod:`repro.core.vectorized` instead of the per-corner scalar loop
    — results agree to floating-point rounding, an order of magnitude
    faster.

    ``kernel`` selects the engine's compute kernel
    (:data:`repro.simulation.kernels.KERNELS`): ``"numpy"`` (reference,
    default), ``"packed"`` (dependency-free uint64 bit-plane engine) or
    ``"numba"`` (packed with a JIT word loop; requires the optional
    numba package).  Not to be confused with ``backend``, which picks
    the process/thread *pool* for sharded fan-out — the two compose
    freely, and like every other knob here the kernel never changes an
    output bit.

    ``transport`` selects how shard data moves between the parent and
    process workers (:data:`repro.simulation.transport.TRANSPORTS`):
    ``"pickle"`` (default) serializes shard inputs/results through the
    pool pipe; ``"shm"`` shares one zero-copy
    :mod:`multiprocessing.shared_memory` arena that workers write their
    row ranges into, with reassembly as a view — no hot array is
    serialized in either direction.  ``"shm"`` requires the
    ``"process"`` backend (thread workers already share memory) and is,
    like the kernel, bit-exact with the default.

    Every construction-knowable misconfiguration fails in
    ``__post_init__`` — an invalid backend, kernel, chunk size, worker
    count or cache object never survives to the first evaluation.  The
    one check that needs the seed policy (cache without a fixed
    ``base_seed``) fails on **every** :func:`run_batch` path, and at
    construction when the config is bound to a spec in a
    :class:`repro.session.Evaluator`.
    """

    workers: Optional[int] = None
    backend: str = "process"
    chunk_length: Optional[int] = None
    use_cache: bool = False
    cache: Optional[EvaluationCache] = None
    vectorized: bool = False
    kernel: str = "numpy"
    transport: str = "pickle"

    def __post_init__(self) -> None:
        _validate_backend(self.backend)
        resolve_kernel(self.kernel)
        resolve_transport(self.transport, self.backend)
        if not isinstance(self.vectorized, bool):
            raise ConfigurationError(
                f"vectorized must be a bool, got {self.vectorized!r}"
            )
        if self.chunk_length is not None and self.chunk_length <= 0:
            raise ConfigurationError(
                f"chunk_length must be positive, got {self.chunk_length!r}"
            )
        if self.workers is not None and int(self.workers) < 0:
            raise ConfigurationError(
                f"workers must be >= 0, got {self.workers!r}"
            )
        if self.cache is not None and not isinstance(
            self.cache, EvaluationCache
        ):
            raise ConfigurationError(
                f"cache must be an EvaluationCache, got {self.cache!r}"
            )

    @property
    def cache_requested(self) -> bool:
        """Whether this config asks for memoized evaluation."""
        return self.use_cache or self.cache is not None

    @property
    def resolved_workers(self) -> int:
        """The effective worker count (environment default applied)."""
        return (
            default_worker_count() if self.workers is None else int(self.workers)
        )


def run_batch(
    circuit: Any,
    xs: Any,
    length: int = 1024,
    rng: Optional[np.random.Generator] = None,
    noisy: bool = True,
    sng_kind: str = "lfsr",
    base_seed: Optional[int] = None,
    sng_width: int = 16,
    config: Optional[RuntimeConfig] = None,
    fault: Optional[FaultSpec] = None,
) -> Any:
    """Evaluate through the runtime, picking the scaling strategy.

    Dispatch order: chunked streaming first (when ``config.chunk_length``
    is set and the stream exceeds one tile — returns a
    :class:`ChunkedEvaluation`, row-sharded across ``config.workers``;
    chunking wins over the cache because a stream long enough to chunk
    is exactly one whose ``(B, L)`` tensors must never be materialized,
    let alone pinned in a cache), then the cache (when enabled; a cache
    without a fixed *base_seed* is a misconfiguration and raises), then
    sharding (``workers > 1``), else the serial engine call.  Consumers that only need ``.values`` / error
    statistics work with either result type unchanged.

    Every strategy runs over the **same** pre-derived seed schedule, so
    the worker count, chunk size and compute kernel
    (``config.kernel``) are pure wall-clock/memory knobs: changing them
    never changes a single output bit or accumulated statistic for a
    given *rng* seed (or *base_seed*).  That includes an injected
    *fault* (:class:`~repro.simulation.faultmodel.FaultSpec`): its
    realization is seeded from the same schedule and addressed by
    absolute clock index, so the faulted bits are identical on every
    strategy too.  (This schedule
    protocol consumes *rng* differently than a bare ``simulate_batch``
    call — run_batch results are reproducible against run_batch, not
    against the engine's legacy per-row noise-block protocol.)
    """
    config = config or RuntimeConfig()
    workers = config.resolved_workers
    if config.cache_requested and base_seed is None:
        # Silently recomputing while the caller believes memoization is
        # on would defeat the config; fail on every dispatch path (the
        # chunked branch used to skip this check and quietly ignore the
        # cache request).
        raise ConfigurationError(
            "RuntimeConfig enables the evaluation cache but base_seed is "
            "None; rng-derived seeds make every call unique — pass a "
            "fixed base_seed or disable the cache"
        )
    if config.chunk_length is not None and length > config.chunk_length:
        xs = _validate_batch_inputs(
            circuit, xs, length, sng_kind, base_seed, sng_width
        )
        schedule = derive_seed_schedule(
            xs.size, rng=rng, sng_kind=sng_kind, base_seed=base_seed
        )
        return simulate_chunked(
            circuit,
            xs,
            length=length,
            chunk_length=config.chunk_length,
            noisy=noisy,
            sng_kind=sng_kind,
            sng_width=sng_width,
            schedule=schedule,
            workers=workers,
            backend=config.backend,
            kernel=config.kernel,
            transport=config.transport,
            fault=fault,
        )
    if config.cache_requested:  # base_seed is fixed: validated above
        assert base_seed is not None
        return _cached_simulate_batch(
            circuit,
            xs,
            length=length,
            noisy=noisy,
            sng_kind=sng_kind,
            base_seed=base_seed,
            sng_width=sng_width,
            cache=config.cache,
            workers=workers,
            backend=config.backend,
            kernel=config.kernel,
            transport=config.transport,
            fault=fault,
        )
    xs = _validate_batch_inputs(
        circuit, xs, length, sng_kind, base_seed, sng_width
    )
    schedule = derive_seed_schedule(
        xs.size, rng=rng, sng_kind=sng_kind, base_seed=base_seed
    )
    if workers > 1:
        return simulate_batch_sharded(
            circuit,
            xs,
            length=length,
            noisy=noisy,
            sng_kind=sng_kind,
            sng_width=sng_width,
            workers=workers,
            backend=config.backend,
            schedule=schedule,
            kernel=config.kernel,
            transport=config.transport,
            fault=fault,
        )
    return simulate_batch(
        circuit,
        xs,
        length=length,
        noisy=noisy,
        sng_kind=sng_kind,
        sng_width=sng_width,
        schedule=schedule,
        kernel=config.kernel,
        fault=fault,
    )

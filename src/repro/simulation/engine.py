"""Batched vectorized evaluation engine: many inputs, one array pass.

The bit-level functional simulation of Fig. 3 is embarrassingly batchable:
every stage — randomizer sampling, the optical adder, the Eq. 6 pattern
table, the threshold receiver — is expressible as array operations over a
``(batch, length)`` bit tensor.  :func:`simulate_batch` evaluates a whole
vector of inputs in one such pass:

1. per evaluation row, decorrelated SNG seeds are derived from the
   caller's ``rng`` (or a fixed ``base_seed``);
2. data and coefficient streams are generated array-first — the LFSR via
   its cached full-period state table and strided window gathers, the
   Sobol/counter/chaotic randomizers via their vectorized forms in
   :mod:`repro.stochastic.sng`;
3. the per-clock received power is a single ``(B, L)`` fancy-index into
   the precomputed Eq. 6 pattern table;
4. the receiver slices the whole batch at once.

The scalar entry points (:func:`repro.simulation.functional.simulate_evaluation`
and ``simulate_sweep``) are thin wrappers over this engine, and the two
paths are **bit-for-bit identical** for a fixed seed sequence: looping
``simulate_evaluation`` over ``xs`` with one ``rng`` consumes the
generator exactly like one ``simulate_batch(circuit, xs, rng=rng)`` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError

if TYPE_CHECKING:
    from ..core.circuit import OpticalStochasticCircuit
from ..stochastic.bitstream import exact_bit_matrix
from ..stochastic.lfsr import lfsr_uniform_windows
from ..stochastic.sng import (
    SNG_KINDS,
    chaotic_orbit,
    chaotic_warmup,
    derive_chaotic_intensities,
    derive_lfsr_seeds,
    derive_sobol_offsets,
    van_der_corput,
)
from .faultmodel import (
    FaultSpec,
    PackedFaultChannel,
    pin_stuck_bits,
    pin_stuck_words,
)
from .kernels import (
    PackedChaoticSource,
    optical_pass,
    pack_bits,
    packed_lfsr_comparator_bits,
    packed_optical_pass,
    packed_sobol_comparator_bits,
    resolve_kernel,
)

__all__ = [
    "BatchEvaluation",
    "SeedSchedule",
    "derive_seed_schedule",
    "simulate_batch",
    "COEFF_SEED_STRIDE",
]

COEFF_SEED_STRIDE = 0x9E3779B9
"""Offset separating the coefficient-stream seed space from the data one."""

_DEFAULT_FIXED_SEED = 0x5EED
_NOISE_SEED_SPACE = 1 << 62
_FALLBACK_RNG_SEED = 0xD47E
"""Seed of the derivation rng when the caller passes neither rng nor seeds."""


@dataclass(frozen=True)
class BatchEvaluation:
    """Outcome of one vectorized batch of bit-level evaluations.

    All per-evaluation arrays are stacked along axis 0 (one row per
    input); per-clock arrays have shape ``(batch, stream_length)``.
    """

    xs: "np.ndarray[Any, Any]"
    values: "np.ndarray[Any, Any]"
    expected: "np.ndarray[Any, Any]"
    stream_length: int
    received_power_mw: "np.ndarray[Any, Any]"
    output_bits: "np.ndarray[Any, Any]"
    ideal_bits: "np.ndarray[Any, Any]"
    select_levels: "np.ndarray[Any, Any]"

    @property
    def batch_size(self) -> int:
        """Number of evaluations in the batch."""
        return int(self.xs.size)

    @property
    def absolute_errors(self) -> "np.ndarray[Any, Any]":
        """Per-row ``|value - expected|``."""
        return np.abs(self.values - self.expected)

    @property
    def transmission_bit_errors(self) -> "np.ndarray[Any, Any]":
        """Per-row count of bits flipped by the link + receiver noise."""
        return np.sum(self.output_bits != self.ideal_bits, axis=1)

    @property
    def transmission_ber(self) -> "np.ndarray[Any, Any]":
        """Per-row observed link bit-error rate."""
        return self.transmission_bit_errors / self.stream_length

    @property
    def mean_absolute_error(self) -> float:
        """Batch-mean ``|value - expected|`` (the accuracy-sweep metric)."""
        return float(np.mean(self.absolute_errors))


def _derive_base_seeds(rng: np.random.Generator) -> Tuple[int, int]:
    """One (data, coefficient) base-seed pair, two draws from *rng*."""
    data = int(rng.integers(1, 1 << 31))
    coeff = int(rng.integers(1, 1 << 31))
    return data, coeff


@dataclass(frozen=True)
class SeedSchedule:
    """Explicit per-row seed material for one batch of evaluations.

    Every row of a batch is fully determined by its
    ``(data_seed, coeff_seed, noise_seed)`` triple (plus the input and
    the circuit), so a schedule makes the evaluation *relocatable*: the
    scaling runtime (:mod:`repro.simulation.runtime`) pre-derives one
    schedule from the caller's rng, then evaluates any row subset on any
    worker — or any chunk of the stream — and still reassembles results
    bit-for-bit identical to the serial one-shot call.

    ``noise_seeds[b]`` seeds a **fresh, private** generator for row
    ``b``'s receiver noise (``default_rng(noise_seeds[b])``), which is
    what lets chunked evaluation draw the same noise stream in tiles:
    numpy Generators produce identical normals whether drawn in one call
    or split across consecutive calls.
    """

    data_seeds: "np.ndarray[Any, Any]"
    coeff_seeds: "np.ndarray[Any, Any]"
    noise_seeds: "np.ndarray[Any, Any]"

    def __post_init__(self) -> None:
        for name in ("data_seeds", "coeff_seeds", "noise_seeds"):
            array = np.atleast_1d(np.asarray(getattr(self, name), dtype=np.int64))
            object.__setattr__(self, name, array)
        if not (
            self.data_seeds.shape
            == self.coeff_seeds.shape
            == self.noise_seeds.shape
        ) or self.data_seeds.ndim != 1:
            raise ConfigurationError(
                "schedule seed arrays must be 1-D and equally sized"
            )

    @property
    def batch_size(self) -> int:
        """Number of rows this schedule covers."""
        return int(self.data_seeds.size)

    def shard(self, start: int, stop: int) -> "SeedSchedule":
        """The sub-schedule for rows ``[start, stop)``."""
        if not 0 <= start < stop <= self.batch_size:
            raise ConfigurationError(
                f"invalid shard [{start}, {stop}) for batch of {self.batch_size}"
            )
        return SeedSchedule(
            data_seeds=self.data_seeds[start:stop],
            coeff_seeds=self.coeff_seeds[start:stop],
            noise_seeds=self.noise_seeds[start:stop],
        )

    def row_noise_rng(self, row: int) -> np.random.Generator:
        """The private receiver-noise generator of one row."""
        return np.random.default_rng(int(self.noise_seeds[row]))


def derive_seed_schedule(
    batch: int,
    rng: Optional[np.random.Generator] = None,
    sng_kind: str = "lfsr",
    base_seed: Optional[int] = None,
) -> SeedSchedule:
    """Pre-draw the per-row seed triples for a *batch*-row evaluation.

    With ``base_seed`` given the schedule is **fully deterministic**
    (``rng`` is ignored): every row reuses the fixed SNG seed pair, and
    the noise seeds are derived from ``base_seed`` alone — this is what
    makes noisy runs cacheable.  Otherwise the per-row protocol consumes
    *rng* as ``(data seed, coeff seed, noise seed)`` per row.
    """
    if batch <= 0:
        raise ConfigurationError(f"batch must be positive, got {batch!r}")
    if sng_kind not in SNG_KINDS:
        raise ConfigurationError(
            f"unknown SNG kind {sng_kind!r}; expected one of {SNG_KINDS}"
        )
    _validate_base_seed(base_seed)
    seeded = sng_kind != "counter"
    data_seeds = np.empty(batch, dtype=np.int64)
    coeff_seeds = np.empty(batch, dtype=np.int64)
    noise_seeds = np.empty(batch, dtype=np.int64)
    if base_seed is not None:
        fixed = int(base_seed)
        data_seeds[:] = fixed
        coeff_seeds[:] = fixed + COEFF_SEED_STRIDE
        noise_seeds[:] = np.random.default_rng(
            [fixed, _DEFAULT_FIXED_SEED]
        ).integers(0, _NOISE_SEED_SPACE, batch)
        return SeedSchedule(data_seeds, coeff_seeds, noise_seeds)
    rng = rng or np.random.default_rng(_FALLBACK_RNG_SEED)
    for row in range(batch):
        if seeded:
            data_seeds[row], coeff_seeds[row] = _derive_base_seeds(rng)
        else:
            data_seeds[row] = _DEFAULT_FIXED_SEED
            coeff_seeds[row] = _DEFAULT_FIXED_SEED + COEFF_SEED_STRIDE
        noise_seeds[row] = int(rng.integers(0, _NOISE_SEED_SPACE))
    return SeedSchedule(data_seeds, coeff_seeds, noise_seeds)


def _validate_base_seed(base_seed: Optional[int]) -> None:
    """Reject the negative seeds the scalar factory path refuses.

    A negative ``base_seed`` used to wrap silently through the uint64
    cast in :func:`van_der_corput` (sobol) and the modulus in
    :func:`derive_lfsr_seeds`, while ``make_independent_sngs`` raised on
    the derived negative ``bit_offset`` — the batched and scalar paths
    must fail identically instead.
    """
    if base_seed is not None and int(base_seed) < 0:
        raise ConfigurationError(
            f"base_seed must be >= 0, got {base_seed!r}"
        )


def _validate_sng_width(sng_kind: str, sng_width: int) -> None:
    """Per-kind width validation matching the scalar constructors.

    The sobol batched path feeds ``sng_width`` straight into
    :func:`van_der_corput`, which accepts any bit count — while the
    scalar :class:`repro.stochastic.sng.SobolLikeSNG` enforces
    ``bits in [1, 30]``.  ``sng_width=32`` would silently produce wrong
    samples batched but raise scalar; validate here so both paths raise
    the same :class:`ConfigurationError`.  (The lfsr path already fails
    identically through the shared tap-table validation; counter and
    chaotic randomizers ignore the width.)
    """
    if sng_kind == "sobol" and not 1 <= int(sng_width) <= 30:
        raise ConfigurationError(
            f"sng_width must be in [1, 30] for the sobol randomizer, "
            f"got {sng_width!r}"
        )


def _batch_uniforms(
    kind: str,
    base_seeds: "np.ndarray[Any, Any]",
    channel_count: int,
    length: int,
    width: int,
    offset: int = 0,
) -> "np.ndarray[Any, Any]":
    """Comparator sample tensor ``(B, channel_count, length)`` for *kind*.

    Row ``b``, channel ``c`` holds exactly the uniform samples the
    scalar path's ``make_independent_sngs(channel_count, kind,
    base_seed=base_seeds[b])[c]`` would compare against.  With *offset*
    the samples start ``offset`` clocks into each stream (the chunked
    runtime's resume hook; lfsr and sobol only — chaotic streams resume
    by carrying raw orbit state instead, see
    :class:`repro.simulation.runtime._UniformCursor`).
    """
    if kind == "lfsr":
        seeds = derive_lfsr_seeds(base_seeds, channel_count, width)
        return lfsr_uniform_windows(seeds, length, width, offset=offset)
    if kind == "sobol":
        offsets = derive_sobol_offsets(base_seeds, channel_count)
        indices = offsets[:, :, None] + (
            offset + np.arange(length, dtype=np.int64)
        )
        return van_der_corput(indices, width)
    if kind == "chaotic":
        if offset != 0:
            raise ConfigurationError(
                "chaotic streams cannot be resumed by offset; carry the "
                "orbit state instead"
            )
        intensities = derive_chaotic_intensities(base_seeds, channel_count)
        warmups = np.asarray(
            [chaotic_warmup(c) for c in range(channel_count)], dtype=np.int64
        )
        return chaotic_orbit(intensities, warmups[None, :], length)
    raise ConfigurationError(f"unknown SNG kind {kind!r}")


def _optical_pass(
    circuit: "OpticalStochasticCircuit",
    data_bits: "np.ndarray[Any, Any]",
    coeff_bits: "np.ndarray[Any, Any]",
    noise_a: Optional["np.ndarray[Any, Any]"],
    kernel: str = "numpy",
) -> Tuple[
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
]:
    """Steps 3-4 of the pipeline for one ``(B, C, L)`` bit-tensor tile.

    Returns ``(powers, output_bits, ideal_bits, levels)``; shared by the
    one-shot batch evaluation and the chunked streaming runtime so the
    two stay bit-for-bit identical per tile.  Delegates to the pluggable
    compute-kernel layer (:mod:`repro.simulation.kernels`), which also
    memoizes the link budget / Eq. 6 table / threshold receiver per
    circuit fingerprint instead of rebuilding them per call.
    """
    return optical_pass(circuit, data_bits, coeff_bits, noise_a, kernel=kernel)


def _generate_streams(
    sng_kind: str,
    kernel: str,
    xs: "np.ndarray[Any, Any]",
    coefficients: "np.ndarray[Any, Any]",
    data_seeds: "np.ndarray[Any, Any]",
    coeff_seeds: "np.ndarray[Any, Any]",
    length: int,
    sng_width: int,
) -> Tuple[str, "np.ndarray[Any, Any]", "np.ndarray[Any, Any]"]:
    """Data/coefficient streams for one batch: ``(form, data, coeff)``.

    ``form`` is ``"bits"`` (``(B, C, L)`` uint8 tensors, the numpy
    kernel's layout) or ``"words"`` (``(B, C, L // 64)`` packed uint64,
    the packed kernels').  The packed kernels generate every randomizer
    in word form directly: LFSR and Sobol comparator streams come off
    their cached packed cycles, chaotic streams are packed blockwise
    from the carried orbit — never materializing the ``(B, C, L)``
    float64 uniforms — and the counter randomizer's deterministic
    matrix is packed once per distinct stream.  Only the fallback cases
    (registers/widths beyond the cycle-table caps) are generated
    unpacked and packed afterwards.  Either way the resulting streams
    are bit-for-bit the comparator decisions of the numpy layout.
    """
    batch = xs.size
    order = coefficients.size - 1
    channel_count = order + 1
    if sng_kind == "counter":
        data_matrix = exact_bit_matrix(xs, length)
        coeff_matrix = exact_bit_matrix(coefficients, length)
        if kernel == "numpy":
            return (
                "bits",
                np.broadcast_to(
                    data_matrix[:, None, :], (batch, order, length)
                ),
                np.broadcast_to(
                    coeff_matrix[None, :, :], (batch, channel_count, length)
                ),
            )
        words = (length + 63) // 64
        return (
            "words",
            np.broadcast_to(
                pack_bits(data_matrix)[:, None, :], (batch, order, words)
            ),
            np.broadcast_to(
                pack_bits(coeff_matrix)[None, :, :],
                (batch, channel_count, words),
            ),
        )
    if kernel != "numpy" and sng_kind == "lfsr":
        data_words = packed_lfsr_comparator_bits(
            derive_lfsr_seeds(data_seeds, order, sng_width),
            xs[:, None],
            length,
            sng_width,
        )
        coeff_words = packed_lfsr_comparator_bits(
            derive_lfsr_seeds(coeff_seeds, channel_count, sng_width),
            coefficients[None, :],
            length,
            sng_width,
        )
        if data_words is not None and coeff_words is not None:
            return "words", data_words, coeff_words
    if kernel != "numpy" and sng_kind == "sobol":
        data_words = packed_sobol_comparator_bits(
            derive_sobol_offsets(data_seeds, order),
            xs[:, None],
            length,
            sng_width,
        )
        coeff_words = packed_sobol_comparator_bits(
            derive_sobol_offsets(coeff_seeds, channel_count),
            coefficients[None, :],
            length,
            sng_width,
        )
        if data_words is not None and coeff_words is not None:
            return "words", data_words, coeff_words
    if kernel != "numpy" and sng_kind == "chaotic":
        data_source = PackedChaoticSource(data_seeds, xs[:, None], order)
        coeff_source = PackedChaoticSource(
            coeff_seeds, coefficients[None, :], channel_count
        )
        return (
            "words",
            data_source.take(0, length),
            coeff_source.take(0, length),
        )
    data_u = _batch_uniforms(sng_kind, data_seeds, order, length, sng_width)
    coeff_u = _batch_uniforms(
        sng_kind, coeff_seeds, channel_count, length, sng_width
    )
    data_bits = (data_u < xs[:, None, None]).astype(np.uint8)
    coeff_bits = (coeff_u < coefficients[None, :, None]).astype(np.uint8)
    if kernel == "numpy":
        return "bits", data_bits, coeff_bits
    return "words", pack_bits(data_bits), pack_bits(coeff_bits)


def simulate_batch(
    circuit: "OpticalStochasticCircuit",
    xs: Any,
    length: int = 1024,
    rng: Optional[np.random.Generator] = None,
    noisy: bool = True,
    sng_kind: str = "lfsr",
    base_seed: Optional[int] = None,
    sng_width: int = 16,
    schedule: Optional[SeedSchedule] = None,
    kernel: str = "numpy",
    fault: Optional[FaultSpec] = None,
) -> BatchEvaluation:
    """Run the optical circuit on every input in *xs* in one array pass.

    Parameters
    ----------
    circuit:
        An :class:`repro.core.circuit.OpticalStochasticCircuit`.
    xs:
        Input values in ``[0, 1]``; one evaluation row each.
    length:
        Stream length (clock count) per evaluation.
    rng:
        Random generator for the per-row SNG seeds and the receiver
        noise (a default seeded generator is created when omitted).
    noisy:
        When False the receiver slices noiselessly — isolating the
        stochastic-computing error from the transmission error.
    sng_kind:
        Randomizer family: ``"lfsr"`` (default), ``"counter"``,
        ``"sobol"`` or ``"chaotic"``.
    base_seed:
        Fix the SNG seed space instead of deriving per-row seeds from
        *rng* — every row then reuses the same randomizer streams
        (the pre-engine behaviour, useful for exact reproducibility).
    sng_width:
        LFSR register width / comparator resolution in bits.
    schedule:
        Explicit per-row :class:`SeedSchedule` (from
        :func:`derive_seed_schedule`).  When given, *rng* and
        *base_seed* are ignored: SNG seeds come from the schedule and
        each row's receiver noise from its private seeded generator —
        the relocatable protocol the sharded/chunked runtime relies on.
    kernel:
        Compute kernel (:data:`repro.simulation.kernels.KERNELS`):
        ``"numpy"`` (reference, default), ``"packed"`` (dependency-free
        uint64 bit-plane engine) or ``"numba"`` (packed with a JIT word
        loop; requires the optional numba package).  A pure wall-clock/
        memory lever: every kernel returns bit-for-bit identical
        results.
    fault:
        Optional :class:`~repro.simulation.faultmodel.FaultSpec` fault
        scenario.  A stuck MZI pins its data channel before the optical
        pass; channel faults (decay erasure, flips/drift, the
        desynchronization shift) transform the observed output stream —
        seeded from the schedule's per-row ``noise_seeds`` so the
        realization is bit-exact across kernels, workers, chunk sizes
        and transports.  Stochastic fault components therefore need a
        *schedule* or a fixed *base_seed*.
    """
    kernel = resolve_kernel(kernel)
    xs = _validate_batch_inputs(
        circuit, xs, length, sng_kind, base_seed, sng_width
    )
    params = circuit.params
    order = params.order
    batch = xs.size
    coefficients = np.asarray(circuit.polynomial.coefficients, dtype=float)
    noise_sigma = params.detector.noise_current_a
    if fault is not None:
        if not isinstance(fault, FaultSpec):
            raise ConfigurationError(
                f"fault must be a FaultSpec, got {fault!r}"
            )
        fault.validate_against_order(order)

    noise_a: Optional["np.ndarray[Any, Any]"] = (
        np.empty((batch, length), dtype=float) if noisy else None
    )
    if schedule is not None:
        if schedule.batch_size != batch:
            raise ConfigurationError(
                f"schedule covers {schedule.batch_size} rows but xs has "
                f"{batch}"
            )
        data_seeds = schedule.data_seeds
        coeff_seeds = schedule.coeff_seeds
        if noisy:
            assert noise_a is not None
            for row in range(batch):
                noise_a[row] = schedule.row_noise_rng(row).normal(
                    0.0, noise_sigma, length
                )
    else:
        # Per-row rng protocol, interleaved exactly like a scalar loop
        # would consume the generator: (data seed, coefficient seed,
        # noise block) per evaluation.  Keeping this order is what makes
        # the batched and per-evaluation paths bit-for-bit identical
        # under a shared rng.
        rng = rng or np.random.default_rng(_FALLBACK_RNG_SEED)
        seeded = sng_kind != "counter"
        data_seeds = np.empty(batch, dtype=np.int64)
        coeff_seeds = np.empty(batch, dtype=np.int64)
        for row in range(batch):
            if base_seed is None and seeded:
                data_seeds[row], coeff_seeds[row] = _derive_base_seeds(rng)
            if noisy:
                assert noise_a is not None
                noise_a[row] = rng.normal(0.0, noise_sigma, length)
        if base_seed is not None or not seeded:
            fixed = (
                int(base_seed) if base_seed is not None else _DEFAULT_FIXED_SEED
            )
            data_seeds[:] = fixed
            coeff_seeds[:] = fixed + COEFF_SEED_STRIDE

    # 1-2. randomizers: data streams for the MZIs, coefficient streams
    # for the MRRs — (B, channels, L) bit tensors for the numpy kernel,
    # packed (B, channels, L // 64) uint64 words for the packed ones.
    form, data_streams, coeff_streams = _generate_streams(
        sng_kind,
        kernel,
        xs,
        coefficients,
        data_seeds,
        coeff_seeds,
        length,
        sng_width,
    )
    if fault is not None and fault.stuck_channel is not None:
        # Pinned *before* the optical pass: a stuck MZI changes the
        # select level, hence the faulty circuit's powers and ideal
        # decisions too.  (The generators may return broadcast views —
        # the pinning helpers copy.)
        if form == "words":
            data_streams = pin_stuck_words(data_streams, fault, length)
        else:
            data_streams = pin_stuck_bits(data_streams, fault)

    # 3-4. per-clock optics + receiver, shared with the chunked runtime.
    if form == "words":
        powers, output_bits, ideal_bits, levels = packed_optical_pass(
            circuit, data_streams, coeff_streams, noise_a, length, kernel=kernel
        )
    else:
        powers, output_bits, ideal_bits, levels = _optical_pass(
            circuit, data_streams, coeff_streams, noise_a, kernel=kernel
        )

    if fault is not None and fault.has_stream_faults:
        if schedule is not None:
            fault_seeds = schedule.noise_seeds
        elif not fault.needs_seeds:
            # Stuck/shift faults are deterministic; any seed column works.
            fault_seeds = np.zeros(batch, dtype=np.int64)
        elif base_seed is not None:
            # The deterministic schedule of this base_seed — exactly the
            # seeds run_batch would thread through, so the bare call and
            # the runtime agree on the realization.
            fault_seeds = derive_seed_schedule(
                batch, sng_kind=sng_kind, base_seed=base_seed
            ).noise_seeds
        else:
            raise ConfigurationError(
                "stochastic fault injection needs relocatable per-row "
                "seeds: pass a SeedSchedule or a fixed base_seed "
                "(run_batch and the Evaluator session derive one "
                "automatically)"
            )
        channel = PackedFaultChannel(fault, fault_seeds, length)
        output_bits = channel.apply_bits(output_bits, 0)

    values = output_bits.mean(axis=1)
    # Vectorized de Casteljau is elementwise: identical floats to calling
    # circuit.expected_value(x) per row.
    expected = np.asarray(circuit.polynomial(xs), dtype=float)
    return BatchEvaluation(
        xs=xs,
        values=values,
        expected=expected,
        stream_length=int(length),
        received_power_mw=powers,
        output_bits=output_bits,
        ideal_bits=ideal_bits,
        select_levels=levels,
    )


def _validate_batch_inputs(
    circuit: Any,
    xs: Any,
    length: int,
    sng_kind: str,
    base_seed: Optional[int],
    sng_width: int,
) -> "np.ndarray[Any, Any]":
    """Shared entry validation of the one-shot and runtime batch paths."""
    from ..core.circuit import OpticalStochasticCircuit

    if not isinstance(circuit, OpticalStochasticCircuit):
        raise ConfigurationError(
            "circuit must be an OpticalStochasticCircuit"
        )
    xs = np.atleast_1d(np.asarray(xs, dtype=float))
    if xs.ndim != 1 or xs.size == 0:
        raise ConfigurationError("xs must be a non-empty 1-D array")
    if not np.all((xs >= 0.0) & (xs <= 1.0)):  # also rejects NaN
        raise ConfigurationError("x must be in [0, 1]")
    if length <= 0:
        raise ConfigurationError(f"length must be positive, got {length!r}")
    if sng_kind not in SNG_KINDS:
        raise ConfigurationError(
            f"unknown SNG kind {sng_kind!r}; expected one of {SNG_KINDS}"
        )
    _validate_base_seed(base_seed)
    _validate_sng_width(sng_kind, sng_width)
    return xs

"""Pluggable compute kernels for the bit-level evaluation engine.

The paper's premise is that stochastic computing trades precision for
ultra-cheap single-gate bitwise logic on long bit streams.  The numpy
engine of PR 1 vectorized the pipeline but still spends one *byte* (or
one float64) of memory traffic per stream *bit*; this module adds a
**kernel** dimension — orthogonal to the process/thread *pool* backend
of :mod:`repro.simulation.runtime` — with three implementations behind
the unchanged ``simulate_batch`` signature:

``"numpy"``
    The reference engine: ``(B, C, L)`` uint8 bit tensors, one fancy
    index into the Eq. 6 pattern table per clock.  Always available.
``"packed"``
    Dependency-free bit-plane engine: data/coefficient bits are packed
    64 clocks per uint64 word (``(B, C, L//64)``), the adder level is a
    carry-save bit-sliced sum across channels, and the receiver decision
    is resolved through precomputed per-``(pattern, level)`` flat tables
    — so the bit tensors shrink 8× and the hot noiseless path runs on
    words instead of bytes.  Statistics-only consumers (the chunked
    streaming runtime) accumulate ones/bit-error counts straight from
    packed words via popcount (:func:`popcount` —
    ``np.bitwise_count`` when the numpy build has it, a 16-bit LUT
    otherwise).
``"numba"``
    The packed engine with its per-word key-assembly loop JIT-compiled
    by numba.  Optional: gated on import availability —
    :func:`resolve_kernel` raises a clear
    :class:`~repro.errors.ConfigurationError` when numba is absent, and
    the test suite skips (not fails) the numba legs.

Every kernel is **bit-for-bit identical** to ``"numpy"`` for all four
SNG kinds, noisy and noiseless (enforced by ``tests/test_kernels.py``
and the ``bench_batched.py --kernels`` exit gate): the packed pipeline
re-derives exactly the same comparator decisions, adder levels and
receiver thresholds, only in a different data layout.  Choosing a
kernel is therefore a pure wall-clock/memory lever, like the pool
backend and the chunk size.

The module also owns the memoized per-circuit pass context
(:func:`pass_context`): the link budget, Eq. 6 table and threshold
receiver are built once per circuit fingerprint instead of once per
``_optical_pass`` call, which previously repeated that work for every
tile of a chunked stream.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, SimulationError
from ..stochastic.lfsr import _TABLE_MAX_WIDTH, _cycle_tables, _resolve_taps
from ..stochastic.sng import (
    chaotic_orbit,
    chaotic_warmup,
    derive_chaotic_intensities,
    van_der_corput,
)
from .receiver import OpticalReceiver

__all__ = [
    "KERNELS",
    "available_kernels",
    "kernel_capabilities",
    "numba_available",
    "resolve_kernel",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "pass_context",
    "clear_pass_context_cache",
    "optical_pass",
    "packed_optical_pass",
    "PackedLfsrSource",
    "PackedSobolSource",
    "PackedChaoticSource",
    "packed_lfsr_comparator_bits",
    "packed_sobol_comparator_bits",
    "packed_tile_statistics",
]

KERNELS: Tuple[str, ...] = ("numpy", "packed", "numba")
"""Compute-kernel implementations behind ``simulate_batch``."""

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_WORD_BITS = 64


# -- kernel registry -----------------------------------------------------------


_NUMBA_STATE: Dict[str, object] = {"checked": False, "available": False}
_NUMBA_LOCK = threading.Lock()


def numba_available() -> bool:
    """Whether the optional numba JIT dependency can be imported.

    The import is attempted once and memoized — numba's first import is
    expensive, and callers probe availability on every
    :class:`~repro.simulation.runtime.RuntimeConfig` construction.
    Thread backends probe concurrently, so the check-and-memoize is
    double-checked under the module lock.
    """
    if _NUMBA_STATE["checked"]:
        return bool(_NUMBA_STATE["available"])
    with _NUMBA_LOCK:
        if not _NUMBA_STATE["checked"]:
            try:
                import numba  # noqa: F401

                _NUMBA_STATE["available"] = True
            except ImportError:
                _NUMBA_STATE["available"] = False
            _NUMBA_STATE["checked"] = True
    return bool(_NUMBA_STATE["available"])


def available_kernels() -> Tuple[str, ...]:
    """The kernels usable in this environment, in registry order."""
    return tuple(
        name
        for name in KERNELS
        if name != "numba" or numba_available()
    )


def resolve_kernel(kernel: str) -> str:
    """Validate a kernel name, failing fast on unknown/unavailable ones.

    Unknown names raise whatever the caller is — a
    :class:`~repro.simulation.runtime.RuntimeConfig` constructor, the
    engine entry points, the CLI — so a typo can never silently fall
    back to the reference kernel.  ``"numba"`` additionally requires the
    optional dependency to be importable.
    """
    if kernel not in KERNELS:
        raise ConfigurationError(
            f"unknown kernel {kernel!r}; expected one of {KERNELS}"
        )
    if kernel == "numba" and not numba_available():
        raise ConfigurationError(
            "kernel 'numba' requires the optional numba package, which is "
            "not installed; use kernel='packed' for the dependency-free "
            "bit-plane engine"
        )
    return kernel


def kernel_capabilities() -> Dict[str, Dict[str, Any]]:
    """Capability table of every kernel (for docs, CLIs and probing).

    Keys mirror :data:`KERNELS`; each entry records availability, the
    extra requirement (if any), the relative per-bit memory footprint of
    the bit tensors, and a one-line description of when the kernel wins.
    """
    return {
        "numpy": {
            "available": True,
            "requires": None,
            "bit_tensor_bytes_per_bit": 1.0,
            "description": (
                "reference engine: uint8 bit tensors, always available; "
                "fastest for tiny batches where packing overhead dominates"
            ),
        },
        "packed": {
            "available": True,
            "requires": None,
            "bit_tensor_bytes_per_bit": 1.0 / 8.0,
            "description": (
                "dependency-free uint64 bit-plane engine: 8x smaller bit "
                "tensors; wins on long noiseless streams (the LFSR hot "
                "path runs on words, not bytes)"
            ),
        },
        "numba": {
            "available": numba_available(),
            "requires": "numba",
            "bit_tensor_bytes_per_bit": 1.0 / 8.0,
            "description": (
                "the packed engine with the per-word key-assembly loop "
                "JIT-compiled; requires the optional numba package"
            ),
        },
    }


# -- packing primitives --------------------------------------------------------


def _word_count(length: int) -> int:
    return (int(length) + _WORD_BITS - 1) // _WORD_BITS


def pack_bits(bits: "np.ndarray[Any, Any]") -> "np.ndarray[Any, Any]":
    """Pack a 0/1 bit tensor along its last axis, 64 clocks per word.

    ``(..., L)`` uint8 in, ``(..., ceil(L / 64))`` uint64 out; bit ``j``
    of word ``w`` is clock ``64 * w + j`` (little-endian bit order), and
    tail bits past ``L`` are zero.  :func:`unpack_bits` is the exact
    inverse.
    """
    bits = np.ascontiguousarray(bits, dtype=np.uint8)
    if bits.ndim == 0:
        raise ConfigurationError("bits must have at least one axis")
    length = bits.shape[-1]
    words = _word_count(length)
    packed = np.packbits(bits, axis=-1, bitorder="little")
    padded = np.zeros(bits.shape[:-1] + (words * 8,), dtype=np.uint8)
    padded[..., : packed.shape[-1]] = packed
    out = padded.view(np.uint64)
    if sys.byteorder != "little":  # pragma: no cover - exotic platforms
        out = out.byteswap()
    return out


def unpack_bits(
    words: "np.ndarray[Any, Any]", length: int
) -> "np.ndarray[Any, Any]":
    """Unpack uint64 words back to a ``(..., length)`` uint8 bit tensor."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if sys.byteorder != "little":  # pragma: no cover - exotic platforms
        words = words.byteswap()
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, axis=-1, bitorder="little")
    return bits[..., : int(length)]


_POPCOUNT_LUT: Optional["np.ndarray[Any, Any]"] = None
_POPCOUNT_LOCK = threading.Lock()


def _popcount_lut() -> "np.ndarray[Any, Any]":
    """Lazily built 16-bit population-count table (64 KiB, built once).

    Double-checked under the module lock: thread-backend shards hit the
    fallback path concurrently on older numpy, and an unguarded lazy
    init would build (and briefly publish) the table per racing thread.
    """
    global _POPCOUNT_LUT
    lut = _POPCOUNT_LUT
    if lut is not None:
        return lut
    with _POPCOUNT_LOCK:
        lut = _POPCOUNT_LUT
        if lut is None:
            values = np.arange(1 << 16, dtype=np.uint16)
            counts = np.zeros(1 << 16, dtype=np.uint8)
            for shift in range(16):
                counts += ((values >> shift) & 1).astype(np.uint8)
            lut = counts
            _POPCOUNT_LUT = lut
    return lut


def popcount(
    words: "np.ndarray[Any, Any]", use_lut: bool = False
) -> "np.ndarray[Any, Any]":
    """Per-word population count of a uint64 tensor, as int64.

    Uses ``np.bitwise_count`` when the numpy build provides it; older
    numpy falls back to a 16-bit lookup table over the four half-words
    (*use_lut* forces the fallback so both paths stay testable on any
    numpy).
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT and not use_lut:
        return np.bitwise_count(words).astype(np.int64)
    lut = _popcount_lut()
    if sys.byteorder != "little":  # pragma: no cover - exotic platforms
        words = words.byteswap()
    halves = lut[words.view(np.uint16)].reshape(words.shape + (4,))
    return halves.sum(axis=-1, dtype=np.int64)


# -- memoized per-circuit pass context -----------------------------------------


class CircuitPassContext:
    """Per-circuit precomputation shared by every kernel.

    Holds the link budget, the Eq. 6 received-power table and the
    calibrated threshold receiver — previously rebuilt on every
    ``_optical_pass`` call, i.e. once per tile of a chunked stream —
    plus the packed kernels' flat per-``(pattern, level)`` lookup
    tables, built lazily on first packed use.

    The flat tables index on ``key = (level << channel_count) |
    pattern``: ``flat_powers[key]`` / ``flat_currents[key]`` are copies
    of the same float64 values the numpy kernel gathers (float copies
    are bit-exact), ``flat_decisions[key]`` is the noiseless threshold
    decision, and ``flat_ideal[key]`` the multiplexer's selected
    coefficient bit.
    """

    def __init__(self, circuit: Any) -> None:
        self.fingerprint = circuit.fingerprint()
        self.order = int(circuit.params.order)
        self.channel_count = self.order + 1
        budget = circuit.link_budget()
        if not budget.bands_separated:
            raise SimulationError(
                "link budget bands overlap: the circuit cannot distinguish "
                "'0' from '1' at this design point"
            )
        self.table = circuit.model.received_power_table_mw()
        self.receiver = OpticalReceiver.from_power_bands(
            circuit.params.detector,
            zero_level_mw=budget.zero_band_mw[1],
            one_level_mw=budget.one_band_mw[0],
        )
        self._flat: Optional[Dict[str, Any]] = None

    @property
    def level_bits(self) -> int:
        """Bit planes needed for the adder level (values ``0..order``)."""
        return max(1, int(self.order).bit_length())

    def _flat_tables(self) -> Dict[str, Any]:
        """The packed kernels' flat lookup tables (built once, lazily)."""
        flat = self._flat
        if flat is None:
            order, channels = self.order, self.channel_count
            # flat index: key = (level << channels) | pattern.  The
            # (P, levels) table transposed row-major is exactly that
            # enumeration, because P == 2**channels.
            powers = np.ascontiguousarray(self.table.T).reshape(-1)
            currents = np.asarray(
                self.receiver.detector.photocurrent_a(powers), dtype=float
            )
            decisions = (currents > self.receiver.threshold_a).astype(np.uint8)
            levels = np.repeat(
                np.arange(order + 1, dtype=np.int64), 1 << channels
            )
            patterns = np.tile(
                np.arange(1 << channels, dtype=np.int64), order + 1
            )
            ideal = ((patterns >> levels) & 1).astype(np.uint8)
            key_bits = channels + self.level_bits
            key_dtype: Any
            if key_bits <= 8:
                key_dtype = np.uint8
            elif key_bits <= 16:
                key_dtype = np.uint16
            else:
                key_dtype = np.uint32
            flat = {
                "powers": powers,
                "currents": currents,
                "decisions": decisions,
                "ideal": ideal,
                "key_dtype": key_dtype,
                # With separated bands and a midpoint threshold the
                # noiseless decision normally *is* the multiplexer bit;
                # verified numerically here so the word-level statistics
                # fast path never has to assume it.
                "decision_is_ideal": bool(np.array_equal(decisions, ideal)),
            }
            self._flat = flat
        return flat


_CONTEXT_CACHE: "OrderedDict[Tuple[Any, Any], CircuitPassContext]" = (
    OrderedDict()
)
_CONTEXT_CACHE_MAX = 8
_CONTEXT_LOCK = threading.Lock()


def pass_context(circuit: Any) -> CircuitPassContext:
    """The memoized :class:`CircuitPassContext` for *circuit*.

    Keyed on the circuit's concrete type plus ``circuit.fingerprint()``
    (parameters + Bernstein program, the same digest that keys the
    evaluation cache), LRU-bounded and thread-safe — thread-backend
    shard workers and the serving executor hit this cache concurrently.
    The type in the key keeps a subclass that overrides
    ``link_budget()``/``model`` from reusing a base circuit's context;
    both are assumed immutable per instance, as everywhere else in the
    engine.  Failed builds — overlapping link-budget bands — are never
    cached, so the :class:`~repro.errors.SimulationError` is raised on
    every attempt, exactly like the unmemoized path.
    """
    key = (type(circuit), circuit.fingerprint())
    with _CONTEXT_LOCK:
        context = _CONTEXT_CACHE.get(key)
        if context is not None:
            _CONTEXT_CACHE.move_to_end(key)
            return context
    context = CircuitPassContext(circuit)  # built unlocked: may raise
    with _CONTEXT_LOCK:
        existing = _CONTEXT_CACHE.get(key)
        if existing is not None:
            _CONTEXT_CACHE.move_to_end(key)
            return existing
        _CONTEXT_CACHE[key] = context
        while len(_CONTEXT_CACHE) > _CONTEXT_CACHE_MAX:
            _CONTEXT_CACHE.popitem(last=False)
    return context


def clear_pass_context_cache() -> None:
    """Drop every memoized pass context (testing hook)."""
    with _CONTEXT_LOCK:
        _CONTEXT_CACHE.clear()


# -- the numpy reference kernel ------------------------------------------------


def _pattern_index(
    coeff_bits: "np.ndarray[Any, Any]",
) -> "np.ndarray[Any, Any]":
    """Coefficient pattern per clock: ``(B, L)`` int64 from ``(B, C, L)``.

    Bit ``c`` of the result is channel ``c``'s transmitted bit.  The
    accumulation runs in the narrowest unsigned dtype that holds the
    pattern (uint8 up to 8 channels, uint16 up to 16) and widens to
    int64 once at the end — replacing the old per-channel ``(B, L)``
    int64 shift/or temporaries with byte-wide ones, ~4x faster at the
    benchmark shape.  Pure integer bit-ops: exact in any order.
    """
    channel_count = coeff_bits.shape[1]
    dtype: Any
    if channel_count <= 8:
        dtype = np.uint8
    elif channel_count <= 16:
        dtype = np.uint16
    else:
        dtype = np.int64
    pattern = np.zeros(
        (coeff_bits.shape[0], coeff_bits.shape[2]), dtype=dtype
    )
    for channel in range(channel_count):
        plane = coeff_bits[:, channel, :]
        if plane.dtype != dtype:
            plane = plane.astype(dtype)
        pattern |= plane << channel
    return pattern.astype(np.int64)


def _numpy_optical_pass(
    context: CircuitPassContext,
    data_bits: "np.ndarray[Any, Any]",
    coeff_bits: "np.ndarray[Any, Any]",
    noise_a: Optional["np.ndarray[Any, Any]"],
) -> Tuple[
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
]:
    """The reference per-clock optics + receiver pass on byte tensors."""
    levels = data_bits.sum(axis=1, dtype=np.int64)
    pattern_index = _pattern_index(coeff_bits)
    powers = context.table[pattern_index, levels]
    output_bits, _ = context.receiver.decide_batch(powers, noise_a=noise_a)
    # Reference: the bits the ideal (electronic) multiplexer would pick.
    ideal_bits = np.take_along_axis(coeff_bits, levels[:, None, :], axis=1)[
        :, 0, :
    ]
    return powers, output_bits, np.ascontiguousarray(ideal_bits), levels


# -- the packed bit-plane kernel -----------------------------------------------


def _bit_plane_sum(
    words: "np.ndarray[Any, Any]",
) -> List["np.ndarray[Any, Any]"]:
    """Bit-sliced binary sum across the channel axis of packed words.

    ``(B, C, W)`` uint64 in; returns the little-endian bit planes of the
    per-clock ones-count (the adder ``level``) as a list of ``(B, W)``
    word arrays — a ripple adder chain of word-wide half adders.  The
    list may carry trailing all-zero planes (one per channel in the
    worst case); callers truncate to the planes the level range needs.
    """
    planes: List["np.ndarray[Any, Any]"] = []
    for channel in range(words.shape[1]):
        carry = words[:, channel, :]
        for index, plane in enumerate(planes):
            planes[index], carry = plane ^ carry, plane & carry
        planes.append(carry)
    return planes


def _assemble_keys(
    planes: List["np.ndarray[Any, Any]"], length: int, dtype: Any
) -> "np.ndarray[Any, Any]":
    """Per-clock lookup keys from bit planes: ``(B, length)`` of *dtype*.

    Plane ``i`` contributes bit ``i`` of the key.  This is the packed
    kernels' only per-clock byte materialization.
    """
    keys = np.zeros((planes[0].shape[0], int(length)), dtype=dtype)
    for index, plane in enumerate(planes):
        bits = unpack_bits(plane, length)
        keys |= bits.astype(dtype) << dtype(index)
    return keys


def _numba_assemble_keys(
    planes: List["np.ndarray[Any, Any]"], length: int, dtype: Any
) -> "np.ndarray[Any, Any]":
    """The numba kernel's JIT key assembly (same contract as numpy's)."""
    jit = _numba_key_loop()
    stacked = np.ascontiguousarray(np.stack(planes, axis=0))
    out = np.zeros((stacked.shape[1], int(length)), dtype=np.int64)
    jit(stacked, int(length), out)
    return out.astype(dtype)


_NUMBA_KEY_LOOP: Optional[Callable[..., Any]] = None


def _numba_key_loop() -> Callable[..., Any]:
    """Compile (once) the per-word key-assembly loop with numba.

    Guarded by the module numba lock: concurrent thread-backend shards
    must not race the one-time JIT compile and rebind.
    """
    global _NUMBA_KEY_LOOP
    loop = _NUMBA_KEY_LOOP
    if loop is not None:
        return loop
    with _NUMBA_LOCK:
        loop = _NUMBA_KEY_LOOP
        if loop is None:
            import numba

            @numba.njit(cache=False)
            def key_loop(  # pragma: no cover - needs numba
                planes: "np.ndarray[Any, Any]",
                length: int,
                out: "np.ndarray[Any, Any]",
            ) -> None:
                plane_count, batch, words = planes.shape
                for b in range(batch):
                    for w in range(words):
                        base = w * 64
                        limit = min(64, length - base)
                        for j in range(limit):
                            key = 0
                            for p in range(plane_count):
                                key |= ((planes[p, b, w] >> j) & 1) << p
                            out[b, base + j] = key

            loop = key_loop
            _NUMBA_KEY_LOOP = loop
    return loop


def _key_planes(
    context: CircuitPassContext,
    data_words: "np.ndarray[Any, Any]",
    coeff_words: "np.ndarray[Any, Any]",
) -> List["np.ndarray[Any, Any]"]:
    """Bit planes of the flat lookup key: coefficient bits then level."""
    planes = [
        coeff_words[:, channel, :]
        for channel in range(context.channel_count)
    ]
    level_planes = _bit_plane_sum(data_words)
    planes.extend(level_planes[: context.level_bits])
    return planes


def _packed_keys(
    context: CircuitPassContext,
    data_words: "np.ndarray[Any, Any]",
    coeff_words: "np.ndarray[Any, Any]",
    length: int,
    kernel: str,
) -> "np.ndarray[Any, Any]":
    flat = context._flat_tables()
    planes = _key_planes(context, data_words, coeff_words)
    if kernel == "numba":
        return _numba_assemble_keys(planes, length, flat["key_dtype"])
    return _assemble_keys(planes, length, flat["key_dtype"])


def packed_optical_pass(
    circuit: Any,
    data_words: "np.ndarray[Any, Any]",
    coeff_words: "np.ndarray[Any, Any]",
    noise_a: Optional["np.ndarray[Any, Any]"],
    length: int,
    kernel: str = "packed",
) -> Tuple[
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
]:
    """The packed kernels' optics + receiver pass, full per-clock output.

    Takes ``(B, C, W)`` packed word tensors (see :func:`pack_bits`) and
    returns the same ``(powers, output_bits, ideal_bits, levels)`` tuple
    as the numpy pass, bit-for-bit: per-clock keys are assembled from
    the coefficient and bit-sliced level planes, and every observable is
    a flat-table gather of exactly the values the numpy kernel computes.
    """
    context = pass_context(circuit)
    flat = context._flat_tables()
    keys = _packed_keys(context, data_words, coeff_words, length, kernel)
    powers = flat["powers"].take(keys)
    levels = (keys >> np.uint8(context.channel_count)).astype(np.int64)
    if noise_a is None:
        output_bits = flat["decisions"].take(keys)
    else:
        output_bits = _noisy_decisions(context, flat, keys, noise_a)
    ideal_bits = flat["ideal"].take(keys)
    return powers, output_bits, ideal_bits, levels


def _noisy_decisions(
    context: CircuitPassContext,
    flat: Dict[str, Any],
    keys: "np.ndarray[Any, Any]",
    noise_a: "np.ndarray[Any, Any]",
) -> "np.ndarray[Any, Any]":
    """Receiver decisions under pre-drawn noise, from per-clock keys.

    The single definition of the packed noisy decision rule — shared by
    the full-output pass and the chunked statistics accumulator so the
    two can never diverge.  Bit-for-bit the numpy kernel's
    ``decide_batch``: identical currents (flat-gathered photocurrents
    plus the same noise draw), identical strict ``>`` threshold.
    """
    noise = np.asarray(noise_a, dtype=float)
    if noise.shape != keys.shape:
        raise ConfigurationError(
            f"noise_a shape {noise.shape} must match powers shape "
            f"{keys.shape}"
        )
    currents = flat["currents"].take(keys) + noise
    return (currents > context.receiver.threshold_a).astype(np.uint8)


def _key_counts(
    keys: "np.ndarray[Any, Any]", size: int
) -> "np.ndarray[Any, Any]":
    """Per-row key occurrence counts: ``(B, size)`` int64, one bincount."""
    batch = keys.shape[0]
    offsets = np.arange(batch, dtype=np.int64)[:, None] * size
    return np.bincount(
        (keys.astype(np.int64) + offsets).reshape(-1),
        minlength=batch * size,
    ).reshape(batch, size)


def optical_pass(
    circuit: Any,
    data_bits: "np.ndarray[Any, Any]",
    coeff_bits: "np.ndarray[Any, Any]",
    noise_a: Optional["np.ndarray[Any, Any]"],
    kernel: str = "numpy",
) -> Tuple[
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
]:
    """Steps 3-4 of the pipeline for one ``(B, C, L)`` bit-tensor tile.

    Returns ``(powers, output_bits, ideal_bits, levels)``; shared by the
    one-shot batch evaluation and the chunked streaming runtime so the
    two stay bit-for-bit identical per tile — whatever the *kernel*.
    """
    kernel = resolve_kernel(kernel)
    context = pass_context(circuit)
    if kernel == "numpy":
        return _numpy_optical_pass(context, data_bits, coeff_bits, noise_a)
    length = data_bits.shape[-1]
    return packed_optical_pass(
        circuit,
        pack_bits(data_bits),
        pack_bits(coeff_bits),
        noise_a,
        length,
        kernel=kernel,
    )


# -- packed comparator-word generation -----------------------------------------


class _PackedCycleSource:
    """Shared machinery of the periodic packed comparator sources.

    A periodic uniform sequence compared against a fixed value yields
    the same ``period``-bit comparator sequence for every stream using
    the same value: the cycle uniforms are compared once per *unique*
    value and packed (tiled, so any 64-bit window is one unaligned
    two-word read), then :meth:`take` gathers each stream's words by
    bit offset — never materializing the ``(B, C, count)`` float64
    uniforms.  Subclasses provide the cycle, the per-stream start
    positions and ``_start_shift`` (how many cycle steps past the start
    position the stream's first clock sits).
    """

    _start_shift: int = 0

    def __init__(
        self,
        starts: "np.ndarray[Any, Any]",
        inverse: "np.ndarray[Any, Any]",
        packed_cycles: "np.ndarray[Any, Any]",
        period: int,
    ) -> None:
        self._starts = starts
        self._inverse = inverse
        self._packed_cycles = packed_cycles
        self._period = int(period)

    @staticmethod
    def _pack_value_cycles(
        uniform: "np.ndarray[Any, Any]", values: Any, shape: Any
    ) -> Tuple["np.ndarray[Any, Any]", "np.ndarray[Any, Any]"]:
        """``(inverse, packed_cycles)`` for the unique comparison values.

        One tiled packed bit array per unique comparison value: enough
        repeats of the period that a 64-bit window starting anywhere
        in [0, period) stays in-bounds, with periodic continuation
        automatic (two repeats except periods shorter than 64 bits).
        """
        values = np.broadcast_to(np.asarray(values, dtype=float), shape)
        unique_values, inverse = np.unique(values, return_inverse=True)
        inverse = inverse.reshape(shape)
        period = int(uniform.size)
        repeats = 1 + -(-(_WORD_BITS - 1) // period)
        cycle_bits = (uniform[None, :] < unique_values[:, None]).astype(
            np.uint8
        )
        return inverse, pack_bits(np.tile(cycle_bits, (1, repeats)))

    def take(self, offset: int, count: int) -> "np.ndarray[Any, Any]":
        """Packed words for stream clocks ``[offset, offset + count)``."""
        if offset < 0 or count <= 0:
            raise ConfigurationError(
                f"invalid window offset={offset!r} count={count!r}"
            )
        words = _word_count(count)
        positions = (
            self._starts[..., None].astype(np.int64)
            + self._start_shift
            + int(offset)
            + _WORD_BITS * np.arange(words, dtype=np.int64)
        ) % self._period
        word_index = positions >> 6
        shift = (positions & 63).astype(np.uint64)
        rows = self._inverse[..., None]
        lo = self._packed_cycles[rows, word_index]
        hi = self._packed_cycles[rows, word_index + 1]
        high_part = hi << ((np.uint64(_WORD_BITS) - shift) & np.uint64(63))
        out = (lo >> shift) | np.where(shift == 0, np.uint64(0), high_part)
        tail = count % _WORD_BITS
        if tail:
            out[..., -1] &= np.uint64((1 << tail) - 1)
        return out


class PackedLfsrSource(_PackedCycleSource):
    """Resumable packed comparator source over the cached LFSR cycle.

    A maximal-length LFSR stream is a periodic window of one canonical
    cycle (:class:`_PackedCycleSource`); the stream's first clock is the
    *successor* of the seed state, hence ``_start_shift = 1``.  The
    comparisons are the identical floats the unpacked path evaluates,
    so the packed words are bit-exact with
    ``pack_bits(lfsr_uniform_windows(...) < values[..., None])``.

    Build through :meth:`create`, which returns ``None`` when the fast
    path does not apply (register wider than the cycle-table cache, or
    seeds off the canonical orbit) — callers then fall back to
    compare-and-pack.
    """

    _start_shift: int = 1

    @classmethod
    def create(
        cls, seeds: Any, values: Any, width: int
    ) -> Optional["PackedLfsrSource"]:
        if width > _TABLE_MAX_WIDTH:
            return None
        taps = _resolve_taps(width, None)
        cycle, position, uniform = _cycle_tables(width, taps)
        if cycle.size == 0:
            return None
        seeds = np.asarray(seeds, dtype=np.int64)
        if np.any(seeds < 1) or np.any(seeds >= (1 << width)):
            raise ConfigurationError(f"seeds must be in [1, 2**{width} - 1]")
        starts = position[seeds]
        if np.any(starts < 0):
            return None
        inverse, packed_cycles = cls._pack_value_cycles(
            uniform, values, seeds.shape
        )
        return cls(starts, inverse, packed_cycles, int(cycle.size))


_SOBOL_CYCLE_CACHE: Dict[int, "np.ndarray[Any, Any]"] = {}
_SOBOL_CYCLE_LOCK = threading.Lock()
_SOBOL_CYCLE_MAX_WIDTH = _TABLE_MAX_WIDTH


def _sobol_cycle_uniforms(width: int) -> "np.ndarray[Any, Any]":
    """The full-period van der Corput cycle for *width* bits, memoized.

    ``van_der_corput(i, width)`` consumes only the low *width* bits of
    ``i``, so the sequence is exactly periodic with period
    ``2**width`` — the property that makes the Sobol comparator stream
    a :class:`_PackedCycleSource`.  The table is 8 MiB at the width cap
    and shared process-wide, like the LFSR cycle tables.
    """
    with _SOBOL_CYCLE_LOCK:
        cycle = _SOBOL_CYCLE_CACHE.get(int(width))
        if cycle is None:
            cycle = van_der_corput(
                np.arange(1 << int(width), dtype=np.int64), int(width)
            )
            cycle.setflags(write=False)
            _SOBOL_CYCLE_CACHE[int(width)] = cycle
    return cycle


class PackedSobolSource(_PackedCycleSource):
    """Resumable packed comparator source over the van der Corput cycle.

    The Sobol-like randomizer samples ``van_der_corput(offset + clock,
    width)``, which depends only on ``(offset + clock) mod 2**width`` —
    a periodic cycle, so the same pack-once / gather-by-offset machinery
    as :class:`PackedLfsrSource` applies with ``starts = offsets mod
    2**width``.  The cycle uniforms are the identical floats
    ``van_der_corput`` produces for any congruent index, so the packed
    words are bit-exact with ``pack_bits(van_der_corput(offsets[...,
    None] + arange(L), width) < values[..., None])``.

    :meth:`create` returns ``None`` when *width* exceeds the cycle
    cache cap (``2**width``-entry tables stop paying off) — callers
    then fall back to compare-and-pack.
    """

    @classmethod
    def create(
        cls, offsets: Any, values: Any, width: int
    ) -> Optional["PackedSobolSource"]:
        if width > _SOBOL_CYCLE_MAX_WIDTH:
            return None
        offsets = np.asarray(offsets, dtype=np.int64)
        if np.any(offsets < 0):
            raise ConfigurationError("sobol offsets must be >= 0")
        period = 1 << int(width)
        uniform = _sobol_cycle_uniforms(width)
        starts = offsets % period
        inverse, packed_cycles = cls._pack_value_cycles(
            uniform, values, offsets.shape
        )
        return cls(starts, inverse, packed_cycles, period)


_CHAOTIC_PACK_BLOCK = 4096
"""Clocks advanced per internal block of :class:`PackedChaoticSource`.

A multiple of 64 so block boundaries align with word boundaries; bounds
the float materialization at ``(B, C, block)`` instead of the full
stream length.
"""


class PackedChaoticSource:
    """Sequential packed comparator source over carried chaotic orbits.

    Chaotic logistic-map orbits have no periodic structure to cache, so
    unlike the cycle sources this one *computes* — but in fixed-size
    64-clock-aligned blocks: each block advances the raw orbit state
    with :func:`repro.stochastic.sng.chaotic_orbit` (the exact
    elementwise float sequence of the unpacked path), compares, and
    packs straight into the output words.  The ``(B, C, L)`` float64
    uniforms of a long stream are never materialized — peak extra
    memory is one ``(B, C, 4096)`` block.

    Like the unpacked chaotic cursor, resume is by carried state only:
    :meth:`take` windows must be issued in sequential stream order.
    """

    def __init__(
        self, base_seeds: Any, values: Any, channel_count: int
    ) -> None:
        seeds = np.atleast_1d(np.asarray(base_seeds, dtype=np.int64))
        self._state = derive_chaotic_intensities(seeds, int(channel_count))
        self._warmups = np.asarray(
            [chaotic_warmup(c) for c in range(int(channel_count))],
            dtype=np.int64,
        )[None, :]
        self._values = np.broadcast_to(
            np.asarray(values, dtype=float), self._state.shape
        )
        self._next_offset = 0

    @classmethod
    def create(
        cls, base_seeds: Any, values: Any, channel_count: int
    ) -> "PackedChaoticSource":
        """Factory mirroring the cycle sources' (never ``None``)."""
        return cls(base_seeds, values, channel_count)

    def take(self, offset: int, count: int) -> "np.ndarray[Any, Any]":
        """Packed words for stream clocks ``[offset, offset + count)``."""
        if offset < 0 or count <= 0:
            raise ConfigurationError(
                f"invalid window offset={offset!r} count={count!r}"
            )
        if offset != self._next_offset:
            raise ConfigurationError(
                "stateful streams resume sequentially: expected offset "
                f"{self._next_offset}, got {offset}"
            )
        out = np.empty(
            self._state.shape + (_word_count(count),), dtype=np.uint64
        )
        done = 0
        while done < count:
            block = min(_CHAOTIC_PACK_BLOCK, count - done)
            warmups = self._warmups if offset + done == 0 else 0
            uniforms, self._state = chaotic_orbit(
                self._state, warmups, block, return_state=True
            )
            bits = (uniforms < self._values[..., None]).astype(np.uint8)
            word = done // _WORD_BITS
            out[..., word : word + _word_count(block)] = pack_bits(bits)
            done += block
        self._next_offset = offset + count
        return out


def packed_lfsr_comparator_bits(
    seeds: "np.ndarray[Any, Any]",
    values: "np.ndarray[Any, Any]",
    length: int,
    width: int,
    offset: int = 0,
) -> Optional["np.ndarray[Any, Any]"]:
    """One-shot :class:`PackedLfsrSource` window (``None`` = fall back).

    Returns the ``(B, C, ceil(length / 64))`` uint64 words that
    ``pack_bits(lfsr_uniform_windows(seeds, length, width, offset=offset)
    < values[..., None])`` would produce, or ``None`` when the packed
    fast path does not apply.
    """
    source = PackedLfsrSource.create(seeds, values, width)
    if source is None:
        return None
    return source.take(offset, length)


def packed_sobol_comparator_bits(
    offsets: "np.ndarray[Any, Any]",
    values: "np.ndarray[Any, Any]",
    length: int,
    width: int,
    offset: int = 0,
) -> Optional["np.ndarray[Any, Any]"]:
    """One-shot :class:`PackedSobolSource` window (``None`` = fall back).

    Returns the ``(B, C, ceil(length / 64))`` uint64 words that
    ``pack_bits(van_der_corput(offsets[..., None] + offset +
    arange(length), width) < values[..., None])`` would produce, or
    ``None`` when the packed fast path does not apply.
    """
    source = PackedSobolSource.create(offsets, values, width)
    if source is None:
        return None
    return source.take(offset, length)


# -- packed statistics (chunked streaming) -------------------------------------


def _mux_words(
    coeff_words: "np.ndarray[Any, Any]",
    level_planes: List["np.ndarray[Any, Any]"],
    order: int,
) -> "np.ndarray[Any, Any]":
    """Word-level multiplexer: the selected coefficient bit per clock.

    ``out = OR_m (level == m) & coeff[m]`` with the level-match
    indicator built from the bit-sliced level planes — pure word ops, no
    per-clock bytes.  Tail bits stay zero because the packed coefficient
    words have zero tails.
    """
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    out = np.zeros(level_planes[0].shape, dtype=np.uint64)
    for level in range(order + 1):
        indicator = np.full(level_planes[0].shape, ones, dtype=np.uint64)
        for plane_index, plane in enumerate(level_planes):
            if (level >> plane_index) & 1:
                indicator &= plane
            else:
                indicator &= ~plane
        out |= indicator & coeff_words[:, level, :]
    return out


def _histogram_from_key_counts(
    flat_powers: "np.ndarray[Any, Any]",
    key_counts: "np.ndarray[Any, Any]",
    edges: "np.ndarray[Any, Any]",
) -> "np.ndarray[Any, Any]":
    """Received-power histogram from per-key totals, exactly.

    ``np.histogram`` bins each power value identically wherever it
    appears, so the histogram of all per-clock powers equals the
    histogram of the distinct flat-table values weighted by their
    occurrence counts — integer weights, exact sums.
    """
    counts, _ = np.histogram(flat_powers, bins=edges, weights=key_counts)
    return counts.astype(np.int64)


def packed_tile_statistics(
    circuit: Any,
    data_words: "np.ndarray[Any, Any]",
    coeff_words: "np.ndarray[Any, Any]",
    length: int,
    noise_a: Optional["np.ndarray[Any, Any]"] = None,
    histogram_edges: Optional["np.ndarray[Any, Any]"] = None,
    kernel: str = "packed",
    fault_channel: Optional[Any] = None,
    clock_offset: int = 0,
) -> Tuple[
    "np.ndarray[Any, Any]",
    "np.ndarray[Any, Any]",
    Optional["np.ndarray[Any, Any]"],
]:
    """Accumulator increments for one packed tile: ``(ones, errors, hist)``.

    The chunked streaming runtime's packed hot path: per-row ones and
    link bit-error counts (and the optional received-power histogram)
    straight from packed words, bit-exact with running the numpy pass on
    the unpacked tile and summing.

    * Noiseless, with the (verified) separated-band property that the
      threshold decision equals the multiplexer bit: the output stream
      is a word-level mux of the coefficient words by the bit-sliced
      level — ones come from :func:`popcount`, errors are exactly zero,
      and no per-clock byte array exists at all (keys are only
      assembled when the histogram is requested).
    * Otherwise (receiver noise, or an exotic detector whose decisions
      diverge from the mux): per-clock keys are assembled and the same
      flat tables as :func:`packed_optical_pass` resolve the decisions.

    With *fault_channel* (a
    :class:`~repro.simulation.faultmodel.PackedFaultChannel`) the
    observed output words are transformed in place of the clean stream
    before counting — *clock_offset* is the tile's absolute stream
    clock, so trajectory faults and the desynchronization carry resume
    exactly across tiles.  Errors then count observed-vs-ideal bits
    word-level (popcounts of the XOR), still with no per-clock float
    tensor; the power histogram keeps binning the *optical* powers,
    which receiver-side channel faults do not touch.
    """
    context = pass_context(circuit)
    flat = context._flat_tables()
    ones: "np.ndarray[Any, Any]"
    errors: "np.ndarray[Any, Any]"
    histogram: Optional["np.ndarray[Any, Any]"] = None
    if fault_channel is not None:
        keys: Optional["np.ndarray[Any, Any]"] = None
        if noise_a is None and flat["decision_is_ideal"]:
            level_planes = _bit_plane_sum(data_words)[: context.level_bits]
            out_words = _mux_words(coeff_words, level_planes, context.order)
            ideal_words = out_words
        else:
            keys = _packed_keys(
                context, data_words, coeff_words, length, kernel
            )
            if noise_a is None:
                decision_bytes = flat["decisions"].take(keys)
            else:
                decision_bytes = _noisy_decisions(context, flat, keys, noise_a)
            out_words = pack_bits(decision_bytes)
            ideal_words = pack_bits(flat["ideal"].take(keys))
        observed = fault_channel.apply_words(out_words, clock_offset, length)
        ones = popcount(observed).sum(axis=-1)
        errors = popcount(observed ^ ideal_words).sum(axis=-1)
        if histogram_edges is not None:
            if keys is None:
                keys = _packed_keys(
                    context, data_words, coeff_words, length, kernel
                )
            key_counts = np.bincount(
                keys.reshape(-1).astype(np.int64),
                minlength=flat["powers"].size,
            )
            histogram = _histogram_from_key_counts(
                flat["powers"], key_counts, histogram_edges
            )
        return ones, errors, histogram
    if noise_a is None and flat["decision_is_ideal"]:
        level_planes = _bit_plane_sum(data_words)[: context.level_bits]
        out_words = _mux_words(coeff_words, level_planes, context.order)
        ones = popcount(out_words).sum(axis=-1)
        errors = np.zeros(ones.shape, dtype=np.int64)
        if histogram_edges is not None:
            keys = _packed_keys(
                context, data_words, coeff_words, length, kernel
            )
            key_counts = np.bincount(
                keys.reshape(-1).astype(np.int64),
                minlength=flat["powers"].size,
            )
            histogram = _histogram_from_key_counts(
                flat["powers"], key_counts, histogram_edges
            )
        return ones, errors, histogram

    keys = _packed_keys(context, data_words, coeff_words, length, kernel)
    if noise_a is None:
        decisions = flat["decisions"].astype(np.int64)
        ideal = flat["ideal"].astype(np.int64)
        key_counts = _key_counts(keys, flat["powers"].size)
        ones = key_counts @ decisions
        errors = key_counts @ np.not_equal(decisions, ideal).astype(np.int64)
        if histogram_edges is not None:
            histogram = _histogram_from_key_counts(
                flat["powers"], key_counts.sum(axis=0), histogram_edges
            )
        return ones, errors, histogram

    output_bits = _noisy_decisions(context, flat, keys, noise_a)
    ideal_bits = flat["ideal"].take(keys)
    ones = output_bits.sum(axis=1, dtype=np.int64)
    errors = np.sum(output_bits != ideal_bits, axis=1, dtype=np.int64)
    if histogram_edges is not None:
        key_counts = np.bincount(
            keys.reshape(-1).astype(np.int64), minlength=flat["powers"].size
        )
        histogram = _histogram_from_key_counts(
            flat["powers"], key_counts, histogram_edges
        )
    return ones, errors, histogram

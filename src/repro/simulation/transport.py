"""Zero-copy shard transport over POSIX shared memory.

The sharded runtime's default ``"pickle"`` transport serializes every
shard's result tensors through the process-pool pipe — for a
``B=256 x L=2**20`` batch that is gigabytes of pickling in each
direction, the dominant cost once the packed kernels made the compute
itself cheap.  The ``"shm"`` transport removes that cost entirely:

* the parent allocates **one** :mod:`multiprocessing.shared_memory`
  segment laid out as a set of named arrays (:class:`SharedArena`) —
  the batch inputs, the per-row outputs, the ``(B, L)`` hot tensors
  (with the bit tensors in packed uint64 form when a packed kernel
  runs, 8x smaller), or the chunked path's per-shard accumulators;
* workers attach by segment name, read their inputs and write their row
  ranges **in place**, returning only tiny metadata;
* reassembly is a view: the parent wraps the segment's memory in numpy
  arrays without copying, unlinks the name, and the OS frees the pages
  when the last view dies.

No hot array is serialized in either direction, and the transport is a
pure wall-clock lever: results are bit-for-bit identical to the pickle
transport and to the serial engine call (gated by the kernel-parity
matrix in ``tests/test_kernels.py`` and ``bench_batched.py``).
"""

from __future__ import annotations

import os
import threading
import weakref
from multiprocessing import shared_memory
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["TRANSPORTS", "SharedArena", "resolve_transport"]

TRANSPORTS: Tuple[str, ...] = ("pickle", "shm")
"""Shard transports for the sharded/chunked runtime."""

_ALIGN = 64

#: ``{field: (shape, dtype)}`` as callers declare an arena.
FieldMap = Dict[str, Tuple[Sequence[int], Any]]
#: ``(shape, dtype, byte offset)`` as the resolved layout stores it.
_Field = Tuple[Tuple[int, ...], "np.dtype[Any]", int]


def resolve_transport(transport: str, backend: Optional[str] = None) -> str:
    """Validate a transport name (and its backend pairing when given).

    ``"shm"`` only makes sense with the ``process`` backend — thread
    workers already share the parent's address space, so requesting a
    shared-memory transport there is a misconfiguration, not a no-op.
    """
    if transport not in TRANSPORTS:
        raise ConfigurationError(
            f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
        )
    if transport == "shm" and backend is not None and backend != "process":
        raise ConfigurationError(
            "transport='shm' requires the 'process' backend; thread workers "
            "already share memory — use transport='pickle' (the thread "
            "backend never serializes arrays anyway)"
        )
    return transport


def _build_layout(fields: FieldMap) -> Tuple[Dict[str, _Field], int]:
    """``{name: (shape, dtype, offset)}`` plus total byte size.

    Each field is 64-byte aligned so every view is cache-line aligned
    regardless of the dtypes preceding it.
    """
    layout: Dict[str, _Field] = {}
    offset = 0
    for name, (raw_shape, raw_dtype) in fields.items():
        dtype = np.dtype(raw_dtype)
        shape = tuple(int(s) for s in raw_shape)
        offset = -(-offset // _ALIGN) * _ALIGN
        layout[name] = (shape, dtype, offset)
        offset += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    return layout, offset


_ATTACH_LOCK = threading.Lock()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """``SharedMemory(name=...)`` without tracker registration.

    Before Python 3.13's ``track=False``, merely *attaching* to a
    segment registers it with the resource tracker (bpo-39959) — and
    the tracker's cache is a set, so when several workers attach to the
    same segment the duplicate registrations collapse and any matching
    unregisters (ours, or the owner's ``unlink``) hit ``KeyError`` in
    the tracker process.  Only the creating side should track the
    name, so suppress registration for the duration of the attach.
    """
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:
        original = resource_tracker.register

        def _skip_shared_memory(rname: str, rtype: str) -> None:
            if rtype != "shared_memory":
                original(rname, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedArena:
    """One shared-memory segment laid out as a set of named ndarrays.

    Create in the parent with a ``{name: (shape, dtype)}`` field map,
    ship the picklable :attr:`spec` (segment name + layout — a few
    hundred bytes) to the workers, and :meth:`attach` on their side.
    :meth:`write` stores a row range in place without retaining a view
    (so :meth:`close` stays legal afterwards); :meth:`export_views`
    hands the parent zero-copy result arrays whose lifetime manages the
    segment's.
    """

    _layout: Dict[str, _Field]
    _shm: Optional[shared_memory.SharedMemory]
    _owner: bool

    def __init__(self, fields: FieldMap) -> None:
        self._layout, size = _build_layout(fields)
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, size))
        self._owner = True

    @classmethod
    def attach(cls, spec: Dict[str, Any]) -> "SharedArena":
        """Attach to an existing arena from its :attr:`spec`."""
        arena = cls.__new__(cls)
        arena._layout = {
            name: (tuple(shape), np.dtype(dtype), int(offset))
            for name, (shape, dtype, offset) in spec["fields"].items()
        }
        arena._shm = _attach_untracked(spec["name"])
        arena._owner = False
        return arena

    @property
    def name(self) -> str:
        """The OS-level segment name workers attach by."""
        assert self._shm is not None
        return self._shm.name

    @property
    def spec(self) -> Dict[str, Any]:
        """Picklable descriptor: segment name plus field layout."""
        assert self._shm is not None
        return {
            "name": self._shm.name,
            "fields": {
                name: (shape, dtype.str, offset)
                for name, (shape, dtype, offset) in self._layout.items()
            },
        }

    def _field(self, name: str) -> _Field:
        try:
            return self._layout[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown arena field {name!r}; have {sorted(self._layout)}"
            ) from None

    def _view(self, name: str) -> "np.ndarray[Any, Any]":
        shape, dtype, offset = self._field(name)
        assert self._shm is not None
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=offset)

    def write(self, name: str, array: Any, lo: int = 0) -> None:
        """Store *array* at row offset *lo* of field *name*, in place.

        No view outlives the call, so the arena can still be closed
        afterwards (numpy buffer exports would otherwise pin the
        mapping open).
        """
        view = self._view(name)
        array = np.asarray(array, dtype=view.dtype)
        view[lo : lo + (array.shape[0] if array.ndim else 1)] = array
        del view

    def read(
        self, name: str, lo: int = 0, hi: Optional[int] = None
    ) -> "np.ndarray[Any, Any]":
        """A private copy of rows ``[lo, hi)`` of field *name*."""
        view = self._view(name)
        out = np.array(view[lo:hi], copy=True)
        del view
        return out

    def export_views(self) -> Dict[str, "np.ndarray[Any, Any]"]:
        """Zero-copy views of every field, with arena lifetime attached.

        The segment name is unlinked immediately (POSIX keeps the pages
        alive while mapped), every view shares one base array, and a
        finalizer closes the mapping when the last view dies — so the
        returned arrays behave like ordinary result arrays with no
        cleanup protocol for the caller, and no memory outlives them.
        The arena itself must not be used (or closed) afterwards.
        """
        assert self._shm is not None
        base = np.frombuffer(self._shm.buf, dtype=np.uint8)
        views: Dict[str, "np.ndarray[Any, Any]"] = {}
        for name, (shape, dtype, offset) in self._layout.items():
            nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            views[name] = (
                base[offset : offset + nbytes].view(dtype).reshape(shape)
            )
        shm = self._shm
        self._shm = None
        if self._owner:
            shm.unlink()
        weakref.finalize(base, _release_segment, shm)
        return views

    def close(self) -> None:
        """Drop this process's mapping (workers, after their writes)."""
        if self._shm is not None:
            self._shm.close()
            self._shm = None

    def destroy(self) -> None:
        """Unmap and unlink (parent error paths: nothing escaped)."""
        if self._shm is not None:
            shm = self._shm
            self._shm = None
            shm.close()
            if self._owner:
                shm.unlink()


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    """Close an escaped segment's mapping once its last view dies.

    The finalizer fires at the *start* of the base array's
    deallocation, before numpy has released its buffer pointer, so the
    mmap may refuse to close yet.  In that case drop our references
    instead: the mmap object unmaps itself when the last buffer export
    dies moments later, and we close the file descriptor here so
    nothing OS-level outlives the arrays (the segment name was already
    unlinked at export time).
    """
    try:  # pragma: no cover - GC-timing dependent
        shm.close()
    except BufferError:
        setattr(shm, "_mmap", None)
        fd = int(getattr(shm, "_fd", -1))
        if fd >= 0:
            try:
                os.close(fd)
            except OSError:
                pass
            setattr(shm, "_fd", -1)

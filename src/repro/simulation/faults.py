"""Fault injection: stuck devices and resonance drift.

Process variations and thermal drift are first-order concerns for
resonant photonics; the paper motivates SC exactly because it degrades
gracefully under such faults.  These helpers build *faulty* variants of a
circuit so the degradation can be measured with the functional simulator:

* a **stuck MZI** no longer responds to its data bit (stuck constructive
  or destructive), skewing the select distribution;
* **filter drift** misaligns every level from its channel;
* **coefficient-ring drift** detunes one modulator, changing its ON/OFF
  contrast.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..photonics.devices import RingProfile
from ..photonics.wdm import WDMGrid

__all__ = [
    "with_stuck_mzi",
    "with_filter_drift",
    "with_coefficient_ring_drift",
    "FaultInjector",
]

_DRIFT_STUDY_SEED = 7
"""Default sampling seed of :meth:`FaultInjector.filter_drift_study`."""


def with_stuck_mzi(
    levels: "np.ndarray[Any, Any]", order: int, stuck_value: int
) -> "np.ndarray[Any, Any]":
    """Select levels as if one MZI were stuck at *stuck_value*.

    Operates on the adder output: a stuck-at-0 MZI can never contribute a
    one (levels are clamped to ``[0, n-1]`` scaled appropriately); a
    stuck-at-1 always contributes one.  The transformation assumes the
    faulty MZI's intended bits were Bernoulli like the others, so its
    contribution is replaced rather than re-simulated.
    """
    levels = np.asarray(levels)
    if stuck_value not in (0, 1):
        raise ConfigurationError("stuck_value must be 0 or 1")
    if order < 1:
        raise ConfigurationError("order must be >= 1")
    # Remove one statistically expected contribution and pin it.
    adjusted = levels.copy()
    if stuck_value == 0:
        adjusted = np.minimum(adjusted, order - 1) if order > 1 else np.zeros_like(adjusted)
        # Pinning low: a previous '1' from the faulty MZI is lost.
    else:
        adjusted = np.minimum(adjusted + (levels < order), order)
    return adjusted


def with_filter_drift(params: Any, drift_nm: float) -> Any:
    """Parameters with the filter's rest resonance drifted by *drift_nm*.

    Positive drift moves ``lambda_ref`` red-ward; every level then lands
    ``drift_nm`` away from its channel — the miscalibration the
    feedback controller of :mod:`repro.simulation.controller` corrects.
    """
    from ..core.params import OpticalSCParameters

    if not isinstance(params, OpticalSCParameters):
        raise ConfigurationError("params must be OpticalSCParameters")
    grid = params.grid
    drifted_grid = WDMGrid(
        channel_count=grid.channel_count,
        spacing_nm=grid.spacing_nm,
        anchor_nm=grid.anchor_nm,
        guard_nm=grid.guard_nm + drift_nm,
    )
    if drifted_grid.guard_nm <= 0:
        raise ConfigurationError(
            "drift would move lambda_ref onto/below the last channel"
        )
    return replace(params, grid=drifted_grid)


def with_coefficient_ring_drift(params: Any, drift_nm: float) -> Any:
    """Parameters with every modulator's OFF resonance drifted.

    Models a common-mode fabrication offset of the coefficient MRRs: the
    ON/OFF contrast at the (unchanged) probe wavelengths degrades.
    Implemented by shifting the modulation shift budget: the OFF state
    sits ``drift_nm`` off the channel, the ON state at
    ``drift + modulation_shift``.
    """
    from ..core.params import OpticalSCParameters

    if not isinstance(params, OpticalSCParameters):
        raise ConfigurationError("params must be OpticalSCParameters")
    profile = params.ring_profile
    if abs(drift_nm) >= profile.modulation_shift_nm:
        raise ConfigurationError(
            "drift beyond the modulation shift inverts the modulator logic"
        )
    # Encode the drift by moving the probe grid relative to the rings:
    # equivalent, and it keeps RingProfile immutable.
    grid = params.grid
    guard_nm = grid.guard_nm - drift_nm
    if guard_nm <= 0:
        raise ConfigurationError(
            "drift would collapse the filter guard band onto the last "
            "channel; a silently clamped guard would misreport the eye"
        )
    drifted_grid = WDMGrid(
        channel_count=grid.channel_count,
        spacing_nm=grid.spacing_nm,
        anchor_nm=grid.anchor_nm + drift_nm,
        guard_nm=guard_nm,
    )
    return replace(params, grid=drifted_grid)


class FaultInjector:
    """Convenience wrapper running accuracy studies under faults.

    Parameters
    ----------
    circuit:
        The healthy :class:`~repro.core.circuit.OpticalStochasticCircuit`.
    """

    def __init__(self, circuit: Any) -> None:
        from ..core.circuit import OpticalStochasticCircuit

        if not isinstance(circuit, OpticalStochasticCircuit):
            raise ConfigurationError(
                "circuit must be an OpticalStochasticCircuit"
            )
        self.circuit = circuit

    def _rebuild(self, params: Any) -> Any:
        from ..core.circuit import OpticalStochasticCircuit

        return OpticalStochasticCircuit(params, self.circuit.polynomial)

    def filter_drift_study(
        self,
        drifts_nm: Sequence[float],
        x: float = 0.5,
        length: int = 2048,
        rng: Optional[np.random.Generator] = None,
        base_seed: int = 0xACE1,
    ) -> Dict[str, "np.ndarray[Any, Any]"]:
        """Output error vs filter drift (graceful-degradation curve).

        The SNG seed space is pinned (*base_seed*) so every drift point
        reuses identical randomizer streams — the study isolates the
        drift effect instead of confounding it with per-point sampling
        noise.  Each point routes through a
        :class:`~repro.session.Evaluator` session, so the study runs on
        the batched engine and inherits its kernel/worker invariance.
        A drift large enough to break the circuit's configuration
        (guard-band collapse, inverted filter) records ``NaN`` for that
        point; genuine simulation bugs propagate instead of being
        swallowed into the curve.
        """
        from ..session import EvalSpec, Evaluator

        rng = rng or np.random.default_rng(_DRIFT_STUDY_SEED)
        spec = EvalSpec(length=length, base_seed=base_seed)
        errors: List[float] = []
        bers: List[float] = []
        for drift in drifts_nm:
            try:
                faulty = self._rebuild(
                    with_filter_drift(self.circuit.params, float(drift))
                )
                result = Evaluator(faulty, spec=spec).evaluate(
                    [float(x)], rng=rng
                )
                errors.append(float(np.asarray(result.absolute_errors)[0]))
                bers.append(float(np.asarray(result.transmission_ber)[0]))
            except ConfigurationError:
                errors.append(np.nan)
                bers.append(np.nan)
        return {
            "drift_nm": np.asarray(list(drifts_nm), dtype=float),
            "absolute_error": np.asarray(errors),
            "transmission_ber": np.asarray(bers),
        }

"""Bit-level and time-domain simulation of the optical SC circuit.

While :mod:`repro.core` evaluates the paper's *analytical* models, this
subpackage runs the circuit: stochastic bit-streams drive the MZI and MRR
states clock by clock, the transmission model produces received powers,
and a noisy receiver recovers the output stream — closing the loop from
Bernstein program to de-randomized probability (paper Fig. 3).

It also implements the paper's future-work items: transient (time-domain)
simulation with pump-pulse synchronization (Section VI item ii) and the
monitoring/calibration feedback controller (item i), plus fault-injection
utilities for the robustness studies.
"""

from .receiver import OpticalReceiver, ReceiverDecision
from .kernels import (
    KERNELS,
    available_kernels,
    kernel_capabilities,
    numba_available,
    pack_bits,
    popcount,
    resolve_kernel,
    unpack_bits,
)
from .engine import (
    BatchEvaluation,
    SeedSchedule,
    derive_seed_schedule,
    simulate_batch,
)
from .functional import OpticalEvaluation, simulate_evaluation, simulate_sweep
from .runtime import (
    TRANSPORTS,
    ChunkedEvaluation,
    EvaluationCache,
    RuntimeConfig,
    default_evaluation_cache,
    default_worker_count,
    parallel_map,
    resolve_transport,
    resolve_vectorized,
    run_batch,
    simulate_batch_sharded,
    simulate_chunked,
)
from .transport import SharedArena
from .noise import apply_ber_flips, effective_probability_after_flips
from .faults import (
    FaultInjector,
    with_coefficient_ring_drift,
    with_filter_drift,
    with_stuck_mzi,
)
from .faultmodel import FAULT_PROBABILITY_BITS, FaultSpec, PackedFaultChannel
from .transient import TransientResult, TransientSimulator
from .controller import CalibrationController, ControllerTrace
from .montecarlo import (
    MonteCarloResult,
    VariationModel,
    fault_frontier,
    run_monte_carlo,
    yield_vs_sigma,
)

__all__ = [
    "OpticalReceiver",
    "ReceiverDecision",
    "KERNELS",
    "available_kernels",
    "kernel_capabilities",
    "numba_available",
    "pack_bits",
    "popcount",
    "resolve_kernel",
    "unpack_bits",
    "OpticalEvaluation",
    "BatchEvaluation",
    "SeedSchedule",
    "derive_seed_schedule",
    "simulate_batch",
    "simulate_evaluation",
    "simulate_sweep",
    "ChunkedEvaluation",
    "EvaluationCache",
    "RuntimeConfig",
    "SharedArena",
    "TRANSPORTS",
    "default_evaluation_cache",
    "default_worker_count",
    "parallel_map",
    "resolve_transport",
    "resolve_vectorized",
    "run_batch",
    "simulate_batch_sharded",
    "simulate_chunked",
    "apply_ber_flips",
    "effective_probability_after_flips",
    "FaultInjector",
    "with_stuck_mzi",
    "with_filter_drift",
    "with_coefficient_ring_drift",
    "FAULT_PROBABILITY_BITS",
    "FaultSpec",
    "PackedFaultChannel",
    "fault_frontier",
    "TransientSimulator",
    "TransientResult",
    "CalibrationController",
    "ControllerTrace",
    "VariationModel",
    "MonteCarloResult",
    "run_monte_carlo",
    "yield_vs_sigma",
]

"""Time-domain (transient) simulation — paper future work item (ii).

Section V-D notes that pulse-based pump operation "requires
synchronization on the detector side to read the received signals only
during the short light emission", and announces a SPICE-style transient
model to study the resulting throughput-accuracy tradeoff.  This module
implements a discrete-time equivalent:

* each bit slot (1 ns at 1 Gb/s) is sampled on a fine time grid;
* MZI/MRR drive signals follow first-order (RC-style) exponential
  transitions between bits;
* the pump emits a rectangular 26 ps pulse at a configurable position in
  the slot; the received power is only valid while the pump is high and
  the drives have settled;
* the receiver samples once per slot at a configurable instant — sampling
  offset errors translate into decision errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..stochastic.bitstream import Bitstream

__all__ = ["TransientResult", "TransientSimulator"]

_TRANSIENT_RNG_SEED = 0x7143
"""Default jitter/noise seed when the caller supplies no rng."""


@dataclass(frozen=True)
class TransientResult:
    """Waveforms and sampled decisions of a transient run."""

    time_s: np.ndarray
    received_power_mw: np.ndarray
    pump_envelope: np.ndarray
    sample_times_s: np.ndarray
    sampled_power_mw: np.ndarray
    decided_bits: Bitstream


class TransientSimulator:
    """Discrete-time transient model of the optical SC data path.

    Parameters
    ----------
    circuit:
        The :class:`~repro.core.circuit.OpticalStochasticCircuit` to run.
    samples_per_bit:
        Time resolution of the waveform grid.
    rise_time_s:
        10-90 %-style time constant of the modulator drives; transitions
        follow ``1 - exp(-t/tau)`` with ``tau = rise_time / 2.2``.
    pulse_position:
        Center of the 26 ps pump pulse within the bit slot, as a fraction
        of the bit period (default 0.5 = mid-slot).
    """

    def __init__(
        self,
        circuit,
        samples_per_bit: int = 64,
        rise_time_s: float = 100e-12,
        pulse_position: float = 0.5,
    ):
        from ..core.circuit import OpticalStochasticCircuit

        if not isinstance(circuit, OpticalStochasticCircuit):
            raise ConfigurationError(
                "circuit must be an OpticalStochasticCircuit"
            )
        if samples_per_bit < 8:
            raise ConfigurationError("samples_per_bit must be >= 8")
        if rise_time_s <= 0.0:
            raise ConfigurationError("rise_time_s must be positive")
        if not 0.0 < pulse_position < 1.0:
            raise ConfigurationError("pulse_position must be in (0, 1)")
        self.circuit = circuit
        self.samples_per_bit = int(samples_per_bit)
        self.rise_time_s = float(rise_time_s)
        self.pulse_position = float(pulse_position)

    # -- drive waveform construction ----------------------------------------------

    def _settled_powers(self, levels: np.ndarray, patterns: np.ndarray) -> np.ndarray:
        table = self.circuit.model.received_power_table_mw()
        return table[patterns, levels]

    def _interpolate(self, settled: np.ndarray) -> np.ndarray:
        """First-order exponential settling between per-bit target powers.

        Approximates the continuous device response: within each bit the
        received power relaxes from the previous bit's settled value
        toward the current target with time constant ``tau``.
        """
        bit_period = 1.0 / self.circuit.params.bit_rate_hz
        tau = self.rise_time_s / 2.2
        offsets = (np.arange(self.samples_per_bit) + 0.5) / self.samples_per_bit
        relax = 1.0 - np.exp(-offsets * bit_period / tau)
        previous = np.concatenate(([settled[0]], settled[:-1]))
        # waveform[bit, sample] = prev + (target - prev) * relax(sample)
        waveform = previous[:, None] + (
            settled[:, None] - previous[:, None]
        ) * relax[None, :]
        return waveform.reshape(-1)

    def _pump_envelope(self, bit_count: int) -> np.ndarray:
        bit_period = 1.0 / self.circuit.params.bit_rate_hz
        pulse_width = self.circuit.params.pump_pulse_width_s
        offsets = (np.arange(self.samples_per_bit) + 0.5) / self.samples_per_bit
        center = self.pulse_position
        half = pulse_width / bit_period / 2.0
        single = ((offsets >= center - half) & (offsets <= center + half)).astype(
            float
        )
        if not single.any():
            # Pulse narrower than one grid step: light the nearest sample.
            single[np.argmin(np.abs(offsets - center))] = 1.0
        return np.tile(single, bit_count)

    # -- runs ---------------------------------------------------------------------

    def run(
        self,
        x: float,
        length: int = 256,
        sampling_offset: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> TransientResult:
        """Simulate *length* bit slots and sample once per slot.

        *sampling_offset* shifts the sampling instant away from the pump
        pulse center (fraction of the bit period); non-zero offsets model
        synchronization error and degrade the decisions.
        """
        from ..stochastic.elements import adder_select
        from ..stochastic.sng import make_independent_sngs
        from .receiver import OpticalReceiver

        if not 0.0 <= x <= 1.0:
            raise ConfigurationError(f"x must be in [0, 1], got {x!r}")
        if length <= 0:
            raise ConfigurationError("length must be positive")
        rng = rng or np.random.default_rng(_TRANSIENT_RNG_SEED)
        params = self.circuit.params
        order = params.order

        data_sngs = make_independent_sngs(order, base_seed=0xACE1)
        coeff_sngs = make_independent_sngs(order + 1, base_seed=0xC0FE)
        data = [sng.generate(x, length) for sng in data_sngs]
        coeffs = [
            sng.generate(float(b), length)
            for sng, b in zip(coeff_sngs, self.circuit.polynomial.coefficients)
        ]
        levels = adder_select(data)
        patterns = np.zeros(length, dtype=np.int64)
        for channel, stream in enumerate(coeffs):
            patterns |= stream.bits.astype(np.int64) << channel

        settled = self._settled_powers(levels, patterns)
        waveform = self._interpolate(settled)
        pump = self._pump_envelope(length)
        gated = waveform * pump  # power only present during the pulse

        bit_period = 1.0 / params.bit_rate_hz
        dt = bit_period / self.samples_per_bit
        time = (np.arange(length * self.samples_per_bit) + 0.5) * dt

        sample_fraction = self.pulse_position + sampling_offset
        sample_index = np.clip(
            (np.arange(length) + sample_fraction) * self.samples_per_bit,
            0,
            length * self.samples_per_bit - 1,
        ).astype(int)
        sampled = gated[sample_index]

        budget = self.circuit.link_budget()
        receiver = OpticalReceiver.from_power_bands(
            params.detector,
            zero_level_mw=budget.zero_band_mw[1],
            one_level_mw=budget.one_band_mw[0],
        )
        decision = receiver.decide(sampled, rng=rng)
        return TransientResult(
            time_s=time,
            received_power_mw=gated,
            pump_envelope=pump,
            sample_times_s=time[sample_index],
            sampled_power_mw=sampled,
            decided_bits=decision.bits,
        )

    def synchronization_study(
        self,
        offsets,
        x: float = 0.5,
        length: int = 512,
    ) -> dict:
        """Output error vs sampling offset (the paper's sync concern).

        Sampling inside the pump pulse recovers the computation; sampling
        outside it sees no light and the stream collapses to zeros.
        """
        errors = []
        expected = self.circuit.expected_value(x)
        for offset in offsets:
            result = self.run(x, length=length, sampling_offset=float(offset))
            errors.append(abs(result.decided_bits.probability - expected))
        return {
            "offset_fraction": np.asarray(list(offsets), dtype=float),
            "absolute_error": np.asarray(errors),
        }

"""The receiver: photodetection, thresholding and de-randomization.

The photodetector converts the received optical power into a current
(plus Gaussian noise ``i_n``); a comparator slices it against the OOK
midpoint threshold; the recovered bit-stream is counted to complete the
stochastic computation (paper Fig. 3(a) right-hand side).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..photonics.photodetector import Photodetector
from ..stochastic.bitstream import Bitstream

__all__ = ["ReceiverDecision", "OpticalReceiver"]


@dataclass(frozen=True)
class ReceiverDecision:
    """Outcome of slicing one block of received powers."""

    bits: Bitstream
    currents_a: np.ndarray
    threshold_a: float

    @property
    def probability(self) -> float:
        """De-randomized output value."""
        return self.bits.probability


class OpticalReceiver:
    """Threshold receiver for the OOK-modulated coefficient stream.

    Parameters
    ----------
    detector:
        Photodetector providing responsivity and noise current.
    threshold_a:
        Decision threshold (A).  Use
        :meth:`calibrate_threshold` (or the link budget's midpoint) to
        set it from the '0'/'1' power bands.
    """

    def __init__(self, detector: Photodetector, threshold_a: float):
        if not isinstance(detector, Photodetector):
            raise ConfigurationError("detector must be a Photodetector")
        if threshold_a <= 0.0:
            raise ConfigurationError(
                f"threshold_a must be positive, got {threshold_a!r}"
            )
        self.detector = detector
        self.threshold_a = float(threshold_a)

    @classmethod
    def from_power_bands(
        cls,
        detector: Photodetector,
        zero_level_mw: float,
        one_level_mw: float,
    ) -> "OpticalReceiver":
        """Receiver with the optimal midpoint threshold for the two bands."""
        if one_level_mw <= zero_level_mw:
            raise ConfigurationError(
                "one_level_mw must exceed zero_level_mw for a usable "
                f"threshold (got {one_level_mw} <= {zero_level_mw})"
            )
        threshold = detector.midpoint_threshold_a(one_level_mw, zero_level_mw)
        return cls(detector, threshold)

    def decide(
        self,
        powers_mw: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> ReceiverDecision:
        """Slice a block of received powers into bits.

        With *rng* given, Gaussian receiver noise (``i_n`` RMS) is added
        before thresholding; without it the decision is noiseless.
        """
        powers = np.asarray(powers_mw, dtype=float)
        if powers.ndim != 1 or powers.size == 0:
            raise ConfigurationError("powers_mw must be a non-empty 1-D array")
        if np.any(powers < 0.0):
            raise ConfigurationError("received powers must be >= 0")
        if rng is None:
            currents = np.asarray(self.detector.photocurrent_a(powers))
        else:
            currents = np.asarray(self.detector.sample(powers, rng))
        bits = (currents > self.threshold_a).astype(np.uint8)
        return ReceiverDecision(
            bits=Bitstream(bits),
            currents_a=currents,
            threshold_a=self.threshold_a,
        )

    def decide_batch(
        self,
        powers_mw: np.ndarray,
        rng: Optional[np.random.Generator] = None,
        noise_a: Optional[np.ndarray] = None,
    ) -> tuple:
        """Slice a whole ``(batch, length)`` block of received powers.

        Returns ``(bits, currents_a)`` as arrays of the same shape.  Noise
        is added from *noise_a* when given (pre-drawn Gaussian currents,
        letting the batched engine control rng consumption order), else
        drawn from *rng*; with neither the decision is noiseless.
        """
        powers = np.asarray(powers_mw, dtype=float)
        if powers.ndim != 2 or powers.size == 0:
            raise ConfigurationError("powers_mw must be a non-empty 2-D array")
        if np.any(powers < 0.0):
            raise ConfigurationError("received powers must be >= 0")
        if noise_a is not None:
            noise = np.asarray(noise_a, dtype=float)
            if noise.shape != powers.shape:
                raise ConfigurationError(
                    f"noise_a shape {noise.shape} must match powers shape "
                    f"{powers.shape}"
                )
            currents = np.asarray(self.detector.photocurrent_a(powers)) + noise
        elif rng is not None:
            currents = np.asarray(self.detector.sample(powers, rng))
        else:
            currents = np.asarray(self.detector.photocurrent_a(powers))
        bits = (currents > self.threshold_a).astype(np.uint8)
        return bits, currents

"""Serving observability: counters, histograms and per-rung latency.

The serving tier's contract with its operator is a single immutable
:class:`MetricsSnapshot` — every admission decision (admitted / shed /
expired / cancelled), every resilience event (retried / breaker
rejections) and every degradation step is counted, queue depth and
micro-batch size are tracked as histograms, and per-precision-rung
latency percentiles ride on bounded reservoirs.  The legacy
:class:`ServingStats` coalescing summary survives unchanged as a
derived view, so pre-package callers keep their exact semantics.

Everything here is plain arithmetic on the event-loop thread: no
locks, no wall-clock reads — timestamps come in from the server's
:class:`~repro.serving.resilience.Clock`, which is what makes the
failure-path tests exact instead of sleep-and-hope.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

__all__ = [
    "HistogramSnapshot",
    "MetricsSnapshot",
    "RungMetrics",
    "ServingStats",
]

#: Queue-depth / batch-size histogram bucket upper bounds (inclusive);
#: the final implicit bucket is unbounded.
_BUCKET_BOUNDS: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Per-rung latency reservoir size: enough samples for a stable p99 at
#: bench scale while keeping a long-lived server's footprint bounded.
_RESERVOIR_SIZE: int = 4096


@dataclass(frozen=True)
class ServingStats:
    """Snapshot of a server's coalescing behaviour."""

    requests: int
    batches: int
    largest_batch: int

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests coalesced per engine call."""
        return self.requests / self.batches if self.batches else 0.0


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable bucketed counts: ``counts[i]`` values ``<= bounds[i]``.

    The final bucket (``counts[len(bounds)]``) holds everything above
    the last bound.
    """

    bounds: Tuple[int, ...]
    counts: Tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def max_observed_bound(self) -> Optional[int]:
        """Upper bound of the highest non-empty bucket (None if empty).

        A coarse-but-deterministic maximum: the saturation benchmark
        uses it to show a bounded queue's depth staying flat while the
        unbounded baseline's grows without bound.
        """
        for index in range(len(self.counts) - 1, -1, -1):
            if self.counts[index]:
                if index >= len(self.bounds):
                    return None  # overflowed the last bound
                return self.bounds[index]
        return None


class _Histogram:
    """Mutable power-of-two bucket histogram for small integers."""

    __slots__ = ("_bounds", "_counts")

    def __init__(self, bounds: Tuple[int, ...] = _BUCKET_BOUNDS) -> None:
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)

    def record(self, value: int) -> None:
        for index, bound in enumerate(self._bounds):
            if value <= bound:
                self._counts[index] += 1
                return
        self._counts[-1] += 1

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            bounds=self._bounds, counts=tuple(self._counts)
        )


def _percentile(sorted_samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    rank = max(
        0, min(len(sorted_samples) - 1, round(fraction * (len(sorted_samples) - 1)))
    )
    return sorted_samples[rank]


@dataclass(frozen=True)
class RungMetrics:
    """Per-precision-rung serving record.

    One entry per ladder rung that served at least one batch: the
    stream length it serves at, how much traffic it carried, its
    latency percentiles, and the rung's measured RMSE on the
    calibration grid — the accuracy price of serving degraded.
    """

    rung: int
    length: int
    served: int
    batches: int
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    rmse: Optional[float]


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable export of every serving counter and distribution.

    Counters follow one request's life: ``submitted`` at entry,
    then exactly one of ``admitted`` (queued) or ``shed``; admitted
    requests end as ``served``, ``expired`` (deadline), ``cancelled``
    (client gave up), ``failed`` (evaluator error after retries) or
    ``breaker_rejected`` (failing fast while the breaker is open).
    ``retried`` counts engine attempts beyond each batch's first;
    ``degraded_served`` counts requests answered below the top
    precision rung.
    """

    submitted: int
    admitted: int
    served: int
    shed: int
    expired: int
    cancelled: int
    failed: int
    retried: int
    breaker_rejected: int
    degraded_served: int
    batches: int
    largest_batch: int
    breaker_state: str
    breaker_opened: int
    current_rung: int
    queue_depth: HistogramSnapshot
    batch_size: HistogramSnapshot
    rungs: Tuple[RungMetrics, ...]

    @property
    def mean_batch_size(self) -> float:
        return self.served / self.batches if self.batches else 0.0

    @property
    def served_fraction(self) -> float:
        """Served requests over all submitted (1.0 when nothing lost)."""
        return self.served / self.submitted if self.submitted else 1.0

    @property
    def stats(self) -> ServingStats:
        """The legacy coalescing view (requests == successfully served)."""
        return ServingStats(
            requests=self.served,
            batches=self.batches,
            largest_batch=self.largest_batch,
        )


@dataclass
class _RungRecorder:
    length: int
    served: int = 0
    batches: int = 0
    latencies: Deque[float] = field(
        default_factory=lambda: deque(maxlen=_RESERVOIR_SIZE)
    )


class MetricsRecorder:
    """The server-owned mutable side of :class:`MetricsSnapshot`.

    Single-writer by construction (only the event-loop thread touches
    it), so plain attribute increments are exact.
    """

    def __init__(self) -> None:
        self.submitted = 0
        self.admitted = 0
        self.served = 0
        self.shed = 0
        self.expired = 0
        self.cancelled = 0
        self.failed = 0
        self.retried = 0
        self.breaker_rejected = 0
        self.degraded_served = 0
        self.batches = 0
        self.largest_batch = 0
        self.breaker_opened = 0
        self._queue_depth = _Histogram()
        self._batch_size = _Histogram()
        self._rungs: Dict[int, _RungRecorder] = {}

    def record_queue_depth(self, depth: int) -> None:
        self._queue_depth.record(int(depth))

    def record_batch(
        self, rung: int, length: int, size: int, latencies: List[float]
    ) -> None:
        """One successfully served micro-batch at *rung*."""
        self.batches += 1
        self.served += size
        self.largest_batch = max(self.largest_batch, size)
        if rung > 0:
            self.degraded_served += size
        self._batch_size.record(size)
        recorder = self._rungs.get(rung)
        if recorder is None:
            recorder = _RungRecorder(length=length)
            self._rungs[rung] = recorder
        recorder.served += size
        recorder.batches += 1
        recorder.latencies.extend(latencies)

    def snapshot(
        self,
        breaker_state: str,
        current_rung: int,
        rung_rmse: Dict[int, Optional[float]],
    ) -> MetricsSnapshot:
        rungs: List[RungMetrics] = []
        for rung in sorted(self._rungs):
            recorder = self._rungs[rung]
            samples = sorted(recorder.latencies)
            if not samples:
                samples = [0.0]
            rungs.append(
                RungMetrics(
                    rung=rung,
                    length=recorder.length,
                    served=recorder.served,
                    batches=recorder.batches,
                    latency_p50_s=_percentile(samples, 0.50),
                    latency_p95_s=_percentile(samples, 0.95),
                    latency_p99_s=_percentile(samples, 0.99),
                    rmse=rung_rmse.get(rung),
                )
            )
        return MetricsSnapshot(
            submitted=self.submitted,
            admitted=self.admitted,
            served=self.served,
            shed=self.shed,
            expired=self.expired,
            cancelled=self.cancelled,
            failed=self.failed,
            retried=self.retried,
            breaker_rejected=self.breaker_rejected,
            degraded_served=self.degraded_served,
            batches=self.batches,
            largest_batch=self.largest_batch,
            breaker_state=breaker_state,
            breaker_opened=self.breaker_opened,
            current_rung=current_rung,
            queue_depth=self._queue_depth.snapshot(),
            batch_size=self._batch_size.snapshot(),
            rungs=tuple(rungs),
        )

"""Progressive-precision graceful degradation.

Stochastic computing's defining robustness property (El-Derhalli et
al. 2019, §V-B): output accuracy is a smooth function of bitstream
length ``L``, so truncating the stream trades precision for latency
*continuously* instead of failing.  That hands this serving tier an
overload response no conventional server has — under sustained
pressure, step the session down a ladder of shorter
:meth:`~repro.session.EvalSpec.with_length` rungs and serve *every*
request at a measured accuracy cost, rather than shedding them.

:class:`DegradationLadder` declares the rungs (rung 0 = the bound
spec's full length; each later rung strictly shorter).
:class:`DegradationController` decides when to move: it watches queue
pressure (depth over capacity) and a batch-latency EWMA, steps down
after ``patience`` consecutive overloaded observations, and recovers
hysteretically — one rung at a time, only after ``recovery_patience``
consecutive calm observations — so the server does not flap between
rungs at the load boundary.

Each rung's accuracy price is measured, not guessed:
:func:`measure_rung_rmse` evaluates the calibration grid once per rung
(lazily, on first use) and records the RMSE that degraded responses
are annotated with in :class:`~repro.serving.metrics.MetricsSnapshot`.
"""

from __future__ import annotations

import math
import operator
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..session import Evaluator

__all__ = [
    "DegradationController",
    "DegradationLadder",
    "measure_rung_rmse",
]

#: Calibration inputs for per-rung RMSE measurement: a fixed grid over
#: the valid domain, matching the paper's accuracy-sweep protocol.
_CALIBRATION_POINTS: int = 33


class DegradationLadder:
    """An ordered ladder of stream-length precision rungs.

    ``lengths[0]`` is full precision (must equal the evaluator's bound
    spec length when attached to a server); each subsequent rung is
    strictly shorter.  The ladder is immutable and validated eagerly.
    """

    def __init__(self, lengths: Tuple[int, ...]) -> None:
        try:
            validated = tuple(operator.index(length) for length in lengths)
        except TypeError:
            raise ConfigurationError(
                f"ladder lengths must be integers, got {lengths!r}"
            ) from None
        if not validated:
            raise ConfigurationError("a degradation ladder needs >= 1 rung")
        for length in validated:
            if length <= 0:
                raise ConfigurationError(
                    f"ladder lengths must be positive, got {length!r}"
                )
        for shorter, longer in zip(validated[1:], validated[:-1]):
            if shorter >= longer:
                raise ConfigurationError(
                    "ladder lengths must be strictly decreasing "
                    f"(rung {longer} followed by {shorter})"
                )
        self.lengths = validated

    def __len__(self) -> int:
        return len(self.lengths)

    def __repr__(self) -> str:
        return f"DegradationLadder(lengths={self.lengths!r})"


class DegradationController:
    """Hysteretic rung selection from queue pressure and latency.

    Observation protocol: the server calls :meth:`observe` once per
    formed batch with the current queue depth and the batch's service
    latency.  "Overloaded" means queue depth at or above
    ``high_watermark`` of capacity **or** the latency EWMA above
    ``latency_budget_s`` (when one is set); "calm" means depth at or
    below ``low_watermark`` and latency within budget.  ``patience``
    consecutive overloaded observations step one rung down;
    ``recovery_patience`` consecutive calm observations step one rung
    up.  Anything in between resets both counters — the dead band that
    keeps the controller from flapping at the load boundary.
    """

    def __init__(
        self,
        ladder: DegradationLadder,
        queue_capacity: int,
        high_watermark: float = 0.75,
        low_watermark: float = 0.25,
        patience: int = 3,
        recovery_patience: int = 8,
        latency_budget_s: Optional[float] = None,
        ewma_alpha: float = 0.2,
    ) -> None:
        if not isinstance(ladder, DegradationLadder):
            raise ConfigurationError(
                f"ladder must be a DegradationLadder, got {ladder!r}"
            )
        if not 0.0 < high_watermark <= 1.0:
            raise ConfigurationError(
                f"high_watermark must be in (0, 1], got {high_watermark!r}"
            )
        if not 0.0 <= low_watermark < high_watermark:
            raise ConfigurationError(
                "low_watermark must satisfy 0 <= low < high, got "
                f"{low_watermark!r} vs {high_watermark!r}"
            )
        if patience < 1 or recovery_patience < 1:
            raise ConfigurationError(
                "patience and recovery_patience must be >= 1, got "
                f"{patience!r} and {recovery_patience!r}"
            )
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1], got {ewma_alpha!r}"
            )
        if latency_budget_s is not None and latency_budget_s <= 0.0:
            raise ConfigurationError(
                f"latency_budget_s must be > 0, got {latency_budget_s!r}"
            )
        self.ladder = ladder
        self.queue_capacity = int(queue_capacity)
        self.high_watermark = float(high_watermark)
        self.low_watermark = float(low_watermark)
        self.patience = int(patience)
        self.recovery_patience = int(recovery_patience)
        self.latency_budget_s = latency_budget_s
        self.ewma_alpha = float(ewma_alpha)
        self._rung = 0
        self._overloaded_streak = 0
        self._calm_streak = 0
        self._latency_ewma: Optional[float] = None

    @property
    def rung(self) -> int:
        """The current precision rung (0 = full precision)."""
        return self._rung

    @property
    def length(self) -> int:
        """The stream length the current rung serves at."""
        return self.ladder.lengths[self._rung]

    @property
    def latency_ewma_s(self) -> Optional[float]:
        return self._latency_ewma

    def observe(self, queue_depth: int, batch_latency_s: float) -> int:
        """Fold one batch observation in; return the rung to serve next."""
        if self._latency_ewma is None:
            self._latency_ewma = float(batch_latency_s)
        else:
            self._latency_ewma += self.ewma_alpha * (
                float(batch_latency_s) - self._latency_ewma
            )
        if self.queue_capacity > 0:
            pressure = queue_depth / self.queue_capacity
        else:
            # Unbounded queue: any sustained backlog beyond one full
            # batch of headroom counts as pressure.
            pressure = 1.0 if queue_depth > 0 else 0.0
        over_budget = (
            self.latency_budget_s is not None
            and self._latency_ewma > self.latency_budget_s
        )
        if pressure >= self.high_watermark or over_budget:
            self._overloaded_streak += 1
            self._calm_streak = 0
        elif pressure <= self.low_watermark and not over_budget:
            self._calm_streak += 1
            self._overloaded_streak = 0
        else:
            self._overloaded_streak = 0
            self._calm_streak = 0
        if (
            self._overloaded_streak >= self.patience
            and self._rung < len(self.ladder) - 1
        ):
            self._rung += 1
            self._overloaded_streak = 0
        elif self._calm_streak >= self.recovery_patience and self._rung > 0:
            self._rung -= 1
            self._calm_streak = 0
        return self._rung


def measure_rung_rmse(
    evaluator: Evaluator, lengths: Tuple[int, ...]
) -> Dict[int, Optional[float]]:
    """Measured RMSE of each ladder rung on the calibration grid.

    Evaluates ``np.linspace(0, 1, 33)`` once per rung under the
    evaluator's own spec truncated to the rung's length, and reports
    ``sqrt(mean(absolute_error**2))`` — the accuracy annotation that
    degraded responses carry.  Deterministic whenever the evaluator
    is (the server requires ``row_independent``, which implies it).
    """
    grid = np.linspace(0.0, 1.0, _CALIBRATION_POINTS)
    rmse: Dict[int, Optional[float]] = {}
    for rung, length in enumerate(lengths):
        session = evaluator.with_options(length=length)
        errors = np.asarray(session.evaluate(grid).absolute_errors, dtype=float)
        rmse[rung] = float(math.sqrt(float(np.mean(errors**2))))
    return rmse


def rung_rmse_table(
    rmse: Dict[int, Optional[float]], lengths: Tuple[int, ...]
) -> List[Tuple[int, int, Optional[float]]]:
    """(rung, length, rmse) rows for reports and benchmarks."""
    return [
        (rung, length, rmse.get(rung)) for rung, length in enumerate(lengths)
    ]

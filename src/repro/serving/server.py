"""Async micro-batched serving on top of an :class:`~repro.session.Evaluator`.

The ROADMAP's north star is production-scale serving: many concurrent
clients, each asking for one circuit evaluation.  Per-request engine
calls would waste the whole point of the batched engine — a batch of one
costs almost as much as a batch of hundreds.  :class:`BatchServer`
coalesces concurrent ``submit(x)`` requests into one sharded
:meth:`~repro.session.Evaluator.evaluate` call, and hardens that core
loop for sustained overload:

* **Admission control** (:mod:`repro.serving.admission`): a bounded
  request queue with an explicit policy — ``"block"`` (backpressure),
  ``"shed"`` (typed :class:`~repro.errors.OverloadedError`) or
  ``"degrade"`` (precision ladder, below).  Per-request deadlines are
  enforced at the door *and* at batch formation, failing hopeless
  requests with :class:`~repro.errors.DeadlineExceededError` instead of
  letting them occupy batch slots.
* **Resilience** (:mod:`repro.serving.resilience`): evaluation runs on
  a dedicated server-owned executor (shut down in :meth:`stop`),
  transient evaluator failures retry with seeded jittered backoff, and
  a circuit breaker fails requests fast while the engine is known-bad.
* **Graceful degradation** (:mod:`repro.serving.degradation`): under
  sustained pressure the server steps down a ladder of shorter
  stream-length rungs — stochastic computing's progressive precision —
  serving everyone at a measured RMSE cost instead of shedding.
* **Observability** (:mod:`repro.serving.metrics`): every admission,
  resilience and degradation event is counted; :meth:`metrics` exports
  an immutable :class:`~repro.serving.metrics.MetricsSnapshot`.

The served session's :class:`~repro.simulation.runtime.RuntimeConfig`
knobs — workers, chunking, the engine's compute ``kernel``
(``"numpy"``/``"packed"``/``"numba"``) and the shard ``transport``
(``"pickle"``/``"shm"`` zero-copy shared memory) — flow straight
through :meth:`~repro.session.Evaluator.evaluate`, so a server can be
pointed at the packed bit-plane kernel and shared-memory sharding for
throughput without any serving-side change, and serves the same bits.

Determinism contract
--------------------
Coalescing must never change an answer.  The server therefore requires a
**row-independent** session (``Evaluator.row_independent``: pinned seed
space, noiseless receiver) by default — each request's result is then a
pure function of its input, bit-identical whether it was served alone or
inside any micro-batch (the benchmark's exit gate).  Sessions whose
per-row noise seeds depend on batch position can still be served with
``allow_row_dependent=True``; each micro-batch then equals a direct
``evaluate`` call on the coalesced inputs, but per-request values depend
on how requests happened to coalesce.  Degraded rungs keep the same
guarantee at their own length: rung ``r`` serves exactly the bits a
direct ``evaluate`` under ``spec.with_length(ladder.lengths[r])``
would produce.

>>> async def client(server, x):
...     return await server.submit(x)
>>> async def main(evaluator):
...     async with BatchServer(evaluator) as server:
...         return await asyncio.gather(*(client(server, x) for x in xs))
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from types import TracebackType
from typing import Any, Dict, List, Optional, Sequence, Type

import numpy as np

from ..errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
)
from ..session import Evaluator
from .admission import (
    ADMISSION_POLICIES,
    DEFAULT_MAX_QUEUE,
    POLICY_DEGRADE,
    AdmissionQueue,
    Request,
)
from .degradation import (
    DegradationController,
    DegradationLadder,
    measure_rung_rmse,
)
from .metrics import MetricsRecorder, MetricsSnapshot, ServingStats
from .resilience import (
    BREAKER_CLOSED,
    CircuitBreaker,
    Clock,
    MonotonicClock,
    RetryPolicy,
)

__all__ = ["BatchServer"]

#: Smoothing factor for the batch service-time EWMA that feeds both the
#: admission-time deadline feasibility check and the degradation
#: controller's latency signal.
_SERVICE_TIME_ALPHA = 0.2

#: Default degradation ladder derived from the bound spec's length when
#: ``policy="degrade"`` and no explicit ladder is given: full precision,
#: then two 4x steps down — the paper's accuracy-vs-length sweep points.
_DEFAULT_LADDER_STEPS = (1, 4, 16)


class BatchServer:
    """Coalesce concurrent evaluation requests into micro-batched engine calls.

    Parameters
    ----------
    evaluator:
        The bound :class:`~repro.session.Evaluator` session to serve.
        Must be row-independent (see module docstring) unless
        *allow_row_dependent* is set.
    max_batch_size:
        Upper bound on requests coalesced into one engine call.
    max_batch_delay_s:
        How long the batcher waits for stragglers after the first
        request of a batch arrives.  Zero still coalesces everything
        already queued (pure opportunistic batching).
    allow_row_dependent:
        Serve sessions whose per-request results depend on batch
        composition (see the determinism contract above).
    policy:
        Admission policy: ``"block"`` (default; backpressure),
        ``"shed"`` or ``"degrade"``.
    max_queue:
        Bound on queued requests (0 = unbounded, the legacy
        behaviour's memory hazard — kept only as a benchmark baseline).
    default_deadline_s:
        Deadline applied to every ``submit`` that does not pass its
        own; ``None`` serves without deadlines.
    retry:
        Optional :class:`~repro.serving.resilience.RetryPolicy` for
        transient evaluator failures.  ``None`` (default) keeps the
        legacy fail-fast behaviour: the first error reaches callers.
    breaker:
        Optional :class:`~repro.serving.resilience.CircuitBreaker`.
    ladder:
        Optional :class:`~repro.serving.degradation.DegradationLadder`
        of stream-length rungs (rung 0 must equal the bound spec's
        length).  Required semantics for ``policy="degrade"``; a
        default ladder (length, length/4, length/16) is derived when
        omitted there.
    degradation:
        Optional pre-configured
        :class:`~repro.serving.degradation.DegradationController`
        (its ladder is used); lets callers tune watermarks/patience or
        inject a controller for deterministic tests.
    measure_rmse:
        Measure each ladder rung's RMSE on the calibration grid at
        :meth:`start` so degraded responses carry their accuracy
        annotation from the first snapshot (degrade policy only).
    clock:
        Injectable time source; tests pass a
        :class:`~repro.serving.resilience.ManualClock` to make every
        deadline/retry/breaker scenario deterministic.
    executor_workers:
        Threads in the server-owned evaluation executor.

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.  The evaluation itself runs on the
    server's own thread executor so the event loop stays responsive
    while numpy (or the runtime's process pool) does the heavy lifting.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        max_batch_size: int = 256,
        max_batch_delay_s: float = 0.002,
        allow_row_dependent: bool = False,
        policy: str = "block",
        max_queue: int = DEFAULT_MAX_QUEUE,
        default_deadline_s: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        ladder: Optional[DegradationLadder] = None,
        degradation: Optional[DegradationController] = None,
        measure_rmse: bool = True,
        clock: Optional[Clock] = None,
        executor_workers: int = 1,
    ) -> None:
        if not isinstance(evaluator, Evaluator):
            raise ConfigurationError(
                f"evaluator must be a repro.session.Evaluator, got "
                f"{evaluator!r}"
            )
        if int(max_batch_size) < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {max_batch_size!r}"
            )
        if float(max_batch_delay_s) < 0.0:
            raise ConfigurationError(
                f"max_batch_delay_s must be >= 0, got {max_batch_delay_s!r}"
            )
        if not evaluator.row_independent and not allow_row_dependent:
            raise ConfigurationError(
                "BatchServer requires a row-independent session (fixed "
                "base_seed or counter randomizer, noisy=False) so that "
                "coalescing never changes a result; pass "
                "allow_row_dependent=True to serve this session anyway"
            )
        if policy not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"admission policy must be one of {ADMISSION_POLICIES}, "
                f"got {policy!r}"
            )
        if not isinstance(max_queue, int) or isinstance(max_queue, bool):
            raise ConfigurationError(
                f"max_queue must be an integer, got {max_queue!r}"
            )
        if max_queue < 0:
            raise ConfigurationError(
                f"max_queue must be >= 0 (0 = unbounded), got {max_queue!r}"
            )
        if default_deadline_s is not None and float(default_deadline_s) <= 0.0:
            raise ConfigurationError(
                f"default_deadline_s must be > 0, got {default_deadline_s!r}"
            )
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise ConfigurationError(
                f"retry must be a RetryPolicy, got {retry!r}"
            )
        if breaker is not None and not isinstance(breaker, CircuitBreaker):
            raise ConfigurationError(
                f"breaker must be a CircuitBreaker, got {breaker!r}"
            )
        if int(executor_workers) < 1:
            raise ConfigurationError(
                f"executor_workers must be >= 1, got {executor_workers!r}"
            )
        if degradation is not None:
            if not isinstance(degradation, DegradationController):
                raise ConfigurationError(
                    "degradation must be a DegradationController, got "
                    f"{degradation!r}"
                )
            if ladder is not None and ladder is not degradation.ladder:
                raise ConfigurationError(
                    "pass either ladder= or degradation= (whose controller "
                    "already owns a ladder), not two different ladders"
                )
            ladder = degradation.ladder
        if ladder is None and policy == POLICY_DEGRADE:
            length = evaluator.spec.length
            lengths = []
            for step in _DEFAULT_LADDER_STEPS:
                rung_length = max(1, length // step)
                if not lengths or rung_length < lengths[-1]:
                    lengths.append(rung_length)
            ladder = DegradationLadder(tuple(lengths))
        if ladder is not None:
            if not isinstance(ladder, DegradationLadder):
                raise ConfigurationError(
                    f"ladder must be a DegradationLadder, got {ladder!r}"
                )
            if ladder.lengths[0] != evaluator.spec.length:
                raise ConfigurationError(
                    "ladder rung 0 must be the bound spec's full length "
                    f"({evaluator.spec.length}), got {ladder.lengths[0]}"
                )
        self._evaluator = evaluator
        self._max_batch_size = int(max_batch_size)
        self._max_batch_delay_s = float(max_batch_delay_s)
        self._policy = policy
        self._max_queue = int(max_queue)
        self._default_deadline_s = (
            None if default_deadline_s is None else float(default_deadline_s)
        )
        self._retry = retry
        self._breaker = breaker
        self._ladder = ladder
        self._measure_rmse = bool(measure_rmse)
        self._clock: Clock = MonotonicClock() if clock is None else clock
        self._executor_workers = int(executor_workers)
        self._queue: Optional[AdmissionQueue] = None
        self._worker: Optional[asyncio.Task[None]] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stopping = False
        self._accepting = False
        self._metrics = MetricsRecorder()
        self._service_time_ewma: Optional[float] = None
        self._controller: Optional[DegradationController] = None
        self._rung_sessions: Dict[int, Evaluator] = {}
        self._rung_rmse: Dict[int, Optional[float]] = {}
        if degradation is not None:
            self._controller = degradation
        elif ladder is not None:
            self._controller = DegradationController(
                ladder, queue_capacity=self._max_queue
            )

    @property
    def evaluator(self) -> Evaluator:
        """The served session."""
        return self._evaluator

    @property
    def stats(self) -> ServingStats:
        """Requests served, engine calls issued, largest micro-batch."""
        return ServingStats(
            requests=self._metrics.served,
            batches=self._metrics.batches,
            largest_batch=self._metrics.largest_batch,
        )

    def metrics(self) -> MetricsSnapshot:
        """Immutable snapshot of every serving counter and distribution."""
        return self._metrics.snapshot(
            breaker_state=(
                self._breaker.state if self._breaker else BREAKER_CLOSED
            ),
            current_rung=self._controller.rung if self._controller else 0,
            rung_rmse=dict(self._rung_rmse),
        )

    @property
    def running(self) -> bool:
        """Whether the batcher task is accepting requests."""
        return (
            self._worker is not None
            and not self._worker.done()
            and self._accepting
        )

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "BatchServer":
        """Start the batcher task on the running event loop."""
        if self._worker is not None and not self._worker.done():
            raise ConfigurationError("server is already running")
        self._queue = AdmissionQueue(
            maxsize=self._max_queue, policy=self._policy
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_workers,
            thread_name_prefix="repro-serving",
        )
        self._stopping = False
        self._accepting = True
        if (
            self._ladder is not None
            and self._measure_rmse
            and not self._rung_rmse
        ):
            loop = asyncio.get_running_loop()
            self._rung_rmse = await loop.run_in_executor(
                self._executor,
                measure_rung_rmse,
                self._evaluator,
                self._ladder.lengths,
            )
        self._worker = asyncio.create_task(self._serve())
        return self

    async def stop(self) -> None:
        """Drain pending requests, then stop the batcher task.

        Shutdown is atomic with respect to ``submit``: the first thing
        this method does is flip the accepting flag, so any submission
        that arrives after ``stop()`` began is rejected with
        :class:`~repro.errors.ConfigurationError` instead of racing the
        shutdown sentinel.  Requests already admitted are drained and
        served; if the batcher cannot serve them (executor died), their
        futures are failed — never left hanging.
        """
        if self._worker is None:
            return
        self._accepting = False
        self._stopping = True
        assert self._queue is not None
        if not self._worker.done():
            await self._queue.put_sentinel()  # wake the batcher
        try:
            await self._worker
        finally:
            # Sweep until the queue stays empty across a scheduler
            # yield: each drained slot may wake a blocked putter whose
            # request lands after our synchronous drain, and that
            # request's future must be failed, never orphaned.
            while True:
                self._fail_leftovers(
                    ConfigurationError(
                        "server stopped before this request could be served"
                    )
                )
                await asyncio.sleep(0)
                if self._queue.empty():
                    break
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            self._worker = None
            self._queue = None

    async def __aenter__(self) -> "BatchServer":
        return await self.start()

    async def __aexit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        await self.stop()

    def _fail_leftovers(self, error: Exception) -> None:
        """Fail any requests still queued after the batcher exited."""
        if self._queue is None:
            return
        while True:
            try:
                request = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            if request is None:
                continue
            if not request.future.done():
                self._metrics.failed += 1
                request.future.set_exception(error)

    # -- client API ------------------------------------------------------------

    async def submit(
        self, x: float, deadline_s: Optional[float] = None
    ) -> float:
        """Submit one input; resolves to its de-randomized output.

        Validation is per-request and eager, so a malformed input fails
        its own caller instead of poisoning the micro-batch it would
        have joined.  *deadline_s* (falling back to the server's
        ``default_deadline_s``) is the caller's latency budget from
        this moment; a request that misses it fails with
        :class:`~repro.errors.DeadlineExceededError`, and one that
        provably cannot meet it (budget below the measured batch
        service time) is refused at admission.
        """
        if not self.running:
            if self._worker is not None and self._stopping:
                raise ConfigurationError(
                    "server is stopping; new submissions are rejected"
                )
            raise ConfigurationError(
                "server is not running; use 'async with BatchServer(...)' "
                "or await server.start() first"
            )
        try:
            x = float(x)
        except (TypeError, ValueError):
            raise ConfigurationError(f"x must be a number in [0, 1], got {x!r}")
        if not 0.0 <= x <= 1.0:
            raise ConfigurationError(f"x must be in [0, 1], got {x!r}")
        if deadline_s is not None and float(deadline_s) <= 0.0:
            raise ConfigurationError(
                f"deadline_s must be > 0, got {deadline_s!r}"
            )
        budget = deadline_s if deadline_s is not None else self._default_deadline_s
        now = self._clock.time()
        future: "asyncio.Future[float]" = (
            asyncio.get_running_loop().create_future()
        )
        request = Request(
            x=x,
            future=future,
            deadline=None if budget is None else now + float(budget),
            submitted_at=now,
        )
        self._metrics.submitted += 1
        assert self._queue is not None
        try:
            await self._queue.admit(
                request, now, self._service_time_ewma or 0.0
            )
        except OverloadedError:
            self._metrics.shed += 1
            raise
        except DeadlineExceededError:
            self._metrics.expired += 1
            raise
        self._metrics.admitted += 1
        self._metrics.record_queue_depth(self._queue.depth())
        return await future

    async def submit_many(self, xs: Sequence[float]) -> List[float]:
        """Submit many inputs concurrently; resolves in input order."""
        return list(await asyncio.gather(*(self.submit(x) for x in xs)))

    # -- batcher ---------------------------------------------------------------

    async def _serve(self) -> None:
        queue = self._queue
        assert queue is not None
        while True:
            request = await queue.get()
            if request is None:
                if queue.empty():
                    return
                continue  # shutdown sentinel raced ahead of late requests
            batch = await self._collect(request)
            batch = self._admit_to_batch(batch)
            if batch:
                await self._evaluate_batch(batch)
            if self._stopping and queue.empty():
                return

    async def _collect(self, first: Request) -> List[Request]:
        """Coalesce requests behind *first* until size or deadline."""
        loop = asyncio.get_running_loop()
        queue = self._queue
        assert queue is not None
        batch = [first]
        deadline = loop.time() + self._max_batch_delay_s
        while len(batch) < self._max_batch_size:
            remaining = deadline - loop.time()
            if remaining <= 0 or self._stopping:
                # Deadline passed: take only what is already queued.
                try:
                    request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                try:
                    request = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if request is None:
                # Shutdown sentinel: finish this batch, then let the
                # serve loop drain whatever raced in behind it.
                self._stopping = True
                break
            batch.append(request)
        return batch

    def _admit_to_batch(self, batch: List[Request]) -> List[Request]:
        """Deadline and liveness gate at batch formation.

        Cancelled submissions (client gave up, e.g. an
        ``asyncio.wait_for`` timeout) are dropped here so a dead future
        never reaches ``set_result``; requests whose deadline has
        passed — or whose remaining budget is below the measured batch
        service time — are failed with
        :class:`~repro.errors.DeadlineExceededError` instead of
        occupying a batch slot whose result nobody will read.
        """
        now = self._clock.time()
        estimate = self._service_time_ewma or 0.0
        admitted: List[Request] = []
        for request in batch:
            if request.future.done():
                self._metrics.cancelled += 1
                continue
            if request.expired(now):
                self._metrics.expired += 1
                request.future.set_exception(
                    DeadlineExceededError(
                        "deadline expired "
                        f"{now - (request.deadline or now):.6f}s before the "
                        "request reached a batch"
                    )
                )
                continue
            if request.remaining(now) < estimate:
                self._metrics.expired += 1
                request.future.set_exception(
                    DeadlineExceededError(
                        f"remaining budget {request.remaining(now):.6f}s is "
                        "below the measured batch service time "
                        f"{estimate:.6f}s"
                    )
                )
                continue
            admitted.append(request)
        return admitted

    def _session_for_rung(self, rung: int) -> Evaluator:
        if rung == 0 or self._ladder is None:
            return self._evaluator
        session = self._rung_sessions.get(rung)
        if session is None:
            session = self._evaluator.with_options(
                length=self._ladder.lengths[rung]
            )
            self._rung_sessions[rung] = session
        return session

    async def _evaluate_batch(self, batch: List[Request]) -> None:
        loop = asyncio.get_running_loop()
        started = self._clock.time()
        if self._breaker is not None and not self._breaker.allow(started):
            self._metrics.breaker_rejected += len(batch)
            error = CircuitOpenError(
                "circuit breaker is open: the evaluator failed "
                f"{self._breaker.failure_threshold} consecutive batches; "
                f"retrying after {self._breaker.recovery_time_s}s"
            )
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(error)
            return
        rung = self._controller.rung if self._controller is not None else 0
        session = self._session_for_rung(rung)
        xs = np.asarray([request.x for request in batch], dtype=float)
        delays = self._retry.delays() if self._retry is not None else ()
        values: Optional["np.ndarray[Any, Any]"] = None
        for attempt in range(len(delays) + 1):
            try:
                engine_call = loop.run_in_executor(
                    self._executor, session.evaluate, xs
                )
            except RuntimeError:
                # The executor is gone (died or shut down under us):
                # nothing can serve these futures — fail, never hang.
                self._fail_batch(
                    batch,
                    ConfigurationError(
                        "server executor is shut down; request cannot be "
                        "served"
                    ),
                )
                return
            try:
                result = await engine_call
                values = np.asarray(result.values, dtype=float)
                break
            except Exception as error:  # deliver the failure to every caller
                transient = RetryPolicy.is_transient(error)
                if transient and attempt < len(delays):
                    self._metrics.retried += 1
                    await self._clock.sleep(delays[attempt])
                    continue
                if self._breaker is not None:
                    self._breaker.record_failure(self._clock.time())
                    self._metrics.breaker_opened = self._breaker.times_opened
                self._fail_batch(batch, error)
                return
        assert values is not None
        finished = self._clock.time()
        service_time = finished - started
        if self._service_time_ewma is None:
            self._service_time_ewma = service_time
        else:
            self._service_time_ewma += _SERVICE_TIME_ALPHA * (
                service_time - self._service_time_ewma
            )
        if self._breaker is not None:
            self._breaker.record_success(finished)
        latencies = [finished - request.submitted_at for request in batch]
        self._metrics.record_batch(
            rung=rung,
            length=session.spec.length,
            size=len(batch),
            latencies=latencies,
        )
        if self._controller is not None and self._queue is not None:
            self._controller.observe(self._queue.depth(), service_time)
        for request, value in zip(batch, values):
            if not request.future.done():
                request.future.set_result(float(value))
            else:
                self._metrics.cancelled += 1

    def _fail_batch(self, batch: List[Request], error: Exception) -> None:
        for request in batch:
            if not request.future.done():
                self._metrics.failed += 1
                request.future.set_exception(error)
            else:
                self._metrics.cancelled += 1

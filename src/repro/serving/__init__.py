"""Hardened micro-batched serving for evaluator sessions.

The package split of the original ``repro/serving.py`` micro-batcher:

* :mod:`~repro.serving.server` — the :class:`BatchServer` core loop.
* :mod:`~repro.serving.admission` — bounded queue, overload policies,
  per-request deadlines.
* :mod:`~repro.serving.resilience` — injectable clock, seeded retry
  backoff, circuit breaker.
* :mod:`~repro.serving.degradation` — the progressive-precision ladder
  and its hysteretic controller.
* :mod:`~repro.serving.metrics` — counters, histograms, per-rung
  latency percentiles.

``from repro.serving import BatchServer, ServingStats`` keeps working
exactly as before the split.
"""

from __future__ import annotations

from .admission import (
    ADMISSION_POLICIES,
    DEFAULT_MAX_QUEUE,
    AdmissionQueue,
    Request,
)
from .degradation import (
    DegradationController,
    DegradationLadder,
    measure_rung_rmse,
)
from .metrics import (
    HistogramSnapshot,
    MetricsSnapshot,
    RungMetrics,
    ServingStats,
)
from .resilience import (
    CircuitBreaker,
    Clock,
    ManualClock,
    MonotonicClock,
    RetryPolicy,
)
from .server import BatchServer

__all__ = [
    "ADMISSION_POLICIES",
    "DEFAULT_MAX_QUEUE",
    "AdmissionQueue",
    "BatchServer",
    "CircuitBreaker",
    "Clock",
    "DegradationController",
    "DegradationLadder",
    "HistogramSnapshot",
    "ManualClock",
    "MetricsSnapshot",
    "MonotonicClock",
    "Request",
    "RetryPolicy",
    "RungMetrics",
    "ServingStats",
    "measure_rung_rmse",
]

"""Failure isolation for the serving tier: clock, retries, breaker.

Everything time-like in the server flows through one injectable
:class:`Clock`, and every random delay through one seeded jitter
source.  That is the repo's bit-exactness discipline applied to
resilience code: a retry/backoff/breaker scenario is a deterministic
function of (seeded clock, seeded jitter, failure script), so the
tests in ``tests/test_serving_resilience.py`` assert exact counter
values instead of sleeping and hoping (see CONTRIBUTING "Testing
resilience code with a seeded clock").

* :class:`MonotonicClock` — the production clock (``time.monotonic``
  plus real ``asyncio.sleep``).
* :class:`ManualClock` — the test clock: time only moves when the test
  advances it, and ``sleep`` *is* an advance (it yields to the event
  loop exactly once, so task interleaving stays deterministic too).
* :class:`RetryPolicy` — jittered exponential backoff with a pinned
  jitter seed; ``delays()`` is the same tuple every batch, every run.
* :class:`CircuitBreaker` — consecutive-failure trip, timed half-open
  probe.  Pure state machine over caller-supplied ``now`` values; it
  never reads a wall clock itself.
"""

from __future__ import annotations

import asyncio
import operator
import time
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "RetryPolicy",
]

#: Default jitter seed: named so RetryPolicy delay sequences are
#: auditable and reproducible across processes (RL001 discipline).
DEFAULT_JITTER_SEED: int = 0x5EED_B0FF


class Clock:
    """The server's single source of time.

    ``time()`` is a monotonic float in seconds; ``sleep()`` suspends
    the calling coroutine.  Deadlines, backoff delays, breaker
    recovery windows and latency metrics all read this object, so
    substituting :class:`ManualClock` makes the whole serving tier's
    temporal behaviour a pure function of the test script.
    """

    def time(self) -> float:
        raise NotImplementedError

    async def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class MonotonicClock(Clock):
    """Production clock: ``time.monotonic`` + real ``asyncio.sleep``."""

    def time(self) -> float:
        return time.monotonic()

    async def sleep(self, seconds: float) -> None:
        await asyncio.sleep(seconds)


class ManualClock(Clock):
    """Deterministic test clock: time moves only when told to.

    ``sleep`` advances the clock by the requested amount and yields to
    the event loop exactly once — backoff sequences complete instantly
    in wall time while remaining observable in clock time.  ``advance``
    moves time from the test body (thread-safe enough for the single
    float it mutates: the GIL makes the store atomic, and tests
    advance between awaits, not concurrently with readers).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def time(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ConfigurationError(
                f"cannot advance a monotonic clock by {seconds!r}"
            )
        self._now += float(seconds)

    async def sleep(self, seconds: float) -> None:
        if seconds > 0.0:
            self._now += float(seconds)
        await asyncio.sleep(0)


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for transient evaluator failures.

    ``attempts`` is the total number of engine calls per batch
    (first try included); ``delays()`` returns the ``attempts - 1``
    back-off sleeps between them: ``base_delay_s * multiplier**i``
    capped at ``max_delay_s``, each scaled by ``1 + jitter * u_i``
    with ``u_i`` drawn from a generator seeded with ``jitter_seed`` —
    the same tuple for every batch, so tests and replays see identical
    schedules while concurrent real-world batches still decorrelate
    through their interleaving.

    Only *transient* failures are retried: :class:`ConfigurationError`
    (and its subclasses) is a caller bug that no amount of retrying
    fixes, so it fails the batch immediately.
    """

    attempts: int = 3
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.25
    jitter_seed: int = DEFAULT_JITTER_SEED

    def __post_init__(self) -> None:
        for name in ("attempts", "jitter_seed"):
            value = getattr(self, name)
            try:
                object.__setattr__(self, name, operator.index(value))
            except TypeError:
                raise ConfigurationError(
                    f"{name} must be an integer, got {value!r}"
                ) from None
        if self.attempts < 1:
            raise ConfigurationError(
                f"attempts must be >= 1, got {self.attempts!r}"
            )
        for name in ("base_delay_s", "multiplier", "max_delay_s", "jitter"):
            value = float(getattr(self, name))
            object.__setattr__(self, name, value)
            if value < 0.0:
                raise ConfigurationError(
                    f"{name} must be >= 0, got {value!r}"
                )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier!r}"
            )
        if self.jitter > 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter!r}"
            )

    def delays(self) -> Tuple[float, ...]:
        """The deterministic back-off schedule between attempts."""
        if self.attempts == 1:
            return ()
        rng = np.random.default_rng(self.jitter_seed)
        delays = []
        for index in range(self.attempts - 1):
            base = min(
                self.max_delay_s, self.base_delay_s * self.multiplier**index
            )
            scale = 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
            delays.append(base * scale)
        return tuple(delays)

    @staticmethod
    def is_transient(error: BaseException) -> bool:
        """Whether *error* is worth retrying (not a configuration bug)."""
        return isinstance(error, Exception) and not isinstance(
            error, ConfigurationError
        )


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a timed half-open probe.

    Closed → (``failure_threshold`` consecutive batch failures) →
    open.  While open, the server fails requests fast with
    :class:`~repro.errors.CircuitOpenError` instead of queueing them
    behind a known-bad evaluator.  After ``recovery_time_s`` the next
    request is admitted as a *probe* (half-open); its success closes
    the breaker and resets the failure count, its failure re-opens the
    window from scratch.

    The breaker is a pure state machine: every transition is driven by
    a ``now`` the caller reads from the server's :class:`Clock`, which
    is what lets the tests walk it through trip → fast-fail →
    half-open → close with exact assertions and zero sleeps.
    """

    def __init__(
        self, failure_threshold: int = 5, recovery_time_s: float = 1.0
    ) -> None:
        try:
            failure_threshold = operator.index(failure_threshold)
        except TypeError:
            raise ConfigurationError(
                "failure_threshold must be an integer, got "
                f"{failure_threshold!r}"
            ) from None
        if failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if float(recovery_time_s) <= 0.0:
            raise ConfigurationError(
                f"recovery_time_s must be > 0, got {recovery_time_s!r}"
            )
        self.failure_threshold = failure_threshold
        self.recovery_time_s = float(recovery_time_s)
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._times_opened = 0

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"``."""
        return self._state

    @property
    def times_opened(self) -> int:
        """How many times the breaker has tripped over its lifetime."""
        return self._times_opened

    def allow(self, now: float) -> bool:
        """Whether a batch may proceed at *now* (may move open→half-open)."""
        if self._state == BREAKER_OPEN:
            if now - self._opened_at >= self.recovery_time_s:
                self._state = BREAKER_HALF_OPEN
                return True
            return False
        return True

    def record_success(self, now: float) -> None:
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0

    def record_failure(self, now: float) -> None:
        self._consecutive_failures += 1
        if (
            self._state == BREAKER_HALF_OPEN
            or self._consecutive_failures >= self.failure_threshold
        ):
            if self._state != BREAKER_OPEN:
                self._times_opened += 1
            self._state = BREAKER_OPEN
            self._opened_at = now
            self._consecutive_failures = 0

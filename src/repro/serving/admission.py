"""Admission control: the bounded request queue and its overload policy.

The original micro-batcher queued every ``submit`` on an unbounded
:class:`asyncio.Queue`; under sustained overload that is an
out-of-memory with extra steps.  This module makes the decision at the
*door* explicit:

* ``"block"`` — classic backpressure: ``submit`` awaits queue space,
  so fast producers are paced to the evaluator's throughput.
* ``"shed"`` — fail fast: a full queue raises a typed
  :class:`~repro.errors.OverloadedError` so the client can back off.
* ``"degrade"`` — the stochastic-computing answer: admit like
  ``block`` but let the degradation controller step the session down
  the precision ladder (shorter bitstreams drain the queue faster at
  a measured accuracy cost); only a queue that is full *despite* the
  ladder sheds, as the last resort.

Deadlines ride on the admitted request.  A request whose budget is
already smaller than the measured batch service time is refused at the
door (``DeadlineExceededError``) rather than admitted to die in the
queue.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError, DeadlineExceededError, OverloadedError

__all__ = [
    "ADMISSION_POLICIES",
    "POLICY_BLOCK",
    "POLICY_DEGRADE",
    "POLICY_SHED",
    "AdmissionQueue",
    "Request",
]

POLICY_BLOCK = "block"
POLICY_SHED = "shed"
POLICY_DEGRADE = "degrade"

ADMISSION_POLICIES: Tuple[str, ...] = (POLICY_BLOCK, POLICY_SHED, POLICY_DEGRADE)

#: Default queue capacity.  Deep enough that the pre-package tests and
#: examples (hundreds of in-flight requests) never notice the bound,
#: shallow enough that a saturated server's memory stays flat.
DEFAULT_MAX_QUEUE = 1024


@dataclass
class Request:
    """One admitted ``submit`` travelling from the door to a batch slot."""

    x: float
    future: "asyncio.Future[float]"
    deadline: Optional[float]
    submitted_at: float

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline

    def remaining(self, now: float) -> float:
        """Time budget left; ``inf`` for deadline-free requests."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - now


class AdmissionQueue:
    """Bounded request queue with an explicit overload policy.

    ``maxsize=0`` keeps the legacy unbounded behaviour (the saturation
    benchmark uses it as the memory-growth baseline); any positive
    ``maxsize`` bounds in-flight requests and routes the full-queue
    case through *policy*.
    """

    def __init__(self, maxsize: int = DEFAULT_MAX_QUEUE, policy: str = POLICY_BLOCK) -> None:
        if policy not in ADMISSION_POLICIES:
            raise ConfigurationError(
                f"admission policy must be one of {ADMISSION_POLICIES}, got {policy!r}"
            )
        if not isinstance(maxsize, int) or isinstance(maxsize, bool):
            raise ConfigurationError(
                f"max_queue must be an integer, got {maxsize!r}"
            )
        if maxsize < 0:
            raise ConfigurationError(
                f"max_queue must be >= 0 (0 = unbounded), got {maxsize!r}"
            )
        self.policy = policy
        self.maxsize = maxsize
        self._queue: "asyncio.Queue[Optional[Request]]" = asyncio.Queue(maxsize=maxsize)

    def depth(self) -> int:
        return self._queue.qsize()

    async def admit(
        self, request: Request, now: float, service_time_estimate: float
    ) -> None:
        """Admit *request* or raise the policy's typed refusal.

        The deadline gate runs first: a request that provably cannot
        be served in time (budget below the measured batch service
        time EWMA) is refused with :class:`DeadlineExceededError`
        regardless of queue headroom — admitting it would only burn a
        batch slot on a result nobody will read.
        """
        if request.deadline is not None:
            if request.expired(now):
                raise DeadlineExceededError(
                    f"deadline expired {now - request.deadline:.6f}s before admission"
                )
            if request.remaining(now) < service_time_estimate:
                raise DeadlineExceededError(
                    "deadline budget "
                    f"{request.remaining(now):.6f}s is below the measured "
                    f"batch service time {service_time_estimate:.6f}s; "
                    "refusing at admission"
                )
        if self.policy == POLICY_BLOCK or self.maxsize == 0:
            await self._queue.put(request)
            return
        try:
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            raise OverloadedError(
                f"request queue is full ({self.maxsize} in flight); "
                + (
                    "the precision ladder could not absorb the load"
                    if self.policy == POLICY_DEGRADE
                    else "back off and retry"
                )
            ) from None

    async def put_sentinel(self) -> None:
        """Enqueue the shutdown sentinel.

        May briefly await space on a full bounded queue; that is safe
        exactly because ``stop()`` only sends the sentinel while the
        batcher task is alive and draining — the server guards the
        dead-batcher case separately and never awaits this then.
        """
        await self._queue.put(None)

    async def get(self) -> Optional[Request]:
        return await self._queue.get()

    def get_nowait(self) -> Optional[Request]:
        return self._queue.get_nowait()

    def empty(self) -> bool:
        return self._queue.empty()

"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from physical-model violations.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "PhysicalModelError",
    "DesignInfeasibleError",
    "CalibrationError",
    "SimulationError",
    "ServingError",
    "OverloadedError",
    "CircuitOpenError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter is outside its documented domain.

    Raised eagerly at object construction time (e.g. a coupling coefficient
    outside ``(0, 1]`` or a negative laser power) so that invalid models
    cannot silently propagate through a design-space sweep.
    """


class PhysicalModelError(ReproError):
    """An analytical model was evaluated outside its validity region."""


class DesignInfeasibleError(ReproError):
    """A design method cannot satisfy its constraints.

    Examples: the worst-case eye closes completely so no finite probe laser
    power reaches the BER target, or a WDM grid does not fit inside the
    filter free spectral range.
    """


class CalibrationError(ReproError):
    """A calibration fit failed to converge or missed its targets."""


class SimulationError(ReproError):
    """A functional or transient simulation reached an inconsistent state."""


class ServingError(ReproError):
    """Base class for request-path failures of the serving tier.

    Raised per request, never per server: one client's overload or
    missed deadline must not take the batcher down with it.
    """


class OverloadedError(ServingError):
    """The server shed this request to protect the ones it admitted.

    Raised by the ``"shed"`` admission policy when the bounded request
    queue is full (and by ``"degrade"`` as its last resort once the
    precision ladder alone cannot absorb the load).  Clients should
    back off and retry; the server stays healthy.
    """


class CircuitOpenError(OverloadedError):
    """The circuit breaker is open: the evaluator is failing repeatedly.

    Requests fail fast instead of queueing behind a known-bad engine.
    The breaker half-opens after its recovery timeout and lets one
    probe batch through; success closes it again.
    """


class DeadlineExceededError(ServingError):
    """The request's deadline passed (or provably cannot be met).

    Raised at batch formation: a request whose deadline has already
    expired — or whose remaining budget is smaller than the measured
    batch service time — is failed immediately instead of silently
    occupying a batch slot whose result nobody is waiting for.
    """

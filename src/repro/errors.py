"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from physical-model violations.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "PhysicalModelError",
    "DesignInfeasibleError",
    "CalibrationError",
    "SimulationError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter is outside its documented domain.

    Raised eagerly at object construction time (e.g. a coupling coefficient
    outside ``(0, 1]`` or a negative laser power) so that invalid models
    cannot silently propagate through a design-space sweep.
    """


class PhysicalModelError(ReproError):
    """An analytical model was evaluated outside its validity region."""


class DesignInfeasibleError(ReproError):
    """A design method cannot satisfy its constraints.

    Examples: the worst-case eye closes completely so no finite probe laser
    power reaches the BER target, or a WDM grid does not fit inside the
    filter free spectral range.
    """


class CalibrationError(ReproError):
    """A calibration fit failed to converge or missed its targets."""


class SimulationError(ReproError):
    """A functional or transient simulation reached an inconsistent state."""

"""Literature device presets used by the paper's evaluation.

Two kinds of presets live here:

* **MZI modulators** quoted from the silicon-photonics literature the paper
  cites ([10], [18], [19]).  Where the paper names a device but not its
  loss/extinction figures (the Fig. 6(c) bar chart), values are assigned
  inside the IL/ER ranges the paper itself explores in Fig. 6(a)
  (IL in [3, 7.4] dB, ER in [4, 7.6] dB) and marked as assumptions.

* **Calibrated ring profiles**.  The paper never states the quality
  factors or coupling coefficients of its rings.  Two profiles are frozen
  here, produced by :mod:`repro.core.calibration`:

  - ``COARSE_RING_PROFILE`` reproduces the Section V-A / Fig. 5 numbers on
    the 1 nm grid (total transmissions 0.091 / 0.004 / 0.0002 and 0.476,
    received bands 0.092-0.099 mW and 0.477-0.482 mW);
  - ``DENSE_RING_PROFILE`` reproduces the Fig. 6-7 studies on the
    0.1-0.3 nm grid (energy optimum at WLspacing = 0.165 nm and the
    20.1 pJ/bit headline; the Fig. 6(a) probe level then lands ~1.9x
    below the paper's 0.26 mW quote — see EXPERIMENTS.md deviations).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import PAPER_OTE_NM_PER_MW, PAPER_PULSE_WIDTH_S
from ..errors import ConfigurationError
from ..units import validate_positive
from .mzi import MZIModulator
from .nonlinear import OpticalTuningEfficiency
from .photodetector import Photodetector
from .ring import RingParameters, design_add_drop_ring, design_modulator_ring

__all__ = [
    "RingProfile",
    "ZIEBELL_2012",
    "XIAO_2013",
    "DONG_REF6",
    "THOMSON_REF12",
    "DONG_REF28",
    "STRESHINSKY_2013",
    "FIG6C_DEVICES",
    "VAN_2002_OTE",
    "VAN_2002_PULSE_WIDTH_S",
    "COARSE_RING_PROFILE",
    "DENSE_RING_PROFILE",
    "DEFAULT_PHOTODETECTOR",
]


@dataclass(frozen=True)
class RingProfile:
    """Ring technology assumed by one of the paper's studies.

    Bundles the modulator-ring and filter-ring coefficients with the
    electro-optic modulation shift ``delta_lambda`` (the ON-state
    blue-shift of a coefficient MRR).
    """

    modulator: RingParameters
    filter: RingParameters
    modulation_shift_nm: float
    name: str = ""

    def __post_init__(self) -> None:
        validate_positive(self.modulation_shift_nm, "modulation_shift_nm")
        if not isinstance(self.modulator, RingParameters):
            raise ConfigurationError("modulator must be RingParameters")
        if not isinstance(self.filter, RingParameters):
            raise ConfigurationError("filter must be RingParameters")


# --- MZI modulator presets -------------------------------------------------

ZIEBELL_2012 = MZIModulator(
    insertion_loss_db=4.5,
    extinction_ratio_db=3.2,
    modulation_speed_gbps=40.0,
    phase_shifter_length_mm=0.95,
    name="Ziebell et al. 2012 [10]",
)
"""40 Gb/s pipin-diode MZI: 4.5 dB IL, 3.2 dB ER (paper Section II-B).
The Section V-A design keeps this device's IL and *derives* the required
ER (13.22 dB) from the MRR-first method."""

XIAO_2013 = MZIModulator(
    insertion_loss_db=6.5,
    extinction_ratio_db=7.5,
    modulation_speed_gbps=60.0,
    phase_shifter_length_mm=0.75,
    name="Xiao et al. 2013 [19]",
)
"""60 Gb/s doping-optimized MZI quoted in Section V-B: IL 6.5 dB,
ER 7.5 dB, 0.75 mm phase shifter."""

DONG_REF6 = MZIModulator(
    insertion_loss_db=4.1,
    extinction_ratio_db=5.6,
    modulation_speed_gbps=50.0,
    phase_shifter_length_mm=1.0,
    name="Dong et al. (ref 6 in [19])",
)
"""50 Gb/s, 1 mm device of Fig. 6(c).  IL/ER not stated by the paper;
assigned inside the Fig. 6(a) exploration ranges (assumption)."""

THOMSON_REF12 = MZIModulator(
    insertion_loss_db=5.2,
    extinction_ratio_db=4.4,
    modulation_speed_gbps=40.0,
    phase_shifter_length_mm=1.0,
    name="Thomson et al. (ref 12 in [19])",
)
"""40 Gb/s, 1 mm device of Fig. 6(c).  IL/ER assigned (assumption)."""

DONG_REF28 = MZIModulator(
    insertion_loss_db=3.4,
    extinction_ratio_db=6.4,
    modulation_speed_gbps=40.0,
    phase_shifter_length_mm=4.0,
    name="Dong et al. (ref 28 in [18])",
)
"""40 Gb/s, 4 mm device of Fig. 6(c): the long phase shifter buys low loss
and strong extinction.  IL/ER assigned (assumption)."""

STRESHINSKY_2013 = MZIModulator(
    insertion_loss_db=4.0,
    extinction_ratio_db=6.9,
    modulation_speed_gbps=50.0,
    phase_shifter_length_mm=3.0,
    name="Streshinsky et al. 2013 [18]",
)
"""50 Gb/s traveling-wave MZI near 1300 nm [18] (assumed IL/ER)."""

FIG6C_DEVICES = (DONG_REF6, THOMSON_REF12, DONG_REF28, XIAO_2013)
"""The four devices of the Fig. 6(c) speed/area comparison, paper order."""


# --- all-optical filter tuning (Van et al. [14][15]) ------------------------

VAN_2002_OTE = OpticalTuningEfficiency(nm_per_mw=PAPER_OTE_NM_PER_MW)
"""Optical tuning efficiency from Van et al. [14]: 0.1 nm per 10 mW."""

VAN_2002_PULSE_WIDTH_S = PAPER_PULSE_WIDTH_S
"""Pump pulse width from Van et al. [15]: 26 ps."""


# --- calibrated ring profiles ------------------------------------------------
#
# The linewidths, leakage floor and drop peak below are the free constants
# the paper never states.  They were fitted by repro.core.calibration
# against the paper-quoted outputs listed in the module docstring; the fit
# scripts and acceptance tolerances live in tests/test_calibration.py.

COARSE_RING_PROFILE = RingProfile(
    modulator=design_modulator_ring(
        fsr_nm=20.0, fwhm_nm=0.209, through_floor=0.10, a=0.998
    ),
    filter=design_add_drop_ring(fsr_nm=20.0, fwhm_nm=0.18, drop_peak=0.91),
    modulation_shift_nm=0.10,
    name="coarse (Fig. 5, 1 nm grid)",
)
"""Ring technology of the Section V-A example: moderate-Q rings suited to
the 1 nm grid.  Calibrated so the Fig. 5 transmissions match the paper."""

DENSE_RING_PROFILE = RingProfile(
    modulator=design_modulator_ring(
        fsr_nm=40.0, fwhm_nm=0.115, through_floor=0.10, a=0.999
    ),
    filter=design_add_drop_ring(fsr_nm=40.0, fwhm_nm=0.115, drop_peak=0.91),
    modulation_shift_nm=0.10,
    name="dense (Figs. 6-7, 0.1-0.3 nm grid)",
)
"""Ring technology of the Fig. 6-7 studies: high-Q rings suited to dense
WDM grids.  Calibrated so the Fig. 7(a) energy optimum falls near
WLspacing = 0.165 nm and the headline energy near 20.1 pJ/bit."""


# --- receiver ---------------------------------------------------------------

DEFAULT_PHOTODETECTOR = Photodetector(
    responsivity_a_per_w=1.0,
    noise_current_a=8.43e-6,
)
"""Receiver assumed by the SNR model.  The paper states neither R nor i_n;
only the ratio R/i_n enters Eq. 8, and it is calibrated jointly with the
dense ring linewidth against the Fig. 7 energy targets (optimum at
0.165 nm, 20.1 pJ/bit) — see repro.core.calibration."""

"""Micro-ring resonator geometry.

Connects the physical layout of a ring (radius, effective and group index)
to the spectral quantities used by the transfer-function models in
:mod:`repro.photonics.ring`: free spectral range, resonance comb and exact
round-trip phase.  The transmission model of the paper only needs the
*detuning-relative* phase ``theta = 2*pi*(lambda - lambda_res)/FSR``; this
module provides the exact dispersive phase as well so that the
approximation can be validated (see ``tests/test_geometry.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import ArrayLike, validate_positive

__all__ = ["RingGeometry"]


@dataclass(frozen=True)
class RingGeometry:
    """Physical description of a circular micro-ring resonator.

    Parameters
    ----------
    radius_um:
        Ring radius (um).  Silicon micro-rings are typically 5-20 um.
    effective_index:
        Phase effective index ``n_eff`` of the bent waveguide mode.
    group_index:
        Group index ``n_g`` governing the free spectral range.  For silicon
        wire waveguides ``n_g`` is around 4.2-4.4.
    """

    radius_um: float
    effective_index: float = 2.4
    group_index: float = 4.3

    def __post_init__(self) -> None:
        validate_positive(self.radius_um, "radius_um")
        validate_positive(self.effective_index, "effective_index")
        validate_positive(self.group_index, "group_index")
        if self.group_index < self.effective_index:
            raise ConfigurationError(
                "group_index must be >= effective_index for a normally "
                f"dispersive waveguide (got n_g={self.group_index} < "
                f"n_eff={self.effective_index})"
            )

    @property
    def round_trip_length_um(self) -> float:
        """Circumference ``2*pi*R`` of the ring (um)."""
        return 2.0 * math.pi * self.radius_um

    def fsr_nm(self, wavelength_nm: float) -> float:
        """Free spectral range ``FSR = lambda^2 / (n_g * L)`` (nm)."""
        validate_positive(wavelength_nm, "wavelength_nm")
        length_nm = self.round_trip_length_um * 1e3
        return wavelength_nm**2 / (self.group_index * length_nm)

    @classmethod
    def for_fsr(
        cls,
        fsr_nm: float,
        wavelength_nm: float = 1550.0,
        effective_index: float = 2.4,
        group_index: float = 4.3,
    ) -> "RingGeometry":
        """Build the geometry whose FSR at *wavelength_nm* equals *fsr_nm*."""
        validate_positive(fsr_nm, "fsr_nm")
        validate_positive(wavelength_nm, "wavelength_nm")
        length_nm = wavelength_nm**2 / (group_index * fsr_nm)
        radius_um = length_nm / 1e3 / (2.0 * math.pi)
        return cls(
            radius_um=radius_um,
            effective_index=effective_index,
            group_index=group_index,
        )

    def round_trip_phase(self, wavelength_nm: ArrayLike) -> ArrayLike:
        """Exact round-trip phase ``theta = 2*pi*n_eff(lambda)*L/lambda``.

        A first-order dispersion model is used:
        ``n_eff(lambda) = n_eff(l0) - (n_g - n_eff)*(lambda - l0)/l0`` with
        ``l0`` the reference 1550 nm, which reproduces the group-index FSR.
        """
        wavelength_nm = np.asarray(wavelength_nm, dtype=float)
        if np.any(wavelength_nm <= 0.0):
            raise ConfigurationError("wavelength must be positive")
        reference_nm = 1550.0
        n_eff = self.effective_index - (self.group_index - self.effective_index) * (
            wavelength_nm - reference_nm
        ) / reference_nm
        length_nm = self.round_trip_length_um * 1e3
        return 2.0 * math.pi * n_eff * length_nm / wavelength_nm

    def resonance_order(self, wavelength_nm: float) -> int:
        """Longitudinal mode order ``m`` of the resonance nearest *wavelength_nm*."""
        theta = float(self.round_trip_phase(wavelength_nm))
        order = int(round(theta / (2.0 * math.pi)))
        if order < 1:
            raise ConfigurationError(
                f"no physical resonance order at {wavelength_nm} nm"
            )
        return order

    def resonance_wavelengths_nm(
        self, lower_nm: float, upper_nm: float
    ) -> np.ndarray:
        """All resonance wavelengths of the comb inside ``[lower, upper]`` (nm).

        Resonances satisfy ``round_trip_phase(lambda) = 2*pi*m``; they are
        located by bisection on the (monotonically decreasing) phase.
        """
        if not 0.0 < lower_nm < upper_nm:
            raise ConfigurationError("need 0 < lower_nm < upper_nm")
        phase_hi = float(self.round_trip_phase(lower_nm))
        phase_lo = float(self.round_trip_phase(upper_nm))
        orders = np.arange(
            math.ceil(phase_lo / (2 * math.pi)),
            math.floor(phase_hi / (2 * math.pi)) + 1,
        )
        resonances = []
        for order in orders:
            target = 2.0 * math.pi * order
            lo, hi = lower_nm, upper_nm
            for _ in range(80):
                mid = 0.5 * (lo + hi)
                if float(self.round_trip_phase(mid)) > target:
                    lo = mid
                else:
                    hi = mid
            resonances.append(0.5 * (lo + hi))
        return np.sort(np.asarray(resonances, dtype=float))

"""Laser source models: CW probes, pulsed pump, and probe banks.

The energy study of the paper (Section V-C) distinguishes:

* ``n + 1`` continuous-wave **probe lasers**, one per coefficient channel,
  that stay on for the whole bit period, and
* one **pump laser** that can be operated pulse-based (26 ps pulses [15]),
  paying energy only during the pulse.

Wall-plug energy is optical energy divided by the lasing efficiency
``eta`` (20 % in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..constants import PAPER_LASING_EFFICIENCY, PAPER_PULSE_WIDTH_S
from ..errors import ConfigurationError
from ..units import validate_fraction, validate_non_negative, validate_positive

__all__ = ["CWLaser", "PulsedLaser", "LaserBank"]


@dataclass(frozen=True)
class CWLaser:
    """Continuous-wave laser emitting *power_mw* at *wavelength_nm*.

    Parameters
    ----------
    power_mw:
        Emitted optical power (mW).
    wavelength_nm:
        Emission wavelength (nm).
    efficiency:
        Wall-plug (lasing) efficiency ``eta`` in (0, 1].
    """

    power_mw: float
    wavelength_nm: float = 1550.0
    efficiency: float = PAPER_LASING_EFFICIENCY

    def __post_init__(self) -> None:
        validate_non_negative(self.power_mw, "power_mw")
        validate_positive(self.wavelength_nm, "wavelength_nm")
        validate_fraction(self.efficiency, "efficiency")

    @property
    def electrical_power_mw(self) -> float:
        """Wall-plug power draw (mW)."""
        return self.power_mw / self.efficiency

    def optical_energy_per_bit_j(self, bit_rate_hz: float) -> float:
        """Optical energy emitted during one bit period (J)."""
        validate_positive(bit_rate_hz, "bit_rate_hz")
        return self.power_mw * 1e-3 / bit_rate_hz

    def energy_per_bit_j(self, bit_rate_hz: float) -> float:
        """Wall-plug energy consumed during one bit period (J)."""
        return self.optical_energy_per_bit_j(bit_rate_hz) / self.efficiency


@dataclass(frozen=True)
class PulsedLaser:
    """Pulse-based laser: emits *peak_power_mw* for *pulse_width_s* per bit.

    Models the 26 ps pump pulses of Van et al. [15] used in Section V-C to
    cut the pump energy: the filter only needs to be tuned while the probe
    bit is sampled, so the pump duty cycle is ``pulse_width * bit_rate``.
    """

    peak_power_mw: float
    pulse_width_s: float = PAPER_PULSE_WIDTH_S
    efficiency: float = PAPER_LASING_EFFICIENCY
    wavelength_nm: float = 1550.0

    def __post_init__(self) -> None:
        validate_non_negative(self.peak_power_mw, "peak_power_mw")
        validate_positive(self.pulse_width_s, "pulse_width_s")
        validate_fraction(self.efficiency, "efficiency")
        validate_positive(self.wavelength_nm, "wavelength_nm")

    def duty_cycle(self, bit_rate_hz: float) -> float:
        """Fraction of the bit period during which the laser emits."""
        validate_positive(bit_rate_hz, "bit_rate_hz")
        duty = self.pulse_width_s * bit_rate_hz
        if duty > 1.0:
            raise ConfigurationError(
                f"pulse width {self.pulse_width_s} s does not fit in the "
                f"{1.0 / bit_rate_hz} s bit period"
            )
        return duty

    @property
    def optical_energy_per_pulse_j(self) -> float:
        """Optical energy in a single pulse (J)."""
        return self.peak_power_mw * 1e-3 * self.pulse_width_s

    @property
    def energy_per_pulse_j(self) -> float:
        """Wall-plug energy per pulse (J)."""
        return self.optical_energy_per_pulse_j / self.efficiency

    def energy_per_bit_j(self, bit_rate_hz: float) -> float:
        """Wall-plug energy per computed bit (one pulse per bit) (J)."""
        self.duty_cycle(bit_rate_hz)  # validates the pulse fits
        return self.energy_per_pulse_j

    def average_power_mw(self, bit_rate_hz: float) -> float:
        """Time-averaged optical power at the given bit rate (mW)."""
        return self.peak_power_mw * self.duty_cycle(bit_rate_hz)


@dataclass(frozen=True)
class LaserBank:
    """A bank of CW probe lasers, one per WDM coefficient channel."""

    lasers: tuple

    def __init__(self, lasers: Sequence[CWLaser]):
        if not lasers:
            raise ConfigurationError("LaserBank needs at least one laser")
        object.__setattr__(self, "lasers", tuple(lasers))

    def __len__(self) -> int:
        return len(self.lasers)

    @property
    def total_power_mw(self) -> float:
        """Aggregate optical power of the bank (mW)."""
        return sum(laser.power_mw for laser in self.lasers)

    @property
    def total_electrical_power_mw(self) -> float:
        """Aggregate wall-plug power of the bank (mW)."""
        return sum(laser.electrical_power_mw for laser in self.lasers)

    def energy_per_bit_j(self, bit_rate_hz: float) -> float:
        """Aggregate wall-plug energy per bit period (J)."""
        return sum(laser.energy_per_bit_j(bit_rate_hz) for laser in self.lasers)

    @classmethod
    def uniform(
        cls,
        count: int,
        power_mw: float,
        wavelengths_nm: Sequence[float],
        efficiency: float = PAPER_LASING_EFFICIENCY,
    ) -> "LaserBank":
        """Bank of *count* identical-power probes on the given wavelengths."""
        if count <= 0:
            raise ConfigurationError("count must be positive")
        if len(wavelengths_nm) != count:
            raise ConfigurationError(
                f"need {count} wavelengths, got {len(wavelengths_nm)}"
            )
        return cls(
            [
                CWLaser(
                    power_mw=power_mw,
                    wavelength_nm=wavelength,
                    efficiency=efficiency,
                )
                for wavelength in wavelengths_nm
            ]
        )

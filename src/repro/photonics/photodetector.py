"""Photodetector models: PIN detector and avalanche extension.

The paper's receiver model (Eq. 8) needs only two device figures: the
responsivity ``R`` (A/W) and the internal noise current ``i_n`` (A, RMS).
The SNR of an on-off-keyed link is the photocurrent swing divided by the
noise current; Eq. 9 then maps SNR to BER.

The avalanche photodetector of Steindl et al. [21] (paper future work,
Section V-D) is modeled with an internal gain and a McIntyre excess-noise
factor so that the benefit of high responsivity can be quantified.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import ArrayLike, validate_positive

__all__ = ["Photodetector", "AvalanchePhotodetector"]


@dataclass(frozen=True)
class Photodetector:
    """PIN photodetector with responsivity and a lumped noise current.

    Parameters
    ----------
    responsivity_a_per_w:
        Photocurrent per optical watt (A/W).
    noise_current_a:
        RMS internal noise current ``i_n`` (A), lumping thermal and dark
        contributions over the receiver bandwidth.
    """

    responsivity_a_per_w: float
    noise_current_a: float

    def __post_init__(self) -> None:
        validate_positive(self.responsivity_a_per_w, "responsivity_a_per_w")
        validate_positive(self.noise_current_a, "noise_current_a")

    def photocurrent_a(self, power_mw: ArrayLike) -> ArrayLike:
        """Mean photocurrent (A) for incident optical *power_mw*."""
        power = np.asarray(power_mw, dtype=float)
        if np.any(power < 0.0):
            raise ConfigurationError("optical power must be >= 0")
        current = self.responsivity_a_per_w * power * 1e-3
        if current.ndim == 0:
            return float(current)
        return current

    def snr(self, high_power_mw: float, low_power_mw: float) -> float:
        """Electrical SNR of an OOK swing: ``(I1 - I0) / i_n`` (Eq. 8 form).

        *high_power_mw* must exceed *low_power_mw*; a non-positive swing
        means the eye is closed and no SNR is defined.
        """
        if high_power_mw <= low_power_mw:
            raise ConfigurationError(
                "high power must exceed low power for a defined SNR "
                f"(got high={high_power_mw}, low={low_power_mw})"
            )
        swing_a = self.photocurrent_a(high_power_mw) - self.photocurrent_a(
            low_power_mw
        )
        return swing_a / self.noise_current_a

    def sample(
        self,
        power_mw: ArrayLike,
        rng: np.random.Generator,
    ) -> ArrayLike:
        """Draw noisy photocurrent samples (A): mean + Gaussian ``i_n``."""
        mean = np.asarray(self.photocurrent_a(power_mw), dtype=float)
        noise = rng.normal(0.0, self.noise_current_a, size=mean.shape)
        return mean + noise

    def decide(
        self,
        current_a: ArrayLike,
        threshold_a: float,
    ) -> ArrayLike:
        """Threshold detection: 1 where the current exceeds *threshold_a*."""
        current = np.asarray(current_a, dtype=float)
        bits = (current > threshold_a).astype(np.uint8)
        if bits.ndim == 0:
            return int(bits)
        return bits

    def midpoint_threshold_a(
        self, high_power_mw: float, low_power_mw: float
    ) -> float:
        """Optimal OOK threshold for equal Gaussian noise on both levels."""
        high = float(self.photocurrent_a(high_power_mw))
        low = float(self.photocurrent_a(low_power_mw))
        return 0.5 * (high + low)


@dataclass(frozen=True)
class AvalanchePhotodetector(Photodetector):
    """Avalanche photodetector (Steindl et al. [21]) with internal gain.

    The effective responsivity is multiplied by the avalanche *gain*; the
    avalanche process multiplies the signal-dependent noise by the McIntyre
    excess-noise factor ``F(M) = k*M + (1 - k)*(2 - 1/M)``, so the SNR gain
    saturates for large ``M``.
    """

    gain: float = 10.0
    ionization_ratio: float = 0.1

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gain < 1.0:
            raise ConfigurationError(f"gain must be >= 1, got {self.gain!r}")
        if not 0.0 <= self.ionization_ratio <= 1.0:
            raise ConfigurationError("ionization_ratio must be in [0, 1]")

    @property
    def excess_noise_factor(self) -> float:
        """McIntyre excess-noise factor ``F(M)``."""
        m, k = self.gain, self.ionization_ratio
        return k * m + (1.0 - k) * (2.0 - 1.0 / m)

    def photocurrent_a(self, power_mw: ArrayLike) -> ArrayLike:
        """Mean multiplied photocurrent (A)."""
        base = super().photocurrent_a(power_mw)
        value = np.asarray(base, dtype=float) * self.gain
        if value.ndim == 0:
            return float(value)
        return value

    def snr(self, high_power_mw: float, low_power_mw: float) -> float:
        """SNR with avalanche gain and excess noise on the noise floor."""
        if high_power_mw <= low_power_mw:
            raise ConfigurationError(
                "high power must exceed low power for a defined SNR"
            )
        swing_a = self.photocurrent_a(high_power_mw) - self.photocurrent_a(
            low_power_mw
        )
        effective_noise = self.noise_current_a * math.sqrt(
            self.excess_noise_factor
        )
        return swing_a / effective_noise

"""Passive optical components: splitters, couplers, waveguides, BPF.

These implement the distribution network of the generic architecture
(Fig. 4(a)): the pump power is divided over the ``n`` MZIs by a 1-to-n
splitter and recombined by an n-to-1 combiner, the probe channels join the
coefficient bus through a coupler, and a band-pass filter absorbs the pump
before the photodetector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import ArrayLike, db_loss_to_transmission, validate_non_negative, validate_positive

__all__ = ["Splitter", "Coupler", "Waveguide", "BandPassFilter"]


@dataclass(frozen=True)
class Splitter:
    """Symmetric 1-to-n power splitter (also usable as an n-to-1 combiner).

    Ideal splitting (paper assumption: pump "equally distributed") divides
    the input power by *port_count*; *excess_loss_db* models implementation
    loss on top of the fundamental split.
    """

    port_count: int
    excess_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if self.port_count < 1:
            raise ConfigurationError(
                f"port_count must be >= 1, got {self.port_count!r}"
            )
        validate_non_negative(self.excess_loss_db, "excess_loss_db")

    @property
    def per_port_transmission(self) -> float:
        """Fraction of input power reaching each output port."""
        excess = float(db_loss_to_transmission(self.excess_loss_db))
        return excess / self.port_count

    def split(self, power_mw: float) -> np.ndarray:
        """Per-port output powers (mW) for *power_mw* at the input."""
        validate_non_negative(power_mw, "power_mw")
        return np.full(self.port_count, power_mw * self.per_port_transmission)

    def combine(self, powers_mw: ArrayLike) -> float:
        """Incoherent power sum of the input ports into the single output."""
        powers = np.asarray(powers_mw, dtype=float)
        if powers.shape != (self.port_count,):
            raise ConfigurationError(
                f"expected {self.port_count} port powers, got shape {powers.shape}"
            )
        if np.any(powers < 0.0):
            raise ConfigurationError("port powers must be >= 0")
        excess = float(db_loss_to_transmission(self.excess_loss_db))
        return float(np.sum(powers) * excess)


@dataclass(frozen=True)
class Coupler:
    """Directional coupler merging the probe comb onto the coefficient bus."""

    insertion_loss_db: float = 0.0

    def __post_init__(self) -> None:
        validate_non_negative(self.insertion_loss_db, "insertion_loss_db")

    @property
    def transmission(self) -> float:
        """Power transmission through the coupler."""
        return float(db_loss_to_transmission(self.insertion_loss_db))

    def couple(self, power_mw: ArrayLike) -> ArrayLike:
        """Output power(s) after the coupler (mW)."""
        power = np.asarray(power_mw, dtype=float)
        if np.any(power < 0.0):
            raise ConfigurationError("power must be >= 0")
        out = power * self.transmission
        if out.ndim == 0:
            return float(out)
        return out


@dataclass(frozen=True)
class Waveguide:
    """Straight waveguide section with distributed propagation loss."""

    length_cm: float
    loss_db_per_cm: float = 2.0

    def __post_init__(self) -> None:
        validate_non_negative(self.length_cm, "length_cm")
        validate_non_negative(self.loss_db_per_cm, "loss_db_per_cm")

    @property
    def loss_db(self) -> float:
        """Total propagation loss (dB)."""
        return self.length_cm * self.loss_db_per_cm

    @property
    def transmission(self) -> float:
        """Power transmission over the full length."""
        return float(db_loss_to_transmission(self.loss_db))

    def propagate(self, power_mw: ArrayLike) -> ArrayLike:
        """Output power(s) after propagation (mW)."""
        power = np.asarray(power_mw, dtype=float)
        if np.any(power < 0.0):
            raise ConfigurationError("power must be >= 0")
        out = power * self.transmission
        if out.ndim == 0:
            return float(out)
        return out


@dataclass(frozen=True)
class BandPassFilter:
    """Ideal-edge band-pass filter absorbing the pump before the detector.

    The paper neglects the BPF's effect on the probe band ("the pump signal
    absorption induced by the BPF is neglected in our model"); this model
    keeps that default (0 dB in-band insertion loss) but exposes both the
    in-band loss and the out-of-band rejection so the assumption can be
    relaxed in sensitivity studies.
    """

    pass_low_nm: float
    pass_high_nm: float
    insertion_loss_db: float = 0.0
    rejection_db: float = 60.0

    def __post_init__(self) -> None:
        validate_positive(self.pass_low_nm, "pass_low_nm")
        validate_positive(self.pass_high_nm, "pass_high_nm")
        if self.pass_low_nm >= self.pass_high_nm:
            raise ConfigurationError(
                "pass_low_nm must be below pass_high_nm "
                f"(got {self.pass_low_nm} >= {self.pass_high_nm})"
            )
        validate_non_negative(self.insertion_loss_db, "insertion_loss_db")
        validate_non_negative(self.rejection_db, "rejection_db")

    def transmission(self, wavelength_nm: ArrayLike) -> ArrayLike:
        """Power transmission at *wavelength_nm* (in-band vs rejected)."""
        wavelength = np.asarray(wavelength_nm, dtype=float)
        if np.any(wavelength <= 0.0):
            raise ConfigurationError("wavelength must be positive")
        in_band = (wavelength >= self.pass_low_nm) & (
            wavelength <= self.pass_high_nm
        )
        in_band_t = float(db_loss_to_transmission(self.insertion_loss_db))
        out_band_t = float(db_loss_to_transmission(self.rejection_db))
        out = np.where(in_band, in_band_t, out_band_t)
        if out.ndim == 0:
            return float(out)
        return out

    def filter_power(
        self, power_mw: ArrayLike, wavelength_nm: ArrayLike
    ) -> ArrayLike:
        """Apply the filter to per-channel powers (mW)."""
        power = np.asarray(power_mw, dtype=float)
        if np.any(power < 0.0):
            raise ConfigurationError("power must be >= 0")
        out = power * self.transmission(wavelength_nm)
        if out.ndim == 0:
            return float(out)
        return out

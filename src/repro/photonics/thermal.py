"""Thermal tuning of micro-rings — the calibration actuator.

The paper's future work (Section VI item i) calls for "monitoring and
voltage/thermal tuning for device calibration" and notes the design of
such a circuit "relies on energy-area tradeoff".  This module models the
actuator: an integrated micro-heater that red-shifts a ring resonance
with a standard efficiency of a few tens of pm/mW, plus the
first-order thermal low-pass dynamics that limit the calibration loop's
bandwidth.  Combined with :class:`repro.simulation.controller
.CalibrationController` it closes the paper's monitoring loop and prices
its energy overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..units import ArrayLike, validate_non_negative, validate_positive

__all__ = ["ThermalTuner"]


@dataclass(frozen=True)
class ThermalTuner:
    """Integrated micro-heater tuning model.

    Parameters
    ----------
    efficiency_nm_per_mw:
        Resonance red-shift per heater milliwatt.  Typical silicon
        micro-heaters achieve 0.02-0.25 nm/mW; 0.1 nm/mW is a common
        mid-range figure.
    max_power_mw:
        Heater power ceiling (thermal budget / reliability).
    time_constant_s:
        First-order thermal time constant (microseconds scale), limiting
        how fast the calibration loop can slew.
    """

    efficiency_nm_per_mw: float = 0.1
    max_power_mw: float = 20.0
    time_constant_s: float = 4e-6

    def __post_init__(self) -> None:
        validate_positive(self.efficiency_nm_per_mw, "efficiency_nm_per_mw")
        validate_positive(self.max_power_mw, "max_power_mw")
        validate_positive(self.time_constant_s, "time_constant_s")

    @property
    def max_shift_nm(self) -> float:
        """Largest correctable red-shift (nm)."""
        return self.efficiency_nm_per_mw * self.max_power_mw

    def power_for_shift_mw(self, shift_nm: float) -> float:
        """Heater power for a desired red-shift (nm -> mW).

        Heaters only shift one way (red); negative corrections must be
        realized by biasing the rest point, so negative requests raise.
        """
        validate_non_negative(shift_nm, "shift_nm")
        power = shift_nm / self.efficiency_nm_per_mw
        if power > self.max_power_mw:
            raise ConfigurationError(
                f"shift {shift_nm} nm needs {power:.1f} mW, beyond the "
                f"{self.max_power_mw} mW heater budget"
            )
        return power

    def holding_energy_j(self, shift_nm: float, duration_s: float) -> float:
        """Energy to *hold* a correction for *duration_s* seconds (J).

        This is the steady-state cost of calibration the paper's
        energy-area tradeoff discussion refers to: a held 0.1 nm
        correction at 0.1 nm/mW costs 1 mW continuously.
        """
        validate_non_negative(duration_s, "duration_s")
        return self.power_for_shift_mw(shift_nm) * 1e-3 * duration_s

    def settling_time_s(self, tolerance: float = 0.01) -> float:
        """Time for a step correction to settle within *tolerance*.

        First-order response: ``t = tau * ln(1/tolerance)``.
        """
        if not 0.0 < tolerance < 1.0:
            raise ConfigurationError(
                f"tolerance must be in (0, 1), got {tolerance!r}"
            )
        return self.time_constant_s * float(np.log(1.0 / tolerance))

    def step_response_nm(
        self, target_shift_nm: float, time_s: ArrayLike
    ) -> ArrayLike:
        """Resonance shift trajectory for a heater power step at t = 0."""
        validate_non_negative(target_shift_nm, "target_shift_nm")
        self.power_for_shift_mw(target_shift_nm)  # validates the budget
        time = np.asarray(time_s, dtype=float)
        if np.any(time < 0.0):
            raise ConfigurationError("time samples must be >= 0")
        response = target_shift_nm * (
            1.0 - np.exp(-time / self.time_constant_s)
        )
        if response.ndim == 0:
            return float(response)
        return response

    def calibration_energy_budget_j(
        self,
        shift_nm: float,
        ring_count: int,
        duration_s: float,
    ) -> float:
        """Total holding energy for *ring_count* rings over *duration_s*.

        The generic order-n circuit has n+2 rings (n+1 modulators plus
        the filter); worst-case common-mode drift requires correcting
        all of them.
        """
        if ring_count < 1:
            raise ConfigurationError(
                f"ring_count must be >= 1, got {ring_count!r}"
            )
        return ring_count * self.holding_energy_j(shift_nm, duration_s)

"""Silicon-photonics device substrate.

Analytical models for every optical device the DATE'19 architecture is built
from: micro-ring resonators (modulator and all-optical add-drop filter,
Eqs. 2-3 of the paper), Mach-Zehnder interferometers (Eq. 7b), the
two-photon-absorption tuning effect (Eq. 4), lasers, photodetectors and the
passive distribution network.
"""

from .geometry import RingGeometry
from .ring import (
    RingParameters,
    add_drop_fwhm_nm,
    design_add_drop_ring,
    design_modulator_ring,
    drop_transmission,
    round_trip_phase,
    through_transmission,
)
from .mzi import MZIModulator
from .nonlinear import OpticalTuningEfficiency, effective_index, tpa_wavelength_shift_nm
from .laser import CWLaser, LaserBank, PulsedLaser
from .photodetector import AvalanchePhotodetector, Photodetector
from .thermal import ThermalTuner
from .waveguide import BandPassFilter, Coupler, Splitter, Waveguide
from .wdm import WDMGrid
from . import devices

__all__ = [
    "RingGeometry",
    "RingParameters",
    "round_trip_phase",
    "through_transmission",
    "drop_transmission",
    "add_drop_fwhm_nm",
    "design_modulator_ring",
    "design_add_drop_ring",
    "MZIModulator",
    "OpticalTuningEfficiency",
    "effective_index",
    "tpa_wavelength_shift_nm",
    "CWLaser",
    "PulsedLaser",
    "LaserBank",
    "Photodetector",
    "AvalanchePhotodetector",
    "Splitter",
    "Coupler",
    "Waveguide",
    "BandPassFilter",
    "ThermalTuner",
    "WDMGrid",
    "devices",
]

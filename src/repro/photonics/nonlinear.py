"""All-optical (two-photon absorption) tuning of a micro-ring (Eq. 4).

A high-intensity pump injected into the add-drop filter shifts its
effective index through TPA-generated free carriers:

``n_eff = n0 + n2 * P / S``                                   (Eq. 4)

which blue-shifts the resonance proportionally to pump power.  The paper
works with the *linearized* figure of merit OTE (optical tuning
efficiency, nm/mW) quoting Van et al. [14]: a 0.1 nm shift for a 10 mW
average pump.  Both the physical and linearized forms are provided here;
the rest of the library consumes :class:`OpticalTuningEfficiency`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..constants import PAPER_OTE_NM_PER_MW
from ..errors import ConfigurationError, PhysicalModelError
from ..units import ArrayLike, validate_positive

__all__ = [
    "effective_index",
    "tpa_wavelength_shift_nm",
    "OpticalTuningEfficiency",
]


def effective_index(
    n0: float, n2_m2_per_w: float, pump_power_w: ArrayLike, cross_section_m2: float
) -> ArrayLike:
    """Paper Eq. (4): intensity-dependent effective index.

    Parameters
    ----------
    n0:
        Linear effective index.
    n2_m2_per_w:
        Non-linear index coefficient (m^2/W); note the paper's sign
        convention folds the carrier-induced *blue* shift into the spectral
        model, so a positive ``n2`` here simply scales the shift magnitude.
    pump_power_w:
        Pump power (W), scalar or array.
    cross_section_m2:
        Effective cross-sectional area ``S`` of the filter waveguide (m^2).
    """
    validate_positive(n0, "n0")
    validate_positive(cross_section_m2, "cross_section_m2")
    pump = np.asarray(pump_power_w, dtype=float)
    if np.any(pump < 0.0):
        raise ConfigurationError("pump power must be >= 0")
    return n0 + n2_m2_per_w * pump / cross_section_m2


def tpa_wavelength_shift_nm(
    wavelength_nm: float,
    group_index: float,
    n2_m2_per_w: float,
    pump_power_w: ArrayLike,
    cross_section_m2: float,
) -> ArrayLike:
    """Resonance shift implied by Eq. 4: ``d_lambda = lambda * d_n / n_g``.

    The fractional resonance shift of a ring equals the fractional
    effective-index change divided by the group index (first-order
    perturbation), giving the physical underpinning of the linear OTE.
    """
    validate_positive(wavelength_nm, "wavelength_nm")
    validate_positive(group_index, "group_index")
    validate_positive(cross_section_m2, "cross_section_m2")
    pump = np.asarray(pump_power_w, dtype=float)
    if np.any(pump < 0.0):
        raise ConfigurationError("pump power must be >= 0")
    delta_n = n2_m2_per_w * pump / cross_section_m2
    return wavelength_nm * delta_n / group_index


@dataclass(frozen=True)
class OpticalTuningEfficiency:
    """Linearized all-optical tuning: shift (nm) per pump power (mW).

    Parameters
    ----------
    nm_per_mw:
        Tuning slope.  The paper assumes 0.1 nm / 10 mW = 0.01 nm/mW [14].
    max_shift_nm:
        Optional saturation bound.  Real carrier-plasma tuning saturates;
        when set, requesting shifts beyond it raises
        :class:`PhysicalModelError`, and :meth:`shift_nm` clips with a
        warning flag instead of silently extrapolating.
    """

    nm_per_mw: float = PAPER_OTE_NM_PER_MW
    max_shift_nm: Optional[float] = None

    def __post_init__(self) -> None:
        validate_positive(self.nm_per_mw, "nm_per_mw")
        if self.max_shift_nm is not None:
            validate_positive(self.max_shift_nm, "max_shift_nm")

    def shift_nm(self, pump_power_mw: ArrayLike) -> ArrayLike:
        """Blue shift (nm, positive number) produced by *pump_power_mw*."""
        pump = np.asarray(pump_power_mw, dtype=float)
        if np.any(pump < 0.0):
            raise ConfigurationError("pump power must be >= 0")
        shift = self.nm_per_mw * pump
        if self.max_shift_nm is not None:
            if np.any(shift > self.max_shift_nm):
                raise PhysicalModelError(
                    "requested all-optical shift exceeds the saturation bound "
                    f"({self.max_shift_nm} nm); increase OTE or reduce pump"
                )
        if shift.ndim == 0:
            return float(shift)
        return shift

    def required_power_mw(self, shift_nm: ArrayLike) -> ArrayLike:
        """Pump power (mW) needed to achieve *shift_nm* of blue shift."""
        shift = np.asarray(shift_nm, dtype=float)
        if np.any(shift < 0.0):
            raise ConfigurationError("shift must be >= 0")
        if self.max_shift_nm is not None and np.any(shift > self.max_shift_nm):
            raise PhysicalModelError(
                f"shift beyond saturation bound ({self.max_shift_nm} nm)"
            )
        power = shift / self.nm_per_mw
        if power.ndim == 0:
            return float(power)
        return power

    @classmethod
    def from_physics(
        cls,
        wavelength_nm: float,
        group_index: float,
        n2_m2_per_w: float,
        cross_section_m2: float,
        max_shift_nm: Optional[float] = None,
    ) -> "OpticalTuningEfficiency":
        """Derive the linear OTE from the Eq. 4 device physics."""
        shift_per_w = float(
            tpa_wavelength_shift_nm(
                wavelength_nm, group_index, n2_m2_per_w, 1.0, cross_section_m2
            )
        )
        return cls(nm_per_mw=shift_per_w * 1e-3, max_shift_nm=max_shift_nm)

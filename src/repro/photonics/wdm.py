"""WDM channel plan for the coefficient probe signals.

The generic architecture (Fig. 4(a)) places the ``n + 1`` coefficient
probes on an equally spaced wavelength grid (Eq. 5):

``WLspacing = lambda_{i+1} - lambda_i``

with the untuned filter resonance ``lambda_ref`` a guard band above the
right-most channel ``lambda_n`` (0.1 nm in the paper, after [14]).  The
grid must fit inside one free spectral range of the filter so the pump
resonance (one FSR below, Fig. 3) does not alias onto a probe channel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, DesignInfeasibleError
from ..units import validate_positive

__all__ = ["WDMGrid"]


@dataclass(frozen=True)
class WDMGrid:
    """Equally spaced probe grid anchored at the right-most channel.

    Parameters
    ----------
    channel_count:
        Number of probe channels (``n + 1`` for a degree-``n`` polynomial).
    spacing_nm:
        ``WLspacing`` between consecutive channels (Eq. 5).
    anchor_nm:
        Wavelength of the *right-most* channel ``lambda_n``.  The paper
        anchors the grid from the right (``lambda_2 = 1550 nm``) because the
        filter guard band sits above it.
    guard_nm:
        Guard band ``lambda_ref - lambda_n`` (> 0).
    """

    channel_count: int
    spacing_nm: float
    anchor_nm: float = 1550.0
    guard_nm: float = 0.1

    def __post_init__(self) -> None:
        if self.channel_count < 1:
            raise ConfigurationError(
                f"channel_count must be >= 1, got {self.channel_count!r}"
            )
        validate_positive(self.spacing_nm, "spacing_nm")
        validate_positive(self.anchor_nm, "anchor_nm")
        validate_positive(self.guard_nm, "guard_nm")

    @property
    def polynomial_degree(self) -> int:
        """Bernstein degree ``n`` served by this grid (``channels - 1``)."""
        return self.channel_count - 1

    @property
    def wavelengths_nm(self) -> np.ndarray:
        """Channel wavelengths ``lambda_0 .. lambda_n``, ascending (nm)."""
        index = np.arange(self.channel_count)
        degree = self.channel_count - 1
        return self.anchor_nm - (degree - index) * self.spacing_nm

    @property
    def reference_nm(self) -> float:
        """Untuned filter resonance ``lambda_ref = lambda_n + guard`` (nm)."""
        return self.anchor_nm + self.guard_nm

    @property
    def span_nm(self) -> float:
        """Full tuning span ``lambda_ref - lambda_0`` the filter must cover."""
        return self.polynomial_degree * self.spacing_nm + self.guard_nm

    def wavelength_nm(self, channel: int) -> float:
        """Wavelength of channel *channel* (0-based, ``lambda_0`` left-most)."""
        if not 0 <= channel < self.channel_count:
            raise ConfigurationError(
                f"channel must be in [0, {self.channel_count}), got {channel!r}"
            )
        return float(self.wavelengths_nm[channel])

    def detuning_for_level_nm(self, ones_count: int) -> float:
        """Filter detuning that selects channel ``z_k`` for ``k`` input ones.

        In the ReSC multiplexing scheme, ``k`` ones among the ``n`` data
        bits must select coefficient ``z_k``; the filter must therefore be
        tuned from ``lambda_ref`` down to ``lambda_k``, a detuning of
        ``span - k*spacing``.
        """
        degree = self.polynomial_degree
        if not 0 <= ones_count <= degree:
            raise ConfigurationError(
                f"ones_count must be in [0, {degree}], got {ones_count!r}"
            )
        return self.span_nm - ones_count * self.spacing_nm

    def validate_against_fsr(self, fsr_nm: float) -> None:
        """Check the grid plus pump resonance fit inside one filter FSR."""
        validate_positive(fsr_nm, "fsr_nm")
        if self.span_nm >= fsr_nm:
            raise DesignInfeasibleError(
                f"WDM span {self.span_nm:.3f} nm does not fit inside the "
                f"filter FSR {fsr_nm:.3f} nm; increase the FSR or reduce "
                "the order/spacing"
            )

    def channel_of(self, wavelength_nm: float, tolerance_nm: float = 1e-6) -> int:
        """Index of the channel at *wavelength_nm* (within *tolerance_nm*)."""
        distances = np.abs(self.wavelengths_nm - wavelength_nm)
        best = int(np.argmin(distances))
        if distances[best] > tolerance_nm:
            raise ConfigurationError(
                f"{wavelength_nm} nm is not on the grid (nearest channel "
                f"{best} at {self.wavelengths_nm[best]:.4f} nm)"
            )
        return best

"""Micro-ring resonator transfer functions (paper Eqs. 2 and 3).

Two configurations are used by the DATE'19 architecture:

* **modulator** (Fig. 2(b)): an MRR coupled to the coefficient waveguide.
  The *through* transmission ``phi_t`` (Eq. 2) attenuates the probe when the
  ring is on resonance (coefficient ``z = 0``) and passes it when the ring
  is blue-shifted by ``delta_lambda`` (``z = 1``).
* **all-optical add-drop filter** (Fig. 2(c)): the multiplexer.  The *drop*
  transmission ``phi_d`` (Eq. 3) extracts the probe channel whose
  wavelength matches the pump-tuned resonance.

Both equations share the round-trip quantities: self-coupling coefficients
``r1``/``r2``, single-pass amplitude transmission ``a`` and single-pass
phase ``theta``.  Following the paper, the phase is expressed relative to
the resonance: ``theta = 2*pi*(lambda_signal - lambda_res)/FSR`` — exact up
to second order in detuning/FSR (validated against
:class:`repro.photonics.geometry.RingGeometry`).

The module also provides the inverse *design* helpers used by the
calibration layer: given a target linewidth (FWHM) and floor/peak
transmission, solve for ``(r1, r2, a)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ..errors import ConfigurationError, DesignInfeasibleError
from ..units import ArrayLike, validate_positive

__all__ = [
    "RingParameters",
    "round_trip_phase",
    "through_transmission",
    "drop_transmission",
    "through_matrix",
    "drop_matrix",
    "add_drop_fwhm_nm",
    "loss_coupling_product_for_fwhm",
    "design_modulator_ring",
    "design_add_drop_ring",
]


def round_trip_phase(
    signal_nm: ArrayLike, resonance_nm: ArrayLike, fsr_nm: float
) -> ArrayLike:
    """Detuning-relative round-trip phase ``2*pi*(lambda - lambda_res)/FSR``.

    Zero phase (modulo ``2*pi``) corresponds to resonance; the transfer
    functions are ``2*pi``-periodic in this phase, which encodes the free
    spectral range of the physical ring.
    """
    validate_positive(fsr_nm, "fsr_nm")
    signal_nm = np.asarray(signal_nm, dtype=float)
    resonance_nm = np.asarray(resonance_nm, dtype=float)
    return 2.0 * math.pi * (signal_nm - resonance_nm) / fsr_nm


def through_transmission(
    theta: ArrayLike, a: float, r1: float, r2: float
) -> ArrayLike:
    """Paper Eq. (2): power transmission of the MRR through port.

    ``phi_t = (a^2 r2^2 - 2 a r1 r2 cos(theta) + r1^2)
            / (1 - 2 a r1 r2 cos(theta) + (a r1 r2)^2)``

    On resonance this reaches the extinction floor
    ``((a r2 - r1) / (1 - a r1 r2))^2``; far from resonance it approaches
    ``((a r2 + r1) / (1 + a r1 r2))^2 <= 1``.
    """
    _validate_ring_coefficients(a, r1, r2)
    cos_theta = np.cos(np.asarray(theta, dtype=float))
    x = a * r1 * r2
    numerator = a**2 * r2**2 - 2.0 * a * r1 * r2 * cos_theta + r1**2
    denominator = 1.0 - 2.0 * x * cos_theta + x**2
    return numerator / denominator


def drop_transmission(theta: ArrayLike, a: float, r1: float, r2: float) -> ArrayLike:
    """Paper Eq. (3): power transmission of the add-drop filter drop port.

    ``phi_d = a (1 - r1^2)(1 - r2^2)
            / (1 - 2 a r1 r2 cos(theta) + (a r1 r2)^2)``

    Maximal on resonance, Lorentzian-shaped for small detuning and
    ``2*pi``-periodic in *theta*.
    """
    _validate_ring_coefficients(a, r1, r2)
    cos_theta = np.cos(np.asarray(theta, dtype=float))
    x = a * r1 * r2
    numerator = a * (1.0 - r1**2) * (1.0 - r2**2)
    denominator = 1.0 - 2.0 * x * cos_theta + x**2
    return numerator / denominator


def through_matrix(
    ring: "RingParameters", signal_nm: ArrayLike, resonance_nm: ArrayLike
) -> np.ndarray:
    """Eq. 2 response matrix ``[..., k, w]``: signal ``k`` past ring ``w``.

    Outer-broadcasts the trailing axes of *signal_nm* and *resonance_nm*
    (each ``(..., K)`` / ``(..., W)``), so a single call evaluates the
    modulator-bus geometry of the Eq. 6 product for one circuit — or for
    a whole stack of perturbed circuits when the inputs carry leading
    stack dimensions.  The workhorse behind both
    :class:`repro.core.transmission.TransmissionModel` and its stacked
    Monte Carlo / design-sizing variant.
    """
    signal = np.asarray(signal_nm, dtype=float)
    resonance = np.asarray(resonance_nm, dtype=float)
    return np.asarray(
        ring.through(signal[..., :, None], resonance[..., None, :])
    )


def drop_matrix(
    ring: "RingParameters", signal_nm: ArrayLike, resonance_nm: ArrayLike
) -> np.ndarray:
    """Eq. 3 response matrix ``[..., m, k]``: resonance ``m`` dropping ``k``.

    Same outer-broadcast contract as :func:`through_matrix`, with the
    resonance (level) axis leading — matching the ``[level, channel]``
    layout of the filter drop matrix in Eq. 6.
    """
    signal = np.asarray(signal_nm, dtype=float)
    resonance = np.asarray(resonance_nm, dtype=float)
    return np.asarray(
        ring.drop(signal[..., None, :], resonance[..., :, None])
    )


def _validate_ring_coefficients(a: float, r1: float, r2: float) -> None:
    for name, value in (("a", a), ("r1", r1), ("r2", r2)):
        if not 0.0 < value <= 1.0:
            raise ConfigurationError(f"{name} must be in (0, 1], got {value!r}")


@dataclass(frozen=True)
class RingParameters:
    """A ring's round-trip coefficients plus its free spectral range.

    Parameters
    ----------
    r1, r2:
        Self-coupling (field) coefficients of the input and drop couplers.
        ``r -> 1`` means weak coupling (narrow line).
    a:
        Single-pass amplitude transmission (``a = 1`` is lossless).
    fsr_nm:
        Free spectral range (nm), fixing the phase/wavelength mapping.
    """

    r1: float
    r2: float
    a: float
    fsr_nm: float

    def __post_init__(self) -> None:
        _validate_ring_coefficients(self.a, self.r1, self.r2)
        validate_positive(self.fsr_nm, "fsr_nm")

    # -- spectral responses -------------------------------------------------

    def through(self, signal_nm: ArrayLike, resonance_nm: ArrayLike) -> ArrayLike:
        """Eq. 2 evaluated at *signal_nm* for a ring resonant at *resonance_nm*."""
        theta = round_trip_phase(signal_nm, resonance_nm, self.fsr_nm)
        return through_transmission(theta, self.a, self.r1, self.r2)

    def drop(self, signal_nm: ArrayLike, resonance_nm: ArrayLike) -> ArrayLike:
        """Eq. 3 evaluated at *signal_nm* for a ring resonant at *resonance_nm*."""
        theta = round_trip_phase(signal_nm, resonance_nm, self.fsr_nm)
        return drop_transmission(theta, self.a, self.r1, self.r2)

    # -- derived figures of merit -------------------------------------------

    @property
    def loss_coupling_product(self) -> float:
        """The product ``x = a*r1*r2`` governing the resonance linewidth."""
        return self.a * self.r1 * self.r2

    @property
    def through_floor(self) -> float:
        """On-resonance through transmission (modulator OFF-state leakage)."""
        x = self.loss_coupling_product
        return ((self.a * self.r2 - self.r1) / (1.0 - x)) ** 2

    @property
    def through_ceiling(self) -> float:
        """Anti-resonant through transmission (maximum of Eq. 2)."""
        x = self.loss_coupling_product
        return ((self.a * self.r2 + self.r1) / (1.0 + x)) ** 2

    @property
    def drop_peak(self) -> float:
        """On-resonance drop transmission (maximum of Eq. 3)."""
        x = self.loss_coupling_product
        return (
            self.a
            * (1.0 - self.r1**2)
            * (1.0 - self.r2**2)
            / (1.0 - x) ** 2
        )

    @property
    def fwhm_nm(self) -> float:
        """Full width at half maximum of the drop resonance (nm)."""
        return add_drop_fwhm_nm(self.fsr_nm, self.loss_coupling_product)

    @property
    def finesse(self) -> float:
        """Finesse ``FSR / FWHM``."""
        return self.fsr_nm / self.fwhm_nm

    def quality_factor(self, wavelength_nm: float = 1550.0) -> float:
        """Loaded quality factor ``Q = lambda / FWHM`` at *wavelength_nm*."""
        validate_positive(wavelength_nm, "wavelength_nm")
        return wavelength_nm / self.fwhm_nm

    def with_fsr(self, fsr_nm: float) -> "RingParameters":
        """Copy of these coefficients with a different free spectral range."""
        return replace(self, fsr_nm=fsr_nm)


def add_drop_fwhm_nm(fsr_nm: float, loss_coupling_product: float) -> float:
    """FWHM of the drop-port Lorentzian: ``FSR*(1-x)/(pi*sqrt(x))``.

    *loss_coupling_product* is ``x = a*r1*r2``.  Derived from Eq. 3: the
    denominator doubles relative to resonance when the single-pass phase
    equals ``(1-x)/sqrt(x)``.
    """
    validate_positive(fsr_nm, "fsr_nm")
    if not 0.0 < loss_coupling_product < 1.0:
        raise ConfigurationError(
            "loss_coupling_product must be in (0, 1), got "
            f"{loss_coupling_product!r}"
        )
    x = loss_coupling_product
    return fsr_nm * (1.0 - x) / (math.pi * math.sqrt(x))


def loss_coupling_product_for_fwhm(fsr_nm: float, fwhm_nm: float) -> float:
    """Invert :func:`add_drop_fwhm_nm`: the ``x = a*r1*r2`` giving *fwhm_nm*.

    Solves ``(1-x)/sqrt(x) = pi*FWHM/FSR`` for the physical root ``x < 1``.
    """
    validate_positive(fsr_nm, "fsr_nm")
    validate_positive(fwhm_nm, "fwhm_nm")
    if fwhm_nm >= fsr_nm:
        raise DesignInfeasibleError(
            f"FWHM ({fwhm_nm} nm) must be well below the FSR ({fsr_nm} nm)"
        )
    f = math.pi * fwhm_nm / fsr_nm
    # x^2 - (2 + f^2) x + 1 = 0, take the root below 1.
    b = 2.0 + f**2
    x = (b - math.sqrt(b**2 - 4.0)) / 2.0
    return x


def design_modulator_ring(
    fsr_nm: float,
    fwhm_nm: float,
    through_floor: float,
    a: float = 0.998,
) -> RingParameters:
    """Solve for modulator coupling coefficients from spectral targets.

    Given the resonance linewidth *fwhm_nm* and the on-resonance leakage
    *through_floor* (the paper's OFF-state "small fraction of signal power
    transmitted"), and a fixed single-pass amplitude *a*, returns the
    :class:`RingParameters` of an (under-coupled) ring satisfying both:

    * ``FWHM(x) = fwhm_nm`` with ``x = a*r1*r2``,
    * ``((a*r2 - r1)/(1-x))^2 = through_floor``.
    """
    if not 0.0 <= through_floor < 1.0:
        raise ConfigurationError("through_floor must be in [0, 1)")
    if not 0.0 < a <= 1.0:
        raise ConfigurationError("a must be in (0, 1]")
    x = loss_coupling_product_for_fwhm(fsr_nm, fwhm_nm)
    # |a*r2 - r1| = s with s = sqrt(floor)*(1-x) and r1*r2 = x/a.
    # Substituting u = a*r2: u - x/u = +/-s  =>  u^2 -/+ s*u - x = 0.
    s = math.sqrt(through_floor) * (1.0 - x)
    candidates = []
    for sign in (+1.0, -1.0):
        u = (sign * s + math.sqrt(s**2 + 4.0 * x)) / 2.0
        r2 = u / a
        r1 = x / u
        if 0.0 < r1 <= 1.0 and 0.0 < r2 <= 1.0:
            candidates.append((r1, r2))
    if not candidates:
        raise DesignInfeasibleError(
            f"no physical coupling for FWHM={fwhm_nm} nm, "
            f"floor={through_floor}, a={a}"
        )
    r1, r2 = candidates[0]
    return RingParameters(r1=r1, r2=r2, a=a, fsr_nm=fsr_nm)


def design_add_drop_ring(
    fsr_nm: float,
    fwhm_nm: float,
    drop_peak: float,
) -> RingParameters:
    """Solve for symmetric add-drop filter parameters from spectral targets.

    Given the drop linewidth *fwhm_nm* and the on-resonance drop
    transmission *drop_peak*, returns a symmetric (``r1 = r2``) ring.  The
    linewidth fixes ``x = a*r^2``; the peak then determines the single-pass
    loss ``a`` via ``drop_peak = a*(1 - x/a)^2/(1-x)^2`` (solved in closed
    form as a quadratic in ``sqrt(a)``).
    """
    if not 0.0 < drop_peak < 1.0:
        raise ConfigurationError("drop_peak must be in (0, 1)")
    x = loss_coupling_product_for_fwhm(fsr_nm, fwhm_nm)
    # drop_peak = a * (1 - x/a)^2 / (1-x)^2.  Let g = sqrt(drop_peak)*(1-x):
    # sqrt(a) * (1 - x/a) = g  =>  a - g*sqrt(a) - x = 0 in sqrt(a).
    g = math.sqrt(drop_peak) * (1.0 - x)
    sqrt_a = (g + math.sqrt(g**2 + 4.0 * x)) / 2.0
    a = sqrt_a**2
    if not x < a <= 1.0:
        raise DesignInfeasibleError(
            f"no physical loss for FWHM={fwhm_nm} nm and drop_peak="
            f"{drop_peak} at FSR={fsr_nm} nm (needs a={a:.5f})"
        )
    r = math.sqrt(x / a)
    if not 0.0 < r <= 1.0:
        raise DesignInfeasibleError(
            f"no physical coupling (r={r:.4f}) for the requested filter"
        )
    return RingParameters(r1=r, r2=r, a=a, fsr_nm=fsr_nm)

"""Mach-Zehnder interferometer modulator model (paper Fig. 2(a), Eq. 7b).

In the DATE'19 adder, each MZI is driven by one stochastic data bit
``x_i``.  The constructive state (``x = 0``) transmits the pump with only
the insertion loss ``IL``; the destructive state (``x = 1``) additionally
attenuates it by the extinction ratio ``ER``:

``T_MZI(0) = IL%`` and ``T_MZI(1) = IL% * ER%``            (Eq. 7b)

where ``IL% = 10^(-IL_dB/10)`` and ``ER% = 10^(-ER_dB/10)`` (so ``ER%`` is
the *inverse* extinction ratio, a fraction < 1).  A continuous
phase-domain transfer is also provided for transient simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..units import ArrayLike, db_loss_to_transmission, validate_positive

__all__ = ["MZIModulator"]


@dataclass(frozen=True)
class MZIModulator:
    """A 1x1 MZI modulator characterized by insertion loss and extinction.

    Parameters
    ----------
    insertion_loss_db:
        Fraction of optical power lost in the constructive state (dB >= 0).
    extinction_ratio_db:
        Ratio of constructive (ON) to destructive (OFF) output power (dB > 0).
    modulation_speed_gbps:
        Demonstrated modulation speed (Gb/s); metadata used by the
        throughput/energy studies (Fig. 6(c)).
    phase_shifter_length_mm:
        Phase shifter length (mm); metadata for area discussion (Fig. 6(c)).
    name:
        Optional literature label (e.g. ``"Ziebell et al. 2012"``).
    """

    insertion_loss_db: float
    extinction_ratio_db: float
    modulation_speed_gbps: Optional[float] = None
    phase_shifter_length_mm: Optional[float] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.insertion_loss_db < 0.0:
            raise ConfigurationError(
                f"insertion_loss_db must be >= 0, got {self.insertion_loss_db!r}"
            )
        validate_positive(self.extinction_ratio_db, "extinction_ratio_db")
        if self.modulation_speed_gbps is not None:
            validate_positive(self.modulation_speed_gbps, "modulation_speed_gbps")
        if self.phase_shifter_length_mm is not None:
            validate_positive(self.phase_shifter_length_mm, "phase_shifter_length_mm")

    # -- linear-scale characteristics ----------------------------------------

    @property
    def il_fraction(self) -> float:
        """Constructive-state power transmission ``IL%`` (paper notation)."""
        return float(db_loss_to_transmission(self.insertion_loss_db))

    @property
    def er_fraction(self) -> float:
        """Destructive/constructive power ratio ``ER%`` (< 1, paper notation)."""
        return float(db_loss_to_transmission(self.extinction_ratio_db))

    # -- transfer functions ---------------------------------------------------

    def transmission(self, bit: ArrayLike) -> ArrayLike:
        """Eq. 7b: power transmission for data bit(s) ``x in {0, 1}``.

        Accepts scalars or arrays of 0/1 values (booleans or integers).
        """
        bit = np.asarray(bit)
        if not np.all((bit == 0) | (bit == 1)):
            raise ConfigurationError("MZI data bits must be 0 or 1")
        bit = bit.astype(float)
        value = self.il_fraction * (
            (1.0 - bit) + bit * self.er_fraction
        )
        if value.ndim == 0:
            return float(value)
        return value

    def phase_transmission(self, phase_shift_rad: ArrayLike) -> ArrayLike:
        """Continuous interferometric transfer for transient simulation.

        ``T(phi) = IL% * [(1 + ER%)/2 + (1 - ER%)/2 * cos(phi)]``

        satisfies ``T(0) = IL%`` (constructive) and ``T(pi) = IL% * ER%``
        (destructive), matching Eq. 7b at the two digital operating points
        while modeling finite rise/fall trajectories in between.
        """
        phase = np.asarray(phase_shift_rad, dtype=float)
        il, er = self.il_fraction, self.er_fraction
        value = il * ((1.0 + er) / 2.0 + (1.0 - er) / 2.0 * np.cos(phase))
        if value.ndim == 0:
            return float(value)
        return value

    def mean_transmission(self, ones_probability: float) -> float:
        """Expected transmission for a stochastic input of given probability.

        For a bit-stream with ``P(x=1) = p`` the time-averaged pump
        transmission is ``IL% * (1 - p*(1 - ER%))`` — the quantity that sets
        the average filter detuning in the stochastic regime.
        """
        if not 0.0 <= ones_probability <= 1.0:
            raise ConfigurationError("ones_probability must be in [0, 1]")
        return self.il_fraction * (
            1.0 - ones_probability * (1.0 - self.er_fraction)
        )

    def bit_period_s(self) -> float:
        """Bit period implied by the demonstrated modulation speed (s)."""
        if self.modulation_speed_gbps is None:
            raise ConfigurationError(
                "modulation_speed_gbps not set for this MZI device"
            )
        return 1.0 / (self.modulation_speed_gbps * 1e9)

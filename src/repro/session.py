"""Evaluator sessions: one declarative spec for every workload.

The paper's experiments — the accuracy sweeps of Section V-B, the
gamma-correction workload of Section V-C, the Monte Carlo yield study —
are all "run this circuit under these SNG/stream/runtime settings".
Before this module every entry point re-threaded the same knobs
(``length``, ``sng_kind``, ``base_seed``, ``sng_width``, ``noisy``,
``workers``, ``chunk_length``, cache, backend) through its own
signature.  Here they become two frozen objects bound once:

* :class:`EvalSpec` — *what* to evaluate: the randomizer family and
  width, the stream length, the seed policy (fixed ``base_seed`` or
  rng-derived per call) and the noisy flag.  This is the paper's notion
  of a design point: SNG choice x stream length x architecture.
* :class:`~repro.simulation.runtime.RuntimeConfig` — *how fast* to
  evaluate it: workers, chunk size, cache, and the engine's compute
  ``kernel`` (``"numpy"``/``"packed"``/``"numba"``, see
  :mod:`repro.simulation.kernels`).  Pure wall-clock/memory levers;
  never changes an output bit.

:class:`Evaluator` binds a circuit to one spec/runtime pair and exposes
every workload shape as a method — :meth:`~Evaluator.evaluate`
(batched), :meth:`~Evaluator.sweep` (labeled input grid),
:meth:`~Evaluator.stream` (bounded-memory chunked),
:meth:`~Evaluator.apply_kernel` (whole image),
:meth:`~Evaluator.monte_carlo` (fabrication corners).  All stream
evaluation dispatches through :func:`~repro.simulation.runtime.run_batch`,
so results are **bit-for-bit identical** to the equivalent free-function
calls under the same seeds, whatever the runtime knobs.

>>> import numpy as np, repro
>>> circuit = repro.OpticalStochasticCircuit(
...     repro.paper_section5a_parameters(),
...     repro.BernsteinPolynomial([0.25, 0.625, 0.375]))
>>> ev = repro.Evaluator(circuit, repro.EvalSpec(length=2048, base_seed=7))
>>> batch = ev.evaluate(np.linspace(0, 1, 64))
"""

from __future__ import annotations

import dataclasses
import operator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

from .errors import ConfigurationError

if TYPE_CHECKING:
    from .core.circuit import OpticalStochasticCircuit
from .simulation.engine import (
    _validate_base_seed,
    _validate_sng_width,
)
from .simulation.faultmodel import FaultSpec
from .simulation.runtime import RuntimeConfig, run_batch
from .stochastic.sng import SNG_KINDS

__all__ = [
    "DEFAULT_STREAM_CHUNK",
    "DEPRECATED_WRAPPERS",
    "EvalSpec",
    "Evaluator",
]

DEFAULT_STREAM_CHUNK: int = 1 << 16
"""Tile size :meth:`Evaluator.stream` falls back to when none is bound."""

DEPRECATED_WRAPPERS: Dict[str, Dict[str, Any]] = {
    "repro.stochastic.image.apply_circuit_kernel": {
        "replacement": "Evaluator(circuit, spec, runtime).apply_kernel(image)",
        "removal_note": (
            "deprecated in PR 3; removed in PR 6 after the policy's "
            "two-PR grace window — call the session replacement"
        ),
        "removed": True,
    },
    "repro.simulation.runtime.cached_simulate_batch": {
        "replacement": (
            "Evaluator(circuit, EvalSpec(base_seed=...), "
            "RuntimeConfig(use_cache=True)).evaluate(xs)"
        ),
        "removal_note": (
            "deprecated in PR 3; removed in PR 6 after the policy's "
            "two-PR grace window — call the session replacement"
        ),
        "removed": True,
    },
}
"""Legacy free functions folded into the session API.

Each maps a dotted legacy entry point to its session-method
``replacement`` plus a ``removal_note`` recording the deprecation and
removal history (the policy: wrappers survive at least two PRs past
deprecation before removal; both were deprecated in PR 3 and removed
in PR 6).  Entries with ``removed: True`` no longer resolve — the
registry stays as the migration record, and
``tests/test_public_api.py`` enforces that removed names are really
gone while their replacements exist.
"""


@dataclass(frozen=True)
class EvalSpec:
    """Declarative description of one stochastic-evaluation design point.

    Captures everything that determines *which bits* an evaluation
    produces — as opposed to :class:`~repro.simulation.runtime.RuntimeConfig`,
    which only decides how fast they are produced.

    Parameters
    ----------
    length:
        Stream length (clock count) per evaluation.
    sng_kind:
        Randomizer family: ``"lfsr"`` (default), ``"counter"``,
        ``"sobol"`` or ``"chaotic"``.
    sng_width:
        LFSR register width / comparator resolution in bits.
    noisy:
        When False the receiver slices noiselessly — isolating the
        stochastic-computing error from the transmission error.
    base_seed:
        Seed policy.  ``None`` (default) derives decorrelated per-row
        seeds from the ``rng`` passed to each call; a fixed integer
        pins the whole seed space, making every evaluation (including
        receiver noise) a deterministic — and cacheable — function of
        the inputs.
    fault:
        Optional :class:`~repro.simulation.faultmodel.FaultSpec` fault
        scenario injected into every evaluation of this design point —
        flips, desynchronization shifts, stuck-MZI pinning and
        drift/decay trajectories.  Part of the spec (not the runtime)
        because it changes *which bits* are produced; realizations are
        seeded from the evaluation's seed schedule, so the runtime
        knobs stay pure wall-clock levers under a fault too.
    """

    length: int = 1024
    sng_kind: str = "lfsr"
    sng_width: int = 16
    noisy: bool = True
    base_seed: Optional[int] = None
    fault: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        # Normalize to plain ints (accepting numpy integers), rejecting
        # floats and other non-integral values outright — the whole
        # point of the spec is that misconfiguration fails here, not as
        # an opaque TypeError deep inside the engine.
        for name in ("length", "sng_width", "base_seed"):
            value = getattr(self, name)
            if value is None:
                continue
            try:
                object.__setattr__(self, name, operator.index(value))
            except TypeError:
                raise ConfigurationError(
                    f"{name} must be an integer, got {value!r}"
                ) from None
        if self.length <= 0:
            raise ConfigurationError(
                f"length must be positive, got {self.length!r}"
            )
        if self.sng_kind not in SNG_KINDS:
            raise ConfigurationError(
                f"unknown SNG kind {self.sng_kind!r}; expected one of "
                f"{SNG_KINDS}"
            )
        if self.sng_width < 1:
            raise ConfigurationError(
                f"sng_width must be >= 1, got {self.sng_width!r}"
            )
        _validate_base_seed(self.base_seed)
        _validate_sng_width(self.sng_kind, self.sng_width)
        if self.fault is not None and not isinstance(self.fault, FaultSpec):
            raise ConfigurationError(
                f"fault must be a FaultSpec, got {self.fault!r}"
            )

    def replace(self, **changes: Any) -> "EvalSpec":
        """A copy of the spec with *changes* applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def with_length(self, length: int) -> "EvalSpec":
        """The same design point at another stream length.

        Progressive precision is stochastic computing's defining
        robustness property: truncating the bitstream degrades accuracy
        smoothly instead of failing.  This is the primitive the serving
        tier's degradation ladder steps down
        (:class:`repro.serving.DegradationLadder`) — same circuit, same
        seeds, shorter stream, measured accuracy cost.
        """
        return self.replace(length=length)

    @property
    def deterministic(self) -> bool:
        """Whether results are a pure function of the inputs.

        True when the seed space is pinned (fixed ``base_seed``, which
        also derives the receiver-noise seeds) or the randomizer is the
        deterministic counter *and* the receiver is noiseless — a noisy
        unpinned counter spec still draws its noise seeds from the
        caller's rng.  The precondition for caching and for
        reproducible serving.
        """
        return self.base_seed is not None or (
            self.sng_kind == "counter" and not self.noisy
        )


_SWEEP_METRICS: Dict[str, str] = {
    "value": "values",
    "absolute_error": "absolute_errors",
    "transmission_ber": "transmission_ber",
}


class Evaluator:
    """A circuit bound to one :class:`EvalSpec` and one runtime config.

    The session facade of the repo: construct it once, then run any
    workload shape without re-threading configuration.  Every
    stream-evaluation method dispatches through
    :func:`~repro.simulation.runtime.run_batch`, so the runtime's
    worker/chunk/cache knobs stay pure wall-clock levers — outputs are
    bit-for-bit identical to the serial free-function calls under the
    same seeds.

    Misconfigurations fail at construction: enabling the evaluation
    cache without a fixed ``base_seed`` raises here rather than on the
    first call.
    """

    def __init__(
        self,
        circuit: "OpticalStochasticCircuit",
        spec: Optional[EvalSpec] = None,
        runtime: Optional[RuntimeConfig] = None,
    ) -> None:
        from .core.circuit import OpticalStochasticCircuit

        if not isinstance(circuit, OpticalStochasticCircuit):
            raise ConfigurationError(
                "circuit must be an OpticalStochasticCircuit"
            )
        spec = EvalSpec() if spec is None else spec
        runtime = RuntimeConfig() if runtime is None else runtime
        if not isinstance(spec, EvalSpec):
            raise ConfigurationError(f"spec must be an EvalSpec, got {spec!r}")
        if not isinstance(runtime, RuntimeConfig):
            raise ConfigurationError(
                f"runtime must be a RuntimeConfig, got {runtime!r}"
            )
        if runtime.cache_requested and spec.base_seed is None:
            raise ConfigurationError(
                "the runtime enables the evaluation cache but the spec has "
                "no fixed base_seed; rng-derived seeds make every call "
                "unique — pin base_seed in the EvalSpec or disable the cache"
            )
        self.circuit: "OpticalStochasticCircuit" = circuit
        self.spec: EvalSpec = spec
        self.runtime: RuntimeConfig = runtime

    def __repr__(self) -> str:
        return (
            f"Evaluator(circuit={self.circuit.fingerprint()[:8]}..., "
            f"spec={self.spec!r}, runtime={self.runtime!r})"
        )

    # -- derived sessions ------------------------------------------------------

    def with_options(self, **spec_changes: Any) -> "Evaluator":
        """A new session on the same circuit/runtime with spec changes."""
        return Evaluator(
            self.circuit, self.spec.replace(**spec_changes), self.runtime
        )

    def with_runtime(self, runtime: RuntimeConfig) -> "Evaluator":
        """A new session on the same circuit/spec with another runtime."""
        return Evaluator(self.circuit, self.spec, runtime)

    def with_kernel(self, kernel: str) -> "Evaluator":
        """A new session running on another compute kernel.

        Kernels (:data:`repro.simulation.kernels.KERNELS`) are pure
        wall-clock/memory levers — the derived session returns
        bit-for-bit identical results.  Unknown or unavailable kernels
        raise :class:`~repro.errors.ConfigurationError` here, not on
        the first evaluation.
        """
        return self.with_runtime(
            dataclasses.replace(self.runtime, kernel=kernel)
        )

    def with_fault(self, fault: Optional[FaultSpec]) -> "Evaluator":
        """A new session evaluating under a fault scenario (or none).

        *fault* is a :class:`~repro.simulation.faultmodel.FaultSpec`
        (or ``None`` to clear one) — the graceful-degradation axis:
        derive one session per fault point and compare accuracy.
        Unlike the runtime knobs this changes which bits are produced,
        but the realization is schedule-seeded, so results remain
        bit-for-bit identical across kernels, workers, chunk sizes and
        transports.
        """
        return self.with_options(fault=fault)

    def with_transport(self, transport: str) -> "Evaluator":
        """A new session moving shard data over another transport.

        Transports (:data:`repro.simulation.transport.TRANSPORTS`) are
        pure IPC knobs — ``"shm"`` shares zero-copy arenas with process
        workers instead of pickling shard arrays, and never changes an
        output bit.  An unknown transport (or ``"shm"`` with a
        non-process backend) raises
        :class:`~repro.errors.ConfigurationError` here, not on the
        first evaluation.
        """
        return self.with_runtime(
            dataclasses.replace(self.runtime, transport=transport)
        )

    @property
    def kernel(self) -> str:
        """The bound runtime's compute kernel."""
        return self.runtime.kernel

    @property
    def row_independent(self) -> bool:
        """Whether each row's result is independent of its batch neighbors.

        True when the seed space is pinned (or the randomizer is the
        deterministic counter) **and** the receiver is noiseless: every
        row then depends only on its own input, so evaluating an input
        alone or inside any coalesced batch produces the same bits —
        the guarantee :class:`repro.serving.BatchServer` builds on.
        (With ``noisy=True`` the per-row noise seeds depend on the row's
        position in the batch, so only whole-batch identity holds —
        and likewise for stochastic fault components, whose mask seeds
        derive from the same positional noise-seed column.)
        """
        fault_positional = (
            self.spec.fault is not None and self.spec.fault.needs_seeds
        )
        return (
            self.spec.deterministic
            and not self.spec.noisy
            and not fault_positional
        )

    # -- workload methods ------------------------------------------------------

    def evaluate(
        self, xs: Any, rng: Optional[np.random.Generator] = None
    ) -> Any:
        """Evaluate every input in *xs* under the bound spec.

        Dispatches through :func:`~repro.simulation.runtime.run_batch`:
        returns a :class:`~repro.simulation.engine.BatchEvaluation` (or a
        :class:`~repro.simulation.runtime.ChunkedEvaluation` when the
        bound runtime chunks streams longer than one tile).  *rng*
        drives the per-row seed derivation when the spec has no fixed
        ``base_seed``; it is ignored otherwise.
        """
        return run_batch(
            self.circuit,
            xs,
            length=self.spec.length,
            rng=rng,
            noisy=self.spec.noisy,
            sng_kind=self.spec.sng_kind,
            base_seed=self.spec.base_seed,
            sng_width=self.spec.sng_width,
            config=self.runtime,
            fault=self.spec.fault,
        )

    def evaluate_one(
        self, x: float, rng: Optional[np.random.Generator] = None
    ) -> float:
        """The de-randomized output for a single input."""
        return float(np.asarray(self.evaluate([float(x)], rng=rng).values)[0])

    def sweep(
        self,
        xs: Any,
        metric: str = "value",
        rng: Optional[np.random.Generator] = None,
    ) -> Any:
        """Labeled sweep over the input axis, one batched pass.

        Routes through the exploration grid engine
        (:func:`repro.exploration.sweep.grid_sweep`) with this session
        as the vectorized ``metric_batch`` hook, returning a
        :class:`~repro.exploration.sweep.SweepResult` over axis ``x``.
        *metric* selects the per-input observable: ``"value"`` (the
        de-randomized output, default), ``"absolute_error"`` or
        ``"transmission_ber"``.
        """
        from .exploration.sweep import grid_sweep

        if metric not in _SWEEP_METRICS:
            raise ConfigurationError(
                f"unknown sweep metric {metric!r}; expected one of "
                f"{sorted(_SWEEP_METRICS)}"
            )
        attribute = _SWEEP_METRICS[metric]

        def metric_batch(x: "np.ndarray[Any, Any]") -> "np.ndarray[Any, Any]":
            return np.asarray(getattr(self.evaluate(x, rng=rng), attribute))

        return grid_sweep(metric_batch=metric_batch, x=xs)

    def stream(
        self,
        xs: Any,
        chunk_length: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Any:
        """Bounded-memory chunked evaluation of the bound stream length.

        Overrides the runtime's ``chunk_length`` for this call (falling
        back to the bound one, then to :data:`DEFAULT_STREAM_CHUNK`) and
        dispatches through ``run_batch`` — so the result is a
        :class:`~repro.simulation.runtime.ChunkedEvaluation` whenever the
        spec's stream exceeds one tile, bit-exact with the one-shot
        statistics and with a direct
        :func:`~repro.simulation.runtime.simulate_chunked` call under
        the same *rng*.
        """
        resolved = (
            chunk_length
            if chunk_length is not None
            else (self.runtime.chunk_length or DEFAULT_STREAM_CHUNK)
        )
        config = dataclasses.replace(
            self.runtime, chunk_length=int(resolved)
        )
        # Delegate so the spec-to-run_batch mapping lives in evaluate()
        # alone — a new spec field can never diverge between the
        # batched and streamed paths.
        return self.with_runtime(config).evaluate(xs, rng=rng)

    def apply_kernel(
        self,
        image: Any,
        levels: Optional[int] = 64,
        rng: Optional[np.random.Generator] = None,
    ) -> "np.ndarray[Any, Any]":
        """Run an image through the circuit (Section V-C workload shape).

        Quantizes to *levels* gray levels, evaluates all unique levels
        as **one** batched session pass, and scatters the de-randomized
        outputs back onto the frame — identical pixels whatever the
        bound runtime's worker/chunk/cache knobs.
        """
        from .stochastic.image import apply_pixel_kernel

        def batch_kernel(values: "np.ndarray[Any, Any]") -> "np.ndarray[Any, Any]":
            return np.asarray(self.evaluate(values, rng=rng).values)

        return np.asarray(
            apply_pixel_kernel(image, levels=levels, batch_kernel=batch_kernel)
        )

    def monte_carlo(
        self,
        variation: Any = None,
        samples: int = 200,
        rng: Optional[np.random.Generator] = None,
    ) -> Any:
        """Fabrication-corner yield study on this session's circuit.

        Runs :func:`repro.simulation.montecarlo.run_monte_carlo` on the
        bound circuit's parameters, fanning the corners out over the
        bound runtime's worker pool.  Corner offsets are drawn up front
        from *rng*, so serial and sharded runs are identical.  Bind
        ``RuntimeConfig(vectorized=True)`` to evaluate all corners as
        one stacked :mod:`repro.core.vectorized` pass — an order of
        magnitude faster, equal to the scalar loop up to floating-point
        rounding.
        """
        from .simulation.montecarlo import VariationModel, run_monte_carlo

        return run_monte_carlo(
            self.circuit.params,
            variation=VariationModel() if variation is None else variation,
            samples=samples,
            rng=rng,
            runtime=self.runtime,
        )

    def throughput_frontier(
        self,
        bers: Any,
        target_rms_error: float = 0.01,
        probability: float = 0.25,
    ) -> Dict[str, Any]:
        """The designer's BER-vs-latency frontier at this circuit's clock.

        Wraps :func:`repro.exploration.tradeoffs.throughput_accuracy_frontier`
        with the session circuit's bit rate, so the evaluation times are
        the ones this design point would actually see.
        """
        from .exploration.tradeoffs import throughput_accuracy_frontier

        frontier: Dict[str, Any] = throughput_accuracy_frontier(
            bers,
            target_rms_error=target_rms_error,
            bit_rate_hz=self.circuit.params.bit_rate_hz,
            probability=probability,
        )
        return frontier

"""The throughput-accuracy tradeoff (paper Sections V-B and V-D).

A stochastic computation's output error has two independent sources:

* **randomizer variance**: ``sqrt(p(1-p)/N)`` for stream length ``N``;
* **transmission bias**: symmetric flips with rate ``BER`` shift the
  decoded value by ``BER * (1 - 2p)`` (at most ``BER``).

Relaxing the link BER (cheaper probe lasers, Fig. 6(b)) can be bought
back by streaming more bits — and optical transmission speed makes longer
streams cheap.  The helpers here quantify that exchange and produce the
frontier a designer would navigate.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..stochastic.accuracy import required_stream_length

__all__ = [
    "accuracy_model",
    "measured_accuracy_frontier",
    "stream_length_for_accuracy",
    "throughput_accuracy_frontier",
]


def accuracy_model(
    stream_length: int, ber: float, probability: float = 0.5
) -> float:
    """RMS output error combining stream variance and BER bias.

    ``error = sqrt( p'(1-p')/N + (BER*(1-2p))^2 )`` with
    ``p' = p + BER(1-2p)`` the flipped-stream mean.
    """
    if stream_length <= 0:
        raise ConfigurationError("stream_length must be positive")
    if not 0.0 <= ber <= 0.5:
        raise ConfigurationError(f"ber must be in [0, 0.5], got {ber!r}")
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError("probability must be in [0, 1]")
    p_eff = probability + ber * (1.0 - 2.0 * probability)
    variance = p_eff * (1.0 - p_eff) / stream_length
    bias = ber * (1.0 - 2.0 * probability)
    return math.sqrt(variance + bias * bias)


_INFEASIBLE_LENGTH = float(np.iinfo(np.int64).max)


def _invert_accuracy_model(
    target_rms_error: float, bers: np.ndarray, probability: float
) -> tuple:
    """Vectorized inversion of :func:`accuracy_model`.

    Returns ``(lengths, feasible)``: the stream length restoring the
    accuracy target per BER, with infeasible points — BER bias alone
    above the target, or an out-of-range BER/target — saturated to the
    int64 ceiling and flagged False.  The single shared implementation
    behind both :func:`stream_length_for_accuracy` and
    :func:`throughput_accuracy_frontier`.
    """
    bias = bers * (1.0 - 2.0 * probability)
    remaining = target_rms_error**2 - bias * bias
    p_eff = probability + bias
    variance_per_bit = p_eff * (1.0 - p_eff)
    feasible = (
        (bers >= 0.0)
        & (bers <= 0.5)
        & (target_rms_error > 0.0)
        & (remaining > 0.0)
    )
    safe_remaining = np.where(feasible, remaining, 1.0)
    lengths = np.where(
        feasible,
        np.maximum(1.0, np.ceil(variance_per_bit / safe_remaining)),
        _INFEASIBLE_LENGTH,
    )
    return lengths, feasible


def stream_length_for_accuracy(
    target_rms_error: float, ber: float, probability: float = 0.5
) -> int:
    """Stream length needed for *target_rms_error* at a given link BER.

    Inverts :func:`accuracy_model`; raises
    :class:`ConfigurationError` when the BER bias alone exceeds the
    target (no stream length can fix a bias).
    """
    if target_rms_error <= 0.0:
        raise ConfigurationError("target_rms_error must be positive")
    if not 0.0 <= ber <= 0.5:
        raise ConfigurationError(f"ber must be in [0, 0.5], got {ber!r}")
    lengths, feasible = _invert_accuracy_model(
        target_rms_error, np.asarray([ber], dtype=float), probability
    )
    if not feasible[0]:
        bias = ber * (1.0 - 2.0 * probability)
        raise ConfigurationError(
            f"BER bias {abs(bias):.2e} alone exceeds the error target "
            f"{target_rms_error:.2e}; lower the BER instead"
        )
    return int(lengths[0])


def throughput_accuracy_frontier(
    bers: Sequence[float],
    target_rms_error: float = 0.01,
    bit_rate_hz: float = 1e9,
    probability: float = 0.25,
) -> dict:
    """The designer's frontier: link BER vs evaluation latency.

    For each candidate BER, computes the stream length restoring the
    accuracy target and the resulting evaluation time at *bit_rate_hz*.
    Combined with Fig. 6(b)'s probe-power-vs-BER curve this exposes the
    full energy/latency/accuracy exchange.

    Points whose BER bias alone exceeds the error target cannot be
    rescued by any stream length: they come back flagged ``False`` in
    the ``feasible`` array with ``evaluation_time_s`` set to ``inf``
    (their ``stream_length`` stays saturated at the int64 ceiling).
    """
    bers = np.asarray(list(bers), dtype=float)
    if bers.size == 0:
        raise ConfigurationError("need at least one BER")
    # One vectorized pass over all candidate BERs.  Infeasible points
    # used to surface as astronomically large but *finite* evaluation
    # times, indistinguishable from real ones; keep the feasibility mask
    # and make the times unmistakably infinite instead.
    lengths_array, feasible = _invert_accuracy_model(
        target_rms_error, bers, probability
    )
    times = np.where(feasible, lengths_array / bit_rate_hz, np.inf)
    return {
        "ber": bers,
        "stream_length": lengths_array,
        "evaluation_time_s": times,
        "feasible": feasible,
        "baseline_length": float(
            required_stream_length(target_rms_error * 2.0)
        ),
    }


def measured_accuracy_frontier(
    evaluator,
    lengths: Sequence[int],
    xs=None,
    seed: int = 0xF50,
) -> dict:
    """Validate the analytic accuracy model against a simulated session.

    The frontier above is *analytic* — ``sqrt(p(1-p)/N)`` plus BER bias.
    This helper measures the same exchange empirically: for each stream
    length, one :class:`repro.session.Evaluator` batch pass over *xs*
    (the bound spec with its ``length`` replaced per point, the same rng
    *seed* per point so the lengths differ only in stream budget),
    reporting the measured mean absolute error, the observed link BER,
    and the model's prediction side by side.
    """
    from ..session import Evaluator

    if not isinstance(evaluator, Evaluator):
        raise ConfigurationError(
            f"evaluator must be a repro.session.Evaluator, got {evaluator!r}"
        )
    lengths = [int(length) for length in lengths]
    if not lengths or any(length <= 0 for length in lengths):
        raise ConfigurationError("lengths must be positive integers")
    xs = (
        np.linspace(0.05, 0.95, 16)
        if xs is None
        else np.asarray(list(xs), dtype=float)
    )
    measured = np.empty(len(lengths))
    predicted = np.empty(len(lengths))
    observed_ber = np.empty(len(lengths))
    for index, length in enumerate(lengths):
        batch = evaluator.with_options(length=length).evaluate(
            xs, rng=np.random.default_rng(seed)
        )
        measured[index] = float(np.mean(batch.absolute_errors))
        ber = float(np.mean(batch.transmission_ber))
        observed_ber[index] = ber
        probability = float(np.clip(np.mean(batch.expected), 0.0, 1.0))
        predicted[index] = accuracy_model(
            length, ber=min(ber, 0.5), probability=probability
        )
    return {
        "stream_length": np.asarray(lengths, dtype=int),
        "measured_mae": measured,
        "predicted_rms_error": predicted,
        "observed_ber": observed_ber,
    }

"""Parallel-implementation study (paper Section V-C, closing remark).

"It is also worth mentioning that power density limitation could be
leveraged using a parallel implementation of the architecture."  This
module prices that statement: ``P`` independent circuit instances
multiply the throughput by ``P`` at ``P``-times the laser power, and the
per-area power density follows from a footprint model of the photonic
devices (MZI phase shifters dominate; rings are tiny).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..core.design import CircuitDesign
from ..core.energy import energy_breakdown

__all__ = ["FootprintModel", "ParallelismStudy", "parallel_study"]


@dataclass(frozen=True)
class FootprintModel:
    """Area model of one circuit instance.

    Parameters
    ----------
    mzi_area_mm2:
        Footprint of one MZI (phase shifter dominated; ~1 mm x 50 um).
    ring_area_mm2:
        Footprint of one micro-ring (tens of um on a side).
    overhead_mm2:
        Fixed per-instance overhead: couplers, splitter tree, detector,
        routing.
    """

    mzi_area_mm2: float = 0.05
    ring_area_mm2: float = 0.0016
    overhead_mm2: float = 0.02

    def __post_init__(self) -> None:
        for name in ("mzi_area_mm2", "ring_area_mm2", "overhead_mm2"):
            if getattr(self, name) < 0.0:
                raise ConfigurationError(f"{name} must be >= 0")

    def instance_area_mm2(self, order: int) -> float:
        """Area of one order-*order* instance (n MZIs, n+2 rings)."""
        if order < 1:
            raise ConfigurationError(f"order must be >= 1, got {order!r}")
        return (
            order * self.mzi_area_mm2
            + (order + 2) * self.ring_area_mm2
            + self.overhead_mm2
        )


@dataclass(frozen=True)
class ParallelismStudy:
    """Throughput / power / density figures for P parallel instances."""

    instances: int
    throughput_bits_per_s: float
    total_wall_power_mw: float
    total_area_mm2: float

    @property
    def power_density_mw_per_mm2(self) -> float:
        """Wall-plug power per chip area — the paper's limiting metric."""
        return self.total_wall_power_mw / self.total_area_mm2

    @property
    def throughput_per_power(self) -> float:
        """Bits per second per wall-plug milliwatt (efficiency figure)."""
        return self.throughput_bits_per_s / self.total_wall_power_mw


def parallel_study(
    design: CircuitDesign,
    instances: int,
    footprint: FootprintModel = FootprintModel(),
    max_power_density_mw_per_mm2: float = 1000.0,
) -> ParallelismStudy:
    """Scale one sized design to *instances* parallel copies.

    Wall-plug power counts the pulse-based pump at its duty-cycled
    average plus the CW probes, all divided by the lasing efficiency.
    Raises :class:`ConfigurationError` when the configuration exceeds
    *max_power_density_mw_per_mm2* — the "power density limitation" the
    paper alludes to.
    """
    if not isinstance(design, CircuitDesign):
        raise ConfigurationError("design must be a CircuitDesign")
    if instances < 1:
        raise ConfigurationError(f"instances must be >= 1, got {instances!r}")
    params = design.params
    breakdown = energy_breakdown(params)
    # Average wall power per instance = energy per bit x bit rate.
    wall_power_mw = (
        breakdown.total_energy_j * params.bit_rate_hz * 1e3
    )
    total_power = instances * wall_power_mw
    total_area = instances * footprint.instance_area_mm2(params.order)
    study = ParallelismStudy(
        instances=instances,
        throughput_bits_per_s=instances * params.bit_rate_hz,
        total_wall_power_mw=total_power,
        total_area_mm2=total_area,
    )
    if study.power_density_mw_per_mm2 > max_power_density_mw_per_mm2:
        raise ConfigurationError(
            f"power density {study.power_density_mw_per_mm2:.0f} mW/mm^2 "
            f"exceeds the {max_power_density_mw_per_mm2:.0f} mW/mm^2 budget"
        )
    return study


def max_instances_within_density(
    design: CircuitDesign,
    footprint: FootprintModel = FootprintModel(),
    max_power_density_mw_per_mm2: float = 1000.0,
) -> int:
    """Largest instance count below the density budget.

    Density is independent of P in this homogeneous model, so the answer
    is either unbounded (returned as a large sentinel) or zero; the
    function exists to make that structural fact explicit and to keep a
    hook for heterogeneous floorplans.
    """
    try:
        parallel_study(
            design, 1, footprint, max_power_density_mw_per_mm2
        )
    except ConfigurationError:
        return 0
    return np.iinfo(np.int32).max


__all__.append("max_instances_within_density")

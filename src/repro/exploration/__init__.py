"""Design-space exploration: sweeps, tradeoffs and scaling studies.

Drives the core models across parameter grids to regenerate the paper's
exploration figures (Fig. 6, Fig. 7) and the discussion-level studies
(throughput-accuracy tradeoff, order scaling, gamma-correction case
study).
"""

from .sweep import SweepResult, grid_sweep
from .pareto import pareto_front
from .tradeoffs import (
    accuracy_model,
    measured_accuracy_frontier,
    stream_length_for_accuracy,
    throughput_accuracy_frontier,
)
from .scaling import (
    gamma_correction_case_study,
    order_scaling_table,
)
from .sensitivity import headline_energy_sensitivities, relative_sensitivity
from .parallelism import FootprintModel, max_instances_within_density, parallel_study

__all__ = [
    "SweepResult",
    "grid_sweep",
    "pareto_front",
    "accuracy_model",
    "measured_accuracy_frontier",
    "stream_length_for_accuracy",
    "throughput_accuracy_frontier",
    "order_scaling_table",
    "gamma_correction_case_study",
    "relative_sensitivity",
    "headline_energy_sensitivities",
    "FootprintModel",
    "parallel_study",
    "max_instances_within_density",
]

"""Local sensitivity analysis of the headline metrics.

Which device parameter buys the most energy?  The paper's design-space
discussion (Section III-B) stresses the "heterogeneity of the involved
devices"; this module quantifies it: relative sensitivities of the
energy-per-bit (and any custom metric) to the technology constants —
OTE, MZI insertion loss, lasing efficiency, guard band, pulse width —
via central finite differences.  Useful both as a designer's tool and as
a robustness statement about the calibration (small parameter errors
move the headline smoothly).
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Sequence

import numpy as np

from ..errors import ConfigurationError, DesignInfeasibleError
from ..core.design import mrr_first_design
from ..core.energy import energy_breakdown
from ..photonics.devices import DENSE_RING_PROFILE
from ..photonics.nonlinear import OpticalTuningEfficiency

__all__ = ["relative_sensitivity", "headline_energy_sensitivities"]


def relative_sensitivity(
    metric: Callable[[float], float],
    nominal: float,
    step_fraction: float = 0.02,
) -> float:
    """Normalized local sensitivity ``(dM/M) / (dp/p)`` at *nominal*.

    Central difference with a relative step; a value of +1 means the
    metric scales linearly with the parameter, 0 means locally flat.
    """
    if nominal == 0.0:
        raise ConfigurationError("nominal parameter value must be non-zero")
    if not 0.0 < step_fraction < 0.5:
        raise ConfigurationError(
            f"step_fraction must be in (0, 0.5), got {step_fraction!r}"
        )
    step = abs(nominal) * step_fraction
    up = metric(nominal + step)
    down = metric(nominal - step)
    center = metric(nominal)
    if center == 0.0:
        raise ConfigurationError("metric is zero at the nominal point")
    return float(((up - down) / (2.0 * step)) * (nominal / center))


def _headline_energy_pj(
    order: int,
    spacing_nm: float,
    *,
    ote_nm_per_mw: float = 0.01,
    insertion_loss_db: float = 4.5,
    guard_nm: float = 0.1,
    laser_efficiency: float = 0.2,
    pulse_width_s: float = 26e-12,
) -> float:
    design = mrr_first_design(
        order=order,
        wl_spacing_nm=spacing_nm,
        guard_nm=guard_nm,
        insertion_loss_db=insertion_loss_db,
        ring_profile=DENSE_RING_PROFILE,
        ote=OpticalTuningEfficiency(nm_per_mw=ote_nm_per_mw),
        laser_efficiency=laser_efficiency,
        pump_pulse_width_s=pulse_width_s,
    )
    return energy_breakdown(design.params).total_energy_pj


def _headline_energy_pj_batch(
    order: int,
    spacing_nm: float,
    points: Sequence[Mapping[str, float]],
) -> np.ndarray:
    """Headline energies for many technology-knob points, one sizing pass.

    Each point is a full ``{ote_nm_per_mw, insertion_loss_db, guard_nm,
    laser_efficiency, pulse_width_s}`` assignment; the whole set is
    sized through
    :func:`repro.core.vectorized.mrr_first_sizing_batch` — the
    expensive worst-case eye is a single stacked evaluation instead of
    one ``TransmissionModel`` per finite-difference probe.
    """
    from ..constants import PAPER_BIT_RATE_HZ
    from ..core.energy import laser_energies_pj
    from ..core.vectorized import mrr_first_sizing_batch

    size = len(points)
    spacings = np.full(size, float(spacing_nm))
    guard = np.asarray([p["guard_nm"] for p in points], dtype=float)
    il_db = np.asarray([p["insertion_loss_db"] for p in points], dtype=float)
    slope = np.asarray([p["ote_nm_per_mw"] for p in points], dtype=float)
    eta = np.asarray([p["laser_efficiency"] for p in points], dtype=float)
    pulse = np.asarray([p["pulse_width_s"] for p in points], dtype=float)
    sizing = mrr_first_sizing_batch(
        order,
        spacings,
        guard_nm=guard,
        insertion_loss_db=il_db,
        ring_profile=DENSE_RING_PROFILE,
        ote_nm_per_mw=slope,
    )
    if not np.all(sizing["feasible"]):
        bad = ~sizing["feasible"]
        raise DesignInfeasibleError(
            "headline design infeasible for sensitivity points "
            f"{np.flatnonzero(bad).tolist()} at spacing {spacing_nm} nm"
        )
    pump_pj, probe_pj = laser_energies_pj(
        sizing["pump_power_mw"],
        sizing["probe_power_mw"],
        channel_count=order + 1,
        bit_rate_hz=PAPER_BIT_RATE_HZ,
        pump_pulse_width_s=pulse,
        laser_efficiency=eta,
    )
    return pump_pj + probe_pj


def headline_energy_sensitivities(
    order: int = 2,
    spacing_nm: float = 0.165,
    parameters: Sequence[str] = (
        "ote_nm_per_mw",
        "insertion_loss_db",
        "guard_nm",
        "laser_efficiency",
        "pulse_width_s",
    ),
    step_fraction: float = 0.02,
) -> Dict[str, float]:
    """Relative sensitivities of the energy/bit to each technology knob.

    All central-difference probes (one up/down pair per parameter plus
    the shared nominal point) are sized in **one** stacked batch-eye
    pass, so the cost no longer scales with three scalar designs per
    parameter.

    Expected structure (and what the tests assert):

    * ``laser_efficiency`` ~ -1 (energy inversely proportional to eta);
    * ``ote_nm_per_mw`` < 0 (better tuning -> less pump power);
    * ``insertion_loss_db`` > 0 (lossier MZIs -> more pump power);
    * ``pulse_width_s`` in (0, 1) (scales only the pump share).
    """
    nominals: Mapping[str, float] = {
        "ote_nm_per_mw": 0.01,
        "insertion_loss_db": 4.5,
        "guard_nm": 0.1,
        "laser_efficiency": 0.2,
        "pulse_width_s": 26e-12,
    }
    unknown = [p for p in parameters if p not in nominals]
    if unknown:
        raise ConfigurationError(
            f"unknown parameters {unknown}; choose from {sorted(nominals)}"
        )
    if not 0.0 < step_fraction < 0.5:
        raise ConfigurationError(
            f"step_fraction must be in (0, 0.5), got {step_fraction!r}"
        )
    points = [dict(nominals)]
    for name in parameters:
        step = abs(nominals[name]) * step_fraction
        for value in (nominals[name] + step, nominals[name] - step):
            point = dict(nominals)
            point[name] = value
            points.append(point)
    energies = _headline_energy_pj_batch(order, spacing_nm, points)
    center = float(energies[0])
    if center == 0.0:
        raise ConfigurationError("metric is zero at the nominal point")
    sensitivities: Dict[str, float] = {}
    for slot, name in enumerate(parameters):
        nominal = nominals[name]
        step = abs(nominal) * step_fraction
        up, down = energies[1 + 2 * slot], energies[2 + 2 * slot]
        sensitivities[name] = float(
            ((up - down) / (2.0 * step)) * (nominal / center)
        )
    return sensitivities

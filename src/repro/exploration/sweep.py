"""Generic grid-sweep engine.

Evaluates a metric function over the Cartesian product of named parameter
axes and returns a labeled N-D result — the workhorse behind the
Fig. 6(a) IL/ER exploration and any custom study a user wants to run.
Failed evaluations (e.g. infeasible designs) record ``nan`` instead of
aborting the sweep.  Point-wise metrics can be fanned out across worker
processes through the evaluation runtime (``workers=``).
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, ReproError

__all__ = ["SweepResult", "grid_sweep"]


def _evaluate_sweep_point(metric: Callable, point: dict) -> float:
    """One ``metric(**point)`` call (module-level for process pools).

    Mapped as ``functools.partial(_evaluate_sweep_point, metric)`` so
    the metric — which may close over a whole circuit — is pickled once
    per pool chunk rather than once per grid point.
    """
    try:
        return float(metric(**point))
    except ReproError:
        return float("nan")


def _picklable(metric: Callable) -> bool:
    """Whether *metric* can be shipped to a worker process."""
    import pickle

    try:
        pickle.dumps(metric)
    except Exception:
        return False
    return True


@dataclass(frozen=True)
class SweepResult:
    """Labeled result of an N-dimensional grid sweep."""

    axes: Tuple[str, ...]
    grids: Dict[str, np.ndarray]
    values: np.ndarray

    def axis(self, name: str) -> np.ndarray:
        """Grid points of one axis."""
        if name not in self.grids:
            raise ConfigurationError(
                f"unknown axis {name!r}; have {list(self.grids)}"
            )
        return self.grids[name]

    @property
    def finite_fraction(self) -> float:
        """Fraction of sweep points that evaluated successfully."""
        return float(np.mean(np.isfinite(self.values)))

    def argmin(self) -> dict:
        """Coordinates and value of the sweep minimum (ignoring nans)."""
        if not np.any(np.isfinite(self.values)):
            raise ReproError("sweep produced no finite values")
        flat = np.nanargmin(self.values)
        index = np.unravel_index(flat, self.values.shape)
        coords = {
            name: float(self.grids[name][i])
            for name, i in zip(self.axes, index)
        }
        coords["value"] = float(self.values[index])
        return coords

    def argmax(self) -> dict:
        """Coordinates and value of the sweep maximum (ignoring nans)."""
        if not np.any(np.isfinite(self.values)):
            raise ReproError("sweep produced no finite values")
        flat = np.nanargmax(self.values)
        index = np.unravel_index(flat, self.values.shape)
        coords = {
            name: float(self.grids[name][i])
            for name, i in zip(self.axes, index)
        }
        coords["value"] = float(self.values[index])
        return coords


def grid_sweep(
    metric: Optional[Callable[..., float]] = None,
    metric_batch: Optional[Callable[..., Sequence[float]]] = None,
    workers: Optional[int] = None,
    runtime=None,
    **axes: Sequence[float],
) -> SweepResult:
    """Evaluate a metric over the grid product of *axes*.

    Exactly one of the two callables must be given:

    * ``metric(**point) -> float`` is called once per grid point
      (failed evaluations record ``nan``);
    * ``metric_batch(**flat_axes) -> values`` receives every grid point
      at once — one flat array per axis, Cartesian product order — and
      returns the matching flat value array.  This is the one-pass hook
      for vectorized models — the batched evaluation engine, or an
      :class:`repro.session.Evaluator` session
      (:meth:`~repro.session.Evaluator.sweep` routes through here).
      Infeasible points should come back as ``nan``; a batched metric
      that raises a :class:`ReproError` outright (no per-point
      granularity) records ``nan`` for the whole grid instead of
      aborting the sweep.

    ``workers`` (point-wise ``metric`` only; default the
    ``REPRO_RUNTIME_WORKERS`` environment setting) fans the grid points
    out across the runtime's process pool
    (:func:`repro.simulation.runtime.parallel_map`); *metric* must be
    picklable (a module-level function) to actually cross the process
    boundary — unpicklable metrics (lambdas, closures) quietly run
    serially instead.  The probe only runs when a process pool would
    actually be used: under the ``thread`` backend (or ``workers <= 1``)
    nothing is pickled and lambdas parallelize fine.  Results are
    identical to the serial loop; the
    pool only changes wall-clock.  Alternatively pass a
    :class:`repro.simulation.runtime.RuntimeConfig` as *runtime* to take
    the worker count and pool backend from a bound session config (an
    explicit ``workers=`` wins over the config's).

    Example
    -------
    >>> result = grid_sweep(
    ...     lambda il_db, er_db: il_db + er_db,
    ...     il_db=[3.0, 4.0],
    ...     er_db=[5.0, 6.0],
    ... )
    >>> result.values.shape
    (2, 2)
    """
    if (metric is None) == (metric_batch is None):
        raise ConfigurationError(
            "pass exactly one of metric= or metric_batch="
        )
    from ..simulation.runtime import resolve_pool

    workers, backend = resolve_pool(runtime, workers)
    if not axes:
        raise ConfigurationError("need at least one sweep axis")
    names = tuple(axes.keys())
    grids = {name: np.asarray(list(axes[name]), dtype=float) for name in names}
    for name, grid in grids.items():
        if grid.size == 0:
            raise ConfigurationError(f"axis {name!r} is empty")
    shape = tuple(grids[name].size for name in names)
    if metric_batch is not None:
        if workers is not None and int(workers) > 1:
            # One vectorized call has nothing to fan out; an explicit
            # workers= request deserves the same signal as the
            # unpicklable-metric fallback below.
            import warnings

            warnings.warn(
                f"grid_sweep: workers={workers} has no effect with "
                "metric_batch= (the batch hook is a single vectorized "
                "call); pass metric= to parallelize point-wise",
                RuntimeWarning,
                stacklevel=2,
            )
        mesh = np.meshgrid(*(grids[name] for name in names), indexing="ij")
        flat = {
            name: m.reshape(-1) for name, m in zip(names, mesh)
        }
        try:
            values = np.asarray(metric_batch(**flat), dtype=float)
        except ReproError:
            return SweepResult(
                axes=names, grids=grids, values=np.full(shape, np.nan)
            )
        if values.size != int(np.prod(shape)):
            raise ConfigurationError(
                f"metric_batch returned {values.size} values for "
                f"{int(np.prod(shape))} grid points"
            )
        values = values.reshape(shape)
        return SweepResult(axes=names, grids=grids, values=values)
    from ..simulation.runtime import default_worker_count, parallel_map

    explicit = workers is not None
    workers = default_worker_count() if workers is None else int(workers)
    # The picklability probe only matters when the metric would actually
    # cross a process boundary: thread pools and serial runs share the
    # address space, so probing (and pickling the metric, possibly a
    # large closure) there would be pure waste — and would wrongly
    # demote thread-pool lambdas to serial.
    if workers > 1 and backend != "thread" and not _picklable(metric):
        # Lambdas/closures cannot cross a process boundary; run them
        # serially instead of letting the pool raise — the environment
        # worker default must never break a previously valid sweep.  An
        # explicit workers= request deserves a signal, though.
        if explicit:
            import warnings

            warnings.warn(
                f"grid_sweep: metric {metric!r} is not picklable; "
                f"ignoring workers={workers} and sweeping serially "
                "(move the metric to module level to parallelize)",
                RuntimeWarning,
                stacklevel=2,
            )
        workers = 0
    indices = list(itertools.product(*(range(s) for s in shape)))
    points = [
        {name: float(grids[name][i]) for name, i in zip(names, index)}
        for index in indices
    ]
    flat_values = parallel_map(
        functools.partial(_evaluate_sweep_point, metric),
        points,
        workers=workers,
        backend=backend,
    )
    values = np.full(shape, np.nan)
    for index, value in zip(indices, flat_values):
        values[index] = value
    return SweepResult(axes=names, grids=grids, values=values)

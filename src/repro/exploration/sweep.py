"""Generic grid-sweep engine.

Evaluates a metric function over the Cartesian product of named parameter
axes and returns a labeled N-D result — the workhorse behind the
Fig. 6(a) IL/ER exploration and any custom study a user wants to run.
Failed evaluations (e.g. infeasible designs) record ``nan`` instead of
aborting the sweep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, ReproError

__all__ = ["SweepResult", "grid_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """Labeled result of an N-dimensional grid sweep."""

    axes: Tuple[str, ...]
    grids: Dict[str, np.ndarray]
    values: np.ndarray

    def axis(self, name: str) -> np.ndarray:
        """Grid points of one axis."""
        if name not in self.grids:
            raise ConfigurationError(
                f"unknown axis {name!r}; have {list(self.grids)}"
            )
        return self.grids[name]

    @property
    def finite_fraction(self) -> float:
        """Fraction of sweep points that evaluated successfully."""
        return float(np.mean(np.isfinite(self.values)))

    def argmin(self) -> dict:
        """Coordinates and value of the sweep minimum (ignoring nans)."""
        if not np.any(np.isfinite(self.values)):
            raise ReproError("sweep produced no finite values")
        flat = np.nanargmin(self.values)
        index = np.unravel_index(flat, self.values.shape)
        coords = {
            name: float(self.grids[name][i])
            for name, i in zip(self.axes, index)
        }
        coords["value"] = float(self.values[index])
        return coords

    def argmax(self) -> dict:
        """Coordinates and value of the sweep maximum (ignoring nans)."""
        if not np.any(np.isfinite(self.values)):
            raise ReproError("sweep produced no finite values")
        flat = np.nanargmax(self.values)
        index = np.unravel_index(flat, self.values.shape)
        coords = {
            name: float(self.grids[name][i])
            for name, i in zip(self.axes, index)
        }
        coords["value"] = float(self.values[index])
        return coords


def grid_sweep(
    metric: Callable[..., float],
    **axes: Sequence[float],
) -> SweepResult:
    """Evaluate ``metric(**point)`` over the grid product of *axes*.

    Example
    -------
    >>> result = grid_sweep(
    ...     lambda il_db, er_db: il_db + er_db,
    ...     il_db=[3.0, 4.0],
    ...     er_db=[5.0, 6.0],
    ... )
    >>> result.values.shape
    (2, 2)
    """
    if not axes:
        raise ConfigurationError("need at least one sweep axis")
    names = tuple(axes.keys())
    grids = {name: np.asarray(list(axes[name]), dtype=float) for name in names}
    for name, grid in grids.items():
        if grid.size == 0:
            raise ConfigurationError(f"axis {name!r} is empty")
    shape = tuple(grids[name].size for name in names)
    values = np.full(shape, np.nan)
    for index in itertools.product(*(range(s) for s in shape)):
        point = {
            name: float(grids[name][i]) for name, i in zip(names, index)
        }
        try:
            values[index] = float(metric(**point))
        except ReproError:
            values[index] = np.nan
    return SweepResult(axes=names, grids=grids, values=values)

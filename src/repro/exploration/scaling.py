"""Order-scaling studies (paper Fig. 7(b) and the Section V-C case study).

The generic architecture scales to any polynomial degree ``n``; the cost
is linear in ``n`` for the pump (larger swing) and in ``n + 1`` for the
probes.  This module produces the Fig. 7(b) table (energy vs order at
1 nm and optimal spacing) and the gamma-correction case study the paper
uses to argue the 10x speedup over the 100 MHz electronic ReSC.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..constants import PAPER_GAMMA_ORDER, PAPER_RESC_CLOCK_HZ
from ..errors import ConfigurationError
from ..core.design import mrr_first_design
from ..core.energy import energy_breakdown, energy_vs_spacing, optimal_wl_spacing_nm
from ..photonics.devices import DENSE_RING_PROFILE, RingProfile

__all__ = ["order_scaling_table", "gamma_correction_case_study"]


def order_scaling_table(
    orders: Sequence[int],
    coarse_spacing_nm: float = 1.0,
    optimal_spacing_nm: Optional[float] = None,
    ring_profile: RingProfile = DENSE_RING_PROFILE,
) -> dict:
    """The Fig. 7(b) data: energy per bit vs order, 1 nm vs optimal grid.

    When *optimal_spacing_nm* is None the optimum of the smallest order
    is used for every order — valid because of the paper's
    order-independence observation (and ~40x faster than re-optimizing
    per order).
    """
    orders = [int(o) for o in orders]
    if not orders or any(o < 1 for o in orders):
        raise ConfigurationError("orders must be positive integers")
    if optimal_spacing_nm is None:
        optimal_spacing_nm = optimal_wl_spacing_nm(
            min(orders), ring_profile=ring_profile
        )
    # One stacked sizing pass per order: both grid candidates share the
    # pattern enumeration and ring geometry work (vectorized designer).
    coarse = []
    optimal = []
    for order in orders:
        sweep = energy_vs_spacing(
            order,
            [coarse_spacing_nm, optimal_spacing_nm],
            ring_profile=ring_profile,
        )
        coarse.append(float(sweep["total_pj"][0]))
        optimal.append(float(sweep["total_pj"][1]))
    coarse_array = np.asarray(coarse)
    optimal_array = np.asarray(optimal)
    return {
        "order": np.asarray(orders, dtype=int),
        "coarse_spacing_nm": float(coarse_spacing_nm),
        "optimal_spacing_nm": float(optimal_spacing_nm),
        "coarse_total_pj": coarse_array,
        "optimal_total_pj": optimal_array,
        "saving_fraction": 1.0 - optimal_array / coarse_array,
    }


def gamma_correction_case_study(
    bit_rate_hz: float = 1e9,
    electronic_clock_hz: float = PAPER_RESC_CLOCK_HZ,
    stream_length: int = 1024,
    ring_profile: RingProfile = DENSE_RING_PROFILE,
) -> dict:
    """Section V-C application study: 6th-order gamma correction.

    Sizes the order-6 circuit at its optimal spacing and reports energy,
    per-pixel latency and the speedup over the electronic ReSC baseline
    (the paper quotes 10x for 1 GHz vs 100 MHz).
    """
    if bit_rate_hz <= 0 or electronic_clock_hz <= 0:
        raise ConfigurationError("rates must be positive")
    if stream_length <= 0:
        raise ConfigurationError("stream_length must be positive")
    order = PAPER_GAMMA_ORDER
    spacing = optimal_wl_spacing_nm(order, ring_profile=ring_profile)
    design = mrr_first_design(
        order=order,
        wl_spacing_nm=spacing,
        ring_profile=ring_profile,
        bit_rate_hz=bit_rate_hz,
    )
    breakdown = energy_breakdown(design.params)
    optical_pixel_time = stream_length / bit_rate_hz
    electronic_pixel_time = stream_length / electronic_clock_hz
    return {
        "order": order,
        "wl_spacing_nm": spacing,
        "pump_power_mw": design.pump_power_mw,
        "probe_power_mw": design.probe_power_mw,
        "energy_per_bit_pj": breakdown.total_energy_pj,
        "energy_per_pixel_pj": breakdown.total_energy_pj * stream_length,
        "optical_pixel_time_s": optical_pixel_time,
        "electronic_pixel_time_s": electronic_pixel_time,
        "speedup": electronic_pixel_time / optical_pixel_time,
    }

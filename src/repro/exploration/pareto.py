"""Pareto-front utilities for multi-objective design exploration.

The paper's design space trades conflicting objectives (probe vs pump
power, energy vs robustness, throughput vs accuracy); the helpers here
extract the non-dominated frontier from a cloud of candidate designs.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["pareto_front", "is_dominated"]


def is_dominated(point: np.ndarray, others: np.ndarray) -> bool:
    """True when some row of *others* is <= *point* everywhere and < somewhere.

    All objectives are minimized.
    """
    point = np.asarray(point, dtype=float)
    others = np.asarray(others, dtype=float)
    if others.size == 0:
        return False
    not_worse = np.all(others <= point, axis=1)
    strictly_better = np.any(others < point, axis=1)
    return bool(np.any(not_worse & strictly_better))


def pareto_front(points: Sequence[Sequence[float]]) -> np.ndarray:
    """Indices of the non-dominated points (all objectives minimized).

    Returns indices sorted by the first objective, so plotting the
    selected points draws the frontier left to right.

    >>> pareto_front([[1, 5], [2, 2], [3, 4], [2, 6]]).tolist()
    [0, 1]
    """
    array = np.asarray(list(points), dtype=float)
    if array.ndim != 2 or array.shape[0] == 0:
        raise ConfigurationError("need a non-empty 2-D point cloud")
    if not np.all(np.isfinite(array)):
        raise ConfigurationError("points must be finite")
    keep = []
    for i in range(array.shape[0]):
        others = np.delete(array, i, axis=0)
        if not is_dominated(array[i], others):
            keep.append(i)
    keep_array = np.asarray(keep, dtype=int)
    order = np.argsort(array[keep_array, 0], kind="stable")
    return keep_array[order]

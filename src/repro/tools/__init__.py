"""Developer tooling shipped with the repo.

Everything under :mod:`repro.tools` is **stdlib-only**: the tools run in
CI environments (and pre-commit hooks) before the scientific stack is
even importable, so nothing here may import numpy, scipy, or the repro
runtime itself.

* :mod:`repro.tools.lint` — ``repro-lint``, the AST-based invariant
  checker guarding the bit-exactness conventions the runtime's
  determinism guarantee rests on (``python -m repro.tools.lint
  src/repro``).
"""

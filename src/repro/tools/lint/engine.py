"""The ``repro-lint`` rule engine: files, pragmas, diagnostics, CLI.

A deliberately small, stdlib-only static-analysis framework.  The moving
parts:

* :class:`FileSource` — one parsed python file: source text, AST, and
  the ``# repro-lint: disable=...`` pragma table.
* :class:`Rule` / :class:`RuleVisitor` — a per-file check: the visitor
  walks one module AST and calls :meth:`RuleVisitor.report` for each
  violation.
* :class:`ProjectRule` — a whole-file-set check (used by RL002, whose
  invariant spans ``__init__.py`` / ``_api.py`` / ``session.py``).
* :class:`LintRunner` — applies the enabled rules to a file set,
  filters suppressed diagnostics, and renders the report.
* :func:`main` — the ``python -m repro.tools.lint`` entry point
  (exit 0 clean, 1 violations, 2 usage error).

Suppression is per physical line: a trailing
``# repro-lint: disable=RL001`` (comma-separated rule names, or
``all``) silences diagnostics anchored on that line, and
``# repro-lint: disable-file=RL001`` anywhere in the file silences the
named rules for the whole file.  Every suppression is deliberate and
greppable — the pragma string is the audit trail.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "Diagnostic",
    "FileSource",
    "LintRunner",
    "ProjectRule",
    "Rule",
    "RuleVisitor",
    "main",
]

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*="
    r"\s*(?P<rules>[A-Za-z0-9_,\s]+)"
)


@dataclass(frozen=True)
class Diagnostic:
    """One violation: where, which rule, and why it matters."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: RULE message`` (the one-line report form)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)


class FileSource:
    """One file under lint: text, AST, and its suppression pragmas."""

    def __init__(self, path: Path, text: Optional[str] = None) -> None:
        self.path = Path(path)
        self.text = self.path.read_text() if text is None else text
        self.tree = ast.parse(self.text, filename=str(self.path))
        self._line_pragmas: Dict[int, Set[str]] = {}
        self._file_pragmas: Set[str] = set()
        for number, line in enumerate(self.text.splitlines(), start=1):
            match = _PRAGMA.search(line)
            if not match:
                continue
            rules = {
                name.strip().upper()
                for name in match.group("rules").split(",")
                if name.strip()
            }
            if match.group("scope") == "disable-file":
                self._file_pragmas |= rules
            else:
                self._line_pragmas.setdefault(number, set()).update(rules)

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether *rule* is pragma-silenced at *line* of this file."""
        for pragmas in (self._file_pragmas, self._line_pragmas.get(line, set())):
            if "ALL" in pragmas or rule.upper() in pragmas:
                return True
        return False


class Rule:
    """A per-file check.  Subclasses set the metadata and ``check``."""

    name: str = ""
    description: str = ""
    default_enabled: bool = True

    def check(self, source: FileSource) -> List[Diagnostic]:
        raise NotImplementedError


class RuleVisitor(ast.NodeVisitor):
    """An :class:`ast.NodeVisitor` that doubles as a :class:`Rule`.

    Subclasses implement ``visit_*`` methods and call :meth:`report`;
    the framework handles instantiation per file, diagnostic plumbing
    and pragma filtering.  State set in ``__init__`` is per-file — a
    fresh visitor walks every file.
    """

    name: str = ""
    description: str = ""
    default_enabled: bool = True

    def __init__(self, source: FileSource) -> None:
        self.source = source
        self.diagnostics: List[Diagnostic] = []

    def report(self, node: ast.AST, message: str) -> None:
        """Record a violation anchored at *node*."""
        self.diagnostics.append(
            Diagnostic(
                path=str(self.source.path),
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.name,
                message=message,
            )
        )

    @classmethod
    def check(cls, source: FileSource) -> List[Diagnostic]:
        visitor = cls(source)
        visitor.visit(source.tree)
        return visitor.diagnostics


class ProjectRule:
    """A whole-file-set check (cross-file invariants like RL002)."""

    name: str = ""
    description: str = ""
    default_enabled: bool = True

    def check_project(self, sources: Sequence[FileSource]) -> List[Diagnostic]:
        raise NotImplementedError


@dataclass
class LintRunner:
    """Apply a rule set to a file set and collect the surviving report."""

    rules: Sequence[Type[Any]]
    sources: List[FileSource] = field(default_factory=list)
    errors: List[Diagnostic] = field(default_factory=list)

    def add_path(self, path: Path) -> None:
        """Queue one file, or every ``*.py`` under a directory."""
        path = Path(path)
        files = (
            sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
            if path.is_dir()
            else [path]
        )
        for file in files:
            try:
                self.sources.append(FileSource(file))
            except (SyntaxError, ValueError) as error:
                line = getattr(error, "lineno", 1) or 1
                self.errors.append(
                    Diagnostic(
                        path=str(file),
                        line=int(line),
                        col=1,
                        rule="RL000",
                        message=f"file does not parse: {error.msg}"
                        if isinstance(error, SyntaxError)
                        else f"file does not parse: {error}",
                    )
                )

    def run(self) -> List[Diagnostic]:
        """Every unsuppressed diagnostic, sorted by location."""
        by_path = {str(source.path): source for source in self.sources}
        diagnostics = list(self.errors)
        for rule in self.rules:
            if issubclass(rule, ProjectRule):
                raw = rule().check_project(self.sources)
            else:
                raw = [
                    diagnostic
                    for source in self.sources
                    for diagnostic in rule.check(source)
                ]
            for diagnostic in raw:
                source = by_path.get(diagnostic.path)
                if source is not None and source.suppressed(
                    diagnostic.rule, diagnostic.line
                ):
                    continue
                diagnostics.append(diagnostic)
        return sorted(diagnostics, key=Diagnostic.sort_key)


def _parse_rule_list(raw: Iterable[str]) -> Set[str]:
    names: Set[str] = set()
    for chunk in raw:
        names.update(
            name.strip().upper() for name in chunk.split(",") if name.strip()
        )
    return names


def _select_rules(
    registry: Dict[str, Type[Any]],
    select: Set[str],
    disable: Set[str],
) -> Tuple[List[Type[Any]], Set[str]]:
    """The enabled rule classes, plus any names that don't exist."""
    unknown = (select | disable) - set(registry)
    if select:
        enabled = [registry[name] for name in sorted(select & set(registry))]
    else:
        enabled = [
            rule
            for name, rule in sorted(registry.items())
            if rule.default_enabled and name not in disable
        ]
    return enabled, unknown


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point.  Returns the process exit code.

    Exit 0: no violations.  Exit 1: violations (or unparsable files).
    Exit 2: usage error (no paths, unknown rule name).
    """
    from .rules import RULES

    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the repro runtime's "
            "bit-exactness conventions."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint"
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="run only these rules (comma-separated, e.g. RL001,RL003)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULES",
        help="skip these rules (comma-separated)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help=(
            "report format: 'text' (one line per finding) or 'json' "
            "(a machine-readable document, the CI artifact form)"
        ),
    )
    parser.add_argument(
        "--graph",
        choices=("cfg", "calls"),
        help=(
            "instead of linting, dump the analysis graphs for the "
            "given paths: 'cfg' prints every function's control-flow "
            "graph, 'calls' the project call graph with its thread "
            "entry points"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, rule in sorted(RULES.items()):
            state = "on" if rule.default_enabled else "off"
            print(f"{name} [{state}] {rule.description}")
        return 0
    if not args.paths:
        print("repro-lint: no paths given", file=sys.stderr)
        return 2

    enabled, unknown = _select_rules(
        RULES, _parse_rule_list(args.select), _parse_rule_list(args.disable)
    )
    if unknown:
        print(
            f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}; "
            f"have {', '.join(sorted(RULES))}",
            file=sys.stderr,
        )
        return 2

    runner = LintRunner(rules=enabled)
    for path in args.paths:
        if not Path(path).exists():
            print(f"repro-lint: no such path: {path}", file=sys.stderr)
            return 2
        runner.add_path(Path(path))
    if args.graph:
        return _dump_graphs(args.graph, runner)
    diagnostics = runner.run()
    count = len(diagnostics)
    files = len(runner.sources)
    if args.format == "json":
        document: Dict[str, Any] = {
            "tool": "repro-lint",
            "rules": sorted(rule.name for rule in enabled),
            "files": files,
            "issues": [
                {
                    "path": diagnostic.path,
                    "line": diagnostic.line,
                    "col": diagnostic.col,
                    "rule": diagnostic.rule,
                    "message": diagnostic.message,
                }
                for diagnostic in diagnostics
            ],
            "clean": not diagnostics,
        }
        print(json.dumps(document, indent=2))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.format())
    print(
        f"repro-lint: {count} issue(s) in {files} file(s)",
        file=sys.stderr,
    )
    return 1 if diagnostics else 0


def _dump_graphs(kind: str, runner: LintRunner) -> int:
    """The ``--graph`` debug dumps: per-function CFGs or the call graph."""
    from .callgraph import build_call_graph, module_name_for
    from .cfg import build_cfg

    if kind == "calls":
        graph = build_call_graph(
            [
                (module_name_for(source.path), source.tree)
                for source in runner.sources
            ]
        )
        print("\n".join(graph.describe()))
        return 0
    for source in runner.sources:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cfg = build_cfg(node)
                cfg.name = f"{source.path}:{node.name}"
                print("\n".join(cfg.describe()))
    return 0

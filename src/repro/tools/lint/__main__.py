"""Entry point for ``python -m repro.tools.lint``."""

import sys

from .engine import main

if __name__ == "__main__":
    sys.exit(main())

"""The repo-specific rule set behind ``repro-lint``.

Each rule guards one convention the runtime's bit-exactness guarantee
rests on (see README "Static guarantees"):

* **RL001 seed-discipline** — every RNG must trace to a caller-provided
  seed or a :class:`~repro.simulation.runtime.SeedSchedule`: no numpy
  legacy global-state API, no argless ``default_rng()``, no inline
  numeric-literal seeds buried in function bodies.
* **RL002 api-surface** — ``repro.__all__``, ``repro._api`` and the lazy
  ``__getattr__`` must agree, and ``DEPRECATED_WRAPPERS`` entries marked
  removed must be truly gone.
* **RL003 async-purity** — no blocking calls (``time.sleep``,
  ``Future.result()``, sync file I/O) inside ``async def`` bodies.
* **RL004 shard-safety** — no lambdas or closure-local functions handed
  to the process-backend shard machinery; they don't pickle.
* **RL005 packed-purity** — no ``unpack_bits`` → ``pack_bits``
  round-trips that materialize a float/bool plane between packed words.
* **RL006 hygiene** — no bare ``except:``, no mutable default
  arguments.

The cross-file RL002 logic lives in :func:`check_api_surface` so the
runtime contract tests (``tests/test_public_api.py``) can call the same
routine instead of re-implementing the consistency checks inline.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Type

from .engine import Diagnostic, FileSource, ProjectRule, RuleVisitor
from .flowrules import (
    HotPathAllocationRule,
    LockDisciplineRule,
    ResourceLifecycleRule,
)

__all__ = [
    "RULES",
    "ApiSurfaceRule",
    "AsyncPurityRule",
    "HygieneRule",
    "PackedPurityRule",
    "SeedDisciplineRule",
    "ShardSafetyRule",
    "check_api_surface",
]


# --------------------------------------------------------------------------
# RL001 · seed-discipline
# --------------------------------------------------------------------------

#: The modern, reproducibility-safe corner of ``numpy.random``.  Anything
#: else on that namespace is the legacy global-state API.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


def _is_np_random(node: ast.AST) -> bool:
    """Whether *node* is the expression ``np.random`` / ``numpy.random``."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in {"np", "numpy"}
    )


def _is_default_rng(func: ast.AST) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "default_rng"
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "default_rng"
        and _is_np_random(func.value)
    )


class SeedDisciplineRule(RuleVisitor):
    """RL001: every RNG traces to a caller-provided seed or SeedSchedule.

    Three shapes break row relocatability and are flagged:

    1. any legacy ``np.random.*`` global-state access (``np.random.seed``,
       ``np.random.rand``, ...) — process-global state cannot be sharded;
    2. argless ``default_rng()`` — OS entropy, unreproducible by design;
    3. ``default_rng(<numeric literal>)`` inside a function body — a
       magic inline seed that cannot be audited or overridden.  Hoist it
       to a named module-level constant or, better, a ``seed`` parameter.
    """

    name = "RL001"
    description = (
        "seed-discipline: no np.random legacy API, argless default_rng(), "
        "or inline numeric-literal seeds in function bodies"
    )

    def __init__(self, source: FileSource) -> None:
        super().__init__(source)
        self._function_depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function_depth += 1
        self.generic_visit(node)
        self._function_depth -= 1

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if _is_np_random(node.value) and node.attr not in _NP_RANDOM_ALLOWED:
            self.report(
                node,
                f"legacy global-state RNG 'np.random.{node.attr}' — route "
                "randomness through a caller-provided seed / SeedSchedule "
                "and numpy.random.default_rng",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy.random":
            for alias in node.names:
                if alias.name not in _NP_RANDOM_ALLOWED and alias.name != "*":
                    self.report(
                        node,
                        f"import of legacy RNG 'numpy.random.{alias.name}' — "
                        "only the Generator API is seed-disciplined",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if _is_default_rng(node.func):
            if not node.args and not node.keywords:
                self.report(
                    node,
                    "argless default_rng() draws OS entropy — outputs can "
                    "never be reproduced; accept a seed from the caller",
                )
            elif self._function_depth and self._is_literal_seed(node.args):
                self.report(
                    node,
                    "inline numeric-literal seed in a function body — hoist "
                    "it to a named module-level constant or a seed parameter "
                    "so the provenance is auditable",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_literal_seed(args: Sequence[ast.expr]) -> bool:
        return bool(args) and isinstance(args[0], ast.Constant)


# --------------------------------------------------------------------------
# RL002 · api-surface
# --------------------------------------------------------------------------


def _extract_all(tree: ast.Module) -> Tuple[Optional[List[str]], int]:
    """The module's literal ``__all__`` list and its line, if present."""
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = [
                        element.value
                        for element in value.elts
                        if isinstance(element, ast.Constant)
                        and isinstance(element.value, str)
                    ]
                    return names, node.lineno
    return None, 1


def _top_level_bindings(tree: ast.Module) -> Dict[str, int]:
    """Names bound at module top level, mapped to their first line."""
    bound: Dict[str, int] = {}

    def bind(name: str, line: int) -> None:
        bound.setdefault(name, line)

    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bind(alias.asname or alias.name.split(".")[0], node.lineno)
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name != "*":
                    bind(alias.asname or alias.name, node.lineno)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bind(node.name, node.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for element in ast.walk(target):
                    if isinstance(element, ast.Name):
                        bind(element.id, node.lineno)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            bind(node.target.id, node.lineno)
        elif isinstance(node, (ast.If, ast.Try)):
            # TYPE_CHECKING blocks / import fallbacks still bind names.
            for child in ast.walk(node):
                if isinstance(child, (ast.Import, ast.ImportFrom)):
                    for alias in child.names:
                        if alias.name != "*":
                            bind(
                                alias.asname or alias.name.split(".")[0],
                                child.lineno,
                            )
                elif isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bind(child.name, child.lineno)
    return bound


def _extract_removed_wrappers(tree: ast.Module) -> List[Tuple[str, int]]:
    """Dotted names of ``DEPRECATED_WRAPPERS`` entries with removed=True."""
    removed: List[Tuple[str, int]] = []
    for node in tree.body:
        if not (
            isinstance(node, ast.Assign)
            and any(
                isinstance(target, ast.Name)
                and target.id == "DEPRECATED_WRAPPERS"
                for target in node.targets
            )
            and isinstance(node.value, ast.Dict)
        ):
            continue
        for key, value in zip(node.value.keys, node.value.values):
            if not (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Dict)
            ):
                continue
            for entry_key, entry_value in zip(value.keys, value.values):
                if (
                    isinstance(entry_key, ast.Constant)
                    and entry_key.value == "removed"
                    and isinstance(entry_value, ast.Constant)
                    and entry_value.value is True
                ):
                    removed.append((key.value, key.lineno))
    return removed


def check_api_surface(package_dir: Path) -> List[Diagnostic]:
    """Statically verify the three-way public-API contract of *package_dir*.

    Pure AST — nothing is imported, so the check runs before the
    scientific stack is installable.  The invariants (mirroring the
    runtime assertions in ``tests/test_public_api.py``):

    * ``__init__.__all__`` and ``_api.__all__`` exist, are literal
      string lists, and contain no duplicates;
    * every name advertised in ``_api.__all__`` is actually bound at
      ``_api`` top level (no dangling strings behind the lazy
      ``__getattr__``);
    * the static and lazy surfaces are disjoint — a name on both would
      resolve inconsistently depending on import order;
    * ``__init__`` defines the lazy ``__getattr__``;
    * every ``DEPRECATED_WRAPPERS`` entry marked ``removed: True`` is
      truly absent from its origin module and from the ``_api`` surface.
    """
    package_dir = Path(package_dir)
    diagnostics: List[Diagnostic] = []

    def report(path: Path, line: int, message: str) -> None:
        diagnostics.append(
            Diagnostic(
                path=str(path), line=line, col=1, rule="RL002", message=message
            )
        )

    init_path = package_dir / "__init__.py"
    api_path = package_dir / "_api.py"
    for required in (init_path, api_path):
        if not required.is_file():
            report(
                package_dir / "__init__.py",
                1,
                f"api-surface: expected file {required.name} is missing",
            )
            return diagnostics

    init_tree = ast.parse(init_path.read_text(), filename=str(init_path))
    api_tree = ast.parse(api_path.read_text(), filename=str(api_path))

    static_all, static_line = _extract_all(init_tree)
    api_all, api_line = _extract_all(api_tree)
    if static_all is None:
        report(init_path, 1, "api-surface: __init__ has no literal __all__")
        static_all = []
    if api_all is None:
        report(api_path, 1, "api-surface: _api has no literal __all__")
        api_all = []

    for names, path, line, label in (
        (static_all, init_path, static_line, "__init__.__all__"),
        (api_all, api_path, api_line, "_api.__all__"),
    ):
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            report(
                path,
                line,
                f"api-surface: duplicate names in {label}: "
                + ", ".join(duplicates),
            )

    api_bound = _top_level_bindings(api_tree)
    dangling = [name for name in api_all if name not in api_bound]
    if dangling:
        report(
            api_path,
            api_line,
            "api-surface: names advertised in _api.__all__ but never bound: "
            + ", ".join(sorted(dangling)),
        )

    overlap = sorted(set(static_all) & set(api_all))
    if overlap:
        report(
            init_path,
            static_line,
            "api-surface: static __all__ and lazy _api.__all__ overlap "
            "(import-order dependent resolution): " + ", ".join(overlap),
        )

    init_bound = _top_level_bindings(init_tree)
    if "__getattr__" not in init_bound:
        report(
            init_path,
            1,
            "api-surface: __init__ defines no lazy __getattr__, so "
            "_api.__all__ names are unreachable from the package",
        )

    session_path = package_dir / "session.py"
    removed: List[Tuple[str, int]] = []
    if session_path.is_file():
        session_tree = ast.parse(
            session_path.read_text(), filename=str(session_path)
        )
        removed = _extract_removed_wrappers(session_tree)

    package_name = package_dir.name
    for dotted, line in removed:
        module_dotted, _, attribute = dotted.rpartition(".")
        if attribute in api_all or attribute in api_bound:
            report(
                session_path,
                line,
                f"api-surface: wrapper '{dotted}' is marked removed but "
                "still present on the _api surface",
            )
        parts = module_dotted.split(".")
        if parts and parts[0] == package_name:
            parts = parts[1:]
        module_path = package_dir.joinpath(*parts).with_suffix(".py")
        if not module_path.is_file():
            module_path = package_dir.joinpath(*parts) / "__init__.py"
        if module_path.is_file():
            module_tree = ast.parse(
                module_path.read_text(), filename=str(module_path)
            )
            bindings = _top_level_bindings(module_tree)
            if attribute in bindings:
                report(
                    module_path,
                    bindings[attribute],
                    f"api-surface: '{attribute}' is marked removed in "
                    "DEPRECATED_WRAPPERS but still bound here",
                )
    return diagnostics


class ApiSurfaceRule(ProjectRule):
    """RL002: the ``__all__`` / ``_api`` / lazy-getattr surfaces agree."""

    name = "RL002"
    description = (
        "api-surface: repro.__all__, _api bindings, lazy __getattr__ and "
        "DEPRECATED_WRAPPERS removals are mutually consistent"
    )

    def check_project(self, sources: Sequence[FileSource]) -> List[Diagnostic]:
        package_dirs = {
            source.path.parent
            for source in sources
            if source.path.name == "_api.py"
            and (source.path.parent / "__init__.py").is_file()
        }
        diagnostics: List[Diagnostic] = []
        for package_dir in sorted(package_dirs):
            diagnostics.extend(check_api_surface(package_dir))
        return diagnostics


# --------------------------------------------------------------------------
# RL003 · async-purity
# --------------------------------------------------------------------------

#: Sync-I/O entry points that stall the event loop when awaited nowhere.
_BLOCKING_IO_METHODS = {
    "read_text",
    "write_text",
    "read_bytes",
    "write_bytes",
}


class AsyncPurityRule(RuleVisitor):
    """RL003: no blocking calls directly inside ``async def`` bodies.

    ``time.sleep``, ``Future``/``Executor`` ``.result()`` and sync file
    I/O all stall the event loop, which silently serializes the
    micro-batcher.  Nested ``def`` helpers are exempt — those are
    exactly what ``run_in_executor`` exists for.

    ``run_in_executor(None, ...)`` is also flagged: the anonymous
    default executor is process-global, unbounded in queue depth and
    shut down by no one — a serving tier must own its executor so
    ``stop()`` can bound and drain it (pass a named
    ``ThreadPoolExecutor`` instead).
    """

    name = "RL003"
    description = (
        "async-purity: no time.sleep, blocking .result(), sync file "
        "I/O, or anonymous run_in_executor(None, ...) inside async "
        "def bodies"
    )

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        for call in self._direct_calls(node):
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "sleep"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                self.report(
                    call,
                    "time.sleep inside async def blocks the event loop — "
                    "use 'await asyncio.sleep(...)'",
                )
            elif isinstance(func, ast.Attribute) and func.attr == "result":
                self.report(
                    call,
                    "blocking .result() inside async def — await the "
                    "future (or wrap the work in run_in_executor)",
                )
            elif isinstance(func, ast.Name) and func.id == "open":
                self.report(
                    call,
                    "sync open() inside async def blocks the event loop — "
                    "move file I/O into run_in_executor",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in _BLOCKING_IO_METHODS
            ):
                self.report(
                    call,
                    f"sync file I/O '.{func.attr}()' inside async def "
                    "blocks the event loop — move it into run_in_executor",
                )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "run_in_executor"
                and call.args
                and isinstance(call.args[0], ast.Constant)
                and call.args[0].value is None
            ):
                self.report(
                    call,
                    "run_in_executor(None, ...) uses the anonymous "
                    "process-global default executor — pass an owned, "
                    "bounded executor that shutdown can drain",
                )
        self.generic_visit(node)

    @staticmethod
    def _direct_calls(node: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
        """Calls lexically inside *node*, not inside nested functions."""

        def walk(item: ast.AST) -> Iterator[ast.Call]:
            for child in ast.iter_child_nodes(item):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(child, ast.Call):
                    yield child
                yield from walk(child)

        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from walk(statement)


# --------------------------------------------------------------------------
# RL004 · shard-safety
# --------------------------------------------------------------------------

#: Call sites whose callable arguments cross the process boundary.
_SHARD_ENTRY_POINTS = {"parallel_map", "simulate_batch_sharded"}


class ShardSafetyRule(RuleVisitor):
    """RL004: callables handed to the shard machinery must pickle.

    The process backend ships the mapped function to worker processes
    via pickle; lambdas and closure-local ``def``s fail there with an
    opaque ``PicklingError`` deep inside the pool.  Flag them at the
    call site instead.
    """

    name = "RL004"
    description = (
        "shard-safety: no lambdas or closure-local functions passed to "
        "parallel_map / simulate_batch_sharded"
    )

    def __init__(self, source: FileSource) -> None:
        super().__init__(source)
        #: Per-enclosing-function sets of locally-defined function names.
        self._local_defs: List[Set[str]] = []

    def _visit_function(self, node: ast.AST, body: Sequence[ast.stmt]) -> None:
        nested = {
            statement.name
            for statement in body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self._local_defs.append(nested)
        self.generic_visit(node)
        self._local_defs.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.body)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.body)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        target = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if target in _SHARD_ENTRY_POINTS:
            arguments = list(node.args) + [
                keyword.value for keyword in node.keywords
            ]
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    self.report(
                        argument,
                        f"lambda passed to {target} — lambdas don't pickle "
                        "across the process backend; use a module-level "
                        "function",
                    )
                elif isinstance(argument, ast.Name) and any(
                    argument.id in scope for scope in self._local_defs
                ):
                    self.report(
                        argument,
                        f"closure-local function '{argument.id}' passed to "
                        f"{target} — nested defs don't pickle across the "
                        "process backend; hoist it to module level",
                    )
        self.generic_visit(node)


# --------------------------------------------------------------------------
# RL005 · packed-purity
# --------------------------------------------------------------------------


def _contains_unpack(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            func = child.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name == "unpack_bits":
                return True
    return False


class PackedPurityRule(RuleVisitor):
    """RL005: no unpack→repack round-trips on the packed hot paths.

    The packed kernels' 9× win comes from never materializing the
    per-clock bool plane; an ``unpack_bits(...)`` whose result flows
    back into ``pack_bits(...)`` silently reintroduces the 64× blow-up
    the representation exists to avoid.  Taint is tracked per function:
    names assigned from ``unpack_bits`` results poison any later
    ``pack_bits`` call that consumes them.
    """

    name = "RL005"
    description = (
        "packed-purity: no unpack_bits -> pack_bits round-trip "
        "materializing the bool plane inside packed hot paths"
    )

    def __init__(self, source: FileSource) -> None:
        super().__init__(source)
        self._tainted: List[Set[str]] = [set()]

    def _visit_function(self, node: ast.AST) -> None:
        self._tainted.append(set())
        self.generic_visit(node)
        self._tainted.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _is_tainted(self, node: ast.AST) -> bool:
        if _contains_unpack(node):
            return True
        return any(
            isinstance(child, ast.Name)
            and any(child.id in scope for scope in self._tainted)
            for child in ast.walk(node)
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_tainted(node.value):
            for target in node.targets:
                for child in ast.walk(target):
                    if isinstance(child, ast.Name):
                        self._tainted[-1].add(child.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._is_tainted(node.value) and isinstance(node.target, ast.Name):
            self._tainted[-1].add(node.target.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name == "pack_bits" and any(
            self._is_tainted(argument) for argument in node.args
        ):
            self.report(
                node,
                "pack_bits over an unpack_bits result — the round-trip "
                "materializes the 64x bool plane the packed representation "
                "exists to avoid; stay in uint64 words",
            )
        self.generic_visit(node)


# --------------------------------------------------------------------------
# RL006 · hygiene
# --------------------------------------------------------------------------

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


class HygieneRule(RuleVisitor):
    """RL006: no bare ``except:``, no mutable default arguments.

    A bare except swallows ``KeyboardInterrupt``/``SystemExit`` and
    hides worker crashes as silent wrong answers; a mutable default is
    shared across calls and turns a pure function stateful — both are
    determinism bugs waiting to happen.
    """

    name = "RL006"
    description = "hygiene: no bare except clauses or mutable default arguments"

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare 'except:' swallows KeyboardInterrupt/SystemExit — "
                "catch Exception (or narrower)",
            )
        self.generic_visit(node)

    def _check_defaults(
        self, node: ast.AST, arguments: ast.arguments
    ) -> None:
        defaults = list(arguments.defaults) + [
            default for default in arguments.kw_defaults if default is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self.report(
                    default,
                    "mutable default argument is shared across calls — "
                    "default to None and create the object in the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)


#: The registry ``repro-lint`` runs (all on by default).
RULES: Dict[str, Type[Any]] = {
    SeedDisciplineRule.name: SeedDisciplineRule,
    ApiSurfaceRule.name: ApiSurfaceRule,
    AsyncPurityRule.name: AsyncPurityRule,
    ShardSafetyRule.name: ShardSafetyRule,
    PackedPurityRule.name: PackedPurityRule,
    HygieneRule.name: HygieneRule,
    ResourceLifecycleRule.name: ResourceLifecycleRule,
    LockDisciplineRule.name: LockDisciplineRule,
    HotPathAllocationRule.name: HotPathAllocationRule,
}

"""Dataflow rules: resource lifetimes, lock discipline, hot-path allocation.

These rules ride on :mod:`.cfg` (per-function control-flow graphs and
the worklist solver) and :mod:`.callgraph` (the project call graph):

* :class:`ResourceLifecycleRule` (RL007) — every acquired OS-backed
  resource must reach a release on *every* CFG path to function exit.
* :class:`LockDisciplineRule` (RL008) — module-level mutable state and
  module-shared instances may only be mutated while holding the
  associated ``threading.Lock``, in any function reachable from a
  thread-backend worker entry point.
* :class:`HotPathAllocationRule` (RL009) — no ``(B, L)``-scale float
  materialization in functions reachable from the packed kernel entry
  points (the call-graph generalization of RL005's lexical check).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, build_call_graph, module_name_for
from .cfg import build_cfg, forward_may
from .engine import Diagnostic, FileSource, ProjectRule, Rule

__all__ = [
    "HotPathAllocationRule",
    "LockDisciplineRule",
    "ResourceLifecycleRule",
]


def _last_name(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _mentions_name(node: ast.AST, name: str) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == name
        for child in ast.walk(node)
    )


def _functions_of(tree: ast.Module) -> List[ast.AST]:
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


def _shallow_walk(func: ast.AST) -> Iterator[ast.AST]:
    """Every node of a function body, not descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _diagnostic(
    rule: str, source: FileSource, node: ast.AST, message: str
) -> Diagnostic:
    return Diagnostic(
        path=str(source.path),
        line=int(getattr(node, "lineno", 1)),
        col=int(getattr(node, "col_offset", 0)) + 1,
        rule=rule,
        message=message,
    )


# -- RL007: resource lifecycle -------------------------------------------------


_ACQUIRE_CALLS = {
    "SharedMemory",
    "SharedArena",
    "ProcessPoolExecutor",
    "ThreadPoolExecutor",
    "Pool",
    "open",
    "TemporaryFile",
    "NamedTemporaryFile",
    "socket",
}

_RELEASE_METHODS = {
    "close",
    "unlink",
    "shutdown",
    "destroy",
    "terminate",
    "join",
    "release",
    "detach",
    # The documented SharedArena lifetime transfer: unlink-while-mapped
    # plus a weakref finalizer on the exported views (PR 6 protocol).
    "export_views",
}


def _own_nodes(stmt: ast.AST) -> List[ast.AST]:
    """The nodes a CFG statement node *itself* evaluates.

    Compound statements own only their header expressions — their
    bodies are separate CFG nodes, so scanning them here would smear a
    branch-local release over every path through the header.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return list(ast.walk(stmt.test))
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return list(ast.walk(stmt.iter)) + list(ast.walk(stmt.target))
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        nodes: List[ast.AST] = [stmt]
        for item in stmt.items:
            nodes.extend(ast.walk(item.context_expr))
        return nodes
    if isinstance(stmt, ast.Match):
        return list(ast.walk(stmt.subject))
    if isinstance(stmt, (ast.Try, ast.ExceptHandler)):
        return []
    return list(ast.walk(stmt))


class ResourceLifecycleRule(Rule):
    """RL007: acquired resources must be released on every CFG path."""

    name = "RL007"
    description = (
        "resource-lifecycle: a shared_memory/SharedArena/executor/file "
        "acquisition must reach a release (close/unlink/shutdown/...), a "
        "finally, a with block, or a registered finalizer on every "
        "control-flow path to function exit"
    )

    @classmethod
    def check(cls, source: FileSource) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        for func in _functions_of(source.tree):
            diagnostics.extend(cls._check_function(source, func))
        return diagnostics

    @staticmethod
    def _acquisition(stmt: ast.AST) -> Optional[Tuple[str, str]]:
        """``(bound_name, acquired_callable)`` for tracked acquisitions.

        Only plain-name bindings are tracked: a value that is returned,
        stored on an object, or passed straight into another call has
        escaped to an owner with its own lifecycle.
        """
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target: Optional[ast.expr] = stmt.targets[0]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target = stmt.target
            value = stmt.value
        else:
            return None
        if not isinstance(target, ast.Name) or not isinstance(value, ast.Call):
            return None
        callee = _last_name(value.func)
        if callee == "attach" and isinstance(value.func, ast.Attribute):
            base = _last_name(value.func.value)
            if base in _ACQUIRE_CALLS:
                return (target.id, f"{base}.attach")
            return None
        if callee in _ACQUIRE_CALLS:
            return (target.id, callee)
        return None

    @staticmethod
    def _releases(nodes: Sequence[ast.AST], name: str) -> bool:
        """Whether the owned nodes release, transfer or escape *name*."""
        for node in nodes:
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == name
                    and func.attr in _RELEASE_METHODS
                ):
                    return True
                # Passed into another callable: a finalizer, a helper
                # release, a container — ownership has moved on.
                arguments = list(node.args) + [kw.value for kw in node.keywords]
                if any(
                    isinstance(arg, ast.Name) and arg.id == name
                    for arg in arguments
                ):
                    return True
            if isinstance(node, ast.Return) and node.value is not None:
                if _mentions_name(node.value, name):
                    return True
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and _mentions_name(value, name):
                    return True
            if isinstance(node, (ast.With, ast.AsyncWith)):
                if any(
                    isinstance(item.context_expr, ast.Name)
                    and item.context_expr.id == name
                    for item in node.items
                ):
                    return True
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ) and _mentions_name(node.value, name):
                        return True
        return False

    @staticmethod
    def _rebinds(stmt: ast.AST, name: str) -> bool:
        if isinstance(stmt, ast.Assign):
            return any(
                isinstance(target, ast.Name) and target.id == name
                for target in stmt.targets
            )
        if isinstance(stmt, ast.AnnAssign):
            return isinstance(stmt.target, ast.Name) and stmt.target.id == name
        return False

    @classmethod
    def _check_function(
        cls, source: FileSource, func: ast.AST
    ) -> List[Diagnostic]:
        cfg = build_cfg(func)
        acquisitions: Dict[str, Tuple[str, str, ast.AST]] = {}
        gen: Dict[int, Set[str]] = {}
        kill: Dict[int, Set[str]] = {}
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            acquired = cls._acquisition(node.stmt)
            if acquired is None:
                continue
            name, callee = acquired
            resource = f"{name}@{node.line}"
            acquisitions[resource] = (name, callee, node.stmt)
            gen.setdefault(node.index, set()).add(resource)
        if not acquisitions:
            return []
        for node in cfg.nodes:
            if node.stmt is None:
                continue
            owned = _own_nodes(node.stmt)
            for resource, (name, _callee, origin) in acquisitions.items():
                if node.stmt is origin:
                    continue
                if cls._releases(owned, name) or cls._rebinds(node.stmt, name):
                    kill.setdefault(node.index, set()).add(resource)
        solved = forward_may(cfg, gen, kill)
        leaked = solved.in_sets[cfg.exit]
        diagnostics: List[Diagnostic] = []
        for resource in sorted(leaked):
            if resource not in acquisitions:
                continue
            name, callee, stmt = acquisitions[resource]
            diagnostics.append(
                _diagnostic(
                    cls.name,
                    source,
                    stmt,
                    f"'{name}' acquired from {callee}() may reach function "
                    "exit without a release on some path; close/unlink/"
                    "shutdown it on every branch, use a with block or "
                    "try/finally, or hand it to a finalizer/owner",
                )
            )
        return diagnostics


# -- RL008: lock discipline ----------------------------------------------------


_LOCK_FACTORIES = {"Lock", "RLock"}

_MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "move_to_end",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}

_MUTABLE_FACTORIES = {
    "dict",
    "list",
    "set",
    "OrderedDict",
    "defaultdict",
    "deque",
    "Counter",
}


def _is_lock_call(value: ast.expr) -> bool:
    return (
        isinstance(value, ast.Call)
        and _last_name(value.func) in _LOCK_FACTORIES
    )


def _is_mutable_literal(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set)):
        return True
    return (
        isinstance(value, ast.Call)
        and _last_name(value.func) in _MUTABLE_FACTORIES
    )


class _GuardedScanner:
    """Find mutations of watched names outside ``with <lock>`` blocks.

    Module mode watches plain module-global names (rebinds only count
    under a ``global`` declaration); instance mode (``self_attrs``)
    watches ``self.<attr>`` state.  The guard check is lexical —
    exactly the double-checked-locking shape the runtime uses — and
    does not follow calls.
    """

    def __init__(
        self,
        watched: Set[str],
        lock_names: Set[str],
        self_attrs: bool = False,
        lock_attrs: Optional[Set[str]] = None,
    ) -> None:
        self.watched = watched
        self.lock_names = lock_names
        self.self_attrs = self_attrs
        self.lock_attrs = lock_attrs or set()
        self._globals: Set[str] = set()
        self.mutations: List[Tuple[ast.stmt, str]] = []

    def _is_guard(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name) and expr.id in self.lock_names:
            return True
        return (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self.lock_attrs
        )

    def _watched_base(self, expr: ast.expr) -> Optional[str]:
        """The watched name a target expression mutates, if any."""
        if self.self_attrs:
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and expr.attr in self.watched
            ):
                return expr.attr
            return None
        if isinstance(expr, ast.Name) and expr.id in self.watched:
            return expr.id
        return None

    def run(self, func: ast.AST) -> List[Tuple[ast.stmt, str]]:
        self.mutations = []
        self._globals = set()
        for node in _shallow_walk(func):
            if isinstance(node, ast.Global):
                self._globals.update(node.names)
        body: List[ast.stmt] = list(getattr(func, "body", []))
        self._scan(body, guarded=False)
        return self.mutations

    def _scan(self, body: Sequence[ast.stmt], guarded: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                holds = guarded or any(
                    self._is_guard(item.context_expr) for item in stmt.items
                )
                self._scan(stmt.body, holds)
                continue
            if not guarded:
                self._check_mutations(stmt)
            for attr in ("body", "orelse", "finalbody"):
                children = getattr(stmt, attr, [])
                if children:
                    self._scan(children, guarded)
            for handler in getattr(stmt, "handlers", []):
                self._scan(handler.body, guarded)
            for case in getattr(stmt, "cases", []):
                self._scan(case.body, guarded)

    def _check_mutations(self, stmt: ast.stmt) -> None:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            watched = self._watched_base(base)
            if watched is None:
                continue
            if (
                not self.self_attrs
                and isinstance(target, ast.Name)
                and watched not in self._globals
            ):
                # A plain-name rebind without `global` is a local
                # shadow, not a shared mutation.
                continue
            self.mutations.append((stmt, watched))
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
            ):
                watched = self._watched_base(func.value)
                if watched is not None:
                    self.mutations.append((stmt, watched))


class LockDisciplineRule(ProjectRule):
    """RL008: thread-reachable mutations of shared state must hold a lock."""

    name = "RL008"
    description = (
        "lock-discipline: module-level mutable state and module-shared "
        "instances may only be mutated while holding the associated "
        "threading.Lock in functions reachable from a thread-backend "
        "worker entry point"
    )

    def check_project(
        self, sources: Sequence[FileSource]
    ) -> List[Diagnostic]:
        by_module: Dict[str, FileSource] = {
            module_name_for(source.path): source for source in sources
        }
        graph = build_call_graph(
            [(name, source.tree) for name, source in by_module.items()]
        )
        reachable = graph.reachable(graph.thread_entries)
        diagnostics: List[Diagnostic] = []
        for name, source in by_module.items():
            diagnostics.extend(
                self._check_module(source, name, graph, reachable)
            )
            diagnostics.extend(
                self._check_shared_instances(
                    by_module, name, source.tree, graph, reachable
                )
            )
        return diagnostics

    @staticmethod
    def _module_bindings(
        tree: ast.Module,
    ) -> Tuple[Set[str], Set[str], Dict[str, str]]:
        """``(lock_names, mutable_names, shared_instances)`` of a module."""
        locks: Set[str] = set()
        mutable: Set[str] = set()
        shared: Dict[str, str] = {}
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target: Optional[ast.expr] = stmt.targets[0]
                value: Optional[ast.expr] = stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                value = stmt.value
            else:
                continue
            if not isinstance(target, ast.Name) or value is None:
                continue
            if _is_lock_call(value):
                locks.add(target.id)
            elif _is_mutable_literal(value):
                mutable.add(target.id)
            elif isinstance(value, ast.Call):
                callee = _last_name(value.func)
                if callee is not None:
                    shared[target.id] = callee
        return locks, mutable, shared

    def _check_module(
        self,
        source: FileSource,
        module: str,
        graph: CallGraph,
        reachable: Set[str],
    ) -> List[Diagnostic]:
        locks, mutable, _shared = self._module_bindings(source.tree)
        # Names rebound under `global` in some function are shared
        # module state even when the top-level binding is a sentinel.
        lazy: Set[str] = set()
        for info in graph.functions.values():
            if info.module != module:
                continue
            for node in _shallow_walk(info.node):
                if isinstance(node, ast.Global):
                    lazy.update(node.names)
        watched = mutable | lazy
        if not watched:
            return []
        diagnostics: List[Diagnostic] = []
        for info in graph.functions.values():
            if info.module != module or info.qname not in reachable:
                continue
            scanner = _GuardedScanner(watched, locks)
            for stmt, name in scanner.run(info.node):
                hint = (
                    "guard it with 'with <module Lock>:' (module locks: "
                    f"{', '.join(sorted(locks))})"
                    if locks
                    else "define a module-level threading.Lock and hold it here"
                )
                diagnostics.append(
                    _diagnostic(
                        self.name,
                        source,
                        stmt,
                        f"module state '{name}' mutated in thread-reachable "
                        f"'{info.qname.rsplit('.', 1)[-1]}' without holding "
                        f"a lock; {hint}",
                    )
                )
        return diagnostics

    def _check_shared_instances(
        self,
        by_module: Dict[str, FileSource],
        module: str,
        tree: ast.Module,
        graph: CallGraph,
        reachable: Set[str],
    ) -> List[Diagnostic]:
        _locks, _mutable, shared = self._module_bindings(tree)
        class_qnames: Set[str] = set()
        for callee in shared.values():
            for qname in graph.classes:
                if qname.rsplit(".", 1)[-1] == callee:
                    class_qnames.add(qname)
        diagnostics: List[Diagnostic] = []
        for cls_qname in sorted(class_qnames):
            lock_attrs = self._instance_lock_attrs(graph, cls_qname)
            state_attrs = self._state_attrs(graph, cls_qname) - lock_attrs
            for method in sorted(graph.classes.get(cls_qname, set())):
                if method == "__init__":
                    continue
                qname = f"{cls_qname}.{method}"
                info = graph.functions.get(qname)
                if info is None or qname not in reachable:
                    continue
                method_source = by_module.get(info.module)
                if method_source is None:
                    continue
                scanner = _GuardedScanner(
                    state_attrs,
                    set(),
                    self_attrs=True,
                    lock_attrs=lock_attrs,
                )
                for stmt, attr in scanner.run(info.node):
                    hint = (
                        f"hold 'with self.{sorted(lock_attrs)[0]}:'"
                        if lock_attrs
                        else (
                            "the class backs a module-level shared instance "
                            "but defines no threading.Lock attribute; add "
                            "one in __init__ and hold it"
                        )
                    )
                    diagnostics.append(
                        _diagnostic(
                            self.name,
                            method_source,
                            stmt,
                            f"'{cls_qname.rsplit('.', 1)[-1]}.{attr}' backs "
                            "a module-level shared instance and is mutated "
                            f"in thread-reachable '{method}' without its "
                            f"lock; {hint}",
                        )
                    )
        return diagnostics

    @staticmethod
    def _instance_lock_attrs(graph: CallGraph, cls_qname: str) -> Set[str]:
        init = graph.functions.get(f"{cls_qname}.__init__")
        attrs: Set[str] = set()
        if init is None:
            return attrs
        for node in _shallow_walk(init.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.targets[0].value, ast.Name)
                and node.targets[0].value.id == "self"
                and _is_lock_call(node.value)
            ):
                attrs.add(node.targets[0].attr)
        return attrs

    @staticmethod
    def _state_attrs(graph: CallGraph, cls_qname: str) -> Set[str]:
        """Every ``self.X`` attribute the class assigns anywhere."""
        attrs: Set[str] = set()
        prefix = f"{cls_qname}."
        for qname, info in graph.functions.items():
            if not qname.startswith(prefix):
                continue
            for node in _shallow_walk(info.node):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and isinstance(node.ctx, (ast.Store, ast.Del))
                ):
                    attrs.add(node.attr)
        return attrs


# -- RL009: hot-path allocation ------------------------------------------------


_DENSE_FACTORIES = {"zeros", "ones", "empty", "full"}

_FLOAT_DTYPES = {"float", "float16", "float32", "float64", "double"}


def _is_float_dtype(expr: ast.expr) -> bool:
    name = _last_name(expr)
    if name is not None and name in _FLOAT_DTYPES:
        return True
    return (
        isinstance(expr, ast.Constant)
        and isinstance(expr.value, str)
        and expr.value.startswith("float")
    )


class HotPathAllocationRule(ProjectRule):
    """RL009: no (B, L)-scale float materialization on packed paths."""

    name = "RL009"
    description = (
        "hot-path-allocation: functions reachable from the packed kernel "
        "entry points must not materialize (B, L)-scale float tensors — "
        "no unpack_bits→astype(float), no dense multi-axis float "
        "allocation, no per-clock python loops"
    )

    def check_project(
        self, sources: Sequence[FileSource]
    ) -> List[Diagnostic]:
        by_module: Dict[str, FileSource] = {
            module_name_for(source.path): source for source in sources
        }
        graph = build_call_graph(
            [(name, source.tree) for name, source in by_module.items()]
        )
        reachable = graph.reachable(graph.packed_entries())
        diagnostics: List[Diagnostic] = []
        for info in graph.functions.values():
            if info.qname not in reachable:
                continue
            source = by_module.get(info.module)
            if source is None:
                continue
            diagnostics.extend(
                self._check_function(source, info.qname, info.node)
            )
        return diagnostics

    def _check_function(
        self, source: FileSource, qname: str, func: ast.AST
    ) -> List[Diagnostic]:
        diagnostics: List[Diagnostic] = []
        tainted: Set[str] = set()
        for node in _shallow_walk(func):
            if (
                isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and _last_name(node.value.func) == "unpack_bits"
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
        short = qname.rsplit(".", 1)[-1]
        for node in _shallow_walk(func):
            if isinstance(node, ast.Call):
                diagnostics.extend(
                    self._check_call(source, short, node, tainted)
                )
            elif isinstance(node, ast.For):
                diagnostics.extend(self._check_loop(source, short, node))
        return diagnostics

    def _check_call(
        self,
        source: FileSource,
        func_name: str,
        call: ast.Call,
        tainted: Set[str],
    ) -> List[Diagnostic]:
        name = _last_name(call.func)
        diagnostics: List[Diagnostic] = []
        if name == "astype" and isinstance(call.func, ast.Attribute):
            receiver = call.func.value
            receiver_tainted = (
                isinstance(receiver, ast.Name) and receiver.id in tainted
            ) or (
                isinstance(receiver, ast.Call)
                and _last_name(receiver.func) == "unpack_bits"
            )
            dtype_args = list(call.args) + [
                kw.value for kw in call.keywords if kw.arg == "dtype"
            ]
            if receiver_tainted and any(
                _is_float_dtype(arg) for arg in dtype_args
            ):
                diagnostics.append(
                    _diagnostic(
                        self.name,
                        source,
                        call,
                        "unpacked bit tensor converted to float in packed-"
                        f"reachable '{func_name}' — a (B, L) float "
                        "materialization; keep the data packed or integer",
                    )
                )
        if name in _DENSE_FACTORIES:
            shape = call.args[0] if call.args else None
            dtypes = [kw.value for kw in call.keywords if kw.arg == "dtype"]
            if name != "full" and len(call.args) > 1:
                dtypes.append(call.args[1])
            if isinstance(shape, ast.Tuple) and len(shape.elts) >= 2:
                if not dtypes or any(_is_float_dtype(d) for d in dtypes):
                    diagnostics.append(
                        _diagnostic(
                            self.name,
                            source,
                            call,
                            f"dense multi-axis float allocation (np.{name}) "
                            f"in packed-reachable '{func_name}'; allocate "
                            "packed uint64 words or an integer dtype instead",
                        )
                    )
        return diagnostics

    def _check_loop(
        self, source: FileSource, func_name: str, loop: ast.For
    ) -> List[Diagnostic]:
        iterator = loop.iter
        if not (
            isinstance(iterator, ast.Call)
            and _last_name(iterator.func) == "range"
            and len(iterator.args) == 1
        ):
            return []
        per_clock = any(
            isinstance(node, ast.Name) and "length" in node.id.lower()
            for node in ast.walk(iterator.args[0])
        )
        if not per_clock:
            return []
        return [
            _diagnostic(
                self.name,
                source,
                loop,
                "per-clock python loop (range over a stream length) in "
                f"packed-reachable '{func_name}'; vectorize over packed "
                "words instead",
            )
        ]

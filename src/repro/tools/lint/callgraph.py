"""A project-wide call graph over module-qualified names.

:func:`build_call_graph` indexes every function, method and class of a
file set under module-qualified names (``repro.simulation.kernels.
popcount``, ``repro.simulation.runtime.EvaluationCache.store``) and
resolves call sites against that index:

* plain names through the module's own definitions and its import
  aliases (``from .transport import SharedArena as Arena`` included),
  resolving relative imports against the module's package;
* ``self.method(...)`` to the enclosing class, falling back to every
  project method of that name when the class does not define it
  (inheritance is not modeled);
* ``obj.method(...)`` through a one-function type inference pass
  (``obj = ClassName(...)``), then the same by-name fallback;
* ``ClassName(...)`` to ``ClassName.__init__`` when defined;
* nested ``def`` gets an implicit edge from its enclosing function
  (closures are built to be called).

The graph deliberately *over*-approximates: an unknown receiver keeps
every project method of the attribute's name as a candidate callee.
The dataflow rules use reachability to demand discipline (locks on
thread-reachable mutations, allocation hygiene on packed-reachable
code), so extra edges can only ask for more discipline, never excuse
less.

Thread entry points — the roots of "runs on a worker thread" — are the
callables handed to the dispatch APIs the runtime uses:
``parallel_map(fn, ...)``, ``executor.submit(fn, ...)`` /
``executor.map(fn, ...)``, ``threading.Thread(target=fn)``,
``loop.run_in_executor(None, fn, ...)`` — unwrapping
``functools.partial(fn, ...)`` wrappers.  A function that forwards one
of its own parameters into a dispatcher (``def _map_row_shards(worker,
...): parallel_map(worker, ...)``) is itself treated as a dispatcher:
callables passed at its call sites become entries too (one level of
higher-order forwarding, which is all the runtime uses).

Packed entry points — the roots of the RL009 hot-path check — are the
functions and classes whose qualified name carries the packed-kernel
naming convention (``packed_*`` functions, ``Packed*``/``_Packed*``
classes).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallGraph",
    "FunctionInfo",
    "build_call_graph",
    "module_name_for",
]


def module_name_for(path: Path) -> str:
    """The dotted module name of *path*, walking up through packages."""
    resolved = Path(path)
    parts: List[str] = [] if resolved.stem == "__init__" else [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


@dataclass
class FunctionInfo:
    """One indexed function or method."""

    qname: str
    module: str
    cls: Optional[str]
    node: ast.AST
    params: Tuple[str, ...]


@dataclass
class CallGraph:
    """Functions, classes, call edges and dispatch entry points."""

    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, Set[str]] = field(default_factory=dict)
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    thread_entries: Set[str] = field(default_factory=set)

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def methods_named(self, name: str) -> Set[str]:
        """Every project method called *name* (the unknown-receiver set)."""
        found: Set[str] = set()
        for cls_qname, methods in self.classes.items():
            if name in methods:
                found.add(f"{cls_qname}.{name}")
        return found

    def reachable(self, roots: Set[str]) -> Set[str]:
        """Transitive closure of *roots* over the call edges."""
        seen = set(roots) & set(self.functions)
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, set()):
                if callee in self.functions and callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return seen

    def packed_entries(self) -> Set[str]:
        """Functions on the packed-kernel surface, by naming convention."""
        entries: Set[str] = set()
        for qname in self.functions:
            segments = qname.split(".")
            if segments[-1].startswith(("packed_", "_packed_")) or any(
                segment.startswith(("Packed", "_Packed"))
                for segment in segments
            ):
                entries.add(qname)
        return entries

    def describe(self) -> List[str]:
        """A stable text rendering (the ``--graph calls`` dump format)."""
        lines = [
            f"functions: {len(self.functions)}",
            f"thread entries: {', '.join(sorted(self.thread_entries)) or '-'}",
        ]
        for caller in sorted(self.edges):
            callees = ", ".join(sorted(self.edges[caller]))
            lines.append(f"  {caller} -> {callees}")
        return lines


# Dispatch APIs whose worker callable arrives as a keyword argument.
_DISPATCH_KEYWORD: Dict[str, str] = {
    "Thread": "target",
    "Process": "target",
}


def _call_name(func: ast.expr) -> Optional[str]:
    """The final name segment of a call target (``a.b.c`` → ``c``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _dotted_parts(expr: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name bases."""
    parts: List[str] = []
    current: ast.expr = expr
    while isinstance(current, ast.Attribute):
        parts.insert(0, current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.insert(0, current.id)
        return parts
    return None


@dataclass
class _ModuleIndex:
    name: str
    aliases: Dict[str, str] = field(default_factory=dict)
    top_level: Dict[str, str] = field(default_factory=dict)


class _Indexer(ast.NodeVisitor):
    """Pass 1: functions, classes, and import aliases per module."""

    def __init__(self, graph: CallGraph, index: _ModuleIndex) -> None:
        self.graph = graph
        self.index = index
        self._stack: List[str] = []
        self._class: List[Optional[str]] = []

    def _qualify(self, name: str) -> str:
        return ".".join([self.index.name, *self._stack, name])

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.index.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:
            package_parts = self.index.name.split(".")[: -node.level]
            base = ".".join(package_parts + ([node.module] if node.module else []))
        else:
            base = node.module or ""
        for alias in node.names:
            local = alias.asname or alias.name
            self.index.aliases[local] = (
                f"{base}.{alias.name}" if base else alias.name
            )

    def _visit_function(self, node: ast.AST, name: str) -> None:
        qname = self._qualify(name)
        args = getattr(node, "args", None)
        params: Tuple[str, ...] = ()
        if args is not None:
            params = tuple(
                arg.arg
                for arg in [*args.posonlyargs, *args.args]
            )
        cls = self._class[-1] if self._class else None
        self.graph.functions[qname] = FunctionInfo(
            qname=qname,
            module=self.index.name,
            cls=cls,
            node=node,
            params=params,
        )
        if cls is not None and len(self._stack) >= 1:
            class_qname = ".".join([self.index.name, *self._stack])
            self.graph.classes.setdefault(class_qname, set()).add(name)
        if not self._stack:
            self.index.top_level[name] = qname
        self._stack.append(name)
        self._class.append(None)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._class.pop()
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qname = self._qualify(node.name)
        self.graph.classes.setdefault(qname, set())
        if not self._stack:
            self.index.top_level[node.name] = qname
        self._stack.append(node.name)
        self._class.append(node.name)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._class.pop()
        self._stack.pop()


@dataclass
class _CallRecord:
    """One resolved call site, kept for the dispatcher post-pass."""

    callees: Set[str]
    callable_args: List[Tuple[int, Set[str]]]


class _EdgeExtractor:
    """Pass 2: call edges, dispatch entries and callable-argument flow."""

    def __init__(
        self,
        graph: CallGraph,
        indexes: Dict[str, _ModuleIndex],
        records: List[_CallRecord],
        param_dispatchers: Set[Tuple[str, int]],
    ) -> None:
        self.graph = graph
        self.indexes = indexes
        self.records = records
        self.param_dispatchers = param_dispatchers

    # -- name resolution -------------------------------------------------------

    def _resolve_dotted(self, index: _ModuleIndex, parts: List[str]) -> Set[str]:
        """Candidate qnames for a dotted path rooted at a plain name."""
        root = parts[0]
        bases: List[str] = []
        if root in index.top_level:
            bases.append(index.top_level[root])
        if root in index.aliases:
            bases.append(index.aliases[root])
        candidates: Set[str] = set()
        for base in bases:
            qname = ".".join([base, *parts[1:]]) if len(parts) > 1 else base
            if qname in self.graph.functions:
                candidates.add(qname)
            elif qname in self.graph.classes:
                init = f"{qname}.__init__"
                candidates.add(init if init in self.graph.functions else qname)
        return candidates

    def _resolve_callable(
        self,
        expr: ast.expr,
        index: _ModuleIndex,
        info: FunctionInfo,
        instances: Dict[str, str],
    ) -> Set[str]:
        """Candidate function qnames an expression may call into."""
        if isinstance(expr, ast.Call):
            # functools.partial(fn, ...) binds but calls `fn`.
            if _call_name(expr.func) == "partial" and expr.args:
                return self._resolve_callable(
                    expr.args[0], index, info, instances
                )
            return set()
        if isinstance(expr, ast.Name):
            nested = f"{info.qname}.{expr.id}"
            if nested in self.graph.functions:
                return {nested}
            return self._resolve_dotted(index, [expr.id])
        if not isinstance(expr, ast.Attribute):
            return set()
        parts = _dotted_parts(expr)
        if parts is not None and parts[0] == "self" and info.cls is not None:
            class_qname = info.qname.rsplit(".", 1)[0]
            method = f"{class_qname}.{expr.attr}"
            if method in self.graph.functions:
                return {method}
        if parts is not None and parts[0] in instances and len(parts) == 2:
            method = f"{instances[parts[0]]}.{expr.attr}"
            if method in self.graph.functions:
                return {method}
        if parts is not None:
            resolved = self._resolve_dotted(index, parts)
            if resolved:
                return resolved
        # Unknown receiver: every project method of this name may be it.
        return self.graph.methods_named(expr.attr)

    # -- per-function extraction -----------------------------------------------

    def extract(self, info: FunctionInfo) -> None:
        index = self.indexes[info.module]
        instances = self._infer_instances(info, index)
        own_body: List[ast.stmt] = list(getattr(info.node, "body", []))
        for stmt in own_body:
            for node in self._walk_shallow(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested = f"{info.qname}.{node.name}"
                    if nested in self.graph.functions:
                        self.graph.add_edge(info.qname, nested)
                    continue
                if isinstance(node, ast.Call):
                    self._handle_call(node, index, info, instances)

    def _walk_shallow(self, stmt: ast.stmt) -> List[ast.AST]:
        """Every node under *stmt*, not descending into nested defs."""
        found: List[ast.AST] = []
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            found.append(node)
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return found

    def _infer_instances(
        self, info: FunctionInfo, index: _ModuleIndex
    ) -> Dict[str, str]:
        """``name -> class qname`` for ``name = ClassName(...)`` locals."""
        instances: Dict[str, str] = {}
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            callee = value.func
            parts = _dotted_parts(callee)
            if parts is None:
                continue
            for candidate in self._resolve_dotted(index, parts):
                cls_qname = (
                    candidate.rsplit(".", 1)[0]
                    if candidate.endswith(".__init__")
                    else candidate
                )
                if cls_qname in self.graph.classes:
                    instances[target.id] = cls_qname
        return instances

    def _handle_call(
        self,
        call: ast.Call,
        index: _ModuleIndex,
        info: FunctionInfo,
        instances: Dict[str, str],
    ) -> None:
        callees = self._resolve_callable(call.func, index, info, instances)
        for callee in callees:
            self.graph.add_edge(info.qname, callee)
        callable_args: List[Tuple[int, Set[str]]] = []
        for position, arg in enumerate(call.args):
            resolved = self._resolve_callable(arg, index, info, instances)
            resolved = {q for q in resolved if q in self.graph.functions}
            if resolved:
                callable_args.append((position, resolved))
                # A callable escaping into another function may run
                # anywhere that function chooses; keep the edge.
                for target in resolved:
                    self.graph.add_edge(info.qname, target)
        if callable_args:
            self.records.append(
                _CallRecord(callees=callees, callable_args=callable_args)
            )
        self._handle_dispatch(call, index, info, instances)

    def _handle_dispatch(
        self,
        call: ast.Call,
        index: _ModuleIndex,
        info: FunctionInfo,
        instances: Dict[str, str],
    ) -> None:
        name = _call_name(call.func)
        if name is None:
            return
        candidates: List[ast.expr] = []
        if name == "parallel_map" and call.args:
            candidates.append(call.args[0])
        elif name in {"submit", "map"} and isinstance(
            call.func, ast.Attribute
        ) and call.args:
            candidates.append(call.args[0])
        elif name == "run_in_executor" and len(call.args) >= 2:
            candidates.append(call.args[1])
        elif name in _DISPATCH_KEYWORD:
            wanted = _DISPATCH_KEYWORD[name]
            for keyword in call.keywords:
                if keyword.arg == wanted:
                    candidates.append(keyword.value)
        for expr in candidates:
            unwrapped = expr
            if isinstance(expr, ast.Call) and _call_name(
                expr.func
            ) == "partial" and expr.args:
                unwrapped = expr.args[0]
            if isinstance(unwrapped, ast.Name) and unwrapped.id in info.params:
                self.param_dispatchers.add(
                    (info.qname, info.params.index(unwrapped.id))
                )
            resolved = self._resolve_callable(expr, index, info, instances)
            for target in resolved:
                if target in self.graph.functions:
                    self.graph.thread_entries.add(target)
                    self.graph.add_edge(info.qname, target)


def build_call_graph(
    modules: Sequence[Tuple[str, ast.Module]],
) -> CallGraph:
    """Index *modules* (``(dotted_name, tree)`` pairs) into a CallGraph."""
    graph = CallGraph()
    indexes: Dict[str, _ModuleIndex] = {}
    for name, tree in modules:
        index = _ModuleIndex(name=name)
        indexes[name] = index
        _Indexer(graph, index).visit(tree)
    records: List[_CallRecord] = []
    param_dispatchers: Set[Tuple[str, int]] = set()
    extractor = _EdgeExtractor(graph, indexes, records, param_dispatchers)
    for info in list(graph.functions.values()):
        extractor.extract(info)
    # One level of higher-order forwarding: a callable passed into a
    # function that hands its parameter to a dispatcher is an entry.
    for record in records:
        for callee in record.callees:
            for position, resolved in record.callable_args:
                if (callee, position) in param_dispatchers:
                    graph.thread_entries.update(resolved)
    return graph

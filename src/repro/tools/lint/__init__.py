"""``repro-lint`` — AST-based invariant checker for the bit-exact runtime.

Stdlib-only (see :mod:`repro.tools`).  Run it as::

    python -m repro.tools.lint src/repro

Exit codes: 0 clean, 1 violations, 2 usage error.  Rules RL001–RL006
are documented in :mod:`repro.tools.lint.rules` and the README's
"Static guarantees" section; suppress a finding with a trailing
``# repro-lint: disable=RL00x`` pragma.
"""

from __future__ import annotations

from .engine import (
    Diagnostic,
    FileSource,
    LintRunner,
    ProjectRule,
    Rule,
    RuleVisitor,
    main,
)
from .rules import RULES, check_api_surface

__all__ = [
    "Diagnostic",
    "FileSource",
    "LintRunner",
    "ProjectRule",
    "RULES",
    "Rule",
    "RuleVisitor",
    "check_api_surface",
    "main",
]

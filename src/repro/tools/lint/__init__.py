"""``repro-lint`` — AST-based invariant checker for the bit-exact runtime.

Stdlib-only (see :mod:`repro.tools`).  Run it as::

    python -m repro.tools.lint src/repro

Exit codes: 0 clean, 1 violations, 2 usage error.  Rules RL001–RL006
are lexical checks documented in :mod:`repro.tools.lint.rules`;
RL007–RL009 are dataflow checks built on the per-function control-flow
graphs of :mod:`repro.tools.lint.cfg` and the project call graph of
:mod:`repro.tools.lint.callgraph` (see
:mod:`repro.tools.lint.flowrules`).  All are listed in the README's
"Static guarantees" section; suppress a finding with a trailing
``# repro-lint: disable=RL00x`` pragma.  ``--format json`` emits the
machine-readable report CI archives; ``--graph cfg`` / ``--graph
calls`` dump the analysis graphs for debugging.
"""

from __future__ import annotations

from .callgraph import CallGraph, build_call_graph, module_name_for
from .cfg import CFG, build_cfg, forward_may
from .engine import (
    Diagnostic,
    FileSource,
    LintRunner,
    ProjectRule,
    Rule,
    RuleVisitor,
    main,
)
from .rules import RULES, check_api_surface

__all__ = [
    "CFG",
    "CallGraph",
    "Diagnostic",
    "FileSource",
    "LintRunner",
    "ProjectRule",
    "RULES",
    "Rule",
    "RuleVisitor",
    "build_call_graph",
    "build_cfg",
    "check_api_surface",
    "forward_may",
    "main",
    "module_name_for",
]

"""Statement-level control-flow graphs for the dataflow lint rules.

:func:`build_cfg` turns one ``ast.FunctionDef`` into a :class:`CFG`:
one node per statement (plus synthetic ``entry`` / ``exit`` nodes), and
one edge per possible successor.  The builder models the control
constructs the repro runtime actually uses:

* ``if``/``elif``/``else`` — both arms join after the statement; a
  missing ``else`` keeps the fall-through edge from the test node.
* ``while``/``for`` (and their ``else`` clauses) — back edge from the
  body tail to the header, exit edges through ``break`` and the header.
* ``try``/``except``/``else``/``finally`` — every statement of the
  ``try`` body may transfer to each handler; abrupt exits (``return``,
  ``raise``, ``break``, ``continue``) route through each enclosing
  ``finally`` block before reaching their target, exactly like the
  interpreter unwinds.
* ``with`` — a header node for the context-manager expressions, then
  the body.  ``__exit__`` ordering is a lexical property the rules
  check directly, so no synthetic cleanup node is materialized.
* early ``return`` / ``raise`` — edges straight to ``exit`` (through
  pending ``finally`` blocks).

The graph is deliberately an over-approximation: a ``finally`` tail
keeps both its fall-through successor and every abrupt target that can
unwind through it, and implicit exceptions from arbitrary expressions
are only modeled inside ``try`` bodies (edge to each handler).  Extra
paths can at worst produce a conservative diagnostic, never hide one.

:func:`forward_may` is the worklist solver the rules share: a forward
"may" dataflow (union join) over gen/kill sets per node — the classic
reaching-facts engine, enough to answer "does some path from this
acquisition reach ``exit`` without passing a release".
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

__all__ = ["CFG", "CFGNode", "ForwardResult", "build_cfg", "forward_may"]


@dataclass(frozen=True)
class CFGNode:
    """One CFG vertex: a statement (or a synthetic entry/exit marker)."""

    index: int
    stmt: Optional[ast.AST]
    label: str
    line: int


class CFG:
    """A statement-level control-flow graph for one function body."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.nodes: List[CFGNode] = [
            CFGNode(0, None, "<entry>", 0),
            CFGNode(1, None, "<exit>", 0),
        ]
        self.entry = 0
        self.exit = 1
        self.succ: Dict[int, Set[int]] = {0: set(), 1: set()}
        self._by_stmt: Dict[int, int] = {}

    def add_node(self, stmt: ast.AST, label: str) -> int:
        index = len(self.nodes)
        line = int(getattr(stmt, "lineno", 0))
        self.nodes.append(CFGNode(index, stmt, label, line))
        self.succ[index] = set()
        self._by_stmt[id(stmt)] = index
        return index

    def add_edge(self, src: int, dst: int) -> None:
        self.succ[src].add(dst)

    def node_for(self, stmt: ast.AST) -> Optional[int]:
        """The node index holding *stmt*, if it owns one."""
        return self._by_stmt.get(id(stmt))

    def predecessors(self) -> Dict[int, Set[int]]:
        preds: Dict[int, Set[int]] = {node.index: set() for node in self.nodes}
        for src, targets in self.succ.items():
            for dst in targets:
                preds[dst].add(src)
        return preds

    def describe(self) -> List[str]:
        """A stable text rendering (the ``--graph cfg`` dump format)."""
        lines = [f"cfg {self.name}:"]
        for node in self.nodes:
            targets = ",".join(
                f"n{index}" for index in sorted(self.succ[node.index])
            )
            where = f" @{node.line}" if node.line else ""
            lines.append(
                f"  n{node.index} {node.label}{where} -> [{targets}]"
            )
        return lines


# Abrupt-transfer targets: where control lands once every pending
# ``finally`` block between the statement and its target has run.
_TARGET_EXIT = "exit"
_TARGET_BREAK = "break"
_TARGET_CONTINUE = "continue"


@dataclass
class _LoopCtx:
    head: int
    finally_depth: int
    breaks: List[int] = field(default_factory=list)


@dataclass
class _FinallyCtx:
    # (source node, target kind, loop ctx for break/continue or None)
    abrupt: List[Tuple[int, str, Optional[_LoopCtx]]] = field(
        default_factory=list
    )


class _Builder:
    """Frontier-based recursive CFG construction.

    A *frontier* is the set of node indices whose fall-through edge
    points at whatever statement comes next; each ``_stmt_*`` method
    consumes the incoming frontier and returns the outgoing one.
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._loops: List[_LoopCtx] = []
        self._finals: List[_FinallyCtx] = []

    # -- plumbing --------------------------------------------------------------

    def _place(
        self, stmt: ast.AST, label: str, frontier: Set[int]
    ) -> int:
        node = self.cfg.add_node(stmt, label)
        for src in frontier:
            self.cfg.add_edge(src, node)
        return node

    def _abrupt(
        self, node: int, target: str, loop: Optional[_LoopCtx]
    ) -> None:
        """Route an abrupt transfer through pending ``finally`` blocks.

        ``break``/``continue`` only unwind ``finally`` blocks entered
        *inside* their loop, so the routing depth is the loop's
        ``finally`` depth; ``return``/``raise`` unwind everything.
        """
        depth = loop.finally_depth if loop is not None else 0
        if len(self._finals) > depth:
            self._finals[-1].abrupt.append((node, target, loop))
            return
        if target == _TARGET_EXIT:
            self.cfg.add_edge(node, self.cfg.exit)
        elif target == _TARGET_CONTINUE:
            assert loop is not None
            self.cfg.add_edge(node, loop.head)
        else:
            assert loop is not None
            loop.breaks.append(node)

    # -- statement dispatch ----------------------------------------------------

    def stmts(self, body: Sequence[ast.stmt], frontier: Set[int]) -> Set[int]:
        for stmt in body:
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, frontier: Set[int]) -> Set[int]:
        if isinstance(stmt, ast.If):
            return self._stmt_if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._stmt_loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._stmt_try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._stmt_with(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._stmt_match(stmt, frontier)
        if isinstance(stmt, ast.Return):
            node = self._place(stmt, "return", frontier)
            self._abrupt(node, _TARGET_EXIT, None)
            return set()
        if isinstance(stmt, ast.Raise):
            node = self._place(stmt, "raise", frontier)
            self._abrupt(node, _TARGET_EXIT, None)
            return set()
        if isinstance(stmt, ast.Break):
            node = self._place(stmt, "break", frontier)
            self._abrupt(node, _TARGET_BREAK, self._loops[-1])
            return set()
        if isinstance(stmt, ast.Continue):
            node = self._place(stmt, "continue", frontier)
            self._abrupt(node, _TARGET_CONTINUE, self._loops[-1])
            return set()
        # Simple statements (and nested def/class headers, which own
        # their own CFGs) are straight-line nodes.
        label = type(stmt).__name__.lower()
        return {self._place(stmt, label, frontier)}

    def _stmt_if(self, stmt: ast.If, frontier: Set[int]) -> Set[int]:
        head = self._place(stmt, "if", frontier)
        out = self.stmts(stmt.body, {head})
        if stmt.orelse:
            out |= self.stmts(stmt.orelse, {head})
        else:
            out |= {head}
        return out

    def _stmt_loop(self, stmt: ast.stmt, frontier: Set[int]) -> Set[int]:
        label = "while" if isinstance(stmt, ast.While) else "for"
        head = self._place(stmt, label, frontier)
        ctx = _LoopCtx(head=head, finally_depth=len(self._finals))
        self._loops.append(ctx)
        body = getattr(stmt, "body", [])
        tail = self.stmts(body, {head})
        for src in tail:
            self.cfg.add_edge(src, head)
        self._loops.pop()
        orelse = getattr(stmt, "orelse", [])
        out = self.stmts(orelse, {head}) if orelse else {head}
        return out | set(ctx.breaks)

    def _stmt_with(self, stmt: ast.stmt, frontier: Set[int]) -> Set[int]:
        head = self._place(stmt, "with", frontier)
        body = getattr(stmt, "body", [])
        return self.stmts(body, {head})

    def _stmt_match(self, stmt: ast.Match, frontier: Set[int]) -> Set[int]:
        head = self._place(stmt, "match", frontier)
        out: Set[int] = {head}
        for case in stmt.cases:
            out |= self.stmts(case.body, {head})
        return out

    def _stmt_try(self, stmt: ast.Try, frontier: Set[int]) -> Set[int]:
        ctx: Optional[_FinallyCtx] = None
        if stmt.finalbody:
            ctx = _FinallyCtx()
            self._finals.append(ctx)
        body_start = len(self.cfg.nodes)
        body_out = self.stmts(stmt.body, frontier)
        body_end = len(self.cfg.nodes)

        handler_out: Set[int] = set()
        for handler in stmt.handlers:
            head = self._place(handler, "except", set())
            # Any statement of the try body may raise into the handler.
            for index in range(body_start, body_end):
                self.cfg.add_edge(index, head)
            handler_out |= self.stmts(handler.body, {head})

        orelse_out = (
            self.stmts(stmt.orelse, body_out) if stmt.orelse else body_out
        )
        merged = orelse_out | handler_out
        if not stmt.finalbody:
            return merged

        assert ctx is not None
        self._finals.pop()
        fin_start = len(self.cfg.nodes)
        fin_out = self.stmts(stmt.finalbody, merged)
        # Abrupt exits captured inside the try enter the finally block,
        # then continue (through any *outer* finally) to their target.
        for source, _target, _loop in ctx.abrupt:
            self.cfg.add_edge(source, fin_start)
        unwound = {(kind, id(lp)): (kind, lp) for _, kind, lp in ctx.abrupt}
        for target, loop in unwound.values():
            for tail in fin_out:
                self._abrupt(tail, target, loop)
        return fin_out if merged else set()


def build_cfg(func: ast.AST) -> CFG:
    """The CFG of one ``FunctionDef`` / ``AsyncFunctionDef`` body."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise TypeError(f"build_cfg needs a function node, got {func!r}")
    cfg = CFG(func.name)
    builder = _Builder(cfg)
    tail = builder.stmts(func.body, {cfg.entry})
    for src in tail:
        cfg.add_edge(src, cfg.exit)
    return cfg


@dataclass(frozen=True)
class ForwardResult:
    """Solved forward-may facts: the IN and OUT set of every node."""

    in_sets: Dict[int, FrozenSet[str]]
    out_sets: Dict[int, FrozenSet[str]]


def forward_may(
    cfg: CFG,
    gen: Dict[int, Set[str]],
    kill: Dict[int, Set[str]],
) -> ForwardResult:
    """Worklist forward dataflow with union join over string facts.

    ``OUT[n] = (IN[n] - kill[n]) | gen[n]`` with ``IN[n]`` the union of
    predecessor OUT sets; iterates to the (guaranteed, monotone) fixed
    point.  A fact in ``in_sets[cfg.exit]`` holds on *some* path from
    entry to exit — exactly the "may leak" question RL007 asks.
    """
    preds = cfg.predecessors()
    in_sets: Dict[int, Set[str]] = {n.index: set() for n in cfg.nodes}
    out_sets: Dict[int, Set[str]] = {n.index: set() for n in cfg.nodes}
    worklist: deque[int] = deque(node.index for node in cfg.nodes)
    while worklist:
        index = worklist.popleft()
        incoming: Set[str] = set()
        for pred in preds[index]:
            incoming |= out_sets[pred]
        in_sets[index] = incoming
        outgoing = (incoming - kill.get(index, set())) | gen.get(index, set())
        if outgoing != out_sets[index]:
            out_sets[index] = outgoing
            for succ in cfg.succ[index]:
                if succ not in worklist:
                    worklist.append(succ)
    return ForwardResult(
        in_sets={index: frozenset(value) for index, value in in_sets.items()},
        out_sets={index: frozenset(value) for index, value in out_sets.items()},
    )

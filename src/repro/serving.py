"""Async micro-batched serving on top of an :class:`~repro.session.Evaluator`.

The ROADMAP's north star is production-scale serving: many concurrent
clients, each asking for one circuit evaluation.  Per-request engine
calls would waste the whole point of the batched engine — a batch of one
costs almost as much as a batch of hundreds.  :class:`BatchServer` is
the first concrete step toward that north star: an asyncio queue plus a
micro-batcher that **coalesces** concurrent ``submit(x)`` requests into
one sharded :meth:`~repro.session.Evaluator.evaluate` call.

The served session's :class:`~repro.simulation.runtime.RuntimeConfig`
knobs — workers, chunking, the engine's compute ``kernel``
(``"numpy"``/``"packed"``/``"numba"``) and the shard ``transport``
(``"pickle"``/``"shm"`` zero-copy shared memory) — flow straight
through :meth:`~repro.session.Evaluator.evaluate`, so a server can be
pointed at the packed bit-plane kernel and shared-memory sharding for
throughput without any serving-side change, and serves the same bits.

Determinism contract
--------------------
Coalescing must never change an answer.  The server therefore requires a
**row-independent** session (``Evaluator.row_independent``: pinned seed
space, noiseless receiver) by default — each request's result is then a
pure function of its input, bit-identical whether it was served alone or
inside any micro-batch (the benchmark's exit gate).  Sessions whose
per-row noise seeds depend on batch position can still be served with
``allow_row_dependent=True``; each micro-batch then equals a direct
``evaluate`` call on the coalesced inputs, but per-request values depend
on how requests happened to coalesce.

>>> async def client(server, x):
...     return await server.submit(x)
>>> async def main(evaluator):
...     async with BatchServer(evaluator) as server:
...         return await asyncio.gather(*(client(server, x) for x in xs))
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from types import TracebackType
from typing import List, Optional, Sequence, Type

import numpy as np

from .errors import ConfigurationError
from .session import Evaluator

__all__ = ["BatchServer", "ServingStats"]


@dataclass(frozen=True)
class ServingStats:
    """Snapshot of a server's coalescing behaviour."""

    requests: int
    batches: int
    largest_batch: int

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests coalesced per engine call."""
        return self.requests / self.batches if self.batches else 0.0


class _Request:
    __slots__ = ("x", "future")

    def __init__(self, x: float, future: "asyncio.Future[float]") -> None:
        self.x: float = x
        self.future: "asyncio.Future[float]" = future


class BatchServer:
    """Coalesce concurrent evaluation requests into micro-batched engine calls.

    Parameters
    ----------
    evaluator:
        The bound :class:`~repro.session.Evaluator` session to serve.
        Must be row-independent (see module docstring) unless
        *allow_row_dependent* is set.
    max_batch_size:
        Upper bound on requests coalesced into one engine call.
    max_batch_delay_s:
        How long the batcher waits for stragglers after the first
        request of a batch arrives.  Zero still coalesces everything
        already queued (pure opportunistic batching).
    allow_row_dependent:
        Serve sessions whose per-request results depend on batch
        composition (see the determinism contract above).

    Use as an async context manager, or call :meth:`start` /
    :meth:`stop` explicitly.  The evaluation itself runs on a thread
    executor so the event loop stays responsive while numpy (or the
    runtime's process pool) does the heavy lifting.
    """

    def __init__(
        self,
        evaluator: Evaluator,
        max_batch_size: int = 256,
        max_batch_delay_s: float = 0.002,
        allow_row_dependent: bool = False,
    ) -> None:
        if not isinstance(evaluator, Evaluator):
            raise ConfigurationError(
                f"evaluator must be a repro.session.Evaluator, got "
                f"{evaluator!r}"
            )
        if int(max_batch_size) < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {max_batch_size!r}"
            )
        if float(max_batch_delay_s) < 0.0:
            raise ConfigurationError(
                f"max_batch_delay_s must be >= 0, got {max_batch_delay_s!r}"
            )
        if not evaluator.row_independent and not allow_row_dependent:
            raise ConfigurationError(
                "BatchServer requires a row-independent session (fixed "
                "base_seed or counter randomizer, noisy=False) so that "
                "coalescing never changes a result; pass "
                "allow_row_dependent=True to serve this session anyway"
            )
        self._evaluator = evaluator
        self._max_batch_size = int(max_batch_size)
        self._max_batch_delay_s = float(max_batch_delay_s)
        self._queue: Optional[asyncio.Queue[Optional[_Request]]] = None
        self._worker: Optional[asyncio.Task[None]] = None
        self._stopping = False
        self._requests = 0
        self._batches = 0
        self._largest_batch = 0

    @property
    def evaluator(self) -> Evaluator:
        """The served session."""
        return self._evaluator

    @property
    def stats(self) -> ServingStats:
        """Requests served, engine calls issued, largest micro-batch."""
        return ServingStats(
            requests=self._requests,
            batches=self._batches,
            largest_batch=self._largest_batch,
        )

    @property
    def running(self) -> bool:
        """Whether the batcher task is accepting requests."""
        return self._worker is not None and not self._worker.done()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> "BatchServer":
        """Start the batcher task on the running event loop."""
        if self.running:
            raise ConfigurationError("server is already running")
        self._queue = asyncio.Queue()
        self._stopping = False
        self._worker = asyncio.create_task(self._serve())
        return self

    async def stop(self) -> None:
        """Drain pending requests, then stop the batcher task."""
        if self._worker is None:
            return
        self._stopping = True
        assert self._queue is not None
        await self._queue.put(None)  # wake the batcher
        await self._worker
        self._worker = None
        self._queue = None

    async def __aenter__(self) -> "BatchServer":
        return await self.start()

    async def __aexit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        await self.stop()

    # -- client API ------------------------------------------------------------

    async def submit(self, x: float) -> float:
        """Submit one input; resolves to its de-randomized output.

        Validation is per-request and eager, so a malformed input fails
        its own caller instead of poisoning the micro-batch it would
        have joined.
        """
        if not self.running:
            raise ConfigurationError(
                "server is not running; use 'async with BatchServer(...)' "
                "or await server.start() first"
            )
        try:
            x = float(x)
        except (TypeError, ValueError):
            raise ConfigurationError(f"x must be a number in [0, 1], got {x!r}")
        if not 0.0 <= x <= 1.0:
            raise ConfigurationError(f"x must be in [0, 1], got {x!r}")
        future: "asyncio.Future[float]" = (
            asyncio.get_running_loop().create_future()
        )
        assert self._queue is not None
        await self._queue.put(_Request(x, future))
        return await future

    async def submit_many(self, xs: Sequence[float]) -> List[float]:
        """Submit many inputs concurrently; resolves in input order."""
        return list(await asyncio.gather(*(self.submit(x) for x in xs)))

    # -- batcher ---------------------------------------------------------------

    async def _serve(self) -> None:
        queue = self._queue
        assert queue is not None
        while True:
            request = await queue.get()
            if request is None:
                if queue.empty():
                    return
                continue  # shutdown sentinel raced ahead of late requests
            batch = await self._collect(request)
            await self._evaluate_batch(batch)
            if self._stopping and queue.empty():
                return

    async def _collect(self, first: _Request) -> List[_Request]:
        """Coalesce requests behind *first* until size or deadline."""
        loop = asyncio.get_running_loop()
        queue = self._queue
        assert queue is not None
        batch = [first]
        deadline = loop.time() + self._max_batch_delay_s
        while len(batch) < self._max_batch_size:
            remaining = deadline - loop.time()
            if remaining <= 0 or self._stopping:
                # Deadline passed: take only what is already queued.
                try:
                    request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                try:
                    request = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if request is None:
                # Shutdown sentinel: finish this batch, then let the
                # serve loop drain whatever raced in behind it.
                self._stopping = True
                break
            batch.append(request)
        return batch

    async def _evaluate_batch(self, batch: List[_Request]) -> None:
        xs = np.asarray([request.x for request in batch], dtype=float)
        loop = asyncio.get_running_loop()
        try:
            result = await loop.run_in_executor(
                None, self._evaluator.evaluate, xs
            )
            values = np.asarray(result.values, dtype=float)
        except Exception as error:  # deliver the failure to every caller
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(error)
            return
        self._requests += len(batch)
        self._batches += 1
        self._largest_batch = max(self._largest_batch, len(batch))
        for request, value in zip(batch, values):
            if not request.future.done():
                request.future.set_result(float(value))

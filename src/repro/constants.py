"""Physical constants and paper-level default values.

Constants are grouped in two tiers:

* universal physical constants (speed of light, elementary charge), and
* defaults quoted by the paper itself, with the paper locus cited next to
  each value (section, figure, or reference number in the DATE'19 paper).

The paper defaults are deliberately plain module-level floats — they are the
single source of truth used by :mod:`repro.core.params` and the experiment
modules, so the numbers in the evaluation section trace back to one place.
"""

from __future__ import annotations

__all__ = [
    "SPEED_OF_LIGHT_M_S",
    "ELEMENTARY_CHARGE_C",
    "PLANCK_CONSTANT_J_S",
    "DEFAULT_WAVELENGTH_NM",
    "PAPER_WL_SPACING_NM",
    "PAPER_LAMBDA2_NM",
    "PAPER_LAMBDA_REF_NM",
    "PAPER_GUARD_NM",
    "PAPER_OTE_NM_PER_MW",
    "PAPER_MZI_IL_DB",
    "PAPER_MZI_ER_DB",
    "PAPER_PUMP_POWER_MW",
    "PAPER_PROBE_POWER_MW",
    "PAPER_FIG6_PUMP_POWER_MW",
    "PAPER_FIG6_TARGET_BER",
    "PAPER_PULSE_WIDTH_S",
    "PAPER_LASING_EFFICIENCY",
    "PAPER_BIT_RATE_HZ",
    "PAPER_OPTIMAL_WL_SPACING_NM",
    "PAPER_HEADLINE_ENERGY_PJ_PER_BIT",
    "PAPER_ENERGY_SAVING_FRACTION",
    "PAPER_RESC_CLOCK_HZ",
    "PAPER_GAMMA_ORDER",
]

# --- universal constants -------------------------------------------------

SPEED_OF_LIGHT_M_S = 299_792_458.0
"""Speed of light in vacuum (m/s)."""

ELEMENTARY_CHARGE_C = 1.602_176_634e-19
"""Elementary charge (C)."""

PLANCK_CONSTANT_J_S = 6.626_070_15e-34
"""Planck constant (J*s)."""

# --- paper defaults (section / figure cited per value) -------------------

DEFAULT_WAVELENGTH_NM = 1550.0
"""C-band reference wavelength used throughout the paper (nm)."""

PAPER_WL_SPACING_NM = 1.0
"""Wavelength spacing of the 2nd-order design example, Section V-A (nm)."""

PAPER_LAMBDA2_NM = 1550.0
"""Right-most probe wavelength of the Section V-A design example (nm)."""

PAPER_LAMBDA_REF_NM = 1550.1
"""Untuned filter resonance of the Section V-A example (nm): 0.1 nm above
the right-most signal, matching the detuning demonstrated in [14]."""

PAPER_GUARD_NM = 0.1
"""Guard band lambda_ref - lambda_n (nm); the 0.1 nm all-optical shift
reported by Van et al. [14] for a 10 mW average pump."""

PAPER_OTE_NM_PER_MW = 0.1 / 10.0
"""Optical tuning efficiency of the all-optical filter (nm/mW): 0.1 nm shift
per 10 mW pump, Section V-A quoting [14]."""

PAPER_MZI_IL_DB = 4.5
"""MZI insertion loss (dB) of the Ziebell et al. modulator [10]."""

PAPER_MZI_ER_DB = 13.22
"""MZI extinction ratio (dB) derived by the MRR-first method in Section V-A
for the 2nd-order, 1 nm-spacing design."""

PAPER_PUMP_POWER_MW = 591.8
"""Minimum pump laser power (mW) reported in Section V-A for the 2nd-order
design (IL = 4.5 dB, OTE = 0.1 nm / 10 mW, swing 2.1 nm)."""

PAPER_PROBE_POWER_MW = 1.0
"""Probe laser power assumed for the Fig. 5 link-budget study (mW)."""

PAPER_FIG6_PUMP_POWER_MW = 600.0
"""Pump power used for the Fig. 6 probe-power exploration (0.6 W)."""

PAPER_FIG6_TARGET_BER = 1e-6
"""Bit-error-rate target of the Fig. 6(a) exploration."""

PAPER_PULSE_WIDTH_S = 26e-12
"""Pump laser pulse width (s) from Van et al. [15], Section V-C."""

PAPER_LASING_EFFICIENCY = 0.20
"""Wall-plug lasing efficiency assumed in Section V-C."""

PAPER_BIT_RATE_HZ = 1e9
"""Modulation speed of MZIs and MRRs in the energy study (1 Gb/s)."""

PAPER_OPTIMAL_WL_SPACING_NM = 0.165
"""Optimal wavelength spacing reported in Fig. 7(a) (nm); the paper's key
result is that this optimum is independent of the polynomial degree."""

PAPER_HEADLINE_ENERGY_PJ_PER_BIT = 20.1
"""Headline result: laser energy per computed bit for the 2nd-order circuit
operating at 1 GHz (pJ/bit), Sections I and VI."""

PAPER_ENERGY_SAVING_FRACTION = 0.766
"""Energy saving of optimal spacing vs. 1 nm spacing, Fig. 7(b)."""

PAPER_RESC_CLOCK_HZ = 100e6
"""Clock of the electronic ReSC baseline considered in [9], Section V-C."""

PAPER_GAMMA_ORDER = 6
"""Bernstein degree used for the gamma-correction application, Section V-C."""

"""Tests for the electronic ReSC baseline (Qian et al. [9], Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stochastic import BernsteinPolynomial, CounterSNG, ReSCUnit
from repro.stochastic.functions import paper_example_bernstein

unit_floats = st.floats(min_value=0.0, max_value=1.0)


@pytest.fixture
def paper_unit() -> ReSCUnit:
    return ReSCUnit(paper_example_bernstein())


class TestEvaluation:
    def test_paper_example_at_half(self, paper_unit):
        # Fig. 1(b): f1(0.5) = 0.5; the 8-bit example returns 4/8.
        result = paper_unit.evaluate(0.5, length=8192)
        assert result.expected == pytest.approx(0.5)
        assert result.value == pytest.approx(0.5, abs=0.03)

    @given(x=unit_floats)
    @settings(max_examples=15, deadline=None)
    def test_converges_to_bernstein_value(self, x):
        unit = ReSCUnit(paper_example_bernstein())
        result = unit.evaluate(x, length=16384)
        sigma = np.sqrt(0.25 / 16384)
        assert abs(result.value - result.expected) < max(8 * sigma, 0.02)

    def test_result_bookkeeping(self, paper_unit):
        result = paper_unit.evaluate(0.3, length=512)
        assert result.stream_length == 512
        assert result.ones_count == result.output_stream.ones_count
        assert result.value == result.ones_count / 512
        assert result.absolute_error == abs(result.value - result.expected)

    def test_deterministic_with_counter_sngs(self):
        poly = BernsteinPolynomial([0.25, 0.5, 0.75])
        unit = ReSCUnit(
            poly,
            data_sngs=[CounterSNG(), CounterSNG()],
            coefficient_sngs=[CounterSNG(), CounterSNG(), CounterSNG()],
        )
        a = unit.evaluate(0.5, length=256)
        b = unit.evaluate(0.5, length=256)
        assert a.value == b.value

    def test_sweep(self, paper_unit):
        values = paper_unit.evaluate_sweep([0.0, 0.5, 1.0], length=4096)
        assert values.shape == (3,)
        # Endpoints interpolate the first/last coefficients.
        assert values[0] == pytest.approx(0.25, abs=0.05)
        assert values[2] == pytest.approx(0.75, abs=0.05)

    def test_constant_polynomial_degree_zero(self):
        unit = ReSCUnit(BernsteinPolynomial([0.3]))
        result = unit.evaluate(0.7, length=8192)
        assert result.expected == pytest.approx(0.3)
        assert result.value == pytest.approx(0.3, abs=0.03)


class TestValidation:
    def test_rejects_non_implementable_polynomial(self):
        with pytest.raises(ConfigurationError):
            ReSCUnit(BernsteinPolynomial([0.5, 1.5]))

    def test_rejects_wrong_sng_counts(self):
        poly = BernsteinPolynomial([0.2, 0.8])
        with pytest.raises(ConfigurationError):
            ReSCUnit(poly, data_sngs=[CounterSNG(), CounterSNG()])
        with pytest.raises(ConfigurationError):
            ReSCUnit(poly, coefficient_sngs=[CounterSNG()])

    def test_rejects_bad_inputs(self, paper_unit):
        with pytest.raises(ConfigurationError):
            paper_unit.evaluate(1.5)
        with pytest.raises(ConfigurationError):
            paper_unit.evaluate(0.5, length=0)

    def test_rejects_bad_clock(self):
        with pytest.raises(ConfigurationError):
            ReSCUnit(paper_example_bernstein(), clock_hz=0.0)


class TestThroughput:
    def test_paper_clock_default(self, paper_unit):
        # [9] considers a 100 MHz electronic implementation.
        assert paper_unit.clock_hz == pytest.approx(100e6)
        assert paper_unit.computation_time_s(1024) == pytest.approx(
            1024 / 100e6
        )

    def test_optical_speedup_is_10x(self):
        # Section V-C: 1 GHz optical vs 100 MHz electronic -> 10x.
        electronic = ReSCUnit(paper_example_bernstein(), clock_hz=100e6)
        optical_rate = 1e9
        speedup = optical_rate / electronic.throughput_bits_per_s()
        assert speedup == pytest.approx(10.0)

"""Tests for the OpticalSCParameters bundle (Fig. 4(b))."""

import pytest

from repro.core.params import OpticalSCParameters, paper_section5a_parameters
from repro.errors import ConfigurationError, DesignInfeasibleError
from repro.photonics import MZIModulator, WDMGrid
from repro.photonics.devices import COARSE_RING_PROFILE


@pytest.fixture
def paper_params() -> OpticalSCParameters:
    return paper_section5a_parameters()


class TestPaperParameters:
    def test_order_and_channels(self, paper_params):
        assert paper_params.order == 2
        assert paper_params.channel_count == 3

    def test_grid_quantities(self, paper_params):
        assert paper_params.wl_spacing_nm == pytest.approx(1.0)
        assert paper_params.lambda_ref_nm == pytest.approx(1550.1)
        assert paper_params.full_swing_nm == pytest.approx(2.1)

    def test_paper_pump_default(self, paper_params):
        assert paper_params.pump_power_mw == pytest.approx(591.8)

    def test_overriding_powers(self, paper_params):
        changed = paper_params.with_pump_power(300.0).with_probe_power(2.0)
        assert changed.pump_power_mw == 300.0
        assert changed.probe_power_mw == 2.0
        # Original untouched (frozen dataclass semantics).
        assert paper_params.pump_power_mw == pytest.approx(591.8)

    def test_describe_mentions_key_quantities(self, paper_params):
        text = paper_params.describe()
        assert "WLspacing" in text
        assert "591.8" in text


class TestValidation:
    def _grid(self, channels=3):
        return WDMGrid(channel_count=channels, spacing_nm=1.0)

    def _mzi(self):
        return MZIModulator(insertion_loss_db=4.5, extinction_ratio_db=13.22)

    def test_channel_count_must_match_order(self):
        with pytest.raises(ConfigurationError):
            OpticalSCParameters(
                order=3,
                grid=self._grid(3),
                ring_profile=COARSE_RING_PROFILE,
                mzi=self._mzi(),
            )

    def test_order_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            OpticalSCParameters(
                order=0,
                grid=self._grid(1),
                ring_profile=COARSE_RING_PROFILE,
                mzi=self._mzi(),
            )

    def test_grid_must_fit_filter_fsr(self):
        wide = WDMGrid(channel_count=3, spacing_nm=12.0)  # 24 nm span
        with pytest.raises(DesignInfeasibleError):
            OpticalSCParameters(
                order=2,
                grid=wide,
                ring_profile=COARSE_RING_PROFILE,
                mzi=self._mzi(),
            )

    def test_rejects_bad_powers(self):
        with pytest.raises(ConfigurationError):
            OpticalSCParameters(
                order=2,
                grid=self._grid(),
                ring_profile=COARSE_RING_PROFILE,
                mzi=self._mzi(),
                pump_power_mw=-1.0,
            )
        with pytest.raises(ConfigurationError):
            OpticalSCParameters(
                order=2,
                grid=self._grid(),
                ring_profile=COARSE_RING_PROFILE,
                mzi=self._mzi(),
                probe_power_mw=0.0,
            )

    def test_hashable_for_sweeps(self, paper_params):
        assert hash(paper_params) == hash(paper_section5a_parameters())

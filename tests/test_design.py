"""Tests for the MRR-first and MZI-first design methods (Section IV-B)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design import mrr_first_design, mzi_first_design
from repro.core.transmission import TransmissionModel
from repro.errors import ConfigurationError
from repro.photonics import MZIModulator
from repro.photonics.devices import DENSE_RING_PROFILE, XIAO_2013


class TestMRRFirstGoldenNumbers:
    """Section V-A derives 591.8 mW pump and 13.22 dB ER — exactly."""

    def test_pump_power(self):
        design = mrr_first_design(order=2, wl_spacing_nm=1.0, probe_power_mw=1.0)
        assert design.pump_power_mw == pytest.approx(591.8, abs=0.5)

    def test_required_er(self):
        design = mrr_first_design(order=2, wl_spacing_nm=1.0, probe_power_mw=1.0)
        assert design.required_er_db == pytest.approx(13.22, abs=0.01)

    def test_method_label(self):
        design = mrr_first_design(order=2, wl_spacing_nm=1.0, probe_power_mw=1.0)
        assert design.method == "mrr_first"
        assert "591.8" in design.describe() or "591.9" in design.describe()


class TestMRRFirstProperties:
    @given(
        order=st.integers(min_value=1, max_value=6),
        spacing=st.floats(min_value=0.4, max_value=1.5),
    )
    @settings(max_examples=15, deadline=None)
    def test_filter_levels_land_on_channels(self, order, spacing):
        """The central invariant: the linear MZI sum plus the derived ER
        makes every detuning level align with its channel."""
        design = mrr_first_design(
            order=order, wl_spacing_nm=spacing, probe_power_mw=1.0
        )
        model = TransmissionModel(design.params)
        np.testing.assert_allclose(
            model.filter_resonances_nm(),
            design.params.grid.wavelengths_nm,
            atol=1e-6,
        )

    def test_pump_grows_linearly_with_spacing(self):
        p1 = mrr_first_design(2, 0.5, probe_power_mw=1.0).pump_power_mw
        p2 = mrr_first_design(2, 1.0, probe_power_mw=1.0).pump_power_mw
        # pump = (n*s + guard)/(OTE*IL%): affine in s.
        slope = (p2 - p1) / 0.5
        expected_slope = 2.0 / (0.01 * 10 ** (-0.45))
        assert slope == pytest.approx(expected_slope, rel=1e-6)

    def test_probe_sized_to_target_ber(self):
        design = mrr_first_design(order=2, wl_spacing_nm=1.0, target_ber=1e-6)
        assert design.ber() == pytest.approx(1e-6, rel=1e-3)

    def test_profile_defaults_by_spacing(self):
        coarse = mrr_first_design(2, 1.0, probe_power_mw=1.0)
        dense = mrr_first_design(2, 0.2, probe_power_mw=1.0)
        assert "coarse" in coarse.params.ring_profile.name
        assert "dense" in dense.params.ring_profile.name

    def test_order_validation(self):
        with pytest.raises(ConfigurationError):
            mrr_first_design(order=0, wl_spacing_nm=1.0)


class TestMZIFirst:
    def test_xiao_operating_point(self):
        # Section V-B: Xiao device (IL 6.5 dB, ER 7.5 dB), 0.6 W pump,
        # BER 1e-6 -> probe power "would be 0.26 mW" (we match the
        # magnitude; the shape studies live in the fig6 experiment).
        design = mzi_first_design(order=2, mzi=XIAO_2013, pump_power_mw=600.0)
        assert design.probe_power_mw == pytest.approx(0.26, abs=0.06)

    def test_swing_partitioned_into_guard_and_channels(self):
        design = mzi_first_design(order=2, mzi=XIAO_2013, pump_power_mw=600.0)
        grid = design.params.grid
        swing = 600.0 * 0.01 * XIAO_2013.il_fraction
        assert grid.span_nm == pytest.approx(swing, rel=1e-9)
        assert grid.guard_nm == pytest.approx(
            swing * XIAO_2013.er_fraction, rel=1e-9
        )

    def test_levels_land_on_channels_by_construction(self):
        design = mzi_first_design(order=3, mzi=XIAO_2013, pump_power_mw=600.0)
        model = TransmissionModel(design.params)
        np.testing.assert_allclose(
            model.filter_resonances_nm(),
            design.params.grid.wavelengths_nm,
            atol=1e-9,
        )

    def test_better_mzi_needs_less_probe_power(self):
        # Lower IL -> wider grid -> less crosstalk; higher ER -> more
        # margin. Both should reduce the required probe power.
        good = MZIModulator(insertion_loss_db=3.0, extinction_ratio_db=7.5)
        bad = MZIModulator(insertion_loss_db=7.4, extinction_ratio_db=4.0)
        p_good = mzi_first_design(
            2, good, 600.0, ring_profile=DENSE_RING_PROFILE
        ).probe_power_mw
        p_bad = mzi_first_design(
            2, bad, 600.0, ring_profile=DENSE_RING_PROFILE
        ).probe_power_mw
        assert p_good < p_bad

    def test_roundtrip_with_mrr_first(self):
        """MZI-first fed with MRR-first's derived device reproduces the
        MRR-first grid."""
        mrr = mrr_first_design(order=2, wl_spacing_nm=1.0, probe_power_mw=1.0)
        mzi = mzi_first_design(
            order=2,
            mzi=mrr.params.mzi,
            pump_power_mw=mrr.pump_power_mw,
            lambda_ref_nm=mrr.params.lambda_ref_nm,
            probe_power_mw=1.0,
        )
        np.testing.assert_allclose(
            mzi.params.grid.wavelengths_nm,
            mrr.params.grid.wavelengths_nm,
            atol=1e-6,
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mzi_first_design(order=0, mzi=XIAO_2013, pump_power_mw=600.0)
        with pytest.raises(ConfigurationError):
            mzi_first_design(order=2, mzi=XIAO_2013, pump_power_mw=0.0)

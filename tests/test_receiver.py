"""Tests for the optical receiver."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.photonics import Photodetector
from repro.simulation.receiver import OpticalReceiver


@pytest.fixture
def detector() -> Photodetector:
    return Photodetector(responsivity_a_per_w=1.0, noise_current_a=8.43e-6)


class TestConstruction:
    def test_from_power_bands(self, detector):
        receiver = OpticalReceiver.from_power_bands(detector, 0.099, 0.477)
        assert receiver.threshold_a == pytest.approx(
            0.5 * (0.099 + 0.477) * 1e-3
        )

    def test_band_ordering_enforced(self, detector):
        with pytest.raises(ConfigurationError):
            OpticalReceiver.from_power_bands(detector, 0.5, 0.1)

    def test_threshold_validation(self, detector):
        with pytest.raises(ConfigurationError):
            OpticalReceiver(detector, threshold_a=0.0)

    def test_detector_type_check(self):
        with pytest.raises(ConfigurationError):
            OpticalReceiver("detector", threshold_a=1e-4)


class TestDecision:
    def test_noiseless_slicing(self, detector):
        receiver = OpticalReceiver.from_power_bands(detector, 0.099, 0.477)
        powers = np.array([0.48, 0.095, 0.477, 0.099])
        decision = receiver.decide(powers)
        assert decision.bits.bits.tolist() == [1, 0, 1, 0]
        assert decision.probability == pytest.approx(0.5)

    def test_noisy_slicing_statistics(self, detector, rng):
        # Paper bands give SNR ~45: essentially error-free at this noise.
        receiver = OpticalReceiver.from_power_bands(detector, 0.099, 0.477)
        powers = np.where(rng.random(20000) < 0.3, 0.477, 0.099)
        decision = receiver.decide(powers, rng=rng)
        expected = np.mean(powers > 0.2)
        assert decision.probability == pytest.approx(expected, abs=0.01)

    def test_marginal_snr_produces_errors(self, rng):
        noisy_detector = Photodetector(
            responsivity_a_per_w=1.0, noise_current_a=2e-4
        )
        receiver = OpticalReceiver.from_power_bands(noisy_detector, 0.099, 0.477)
        powers = np.full(20000, 0.477)
        decision = receiver.decide(powers, rng=rng)
        assert decision.probability < 1.0  # some ones flipped to zero

    def test_input_validation(self, detector):
        receiver = OpticalReceiver.from_power_bands(detector, 0.099, 0.477)
        with pytest.raises(ConfigurationError):
            receiver.decide(np.array([]))
        with pytest.raises(ConfigurationError):
            receiver.decide(np.array([-1.0]))
        with pytest.raises(ConfigurationError):
            receiver.decide(np.zeros((2, 2)))

"""Tests for the TPA tuning model (paper Eq. 4) and the linearized OTE."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError, PhysicalModelError
from repro.photonics import OpticalTuningEfficiency, effective_index, tpa_wavelength_shift_nm


class TestEffectiveIndex:
    def test_linear_in_power(self):
        n = effective_index(2.4, 1e-17, np.array([0.0, 1.0, 2.0]), 1e-13)
        assert n[0] == pytest.approx(2.4)
        assert n[2] - n[1] == pytest.approx(n[1] - n[0])

    def test_rejects_negative_power(self):
        with pytest.raises(ConfigurationError):
            effective_index(2.4, 1e-17, -1.0, 1e-13)

    def test_rejects_bad_cross_section(self):
        with pytest.raises(ConfigurationError):
            effective_index(2.4, 1e-17, 1.0, 0.0)


class TestTpaShift:
    def test_shift_scales_with_power(self):
        s1 = float(tpa_wavelength_shift_nm(1550.0, 4.3, 1e-17, 1.0, 1e-13))
        s2 = float(tpa_wavelength_shift_nm(1550.0, 4.3, 1e-17, 2.0, 1e-13))
        assert s2 == pytest.approx(2 * s1)

    def test_physical_consistency_with_eq4(self):
        # d_lambda / lambda = d_n / n_g
        wavelength, n_g, n2, power, area = 1550.0, 4.3, 1e-17, 5.0, 1e-13
        delta_n = float(effective_index(2.4, n2, power, area)) - 2.4
        shift = float(tpa_wavelength_shift_nm(wavelength, n_g, n2, power, area))
        assert shift / wavelength == pytest.approx(delta_n / n_g)


class TestOTE:
    def test_paper_value(self):
        # Van et al. [14]: 0.1 nm shift for 10 mW pump.
        ote = OpticalTuningEfficiency()
        assert ote.shift_nm(10.0) == pytest.approx(0.1)

    def test_inverse(self):
        ote = OpticalTuningEfficiency(nm_per_mw=0.01)
        assert ote.required_power_mw(2.1) == pytest.approx(210.0)

    @given(power=st.floats(min_value=0.0, max_value=1000.0))
    def test_roundtrip(self, power):
        ote = OpticalTuningEfficiency(nm_per_mw=0.013)
        assert ote.required_power_mw(ote.shift_nm(power)) == pytest.approx(
            power, abs=1e-9
        )

    def test_array_support(self):
        ote = OpticalTuningEfficiency(nm_per_mw=0.01)
        shifts = ote.shift_nm(np.array([0.0, 10.0, 100.0]))
        np.testing.assert_allclose(shifts, [0.0, 0.1, 1.0])

    def test_saturation_bound(self):
        ote = OpticalTuningEfficiency(nm_per_mw=0.01, max_shift_nm=1.0)
        with pytest.raises(PhysicalModelError):
            ote.shift_nm(200.0)
        with pytest.raises(PhysicalModelError):
            ote.required_power_mw(2.0)

    def test_rejects_negative(self):
        ote = OpticalTuningEfficiency(nm_per_mw=0.01)
        with pytest.raises(ConfigurationError):
            ote.shift_nm(-1.0)
        with pytest.raises(ConfigurationError):
            ote.required_power_mw(-1.0)

    def test_from_physics_matches_direct_shift(self):
        ote = OpticalTuningEfficiency.from_physics(
            wavelength_nm=1550.0,
            group_index=4.3,
            n2_m2_per_w=1e-17,
            cross_section_m2=1e-13,
        )
        direct = float(
            tpa_wavelength_shift_nm(1550.0, 4.3, 1e-17, 10e-3, 1e-13)
        )
        assert ote.shift_nm(10.0) == pytest.approx(direct)

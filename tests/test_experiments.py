"""Tests for the experiment harness: every paper artifact regenerates.

These are the acceptance tests of the reproduction: each experiment must
run, produce rows, and land within the documented tolerance of the
paper's quoted values.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import list_experiments, run_experiment
from repro.experiments.registry import ExperimentResult


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig5a",
            "fig5b",
            "fig5c",
            "pump",
            "fig6a",
            "fig6b",
            "fig6c",
            "fig7a",
            "fig7b",
            "headline",
            "gamma",
            "params",
        }
        assert expected.issubset(set(list_experiments()))

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    @pytest.mark.parametrize("name", ["fig5a", "fig5b", "fig5c", "pump", "params"])
    def test_fast_experiments_run_and_render(self, name):
        result = run_experiment(name)
        assert isinstance(result, ExperimentResult)
        assert result.rows
        text = result.to_text()
        assert result.title in text


class TestFig5Golden:
    def test_fig5a_values(self):
        rows = {r["signal"]: r["total_transmission"] for r in run_experiment("fig5a").rows}
        assert rows["lambda_2"] == pytest.approx(0.091, rel=0.05)
        assert rows["lambda_1"] == pytest.approx(0.004, rel=0.15)
        assert rows["lambda_0"] == pytest.approx(0.0002, rel=0.25)
        assert rows["received (mW)"] == pytest.approx(0.0952, rel=0.05)

    def test_fig5b_values(self):
        rows = {r["signal"]: r["total_transmission"] for r in run_experiment("fig5b").rows}
        assert rows["lambda_0"] == pytest.approx(0.476, rel=0.05)
        assert rows["received (mW)"] == pytest.approx(0.482, rel=0.05)

    def test_fig5c_has_full_table(self):
        result = run_experiment("fig5c")
        data_rows = [r for r in result.rows if r["level(x ones)"] != ""]
        assert len(data_rows) == 24  # 8 patterns x 3 levels

    def test_pump_exact(self):
        rows = {r["quantity"]: r["model"] for r in run_experiment("pump").rows}
        assert rows["pump power (mW)"] == pytest.approx(591.8, abs=0.5)
        assert rows["required MZI ER (dB)"] == pytest.approx(13.22, abs=0.01)


class TestFig6:
    def test_fig6a_monotone_trends(self):
        result = run_experiment("fig6a")
        # Drop the appended off-grid Xiao marker row before rebuilding
        # the rectangular grid.
        rows = [r for r in result.rows[:-1] if np.isfinite(r["probe_mw"])]
        by_point = {(r["il_db"], r["er_db"]): r["probe_mw"] for r in rows}
        ils = sorted({k[0] for k in by_point})
        ers = sorted({k[1] for k in by_point})
        # Probe power rises with IL at fixed ER...
        mid_er = ers[len(ers) // 2]
        series = [by_point[(il, mid_er)] for il in ils]
        assert series == sorted(series)
        # ...and falls with ER at fixed IL.
        mid_il = ils[len(ils) // 2]
        series = [by_point[(mid_il, er)] for er in ers]
        assert series == sorted(series, reverse=True)

    def test_fig6a_xiao_magnitude(self):
        result = run_experiment("fig6a")
        xiao = [
            r for r in result.rows if r["il_db"] == 6.5 and r["er_db"] == 7.5
        ]
        assert xiao
        # Paper: 0.26 mW.  With the receiver constants calibrated to the
        # Fig. 7 energy targets the model lands at ~0.14 mW — same order
        # of magnitude, factor <2 (documented in EXPERIMENTS.md).
        assert 0.26 / 2.5 < xiao[-1]["probe_mw"] < 0.26 * 2.5

    def test_fig6b_half_power(self):
        result = run_experiment("fig6b")
        rel = {r["target_ber"]: r["relative_to_1e-6"] for r in result.rows}
        assert rel[1e-6] == pytest.approx(1.0)
        assert rel[1e-2] == pytest.approx(0.49, abs=0.03)

    def test_fig6c_lists_four_devices(self):
        result = run_experiment("fig6c")
        assert len(result.rows) == 4
        assert all(np.isfinite(r["probe_mw"]) for r in result.rows)
        assert all(0.0 < r["probe_mw"] < 0.5 for r in result.rows)


class TestFig7AndHeadline:
    def test_fig7a_optimum_order_independent(self):
        result = run_experiment("fig7a")
        assert "order-independent" in result.notes
        orders = {r["order"] for r in result.rows}
        assert orders == {2, 4, 6}

    def test_fig7b_saving(self):
        result = run_experiment("fig7b")
        savings = [r["saving_%"] for r in result.rows]
        assert np.mean(savings) == pytest.approx(76.6, abs=3.0)
        assert [r["order"] for r in result.rows] == [2, 4, 8, 12, 16]

    def test_headline_energy(self):
        result = run_experiment("headline")
        total = [
            r for r in result.rows if r["quantity"] == "total energy (pJ/bit)"
        ][0]
        assert total["model"] == pytest.approx(20.1, abs=0.5)

    def test_gamma_speedup(self):
        result = run_experiment("gamma")
        speedup = [
            r for r in result.rows if r["quantity"] == "speedup vs 100 MHz ReSC"
        ][0]
        assert speedup["model"] == pytest.approx(10.0)


class TestCLI:
    def test_list_mode(self, capsys):
        from repro.experiments.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig5a" in out

    def test_run_and_csv(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["pump", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "pump.csv").exists()
        out = capsys.readouterr().out
        assert "591" in out

    def test_unknown_experiment_sets_status(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["nope"]) == 1

"""Tests for the batched vectorized evaluation engine.

The engine's contract is *bit-for-bit equivalence*: a
``simulate_batch`` pass must reproduce exactly what a per-evaluation
loop produces under a shared rng, for every SNG kind and circuit order —
and both must match the pre-engine per-bit pipeline for fixed seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.design import mrr_first_design
from repro.core.link_budget import received_power_table
from repro.core.params import paper_section5a_parameters
from repro.errors import ConfigurationError
from repro.simulation.engine import BatchEvaluation, simulate_batch
from repro.simulation.functional import simulate_evaluation, simulate_sweep
from repro.simulation.receiver import OpticalReceiver
from repro.stochastic import LFSR
from repro.stochastic.bernstein import BernsteinPolynomial
from repro.stochastic.bitstream import Bitstream
from repro.stochastic.elements import adder_select
from repro.stochastic.lfsr import lfsr_state_windows, lfsr_uniform_windows
from repro.stochastic.sng import (
    SNG_KINDS,
    ChaoticLaserBitSource,
    ComparatorSNG,
    CounterSNG,
    SobolLikeSNG,
    make_independent_sngs,
)

ALL_KINDS = list(SNG_KINDS)


def _circuit(order: int) -> OpticalStochasticCircuit:
    if order == 2:
        return OpticalStochasticCircuit(
            paper_section5a_parameters(),
            BernsteinPolynomial([0.25, 0.625, 0.375]),
        )
    design = mrr_first_design(
        order=order, wl_spacing_nm=1.0, probe_power_mw=1.0
    )
    coefficients = np.linspace(0.2, 0.8, order + 1)
    return OpticalStochasticCircuit.from_design(
        design, BernsteinPolynomial(coefficients)
    )


class TestBatchScalarEquivalence:
    """generate_batch / simulate_batch == the scalar paths, bit for bit."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_batch_matches_scalar_loop(self, kind, order):
        circuit = _circuit(order)
        xs = np.linspace(0.0, 1.0, 7)
        rng_loop = np.random.default_rng(1234)
        loop = [
            simulate_evaluation(
                circuit, float(x), length=256, rng=rng_loop, sng_kind=kind
            )
            for x in xs
        ]
        rng_batch = np.random.default_rng(1234)
        batch = simulate_batch(
            circuit, xs, length=256, rng=rng_batch, sng_kind=kind
        )
        assert np.array_equal(
            np.asarray([e.value for e in loop]), batch.values
        )
        assert np.array_equal(
            np.stack([e.output_bits.bits for e in loop]), batch.output_bits
        )
        assert np.array_equal(
            np.stack([e.ideal_bits.bits for e in loop]), batch.ideal_bits
        )
        assert np.array_equal(
            np.stack([e.select_levels for e in loop]), batch.select_levels
        )

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_noiseless_batch_matches_scalar_loop(self, kind):
        circuit = _circuit(2)
        xs = [0.0, 0.3, 1.0]
        loop = [
            simulate_evaluation(
                circuit, x, length=128, noisy=False, sng_kind=kind, base_seed=9
            ).value
            for x in xs
        ]
        batch = simulate_batch(
            circuit, xs, length=128, noisy=False, sng_kind=kind, base_seed=9
        )
        assert np.array_equal(np.asarray(loop), batch.values)

    def test_sweep_is_thin_wrapper(self):
        circuit = _circuit(2)
        xs = [0.1, 0.5, 0.9]
        a = simulate_sweep(circuit, xs, length=256, rng=np.random.default_rng(5))
        b = simulate_batch(
            circuit, xs, length=256, rng=np.random.default_rng(5)
        ).values
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "make",
        [
            lambda: ComparatorSNG(width=12, seed=77),
            lambda: CounterSNG(),
            lambda: SobolLikeSNG(bits=16, bit_offset=123),
            lambda: ChaoticLaserBitSource(seed_intensity=0.2, warmup=70),
        ],
        ids=["lfsr", "counter", "sobol", "chaotic"],
    )
    @given(value=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=10, deadline=None)
    def test_generate_batch_rows_match_fresh_scalar(self, make, value):
        values = np.asarray([0.0, value, 1.0])
        batch = make().generate_batch(values, 200)
        reference = np.stack(
            [make().generate(float(v), 200).bits for v in values]
        )
        assert batch.dtype == np.uint8
        assert np.array_equal(batch, reference)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_factory_sngs_match_batch_uniforms(self, kind):
        """make_independent_sngs and the engine derive identical streams."""
        sngs = make_independent_sngs(3, kind=kind, base_seed=41)
        for sng in sngs:
            scalar = sng.generate(0.37, 150).bits
            batched = sng.generate_batch([0.37], 150)[0]
            assert np.array_equal(scalar, batched)


class TestLegacyPipelineEquivalence:
    """The vectorized pass reproduces the pre-engine per-bit pipeline."""

    def test_bit_exact_against_per_bit_reference(self):
        circuit = _circuit(2)
        length = 300
        x = 0.55
        base_seed = 0xACE1
        params = circuit.params
        order = params.order

        # The pre-engine pipeline: scalar SNGs with per-bit LFSR
        # stepping, per-evaluation pattern/table lookup, scalar receiver.
        rng = np.random.default_rng(99)
        data_sngs = make_independent_sngs(order, base_seed=base_seed)
        coeff_sngs = make_independent_sngs(
            order + 1, base_seed=base_seed + 0x9E3779B9
        )

        def stepped_stream(sng, value):
            register = LFSR(sng.width, sng.seed, sng._lfsr.taps)
            samples = np.asarray(
                [register.step() for _ in range(length)], dtype=float
            ) / float(1 << sng.width)
            return Bitstream((samples < value).astype(np.uint8))

        data_streams = [stepped_stream(s, x) for s in data_sngs]
        coeff_streams = [
            stepped_stream(s, float(b))
            for s, b in zip(coeff_sngs, circuit.polynomial.coefficients)
        ]
        levels = adder_select(data_streams)
        coeff_matrix = np.stack([s.bits for s in coeff_streams])
        pattern_index = np.zeros(length, dtype=np.int64)
        for channel in range(order + 1):
            pattern_index |= coeff_matrix[channel].astype(np.int64) << channel
        budget = received_power_table(params)
        powers = budget.power_mw[pattern_index, levels]
        receiver = OpticalReceiver.from_power_bands(
            params.detector,
            zero_level_mw=budget.zero_band_mw[1],
            one_level_mw=budget.one_band_mw[0],
        )
        legacy_bits = receiver.decide(powers, rng=rng).bits.bits

        batch = simulate_batch(
            circuit,
            [x],
            length=length,
            rng=np.random.default_rng(99),
            base_seed=base_seed,
        )
        assert np.array_equal(batch.received_power_mw[0], powers)
        assert np.array_equal(batch.output_bits[0], legacy_bits)


class TestLfsrWindows:
    def test_windows_match_stepping_across_period_wrap(self):
        width = 8
        for seed in (1, 33, 200):
            window = lfsr_state_windows(seed, 300, width)
            register = LFSR(width=width, seed=seed)
            stepped = np.asarray(
                [register.step() for _ in range(300)], dtype=np.uint32
            )
            assert np.array_equal(window, stepped)

    def test_uniform_windows_match_uniform(self):
        seeds = np.asarray([[1, 5], [9, 1023]])
        windows = lfsr_uniform_windows(seeds, 64, 10)
        assert windows.shape == (2, 2, 64)
        for i in range(2):
            for j in range(2):
                reference = LFSR(width=10, seed=int(seeds[i, j])).uniform(64)
                assert np.array_equal(windows[i, j], reference)

    def test_rejects_bad_seeds(self):
        with pytest.raises(ConfigurationError):
            lfsr_state_windows([0], 8, 8)
        with pytest.raises(ConfigurationError):
            lfsr_state_windows([1 << 8], 8, 8)

    def test_non_injective_taps_fall_back_to_stepping(self):
        # Tap sets without the width tap make the update map
        # non-injective: the orbit of state 1 is rho-shaped (a tail into
        # a loop that never revisits 1) and must NOT be served from a
        # wrap-around table.  states() has to match pure stepping.
        fast = LFSR(width=4, seed=3, taps=(2, 1)).states(18)
        register = LFSR(width=4, seed=3, taps=(2, 1))
        stepped = np.asarray(
            [register.step() for _ in range(18)], dtype=np.uint32
        )
        assert np.array_equal(fast, stepped)
        with pytest.raises(ConfigurationError):
            lfsr_state_windows([3], 18, 4, taps=(2, 1))

    def test_short_cycle_taps_stay_exact_across_wrap(self):
        # Non-maximal but invertible taps (width tap included) close a
        # shorter cycle; table-backed windows must still match stepping
        # past the wrap point, and off-cycle seeds must be refused.
        taps = (4, 2)
        fast = LFSR(width=4, seed=1, taps=taps).states(40)
        register = LFSR(width=4, seed=1, taps=taps)
        stepped = np.asarray(
            [register.step() for _ in range(40)], dtype=np.uint32
        )
        assert np.array_equal(fast, stepped)


class TestSeedDerivation:
    """Satellite: sweep points no longer share identical streams."""

    def test_rows_decorrelate_under_rng_seeds(self):
        circuit = _circuit(2)
        batch = simulate_batch(
            circuit,
            [0.5, 0.5, 0.5],
            length=512,
            rng=np.random.default_rng(3),
            noisy=False,
        )
        assert not np.array_equal(batch.output_bits[0], batch.output_bits[1])
        assert not np.array_equal(batch.output_bits[1], batch.output_bits[2])

    def test_fixed_base_seed_restores_identical_streams(self):
        circuit = _circuit(2)
        batch = simulate_batch(
            circuit, [0.5, 0.5], length=512, noisy=False, base_seed=77
        )
        assert np.array_equal(batch.output_bits[0], batch.output_bits[1])

    def test_repeatable_for_same_rng_seed(self):
        circuit = _circuit(2)
        a = simulate_batch(
            circuit, [0.25, 0.75], length=256, rng=np.random.default_rng(11)
        )
        b = simulate_batch(
            circuit, [0.25, 0.75], length=256, rng=np.random.default_rng(11)
        )
        assert np.array_equal(a.output_bits, b.output_bits)


class TestBatchEvaluationContainer:
    def test_per_row_statistics(self):
        circuit = _circuit(2)
        batch = simulate_batch(circuit, np.linspace(0, 1, 5), length=2048)
        assert isinstance(batch, BatchEvaluation)
        assert batch.batch_size == 5
        assert batch.values.shape == (5,)
        assert batch.output_bits.shape == (5, 2048)
        assert np.all(batch.absolute_errors >= 0.0)
        assert np.all((batch.transmission_ber >= 0) & (batch.transmission_ber <= 1))
        assert batch.mean_absolute_error == pytest.approx(
            float(np.mean(batch.absolute_errors))
        )

    def test_converges_to_bernstein_curve(self):
        circuit = _circuit(2)
        batch = simulate_batch(
            circuit,
            np.linspace(0, 1, 9),
            length=16384,
            rng=np.random.default_rng(8),
        )
        assert batch.mean_absolute_error < 0.02

    def test_validation(self):
        circuit = _circuit(2)
        with pytest.raises(ConfigurationError):
            simulate_batch(circuit, [])
        with pytest.raises(ConfigurationError):
            simulate_batch(circuit, [1.5])
        with pytest.raises(ConfigurationError):
            simulate_batch(circuit, [0.5], length=0)
        with pytest.raises(ConfigurationError):
            simulate_batch(circuit, [0.5], sng_kind="quantum")
        with pytest.raises(ConfigurationError):
            simulate_batch("circuit", [0.5])

    def test_nan_inputs_rejected(self):
        # NaN survives any()/< checks; the batch path must reject it
        # just like the scalar path does.
        circuit = _circuit(2)
        with pytest.raises(ConfigurationError):
            simulate_batch(circuit, [0.5, np.nan])
        with pytest.raises(ConfigurationError):
            simulate_evaluation(circuit, float("nan"))
        with pytest.raises(ConfigurationError):
            ComparatorSNG().generate_batch([np.nan], 16)
        with pytest.raises(ConfigurationError):
            CounterSNG().generate_batch([np.nan], 16)

    def test_wide_registers_take_stepping_fallback(self):
        # Widths beyond the cycle-cache limit (21-24 are in the tap
        # table) must still evaluate, bit-exact with the scalar loop.
        circuit = _circuit(2)
        xs = [0.3, 0.7]
        loop = [
            simulate_evaluation(
                circuit, x, length=64, noisy=False, base_seed=5, sng_width=22
            ).value
            for x in xs
        ]
        batch = simulate_batch(
            circuit, xs, length=64, noisy=False, base_seed=5, sng_width=22
        )
        assert np.array_equal(np.asarray(loop), batch.values)


class TestLfsrValidationOrder:
    """Satellite: width is validated before the tap-table lookup."""

    def test_width_one_reports_width_error(self):
        with pytest.raises(ConfigurationError, match="width must be >= 2"):
            LFSR(width=1)

    def test_unknown_width_still_reports_missing_taps(self):
        with pytest.raises(ConfigurationError, match="no built-in maximal taps"):
            LFSR(width=40)


class TestCircuitBatchFacade:
    def test_evaluate_batch_delegates_to_engine(self):
        circuit = _circuit(2)
        a = circuit.evaluate_batch(
            [0.2, 0.8], length=256, rng=np.random.default_rng(2)
        )
        b = simulate_batch(
            circuit, [0.2, 0.8], length=256, rng=np.random.default_rng(2)
        )
        assert np.array_equal(a.output_bits, b.output_bits)

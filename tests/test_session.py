"""Tests for the declarative session API (``repro.session``)."""

import numpy as np
import pytest

from repro.core.circuit import OpticalStochasticCircuit
from repro.core.params import paper_section5a_parameters
from repro.errors import ConfigurationError
from repro.exploration.tradeoffs import measured_accuracy_frontier
from repro.experiments import list_experiments, run_experiment
from repro.experiments.registry import experiment_config_parameters
from repro.session import DEPRECATED_WRAPPERS, EvalSpec, Evaluator
from repro.simulation.montecarlo import run_monte_carlo
from repro.simulation.runtime import (
    ChunkedEvaluation,
    EvaluationCache,
    RuntimeConfig,
    _cached_simulate_batch,
    run_batch,
    simulate_chunked,
)
from repro.stochastic.bernstein import BernsteinPolynomial
from repro.stochastic.image import radial_gradient
from repro.stochastic.sng import SNG_KINDS


@pytest.fixture(scope="module")
def circuit():
    return OpticalStochasticCircuit(
        paper_section5a_parameters(),
        BernsteinPolynomial([0.25, 0.625, 0.375]),
    )


def _assert_batches_identical(a, b):
    assert np.array_equal(a.values, b.values)
    assert np.array_equal(a.output_bits, b.output_bits)
    assert np.array_equal(a.ideal_bits, b.ideal_bits)
    assert np.array_equal(a.received_power_mw, b.received_power_mw)


class TestEvalSpec:
    def test_defaults(self):
        spec = EvalSpec()
        assert spec.length == 1024
        assert spec.sng_kind == "lfsr"
        assert spec.sng_width == 16
        assert spec.noisy is True
        assert spec.base_seed is None
        assert not spec.deterministic

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EvalSpec(length=0)
        with pytest.raises(ConfigurationError):
            EvalSpec(sng_kind="quantum")
        with pytest.raises(ConfigurationError):
            EvalSpec(base_seed=-1)
        with pytest.raises(ConfigurationError):
            EvalSpec(sng_kind="sobol", sng_width=32)
        with pytest.raises(ConfigurationError):
            EvalSpec(sng_width=0)

    def test_rejects_non_integral_fields(self):
        # Misconfiguration must fail at construction, not as a numpy
        # TypeError deep inside the first evaluate() call.
        with pytest.raises(ConfigurationError, match="integer"):
            EvalSpec(length=10.5)
        with pytest.raises(ConfigurationError, match="integer"):
            EvalSpec(length=2**14.0)
        with pytest.raises(ConfigurationError, match="integer"):
            EvalSpec(sng_width=12.0)
        with pytest.raises(ConfigurationError, match="integer"):
            EvalSpec(base_seed=1.5)
        # numpy integers normalize to plain ints.
        spec = EvalSpec(length=np.int64(2048), base_seed=np.int32(7))
        assert spec.length == 2048 and isinstance(spec.length, int)
        assert spec.base_seed == 7 and isinstance(spec.base_seed, int)

    def test_replace_revalidates(self):
        spec = EvalSpec(length=2048)
        longer = spec.replace(length=4096)
        assert longer.length == 4096 and spec.length == 2048
        with pytest.raises(ConfigurationError):
            spec.replace(length=-1)

    def test_deterministic_policy(self):
        assert EvalSpec(base_seed=7).deterministic
        assert EvalSpec(sng_kind="counter", noisy=False).deterministic
        # A noisy unpinned counter still draws noise seeds from the rng.
        assert not EvalSpec(sng_kind="counter").deterministic
        assert not EvalSpec().deterministic


class TestEvaluatorConstruction:
    def test_rejects_non_circuit(self):
        with pytest.raises(ConfigurationError):
            Evaluator(object())

    def test_rejects_wrong_config_types(self, circuit):
        with pytest.raises(ConfigurationError):
            Evaluator(circuit, spec={"length": 64})
        with pytest.raises(ConfigurationError):
            Evaluator(circuit, runtime={"workers": 2})

    def test_cache_without_base_seed_fails_at_construction(self, circuit):
        with pytest.raises(ConfigurationError, match="base_seed"):
            Evaluator(circuit, EvalSpec(), RuntimeConfig(use_cache=True))
        # A pinned seed space makes the cache legal.
        Evaluator(
            circuit, EvalSpec(base_seed=7), RuntimeConfig(use_cache=True)
        )

    def test_with_options_and_with_runtime(self, circuit):
        evaluator = Evaluator(circuit, EvalSpec(length=128))
        longer = evaluator.with_options(length=512, sng_kind="sobol")
        assert longer.spec.length == 512
        assert longer.spec.sng_kind == "sobol"
        assert longer.circuit is evaluator.circuit
        threaded = evaluator.with_runtime(RuntimeConfig(backend="thread"))
        assert threaded.runtime.backend == "thread"
        assert threaded.spec is evaluator.spec

    def test_row_independent(self, circuit):
        assert Evaluator(
            circuit, EvalSpec(noisy=False, base_seed=7)
        ).row_independent
        assert Evaluator(
            circuit, EvalSpec(noisy=False, sng_kind="counter")
        ).row_independent
        assert not Evaluator(circuit, EvalSpec(base_seed=7)).row_independent
        assert not Evaluator(circuit, EvalSpec(noisy=False)).row_independent


class TestEvaluatorBitExactness:
    """Acceptance gate: session results == equivalent free-function calls."""

    @pytest.mark.parametrize("kind", SNG_KINDS)
    def test_evaluate_matches_run_batch_per_kind(self, circuit, kind):
        xs = np.linspace(0.0, 1.0, 5)
        session = Evaluator(circuit, EvalSpec(length=256, sng_kind=kind))
        a = session.evaluate(xs, rng=np.random.default_rng(11))
        b = run_batch(
            circuit,
            xs,
            length=256,
            sng_kind=kind,
            rng=np.random.default_rng(11),
        )
        _assert_batches_identical(a, b)

    @pytest.mark.parametrize("kind", SNG_KINDS)
    def test_workers_and_chunking_never_change_bits(self, circuit, kind):
        xs = np.linspace(0.0, 1.0, 6)
        spec = EvalSpec(length=256, sng_kind=kind)
        serial = Evaluator(circuit, spec).evaluate(
            xs, rng=np.random.default_rng(5)
        )
        sharded = Evaluator(
            circuit, spec, RuntimeConfig(workers=2)
        ).evaluate(xs, rng=np.random.default_rng(5))
        chunked = Evaluator(
            circuit, spec, RuntimeConfig(chunk_length=100)
        ).evaluate(xs, rng=np.random.default_rng(5))
        _assert_batches_identical(serial, sharded)
        assert isinstance(chunked, ChunkedEvaluation)
        assert np.array_equal(chunked.values, serial.values)
        assert np.array_equal(
            chunked.transmission_bit_errors, serial.transmission_bit_errors
        )

    def test_stream_matches_simulate_chunked(self, circuit):
        xs = [0.3, 0.7]
        session = Evaluator(circuit, EvalSpec(length=512))
        streamed = session.stream(
            xs, chunk_length=128, rng=np.random.default_rng(9)
        )
        direct = simulate_chunked(
            circuit,
            xs,
            length=512,
            chunk_length=128,
            rng=np.random.default_rng(9),
        )
        assert isinstance(streamed, ChunkedEvaluation)
        assert np.array_equal(streamed.ones_count, direct.ones_count)
        assert np.array_equal(
            streamed.transmission_bit_errors, direct.transmission_bit_errors
        )

    def test_stream_uses_bound_chunk_length(self, circuit):
        session = Evaluator(
            circuit, EvalSpec(length=512), RuntimeConfig(chunk_length=128)
        )
        result = session.stream([0.5], rng=np.random.default_rng(1))
        assert isinstance(result, ChunkedEvaluation)
        assert result.chunk_length == 128

    def test_cached_session_hits(self, circuit):
        cache = EvaluationCache()
        session = Evaluator(
            circuit,
            EvalSpec(length=64, base_seed=5),
            RuntimeConfig(cache=cache),
        )
        first = session.evaluate([0.5])
        second = session.evaluate([0.5])
        assert second is first
        assert cache.hits == 1


class TestEvaluatorWorkloads:
    def test_evaluate_one(self, circuit):
        session = Evaluator(circuit, EvalSpec(length=256, base_seed=3))
        value = session.evaluate_one(0.5)
        assert value == float(session.evaluate([0.5]).values[0])

    def test_sweep_routes_through_grid_sweep(self, circuit):
        xs = np.linspace(0.0, 1.0, 7)
        session = Evaluator(circuit, EvalSpec(length=128))
        result = session.sweep(xs, rng=np.random.default_rng(4))
        assert result.axes == ("x",)
        assert result.values.shape == (7,)
        reference = session.evaluate(xs, rng=np.random.default_rng(4))
        assert np.array_equal(result.values, reference.values)

    def test_sweep_metrics(self, circuit):
        session = Evaluator(circuit, EvalSpec(length=128, base_seed=2))
        errors = session.sweep([0.25, 0.75], metric="absolute_error")
        reference = session.evaluate([0.25, 0.75])
        assert np.array_equal(errors.values, reference.absolute_errors)
        with pytest.raises(ConfigurationError):
            session.sweep([0.5], metric="nonsense")

    def test_apply_kernel_is_deterministic_under_base_seed(self, circuit):
        image = radial_gradient(16)
        session = Evaluator(circuit, EvalSpec(length=128, base_seed=5))
        direct = session.apply_kernel(image, levels=16)
        again = session.apply_kernel(image, levels=16)
        assert np.array_equal(direct, again)
        assert direct.shape == image.shape

    def test_monte_carlo_matches_free_function(self, circuit):
        session = Evaluator(circuit)
        via_session = session.monte_carlo(
            samples=8, rng=np.random.default_rng(6)
        )
        direct = run_monte_carlo(
            circuit.params, samples=8, rng=np.random.default_rng(6)
        )
        assert np.array_equal(
            via_session.eye_openings_mw, direct.eye_openings_mw
        )

    def test_monte_carlo_takes_runtime_workers(self, circuit):
        serial = Evaluator(circuit).monte_carlo(
            samples=6, rng=np.random.default_rng(6)
        )
        pooled = Evaluator(
            circuit, runtime=RuntimeConfig(workers=2, backend="thread")
        ).monte_carlo(samples=6, rng=np.random.default_rng(6))
        assert np.array_equal(
            serial.eye_openings_mw, pooled.eye_openings_mw
        )

    def test_throughput_frontier_uses_circuit_bit_rate(self, circuit):
        session = Evaluator(circuit)
        frontier = session.throughput_frontier([1e-6, 1e-3])
        lengths = frontier["stream_length"]
        expected = lengths / circuit.params.bit_rate_hz
        assert np.allclose(frontier["evaluation_time_s"], expected)


class TestMeasuredFrontier:
    def test_longer_streams_reduce_error(self, circuit):
        session = Evaluator(circuit, EvalSpec(base_seed=5))
        frontier = measured_accuracy_frontier(
            session, [64, 4096], xs=np.linspace(0.1, 0.9, 8)
        )
        assert frontier["measured_mae"][1] < frontier["measured_mae"][0]
        assert frontier["predicted_rms_error"].shape == (2,)

    def test_validation(self, circuit):
        with pytest.raises(ConfigurationError):
            measured_accuracy_frontier(object(), [64])
        with pytest.raises(ConfigurationError):
            measured_accuracy_frontier(Evaluator(circuit), [])
        with pytest.raises(ConfigurationError):
            measured_accuracy_frontier(Evaluator(circuit), [0])


class TestDeprecatedWrappers:
    def test_registry_records_removal(self):
        # PR 6 removed both wrappers (deprecated in PR 3, past the
        # two-PR grace window); the registry stays as the migration
        # record, with the removal recorded per entry.
        assert DEPRECATED_WRAPPERS
        for entry in DEPRECATED_WRAPPERS.values():
            assert entry["removed"] is True
            assert "Evaluator" in entry["replacement"]
            assert "deprecated in PR" in entry["removal_note"]
            assert "removed in PR" in entry["removal_note"]

    def test_removed_wrappers_no_longer_resolve(self):
        import importlib

        for dotted in DEPRECATED_WRAPPERS:
            module_name, _, attribute = dotted.rpartition(".")
            module = importlib.import_module(module_name)
            assert not hasattr(module, attribute)

    def test_session_cache_shares_entries_with_runtime_impl(self, circuit):
        cache = EvaluationCache()
        direct = _cached_simulate_batch(
            circuit, [0.25, 0.75], length=64, base_seed=9, cache=cache
        )
        session = Evaluator(
            circuit,
            EvalSpec(length=64, base_seed=9),
            RuntimeConfig(cache=cache),
        )
        via_session = session.evaluate([0.25, 0.75])
        # Same key, same cache: the session call must *hit* the entry
        # the runtime implementation stored.
        assert via_session is direct
        assert cache.hits == 1


class TestRunExperimentConfig:
    def test_default_accuracy_covers_all_kinds(self):
        result = run_experiment("accuracy")
        assert [row["sng_kind"] for row in result.rows] == list(SNG_KINDS)

    def test_sng_kinds_focuses_the_study(self):
        result = run_experiment(
            "accuracy", spec=EvalSpec(length=256), sng_kinds=("sobol",)
        )
        assert len(result.rows) == 1
        assert result.rows[0]["sng_kind"] == "sobol"
        assert result.rows[0]["stream_length"] == 256
        # Focusing works even for the default family (the CLI's
        # --sng-kind lfsr), which a spec-based heuristic couldn't see.
        focused = run_experiment("accuracy", sng_kinds=("lfsr",))
        assert [row["sng_kind"] for row in focused.rows] == ["lfsr"]

    def test_sng_kinds_validated(self):
        with pytest.raises(ConfigurationError, match="sng_kinds"):
            run_experiment("accuracy", sng_kinds=("quantum",))
        with pytest.raises(ConfigurationError, match="sng_kinds"):
            run_experiment("accuracy", sng_kinds=())

    def test_template_spec_keeps_all_families(self):
        # A spec is a template (length/noise/seed policy); it must not
        # silently narrow the four-family comparison.
        result = run_experiment(
            "accuracy", spec=EvalSpec(length=128, noisy=False)
        )
        assert [row["sng_kind"] for row in result.rows] == list(SNG_KINDS)
        assert all(row["stream_length"] == 128 for row in result.rows)

    def test_runtime_never_changes_rows(self):
        serial = run_experiment("accuracy", spec=EvalSpec(length=128))
        pooled = run_experiment(
            "accuracy",
            spec=EvalSpec(length=128),
            runtime=RuntimeConfig(workers=2),
        )
        assert serial.rows == pooled.rows

    def test_unconfigurable_experiment_rejects_config(self):
        with pytest.raises(ConfigurationError, match="does not accept"):
            run_experiment("headline", spec=EvalSpec())
        with pytest.raises(ConfigurationError, match="does not accept"):
            run_experiment("headline", runtime=RuntimeConfig())

    def test_config_parameter_introspection(self):
        assert experiment_config_parameters("accuracy") == {
            "spec",
            "runtime",
            "sng_kinds",
        }
        assert experiment_config_parameters("headline") == frozenset()
        assert "accuracy" in [
            name
            for name in list_experiments()
            if experiment_config_parameters(name)
        ]


class TestRuntimeConfigValidation:
    def test_construction_knowable_misconfigurations(self):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(workers=-1)
        with pytest.raises(ConfigurationError):
            RuntimeConfig(cache="not-a-cache")

    def test_cache_requested_property(self):
        assert not RuntimeConfig().cache_requested
        assert RuntimeConfig(use_cache=True).cache_requested
        assert RuntimeConfig(cache=EvaluationCache()).cache_requested

    def test_run_batch_cache_misconfig_raises_on_chunked_path(self, circuit):
        # Used to silently ignore the cache request when chunking won.
        with pytest.raises(ConfigurationError, match="base_seed"):
            run_batch(
                circuit,
                [0.5],
                length=256,
                config=RuntimeConfig(use_cache=True, chunk_length=64),
            )

"""Tests for the vectorized fault & degradation engine (faultmodel).

The contract under test: a :class:`FaultSpec` names a *scenario*, and
the realized fault bits are a pure function of (spec, seed schedule,
absolute clock index) — so fault-injected evaluations are bit-for-bit
identical across kernels, worker counts, chunk lengths and transports,
and trajectory faults (drift ramps, laser decay) stitch exactly across
chunk boundaries.
"""

import numpy as np
import pytest

import repro
from repro.errors import ConfigurationError
from repro.session import EvalSpec, Evaluator
from repro.simulation.engine import derive_seed_schedule, simulate_batch
from repro.simulation.faultmodel import (
    FAULT_PROBABILITY_BITS,
    FaultSpec,
    PackedFaultChannel,
    packed_bernoulli_words,
    _quantized_thresholds,
    _threshold_planes,
)


def _planes(probability, clocks):
    return _threshold_planes(
        _quantized_thresholds(np.full(clocks, probability))
    )
from repro.simulation.kernels import (
    numba_available,
    pack_bits,
    popcount,
    unpack_bits,
)
from repro.simulation.montecarlo import fault_frontier
from repro.simulation.runtime import EvaluationCache, RuntimeConfig, run_batch

LENGTH = 1000


@pytest.fixture(scope="module")
def circuit():
    return repro.OpticalStochasticCircuit(
        repro.paper_section5a_parameters(),
        repro.BernsteinPolynomial([0.25, 0.625, 0.375]),
    )


COMPOSITE = FaultSpec(
    flip_probability=0.05,
    shift_clocks=7,
    stuck_channel=0,
    stuck_value=1,
    drift_ramp_per_mclock=0.5,
    decay_tau_clocks=100_000,
)


class TestFaultSpec:
    def test_null_spec_is_null(self):
        spec = FaultSpec()
        assert spec.is_null
        assert not spec.needs_seeds
        assert not spec.has_stream_faults

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(flip_probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(flip_probability=-0.1)
        with pytest.raises(ConfigurationError):
            FaultSpec(shift_clocks=-1)
        with pytest.raises(ConfigurationError):
            FaultSpec(stuck_value=2, stuck_channel=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(decay_tau_clocks=0)
        with pytest.raises(ConfigurationError):
            FaultSpec(drift_ramp_per_mclock=-0.5)

    def test_stuck_channel_validated_against_order(self, circuit):
        fault = FaultSpec(stuck_channel=5, stuck_value=1)
        with pytest.raises(ConfigurationError):
            run_batch(
                circuit, [0.5], length=64, base_seed=1, fault=fault
            )

    def test_replace_returns_new_spec(self):
        spec = FaultSpec(flip_probability=0.1)
        other = spec.replace(shift_clocks=4)
        assert other.flip_probability == 0.1
        assert other.shift_clocks == 4
        assert spec.shift_clocks == 0

    def test_hashable_value_object(self):
        assert hash(FaultSpec(flip_probability=0.1)) == hash(
            FaultSpec(flip_probability=0.1)
        )

    def test_stochastic_fault_without_seed_protocol_raises(self, circuit):
        with pytest.raises(ConfigurationError):
            simulate_batch(
                circuit,
                [0.5],
                length=64,
                rng=np.random.default_rng(0),
                fault=FaultSpec(flip_probability=0.1),
            )


class TestBernoulliMasks:
    def test_mask_rate_tracks_probability(self):
        seeds = np.arange(64, dtype=np.uint64) + np.uint64(1)
        words = 4096
        for p in (0.0, 0.25, 0.5, 0.9, 1.0):
            mask = packed_bernoulli_words(seeds, 0, _planes(p, 64 * words))
            rate = popcount(mask).sum() / (seeds.size * words * 64)
            assert rate == pytest.approx(
                round(p * (1 << FAULT_PROBABILITY_BITS))
                / (1 << FAULT_PROBABILITY_BITS),
                abs=2e-3,
            )

    def test_masks_are_absolutely_addressed(self):
        seeds = np.array([123, 456], dtype=np.uint64)
        whole = packed_bernoulli_words(seeds, 0, _planes(0.3, 64 * 8))
        tail = packed_bernoulli_words(seeds, 3, _planes(0.3, 64 * 5))
        assert np.array_equal(whole[:, 3:], tail)


class TestChannelSemantics:
    def test_shift_delays_the_stream(self, circuit):
        delay = 5
        clean = run_batch(circuit, [0.3, 0.7], length=LENGTH, base_seed=11)
        shifted = run_batch(
            circuit,
            [0.3, 0.7],
            length=LENGTH,
            base_seed=11,
            fault=FaultSpec(shift_clocks=delay),
        )
        assert np.array_equal(
            shifted.output_bits[:, delay:], clean.output_bits[:, :-delay]
        )
        assert not shifted.output_bits[:, :delay].any()

    def test_decay_only_erases_ones(self, circuit):
        clean = run_batch(circuit, [0.8], length=LENGTH, base_seed=11)
        decayed = run_batch(
            circuit,
            [0.8],
            length=LENGTH,
            base_seed=11,
            fault=FaultSpec(decay_tau_clocks=200),
        )
        assert (decayed.output_bits <= clean.output_bits).all()
        assert decayed.output_bits.sum() < clean.output_bits.sum()

    def test_stuck_channel_biases_the_value(self, circuit):
        clean = run_batch(circuit, [0.5], length=4096, base_seed=11)
        stuck = run_batch(
            circuit,
            [0.5],
            length=4096,
            base_seed=11,
            fault=FaultSpec(stuck_channel=0, stuck_value=1),
        )
        assert stuck.values[0] != clean.values[0]
        # BER counts observed vs the *faulty circuit's* ideal decisions:
        # pinning a select MZI changes both sides identically.
        assert np.asarray(stuck.transmission_ber).sum() == 0.0

    def test_apply_bits_matches_apply_words(self):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, size=(3, 500), dtype=np.uint8)
        spec = FaultSpec(flip_probability=0.1, shift_clocks=3)
        seeds = np.arange(3, dtype=np.int64) + 40
        via_words = unpack_bits(
            PackedFaultChannel(spec, seeds, 500).apply_words(
                pack_bits(bits), 0, 500
            ),
            500,
        )
        via_bits = PackedFaultChannel(spec, seeds, 500).apply_bits(bits, 0)
        assert np.array_equal(via_words, via_bits)

    def test_channel_requires_sequential_offsets(self):
        spec = FaultSpec(shift_clocks=2)
        channel = PackedFaultChannel(spec, np.zeros(1, dtype=np.int64), 256)
        channel.apply_words(np.zeros((1, 2), dtype=np.uint64), 0, 128)
        with pytest.raises(ConfigurationError):
            channel.apply_words(np.zeros((1, 2), dtype=np.uint64), 0, 128)


def _parity_kernels():
    kernels = ["packed"]
    if numba_available():
        kernels.append("numba")
    return kernels


class TestParityMatrix:
    @pytest.mark.parametrize("kernel", _parity_kernels())
    @pytest.mark.parametrize("sng_kind", ["lfsr", "counter", "sobol", "chaotic"])
    @pytest.mark.parametrize("noisy", [False, True])
    def test_kernels_bit_identical_under_faults(
        self, circuit, kernel, sng_kind, noisy
    ):
        xs = np.linspace(0.0, 1.0, 4)
        reference = run_batch(
            circuit,
            xs,
            length=LENGTH,
            noisy=noisy,
            sng_kind=sng_kind,
            base_seed=9,
            fault=COMPOSITE,
        )
        other = run_batch(
            circuit,
            xs,
            length=LENGTH,
            noisy=noisy,
            sng_kind=sng_kind,
            base_seed=9,
            config=RuntimeConfig(kernel=kernel),
            fault=COMPOSITE,
        )
        assert np.array_equal(reference.values, other.values)
        assert np.array_equal(reference.output_bits, other.output_bits)
        assert np.array_equal(
            reference.transmission_bit_errors,
            other.transmission_bit_errors,
        )

    @pytest.mark.parametrize("kernel", ["numpy", "packed"])
    def test_clean_run_unchanged_by_null_channel(self, circuit, kernel):
        xs = [0.25, 0.75]
        clean = run_batch(
            circuit,
            xs,
            length=LENGTH,
            base_seed=9,
            config=RuntimeConfig(kernel=kernel),
        )
        nulled = run_batch(
            circuit,
            xs,
            length=LENGTH,
            base_seed=9,
            config=RuntimeConfig(kernel=kernel),
            fault=None,
        )
        assert np.array_equal(clean.output_bits, nulled.output_bits)


class TestRelocatability:
    @pytest.mark.parametrize("chunk_length", [64, 100, 333, 999])
    @pytest.mark.parametrize("kernel", ["numpy", "packed"])
    def test_trajectory_faults_stitch_across_chunks(
        self, circuit, chunk_length, kernel
    ):
        """Drift at absolute clock k must not depend on the tiling."""
        xs = np.linspace(0.1, 0.9, 3)
        fault = FaultSpec(
            flip_probability=0.02,
            drift_ramp_per_mclock=200.0,
            decay_tau_clocks=500,
            shift_clocks=9,
        )
        one_shot = run_batch(
            circuit, xs, length=LENGTH, base_seed=21, fault=fault
        )
        chunked = run_batch(
            circuit,
            xs,
            length=LENGTH,
            base_seed=21,
            config=RuntimeConfig(
                kernel=kernel, chunk_length=chunk_length, workers=0
            ),
            fault=fault,
        )
        assert np.array_equal(
            chunked.ones_count, one_shot.output_bits.sum(axis=1)
        )
        assert np.array_equal(
            chunked.transmission_bit_errors,
            one_shot.transmission_bit_errors,
        )

    @pytest.mark.parametrize(
        "config",
        [
            RuntimeConfig(workers=2, backend="thread"),
            RuntimeConfig(workers=2, backend="process"),
            RuntimeConfig(workers=2, backend="process", transport="shm"),
            RuntimeConfig(
                workers=2,
                backend="process",
                transport="shm",
                kernel="packed",
            ),
        ],
    )
    def test_workers_and_transports_change_no_bit(self, circuit, config):
        xs = np.linspace(0.0, 1.0, 5)
        serial = run_batch(
            circuit,
            xs,
            length=LENGTH,
            noisy=True,
            base_seed=13,
            config=RuntimeConfig(workers=0),
            fault=COMPOSITE,
        )
        sharded = run_batch(
            circuit,
            xs,
            length=LENGTH,
            noisy=True,
            base_seed=13,
            config=config,
            fault=COMPOSITE,
        )
        assert np.array_equal(serial.values, sharded.values)
        assert np.array_equal(serial.output_bits, sharded.output_bits)

    def test_cache_keyed_on_fault(self, circuit):
        cache = EvaluationCache(max_entries=8)
        config = RuntimeConfig(use_cache=True, cache=cache)
        fault = FaultSpec(flip_probability=0.05)
        faulty = run_batch(
            circuit, [0.5], length=LENGTH, base_seed=3, config=config,
            fault=fault,
        )
        clean = run_batch(
            circuit, [0.5], length=LENGTH, base_seed=3, config=config
        )
        again = run_batch(
            circuit, [0.5], length=LENGTH, base_seed=3, config=config,
            fault=FaultSpec(flip_probability=0.05),
        )
        assert not np.array_equal(faulty.output_bits, clean.output_bits)
        assert again is faulty


class TestSessionAxis:
    def test_evalspec_validates_fault(self, circuit):
        with pytest.raises(ConfigurationError):
            EvalSpec(fault="flip")  # not a FaultSpec

    def test_with_fault_derives_and_clears(self, circuit):
        session = Evaluator(
            circuit, EvalSpec(length=LENGTH, base_seed=5)
        )
        fault = FaultSpec(flip_probability=0.1)
        faulty = session.with_fault(fault)
        assert faulty.spec.fault == fault
        assert faulty.with_fault(None).spec.fault is None
        clean = np.asarray(session.evaluate([0.5]).output_bits)
        hit = np.asarray(faulty.evaluate([0.5]).output_bits)
        assert not np.array_equal(clean, hit)

    def test_seeded_fault_breaks_row_independence(self, circuit):
        spec = EvalSpec(
            length=LENGTH, base_seed=5, sng_kind="counter", noisy=False
        )
        assert Evaluator(circuit, spec).row_independent
        seeded = spec.replace(fault=FaultSpec(flip_probability=0.1))
        assert not Evaluator(circuit, seeded).row_independent
        # A deterministic shift needs no per-row seeds: still coalescable.
        shifted = spec.replace(fault=FaultSpec(shift_clocks=3))
        assert Evaluator(circuit, shifted).row_independent

    def test_stream_matches_evaluate(self, circuit):
        session = Evaluator(
            circuit, EvalSpec(length=LENGTH, base_seed=5)
        ).with_fault(FaultSpec(drift_ramp_per_mclock=100.0))
        one_shot = session.evaluate([0.4, 0.6])
        streamed = session.stream([0.4, 0.6], chunk_length=128)
        assert np.array_equal(
            np.asarray(streamed.values), np.asarray(one_shot.values)
        )


class TestFaultFrontier:
    def test_flip_sweep_degrades_monotonically(self, circuit):
        frontier = fault_frontier(
            circuit,
            [0.0, 0.01, 0.1, 0.4],
            xs=[0.25, 0.5],
            spec=EvalSpec(length=4096, base_seed=17),
        )
        ber = frontier["mean_link_ber"]
        assert ber[0] == 0.0
        assert (np.diff(ber) > 0).all()
        assert frontier["mean_abs_error"][-1] > frontier["mean_abs_error"][0]

    def test_accepts_spec_points_and_requires_seed(self, circuit):
        frontier = fault_frontier(
            circuit,
            [FaultSpec(shift_clocks=64), 0.0],
            xs=[0.5],
            spec=EvalSpec(length=2048, base_seed=17),
        )
        assert frontier["shift_clocks"][0] == 64
        assert frontier["mean_link_ber"][1] == 0.0
        with pytest.raises(ConfigurationError):
            fault_frontier(
                circuit, [0.1], spec=EvalSpec(length=256, base_seed=None)
            )

    def test_registered_experiment_runs(self):
        result = repro.run_experiment(
            "fault_frontier",
            spec=EvalSpec(length=512, base_seed=17),
        )
        assert result.experiment_id == "fault_frontier"
        scenarios = [row["scenario"] for row in result.rows]
        assert any("stuck" in name for name in scenarios)
        assert all(np.isfinite(row["mean_abs_error"]) for row in result.rows)

"""Tests for the transmission model (paper Eqs. 6-7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.params import paper_section5a_parameters
from repro.core.transmission import TransmissionModel, all_coefficient_patterns
from repro.errors import ConfigurationError


@pytest.fixture
def model() -> TransmissionModel:
    return TransmissionModel(paper_section5a_parameters())


class TestEq7:
    def test_mzi_sum_endpoints(self, model):
        # All constructive: IL%; all destructive: IL% * ER%.
        mzi = model.params.mzi
        assert model.mzi_transmission_sum(0) == pytest.approx(mzi.il_fraction)
        assert model.mzi_transmission_sum(2) == pytest.approx(
            mzi.il_fraction * mzi.er_fraction
        )

    def test_levels_equally_spaced(self, model):
        # The MZI power sum is linear in the ones count, so the detuning
        # levels are equally spaced - the fact the grid design relies on.
        sums = [model.mzi_transmission_sum(k) for k in range(3)]
        assert sums[0] - sums[1] == pytest.approx(sums[1] - sums[2])

    def test_paper_detunings(self, model):
        # Section V-A: the filter must reach lambda_0 (2.1 nm detuning)
        # for x=00 and lambda_2 (0.1 nm) for x=11.
        assert model.filter_detuning_nm(0) == pytest.approx(2.1, abs=1e-3)
        assert model.filter_detuning_nm(1) == pytest.approx(1.1, abs=1e-3)
        assert model.filter_detuning_nm(2) == pytest.approx(0.1, abs=1e-3)

    def test_filter_resonances_align_with_channels(self, model):
        np.testing.assert_allclose(
            model.filter_resonances_nm(),
            model.params.grid.wavelengths_nm,
            atol=1e-3,
        )

    def test_tuning_errors_near_zero_for_sized_pump(self, model):
        assert np.max(np.abs(model.tuning_errors_nm())) < 1e-3

    def test_ones_count_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.mzi_transmission_sum(3)
        with pytest.raises(ConfigurationError):
            model.filter_detuning_nm(-1)


class TestEq6:
    def test_paper_case_a_transmissions(self, model):
        # z=(0,1,0), x1=x2=1: paper quotes 0.091 / 0.004 / 0.0002.
        t = model.total_transmissions([0, 1, 0], 2)
        assert t[2] == pytest.approx(0.091, rel=0.05)
        assert t[1] == pytest.approx(0.004, rel=0.15)
        assert t[0] == pytest.approx(0.0002, rel=0.25)

    def test_paper_case_b_transmission(self, model):
        # z=(1,1,0), x1=x2=0: paper quotes 0.476 for lambda_0.
        t = model.total_transmissions([1, 1, 0], 0)
        assert t[0] == pytest.approx(0.476, rel=0.05)

    def test_received_power_sums_channels(self, model):
        t = model.total_transmissions([0, 1, 0], 2)
        assert model.received_power_mw([0, 1, 0], 2) == pytest.approx(
            float(t.sum())
        )

    def test_on_state_transmits_more_than_off(self, model):
        on = model.total_transmissions([0, 0, 1], 2)[2]
        off = model.total_transmissions([0, 0, 0], 2)[2]
        assert on > off

    def test_pattern_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.total_transmissions([0, 1], 0)
        with pytest.raises(ConfigurationError):
            model.total_transmissions([0, 2, 0], 0)


class TestPatternTable:
    def test_all_patterns_shape_and_content(self):
        patterns = all_coefficient_patterns(3)
        assert patterns.shape == (8, 3)
        # Row index is the integer z2 z1 z0.
        np.testing.assert_array_equal(patterns[5], [1, 0, 1])

    def test_pattern_count_limit(self):
        with pytest.raises(ConfigurationError):
            all_coefficient_patterns(21)
        with pytest.raises(ConfigurationError):
            all_coefficient_patterns(0)

    def test_table_matches_per_pattern_evaluation(self, model):
        table = model.received_power_table_mw()
        assert table.shape == (8, 3)
        for p in range(8):
            z = [(p >> w) & 1 for w in range(3)]
            for level in range(3):
                assert table[p, level] == pytest.approx(
                    model.received_power_mw(z, level), rel=1e-12
                )

    @given(level=st.integers(min_value=0, max_value=2))
    @settings(max_examples=3, deadline=None)
    def test_monotone_in_coefficients(self, level):
        # Adding a '1' anywhere can only add optical power.
        model = TransmissionModel(paper_section5a_parameters())
        table = model.received_power_table_mw()
        for p in range(8):
            for w in range(3):
                if not (p >> w) & 1:
                    q = p | (1 << w)
                    assert table[q, level] >= table[p, level]


class TestSpectrum:
    def test_curves_present_and_bounded(self, model):
        wl = np.linspace(1547.0, 1550.6, 500)
        curves = model.spectrum([0, 1, 0], 2, wl)
        assert set(curves) == {"MRR0", "MRR1", "MRR2", "filter", "probes"}
        for key in ("MRR0", "MRR1", "MRR2", "filter"):
            assert curves[key].shape == wl.shape
            assert np.all(curves[key] >= 0.0)
            assert np.all(curves[key] <= 1.0 + 1e-9)

    def test_detuned_modulator_dips_at_shifted_wavelength(self, model):
        wl = np.linspace(1548.5, 1549.5, 2001)
        curves = model.spectrum([0, 1, 0], 2, wl)
        # MRR1 is ON (z1=1): its dip sits at lambda_1 - 0.1 nm.
        dip = wl[np.argmin(curves["MRR1"])]
        assert dip == pytest.approx(1549.0 - 0.1, abs=2e-3)

"""Tests for power-basis polynomials."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.stochastic import PowerPolynomial
from repro.stochastic.polynomial import PAPER_EXAMPLE_F1


class TestEvaluation:
    def test_horner_matches_direct(self):
        poly = PowerPolynomial([1.0, -2.0, 3.0])
        x = 0.7
        assert poly(x) == pytest.approx(1 - 2 * x + 3 * x * x)

    def test_paper_example_value(self):
        # f1(0.5) = 0.5 (Fig. 1(b) computes 4/8).
        assert PAPER_EXAMPLE_F1(0.5) == pytest.approx(0.5)

    def test_array_evaluation(self):
        poly = PowerPolynomial([0.0, 1.0])
        xs = np.linspace(0, 1, 5)
        np.testing.assert_allclose(poly(xs), xs)

    @given(x=st.floats(min_value=-2, max_value=2))
    def test_constant_polynomial(self, x):
        assert PowerPolynomial([3.5])(x) == pytest.approx(3.5)


class TestStructure:
    def test_degree_counts_declared_coefficients(self):
        assert PowerPolynomial([1.0, 0.0, 0.0]).degree == 2

    def test_equality(self):
        assert PowerPolynomial([1, 2]) == PowerPolynomial([1.0, 2.0])
        assert PowerPolynomial([1, 2]) != PowerPolynomial([1, 2, 0])

    def test_immutability(self):
        poly = PowerPolynomial([1.0, 2.0])
        with pytest.raises(ValueError):
            poly.coefficients[0] = 5.0

    def test_derivative(self):
        poly = PowerPolynomial([1.0, 2.0, 3.0])  # 1 + 2x + 3x^2
        deriv = poly.derivative()
        assert deriv == PowerPolynomial([2.0, 6.0])
        assert PowerPolynomial([5.0]).derivative() == PowerPolynomial([0.0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PowerPolynomial([])


class TestBoundsAndFit:
    def test_paper_example_bounded(self):
        assert PAPER_EXAMPLE_F1.is_bounded_on_unit_interval()

    def test_unbounded_detected(self):
        assert not PowerPolynomial([0.0, 2.0]).is_bounded_on_unit_interval()

    def test_fit_recovers_polynomial(self):
        target = PowerPolynomial([0.25, 0.5, -0.25])
        fitted = PowerPolynomial.fit(lambda x: target(x), degree=2)
        np.testing.assert_allclose(
            fitted.coefficients, target.coefficients, atol=1e-8
        )

    def test_fit_validation(self):
        with pytest.raises(ConfigurationError):
            PowerPolynomial.fit(lambda x: x, degree=-1)
